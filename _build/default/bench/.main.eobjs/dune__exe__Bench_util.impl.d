bench/bench_util.ml: Ekg_core Ekg_engine Ekg_stats List Pipeline Printf Unix
