bench/fig14.ml: Bench_util Company_control Comprehension Debts Ekg_apps Ekg_datagen Ekg_kernel Ekg_study List Option Owners Printf Prng Stress_test
