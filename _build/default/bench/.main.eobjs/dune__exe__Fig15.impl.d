bench/fig15.ml: Bench_util Company_control Ekg_apps Ekg_core Ekg_datalog Ekg_engine Ekg_llm Printf Verbalizer
