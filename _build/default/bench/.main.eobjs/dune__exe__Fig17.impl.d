bench/fig17.ml: Bench_util Company_control Debts Ekg_apps Ekg_core Ekg_datagen Ekg_engine Ekg_kernel Ekg_llm Ekg_stats Float List Owners Printf Prng Stress_test Verbalizer
