bench/fig18.ml: Bench_util Company_control Debts Ekg_apps Ekg_core Ekg_datagen Ekg_engine Ekg_kernel Ekg_stats List Owners Pipeline Printf Prng Stress_test
