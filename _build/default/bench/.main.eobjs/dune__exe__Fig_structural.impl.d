bench/fig_structural.ml: Bench_util Close_link Company_control Depgraph Ekg_apps Ekg_core List Printf Reasoning_path Stress_test String
