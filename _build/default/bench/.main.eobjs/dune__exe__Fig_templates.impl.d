bench/fig_templates.ml: Bench_util Ekg_apps Ekg_core Ekg_datalog Ekg_engine Ekg_llm Glossary List Parser Pipeline Printf Program Proof_mapper Stress_test String Template Verbalizer
