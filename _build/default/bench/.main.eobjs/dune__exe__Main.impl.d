bench/main.ml: Ablations Array Extension Fig14 Fig15 Fig16 Fig17 Fig18 Fig_structural Fig_templates List Micro Printf String Sys
