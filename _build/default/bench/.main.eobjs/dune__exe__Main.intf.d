bench/main.mli:
