(* [ablations] — the design choices DESIGN.md calls out:

   1. greedy longest-prefix template mapping (§4.3) vs naive
      one-template-per-chase-step;
   2. aggregation ("dashed") variants on vs off — without them, each
      contributor verbalizes as its own sentence;
   3. semi-naive vs naive chase evaluation (rounds and wall time). *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

(* naive mapping: every chase step becomes its own ad-hoc single-rule
   path (what a template-less, rule-by-rule verbalizer would do) *)
let naive_mapping (analysis : Reasoning_path.analysis) (proof : Ekg_engine.Proof.t) =
  let assignments =
    List.map
      (fun (s : Ekg_engine.Proof.step) ->
        let rule =
          match Ekg_datalog.Program.find_rule analysis.program s.rule_id with
          | Some r -> r
          | None -> failwith "rule not found"
        in
        let path =
          {
            Reasoning_path.name = "step:" ^ s.rule_id;
            kind = Reasoning_path.Cycle;
            rules = [ rule ];
            multi_flags =
              (if Ekg_datalog.Rule.has_agg rule then [ (rule.id, s.multi) ] else []);
            terminals = [];
          }
        in
        { Proof_mapper.path; blocks = [ { Proof_mapper.path_rule = 0; steps = [ s ] } ] })
      proof.steps
  in
  { Proof_mapper.assignments; fallbacks = List.length proof.steps }

let mapper_ablation () =
  Bench_util.subsection "greedy template mapping vs naive per-step templates";
  let rng = Prng.create 181 in
  let pipeline = Stress_test.simple_pipeline () in
  Printf.printf "  %-6s %-22s %-22s %-14s %s\n" "steps" "greedy: templates" "naive: templates"
    "greedy words" "naive words";
  List.iter
    (fun depth ->
      let inst = Debts.multi_debt_cascade rng ~depth ~debts_per_hop:3 in
      let explained = Bench_util.explain_goal pipeline inst.edb inst.goal in
      let e = explained.explanation in
      let naive = naive_mapping pipeline.analysis e.proof in
      let naive_text =
        Instantiate.render_mapping
          ~template_for:(Pipeline.template_for pipeline ~enhanced:true)
          naive
      in
      let constants = Verbalizer.constant_strings Stress_test.simple_glossary e.proof in
      assert (Ekg_llm.Omission.retained_ratio ~constants naive_text = 1.0);
      assert (Ekg_llm.Omission.retained_ratio ~constants e.text = 1.0);
      Printf.printf "  %-6d %-22d %-22d %-14d %d\n"
        (Ekg_engine.Proof.length e.proof)
        (List.length e.mapping.assignments)
        (List.length naive.assignments)
        (Textutil.word_count e.text) (Textutil.word_count naive_text))
    [ 1; 2; 4; 6 ];
  print_endline
    "  both are complete; the greedy mapper uses fewer, longer templates, giving more\n\
    \  compact and coherent reports (the paper's motivation for reasoning paths)"

let agg_variant_ablation () =
  Bench_util.subsection "aggregation (dashed) variants on vs off";
  let rng = Prng.create 182 in
  let pipeline = Stress_test.simple_pipeline () in
  (* disable dashed variants: restrict the analysis to base paths *)
  let base_only =
    {
      pipeline.analysis with
      Reasoning_path.simple_paths =
        List.filter Reasoning_path.is_base pipeline.analysis.simple_paths;
      cycles = List.filter Reasoning_path.is_base pipeline.analysis.cycles;
    }
  in
  Printf.printf "  %-6s %-18s %s\n" "steps" "with variants" "without variants (fallbacks)";
  List.iter
    (fun depth ->
      let inst = Debts.multi_debt_cascade rng ~depth ~debts_per_hop:3 in
      let explained = Bench_util.explain_goal pipeline inst.edb inst.goal in
      let e = explained.explanation in
      let stripped = Proof_mapper.map_proof base_only e.proof in
      Printf.printf "  %-6d %-18d %d\n"
        (Ekg_engine.Proof.length e.proof)
        e.mapping.fallbacks stripped.fallbacks)
    [ 1; 2; 4 ];
  print_endline
    "  without the dashed variants of §4.1, multi-contributor aggregation steps have\n\
    \  no matching reasoning path and degrade to ad-hoc per-step templates"

let chase_ablation () =
  Bench_util.subsection "semi-naive vs naive chase evaluation (transitive closure)";
  let program =
    match
      Ekg_datalog.Parser.parse
        {|
base: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
    with
    | Ok { program; _ } -> program
    | Error e -> failwith e
  in
  let chain n =
    List.init n (fun i ->
        Ekg_datalog.Atom.make "e"
          [
            Ekg_datalog.Term.str (Printf.sprintf "n%03d" i);
            Ekg_datalog.Term.str (Printf.sprintf "n%03d" (i + 1));
          ])
  in
  Printf.printf "  %-8s %-24s %s\n" "nodes" "semi-naive (ms, rounds)" "naive (ms, rounds)";
  List.iter
    (fun n ->
      let edb = chain n in
      let semi, t_semi =
        Bench_util.time_ms (fun () -> Ekg_engine.Chase.run_exn program edb)
      in
      let naive, t_naive =
        Bench_util.time_ms (fun () -> Ekg_engine.Chase.run_exn ~naive:true program edb)
      in
      assert (semi.derived_count = naive.derived_count);
      Printf.printf "  %-8d %9.2f ms, %3d       %9.2f ms, %3d\n" n t_semi semi.rounds
        t_naive naive.rounds)
    [ 20; 40; 80 ];
  print_endline
    "  identical materializations; the delta filter avoids re-deriving the quadratic\n\
    \  closure every round, so the gap widens with recursion depth"

let magic_ablation () =
  Bench_util.subsection "goal-directed (magic sets) vs full materialization";
  let program =
    match
      Ekg_datalog.Parser.parse
        {|
base: e(X, Y) -> path(X, Y).
step: path(X, Z), e(Z, Y) -> path(X, Y).
@goal(path).
|}
    with
    | Ok { program; _ } -> program
    | Error e -> failwith e
  in
  let chain n =
    List.init n (fun i ->
        Ekg_datalog.Atom.make "e"
          [
            Ekg_datalog.Term.str (Printf.sprintf "n%03d" i);
            Ekg_datalog.Term.str (Printf.sprintf "n%03d" (i + 1));
          ])
  in
  Printf.printf "  %-8s %-28s %s\n" "nodes" "magic (ms, facts derived)"
    "full (ms, facts derived)";
  List.iter
    (fun n ->
      let edb = chain n in
      (* point query at the tail: the worst case for materializing all *)
      let q =
        Ekg_datalog.Atom.make "path"
          [
            Ekg_datalog.Term.str (Printf.sprintf "n%03d" (n - 1));
            Ekg_datalog.Term.var "Y";
          ]
      in
      let magic, t_magic =
        Bench_util.time_ms (fun () ->
            match Ekg_engine.Magic.answer program edb q with
            | Ok a -> a
            | Error e -> failwith e)
      in
      let full, t_full =
        Bench_util.time_ms (fun () -> Ekg_engine.Chase.run_exn program edb)
      in
      Printf.printf "  %-8d %9.2f ms, %6d        %9.2f ms, %6d\n" n t_magic
        magic.derived_count t_full full.derived_count)
    [ 20; 40; 80 ];
  print_endline
    "  the magic rewriting materializes only the facts the query constants reach —\n\
    \  constant-size here vs the quadratic full closure"

let run () =
  Bench_util.section "ablations" "Design-choice ablations (DESIGN.md section 4)";
  mapper_ablation ();
  agg_variant_ablation ();
  chase_ablation ();
  magic_ablation ()
