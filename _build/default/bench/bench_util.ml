(* Shared helpers for the experiment harness: section banners, timing,
   explanation plumbing and table rendering. *)

open Ekg_core

let section name description =
  Printf.printf "\n";
  Printf.printf "============================================================\n";
  Printf.printf "[%s] %s\n" name description;
  Printf.printf "============================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.)

type explained = {
  explanation : Pipeline.explanation;
  result : Ekg_engine.Chase.result;
}

let explain_goal pipeline edb goal =
  match Pipeline.reason pipeline edb with
  | Error e -> failwith ("bench: reasoning failed: " ^ e)
  | Ok result -> (
    match Pipeline.explain_atom pipeline result goal with
    | Ok (e :: _) -> { explanation = e; result }
    | Ok [] -> failwith "bench: no explanation produced"
    | Error e -> failwith ("bench: explanation failed: " ^ e))

let five_number_row label values =
  let f = Ekg_stats.Descriptive.five_number values in
  Printf.printf "  %-14s  whiskers [%6.3f .. %6.3f]  quartiles [%6.3f %6.3f %6.3f]  mean %6.3f%s\n"
    label f.low_whisker f.high_whisker f.q1 f.median f.q3
    (Ekg_stats.Descriptive.mean values)
    (if f.outliers = [] then ""
     else Printf.sprintf "  (%d outliers)" (List.length f.outliers))

let paper_note text = Printf.printf "  paper: %s\n" text
