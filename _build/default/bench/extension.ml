(* [extension] — beyond the paper: §7's future work applied inside the
   financial domain's remaining application.  "In future work, we will
   test our system in other domains and test whether the advantages
   over plain LLM systems are still relevant."

   We re-run the Figure 17 (completeness) and Figure 18 (running time)
   protocols on the close-links application — an encoding the paper
   grades in its expert study but never sweeps — plus the golden-power
   screening program with negation.  The hypothesis transfers: LLM
   omission grows with proof length while templates stay complete, and
   explanation time stays interactive. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

let samples = 10

let omission_sweep () =
  Bench_util.subsection "close links: omission vs proof length (Figure 17 protocol)";
  let rng = Prng.create 200 in
  let pipeline = Close_link.pipeline () in
  Printf.printf "  %-6s %-22s %-22s %s\n" "steps" "paraphrase (mean)" "summary (mean)"
    "templates (mean)";
  List.iter
    (fun hops ->
      let ratios task =
        List.init samples (fun _ ->
            let inst = Participations.with_noise rng ~hops ~noise_edges:3 in
            let e = Bench_util.explain_goal pipeline inst.edb inst.goal in
            let proof = e.explanation.proof in
            let constants = Verbalizer.constant_strings Close_link.glossary proof in
            match task with
            | `Templates ->
              Ekg_llm.Omission.omitted_ratio ~constants e.explanation.text
            | (`Para | `Summ) as t ->
              let deterministic =
                Verbalizer.verbalize_proof Close_link.glossary Close_link.program proof
              in
              let out =
                Ekg_llm.Mock_llm.rewrite
                  (match t with
                  | `Para -> Ekg_llm.Mock_llm.Paraphrase
                  | `Summ -> Ekg_llm.Mock_llm.Summarize)
                  ~proof_length:(Ekg_engine.Proof.length proof)
                  ~constants deterministic
              in
              Ekg_llm.Omission.omitted_ratio ~constants out)
      in
      let mean = Ekg_stats.Descriptive.mean in
      Printf.printf "  %-6d %-22.3f %-22.3f %.3f\n" (hops + 1)
        (mean (ratios `Para))
        (mean (ratios `Summ))
        (mean (ratios `Templates)))
    [ 1; 2; 3; 4; 5 ]

let runtime_sweep () =
  Bench_util.subsection "close links: explanation time vs proof length (Figure 18 protocol)";
  let rng = Prng.create 201 in
  let pipeline = Close_link.pipeline () in
  Printf.printf "  %-6s %s\n" "steps" "mean (ms)";
  List.iter
    (fun hops ->
      let times =
        List.init samples (fun _ ->
            let inst = Participations.with_noise rng ~hops ~noise_edges:3 in
            match Pipeline.reason pipeline inst.edb with
            | Error e -> failwith e
            | Ok result -> (
              match Ekg_engine.Query.ask result.db inst.goal with
              | [] -> failwith "close link not derived"
              | (f, _) :: _ ->
                snd
                  (Bench_util.time_ms (fun () ->
                       match Pipeline.explain pipeline result f with
                       | Ok e -> e
                       | Error e -> failwith e))))
      in
      Printf.printf "  %-6d %.3f\n" (hops + 1) (Ekg_stats.Descriptive.mean times))
    [ 1; 2; 3; 4; 5 ]

let negation_completeness () =
  Bench_util.subsection "golden power: completeness with negation in the rules";
  let pipeline = Golden_power.pipeline () in
  match Pipeline.reason pipeline Golden_power.scenario_edb with
  | Error e -> failwith e
  | Ok result ->
    List.iter
      (fun (f : Ekg_engine.Fact.t) ->
        match Pipeline.explain pipeline result f with
        | Error e -> failwith e
        | Ok e ->
          let constants = Verbalizer.constant_strings Golden_power.glossary e.proof in
          Printf.printf "  %-55s retained %.0f%%, paths %s\n"
            (Ekg_engine.Fact.to_string f)
            (100. *. Ekg_llm.Omission.retained_ratio ~constants e.text)
            (String.concat "+" e.paths_used))
      (Ekg_engine.Database.active result.db "blockedDeal");
    Printf.printf
      "  negated premises ('it is not the case that …') verbalize without tokens to \
       lose\n"

let termination_vetting () =
  Bench_util.subsection "termination vetting of the deployed applications";
  List.iter
    (fun (name, program) ->
      Printf.printf "  %-18s %s\n" name
        (Termination.to_string (Termination.analyze program)))
    [
      ("company control", Company_control.program);
      ("stress test", Stress_test.program);
      ("close links", Close_link.program);
      ("golden power", Golden_power.program);
    ]

let run () =
  Bench_util.section "extension"
    "Beyond the paper: future-work sweeps on close links and golden power (§7)";
  omission_sweep ();
  runtime_sweep ();
  negation_completeness ();
  termination_vetting ()
