(* [fig14] — the comprehension user study (§6.1, Figure 14).

   The paper shows 24 non-expert participants five textual explanations,
   each next to three KG visualizations — one faithful, two corrupted by
   an error archetype — and reports 96% accuracy with no archetype
   dominating the errors.  Participants are simulated by the reader
   model of Ekg_study.Comprehension (DESIGN.md §3). *)

open Ekg_kernel
open Ekg_apps
open Ekg_datagen
open Ekg_study

type case = {
  name : string;
  text : string;
  vizs : Comprehension.viz list;
}

let build_case rng name glossary (explained : Bench_util.explained) =
  let correct = Comprehension.correct_viz glossary explained.explanation.proof in
  let pick () = Prng.pick rng Comprehension.all_archetypes in
  let d1 = Comprehension.corrupt rng (pick ()) correct in
  let d2 = Comprehension.corrupt rng (pick ()) correct in
  { name; text = explained.explanation.text; vizs = Prng.shuffle rng [ correct; d1; d2 ] }

let participants = 24
let reading_noise = 0.03

let run () =
  Bench_util.section "fig14"
    "Comprehension user study: 24 simulated non-experts x 5 cases (Figure 14)";
  let rng = Prng.create 140 in
  let cc = Company_control.pipeline () in
  let st = Stress_test.simple_pipeline () in
  let cases =
    [
      (let i = Owners.aggregated rng ~hops:2 ~fanout:3 in
       build_case rng "1: control via aggregation" Company_control.glossary
         (Bench_util.explain_goal cc i.edb i.goal));
      (let i = Debts.simple_cascade rng ~depth:1 in
       build_case rng "2: simple stress test" Stress_test.simple_glossary
         (Bench_util.explain_goal st i.edb i.goal));
      (let i = Owners.chain rng ~hops:4 in
       build_case rng "3: control via recursion" Company_control.glossary
         (Bench_util.explain_goal cc i.edb i.goal));
      (let i = Debts.multi_debt_cascade rng ~depth:3 ~debts_per_hop:2 in
       build_case rng "4: stress test, recursion + aggregation"
         Stress_test.simple_glossary
         (Bench_util.explain_goal st i.edb i.goal));
      (let i = Owners.aggregated rng ~hops:4 ~fanout:2 in
       build_case rng "5: control, recursion + aggregation" Company_control.glossary
         (Bench_util.explain_goal cc i.edb i.goal));
    ]
  in
  Printf.printf "\n  %-45s %-11s %-11s %-11s %-11s %s\n" "case" "wrong edge"
    "wrong value" "wrong agg" "wrong chain" "correct";
  let total_correct = ref 0 and total_answers = ref 0 in
  List.iter
    (fun case ->
      let outcome =
        Comprehension.run_case rng ~participants ~noise:reading_noise ~text:case.text
          case.vizs
      in
      total_correct := !total_correct + outcome.correct;
      total_answers := !total_answers + participants;
      let pct a =
        100.
        *. float_of_int (Option.value ~default:0 (List.assoc_opt a outcome.errors))
        /. float_of_int participants
      in
      Printf.printf "  %-45s %9.0f%% %10.0f%% %10.0f%% %10.0f%% %7.0f%%\n" case.name
        (pct Comprehension.Wrong_edge)
        (pct Comprehension.Wrong_value)
        (pct Comprehension.Wrong_agg_order)
        (pct Comprehension.Wrong_chain)
        (100. *. Comprehension.accuracy outcome))
    cases;
  let accuracy = 100. *. float_of_int !total_correct /. float_of_int !total_answers in
  Printf.printf "\n  overall accuracy: %.1f%% over %d answers\n" accuracy !total_answers;
  Bench_util.paper_note
    "96% overall accuracy over 120 answers; per-case 92-100%; no archetype dominates"
