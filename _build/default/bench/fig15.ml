(* [fig15] — the qualitative comparison of Figure 15: the same fact
   (Irish Bank controls Madrid Credit) explained by (a) the
   deterministic verbalizer, (b) the simulated-GPT paraphrase, (c) the
   simulated-GPT summary, and (d) our template-based approach. *)

open Ekg_core
open Ekg_apps

let run () =
  Bench_util.section "fig15"
    "The four explanation styles for control(IrishBank, MadridCredit) (Figure 15)";
  let pipeline = Company_control.pipeline () in
  let e =
    Bench_util.explain_goal pipeline Company_control.scenario_edb
      (Ekg_datalog.Atom.make "control"
         [ Ekg_datalog.Term.str "IrishBank"; Ekg_datalog.Term.str "MadridCredit" ])
  in
  let proof = e.explanation.proof in
  let deterministic =
    Verbalizer.verbalize_proof Company_control.glossary Company_control.program proof
  in
  let constants = Verbalizer.constant_strings Company_control.glossary proof in
  let n = Ekg_engine.Proof.length proof in
  let para =
    Ekg_llm.Mock_llm.rewrite Ekg_llm.Mock_llm.Paraphrase ~proof_length:n ~constants
      deterministic
  in
  let summ =
    Ekg_llm.Mock_llm.rewrite Ekg_llm.Mock_llm.Summarize ~proof_length:n ~constants
      deterministic
  in
  let show title text =
    Bench_util.subsection title;
    print_endline text;
    Printf.printf "  [constants retained: %.0f%%]\n"
      (100. *. Ekg_llm.Omission.retained_ratio ~constants text)
  in
  show "deterministic explanation" deterministic;
  show "GPT paraphrase of deterministic explanation (simulated)" para;
  show "GPT summary of deterministic explanation (simulated)" summ;
  show "template-based approach (ours)" e.explanation.text
