(* [fig16] — the expert user study (§6.2, Figure 16).

   14 simulated central-bank experts grade, on a 5-value Likert scale,
   three explanations of the same proof for four scenarios: GPT
   paraphrase, GPT summary (both simulated, see DESIGN.md §3), and the
   template-based text.  Grading and the pairwise Wilcoxon analysis
   live in Ekg_study.Grading. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen
open Ekg_stats

let texts_for glossary program (explained : Bench_util.explained) =
  let proof = explained.explanation.proof in
  let deterministic = Verbalizer.verbalize_proof glossary program proof in
  let constants = Verbalizer.constant_strings glossary proof in
  let n = Ekg_engine.Proof.length proof in
  let llm task =
    Ekg_llm.Mock_llm.rewrite task ~proof_length:n ~constants deterministic
  in
  [
    llm Ekg_llm.Mock_llm.Paraphrase;
    llm Ekg_llm.Mock_llm.Summarize;
    explained.explanation.text;
  ]

let methods = [ "GPT paraphrase"; "GPT summary"; "templates (ours)" ]

let run () =
  Bench_util.section "fig16"
    "Expert user study: Likert grades for the three methods (Figure 16)";
  let rng = Prng.create 160 in
  let cc = Company_control.pipeline () in
  let st = Stress_test.pipeline () in
  let cl = Close_link.pipeline () in
  let scenarios =
    [
      (let i = Owners.chain rng ~hops:2 in
       texts_for Company_control.glossary Company_control.program
         (Bench_util.explain_goal cc i.edb i.goal));
      (let i = Owners.aggregated rng ~hops:6 ~fanout:2 in
       texts_for Company_control.glossary Company_control.program
         (Bench_util.explain_goal cc i.edb i.goal));
      (let i = Debts.dual_cascade rng ~depth:2 in
       texts_for Stress_test.glossary Stress_test.program
         (Bench_util.explain_goal st i.edb i.goal));
      texts_for Close_link.glossary Close_link.program
        (Bench_util.explain_goal cl Close_link.scenario_edb
           (Ekg_datalog.Atom.make "closeLink"
              [ Ekg_datalog.Term.str "HoldCo"; Ekg_datalog.Term.str "OpCo" ]));
    ]
  in
  let result = Ekg_study.Grading.panel rng ~methods ~scenarios in
  Printf.printf "\n";
  List.iter
    (fun (name, grades) ->
      Printf.printf "  %-22s mean %.3f  std %.3f  (n = %d)\n" name (Likert.mean grades)
        (Likert.std_dev grades) (List.length grades))
    result.per_method;
  Bench_util.paper_note
    "means 3.78 (std 1.09), 3.765 (std 1.25), 3.69 (std 0.94) over 56 grades each";
  Printf.printf "\n";
  List.iter
    (fun (m1, m2, test) ->
      match test with
      | Ok (r : Wilcoxon.result) ->
        Printf.printf "  Wilcoxon %-38s p = %.4f  (%ssignificant at 0.05)\n"
          (m1 ^ " vs " ^ m2) r.p_value
          (if Wilcoxon.significant r then "" else "not ")
      | Error e -> Printf.printf "  Wilcoxon %s vs %s: %s\n" m1 m2 e)
    (Ekg_study.Grading.wilcoxon_pairs result);
  Bench_util.paper_note "p1 = 0.5851 and p2 = 0.404: no significant difference"
