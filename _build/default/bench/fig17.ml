(* [fig17] — completeness of textual explanations (§6.3, Figure 17).

   For proofs of increasing length (company control: 3..21 chase steps;
   stress test: 1..9), the deterministic verbalization is handed to the
   (simulated) LLM with the paraphrase and summary prompts, and the
   relative amount of omitted information — 1 minus the share of the
   proof's constants surviving into the output — is measured over 10
   distinct sampled proofs per length.  The template-based approach is
   measured alongside: by construction it never omits. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

type series = {
  steps : int;
  para : float list;
  summ : float list;
  tmpl : float list;
}

let samples_per_length = 10

let measure_point rng pipeline glossary program make_instance =
  let one_sample () =
    let edb, goal = make_instance () in
    let explained = Bench_util.explain_goal pipeline edb goal in
    (explained, Verbalizer.verbalize_proof glossary program explained.explanation.proof)
  in
  ignore rng;
  let samples = List.init samples_per_length (fun _ -> one_sample ()) in
  let ratios task =
    List.map
      (fun ((explained : Bench_util.explained), deterministic) ->
        let proof = explained.explanation.proof in
        let constants = Verbalizer.constant_strings glossary proof in
        let out =
          Ekg_llm.Mock_llm.rewrite task ~proof_length:(Ekg_engine.Proof.length proof)
            ~constants deterministic
        in
        Ekg_llm.Omission.omitted_ratio ~constants out)
      samples
  in
  let tmpl =
    List.map
      (fun ((explained : Bench_util.explained), _) ->
        let constants =
          Verbalizer.constant_strings glossary explained.explanation.proof
        in
        Ekg_llm.Omission.omitted_ratio ~constants explained.explanation.text)
      samples
  in
  (ratios Ekg_llm.Mock_llm.Paraphrase, ratios Ekg_llm.Mock_llm.Summarize, tmpl)

let print_series title series =
  Bench_util.subsection title;
  Printf.printf "  %-6s %-28s %-28s %s\n" "steps" "paraphrase omitted (mean)"
    "summary omitted (mean)" "templates (mean)";
  List.iter
    (fun s ->
      let mean = Ekg_stats.Descriptive.mean in
      Printf.printf "  %-6d %-28.3f %-28.3f %.3f\n" s.steps (mean s.para) (mean s.summ)
        (mean s.tmpl))
    series;
  Printf.printf "\n  boxplot detail (paraphrase | summary):\n";
  List.iter
    (fun s ->
      Printf.printf "  %2d steps:\n" s.steps;
      Bench_util.five_number_row "paraphrase" s.para;
      Bench_util.five_number_row "summary" s.summ)
    series

let run () =
  Bench_util.section "fig17"
    "Omitted information in LLM outputs vs proof length (Figure 17)";
  let rng = Prng.create 170 in

  let cc_pipeline = Company_control.pipeline () in
  let cc_series =
    List.map
      (fun steps ->
        let para, summ, tmpl =
          measure_point rng cc_pipeline Company_control.glossary
            Company_control.program (fun () ->
              let i = Owners.chain rng ~hops:steps in
              (i.edb, i.goal))
        in
        { steps; para; summ; tmpl })
      [ 3; 6; 9; 12; 15; 18; 21 ]
  in
  print_series "(a) company control — 10 proofs per length" cc_series;
  Bench_util.paper_note
    "omission grows with proof length; summaries omit more than paraphrases; \
     most omissions are ownership share amounts";

  let st_pipeline = Stress_test.simple_pipeline () in
  let st_series =
    List.map
      (fun steps ->
        let depth = (steps - 1) / 2 in
        let para, summ, tmpl =
          measure_point rng st_pipeline Stress_test.simple_glossary
            Stress_test.simple_program (fun () ->
              let i = Debts.simple_cascade rng ~depth in
              (i.edb, i.goal))
        in
        { steps; para; summ; tmpl })
      [ 1; 3; 5; 7; 9 ]
  in
  print_series "(b) stress test — 10 proofs per length" st_series;
  Bench_util.paper_note
    "same growth pattern, no specific omission pattern identified";

  (* the headline claim: templates never omit *)
  let all_template_ratios =
    List.concat_map (fun s -> s.tmpl) (cc_series @ st_series)
  in
  Printf.printf
    "\n  template-based approach: max omitted ratio across all %d proofs = %.3f\n"
    (List.length all_template_ratios)
    (List.fold_left Float.max 0. all_template_ratios);
  Bench_util.paper_note
    "the template-based technique avoids omissions by construction (all constants \
     are captured by tokens)"
