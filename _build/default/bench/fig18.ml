(* [fig18] — performance of the template-based approach (§6.4,
   Figure 18): time required to select, parse and combine templates as
   the proof length grows; 15 distinct proofs per length.

   Reasoning (the chase) is excluded, exactly as in the paper: we time
   the explanation step only — proof extraction, greedy template
   mapping, and token substitution. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

let samples_per_length = 15

let time_explanations pipeline instances =
  List.map
    (fun (edb, goal) ->
      match Pipeline.reason pipeline edb with
      | Error e -> failwith e
      | Ok result -> (
        match Ekg_engine.Query.ask result.db goal with
        | [] -> failwith "goal not derived"
        | (f, _) :: _ ->
          let (_ : Pipeline.explanation), ms =
            Bench_util.time_ms (fun () ->
                match Pipeline.explain pipeline result f with
                | Ok e -> e
                | Error e -> failwith e)
          in
          ms))
    instances

let sweep name pipeline mk lengths =
  Bench_util.subsection name;
  Printf.printf "  %-6s %-12s %s\n" "steps" "mean (ms)" "boxplot";
  List.iter
    (fun steps ->
      let instances = List.init samples_per_length (fun _ -> mk steps) in
      let times = time_explanations pipeline instances in
      Printf.printf "  %-6d %-12.3f" steps (Ekg_stats.Descriptive.mean times);
      let f = Ekg_stats.Descriptive.five_number times in
      Printf.printf " [%6.3f .. %6.3f] quartiles [%6.3f %6.3f %6.3f]\n" f.low_whisker
        f.high_whisker f.q1 f.median f.q3)
    lengths

let run () =
  Bench_util.section "fig18"
    "Running time of explanation generation vs proof length (Figure 18)";
  let rng = Prng.create 180 in
  let cc = Company_control.pipeline () in
  sweep "(a) company control — 15 proofs per length" cc
    (fun steps ->
      let i = Owners.chain rng ~hops:steps in
      (i.edb, i.goal))
    [ 1; 3; 5; 7; 9; 11; 13; 16; 18; 21 ];
  Bench_util.paper_note
    "increases with inference steps; max around 1s at 21 steps on their hardware — \
     absolute numbers differ, the monotone shape is the claim";
  let st = Stress_test.pipeline () in
  sweep "(b) stress test — 15 proofs per length" st
    (fun steps ->
      let depth = (steps - 1) / 3 in
      let i = Debts.dual_cascade rng ~depth in
      (i.edb, i.goal))
    [ 1; 4; 7; 10; 13; 16; 19; 22 ];
  Bench_util.paper_note
    "syntactically richer application (more aggregations) runs slower; max around \
     3s at 22+ steps on their hardware; shape must be monotone and above (a)"
