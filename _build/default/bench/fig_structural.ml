(* [structural] — Figures 3, 4, 5, 9 and 10: dependency graphs,
   critical nodes and reasoning-path tables for the three KG
   applications, printed next to the paper's expected sets. *)

open Ekg_core
open Ekg_apps

let print_app name program expected_simple expected_cycles =
  Bench_util.subsection name;
  let a = Reasoning_path.analyze program in
  Printf.printf "  leaf: %s\n  critical nodes: %s\n" a.leaf
    (String.concat ", " a.criticals);
  let bases paths = List.filter Reasoning_path.is_base paths in
  Printf.printf "  simple reasoning paths (base variants):\n";
  List.iter
    (fun p -> Printf.printf "    %s\n" (Reasoning_path.to_string p))
    (bases a.simple_paths);
  Printf.printf "  reasoning cycles (base variants):\n";
  List.iter
    (fun p -> Printf.printf "    %s\n" (Reasoning_path.to_string p))
    (bases a.cycles);
  let starred = List.length a.simple_paths + List.length a.cycles
                - List.length (bases a.simple_paths) - List.length (bases a.cycles) in
  Printf.printf "  aggregation (dashed) variants: %d\n" starred;
  Bench_util.paper_note
    (Printf.sprintf "%d simple paths, %d cycles (Figure 10)" expected_simple
       expected_cycles);
  let got_s = List.length (bases a.simple_paths)
  and got_c = List.length (bases a.cycles) in
  Printf.printf "  reproduced: %d simple paths, %d cycles -> %s\n" got_s got_c
    (if got_s = expected_simple && got_c = expected_cycles then "MATCH" else "MISMATCH")

let run () =
  Bench_util.section "structural"
    "Structural analysis: dependency graphs and reasoning paths (Figs. 3-5, 9, 10)";
  print_app "example 4.3 (one-channel stress test)" Stress_test.simple_program 2 1;
  print_app "company control" Company_control.program 5 1;
  print_app "stress test (two channels)" Stress_test.program 4 3;
  print_app "close links (our encoding; not tabled in the paper)" Close_link.program 2 2;
  Bench_util.subsection "dependency graph of company control (Figure 9a, DOT)";
  print_string (Depgraph.to_dot Company_control.program)
