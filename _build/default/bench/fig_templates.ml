(* [templates] — Figures 6, 7 and 8 / Examples 4.7-4.8: the domain
   glossary, the deterministic and enhanced explanation templates of
   the running example, its chase graph and the explanation of
   Default("C"). *)

open Ekg_datalog
open Ekg_core
open Ekg_apps

let economy =
  {|
shock("A", 6000000).
hasCapital("A", 5000000).
hasCapital("B", 2000000).
hasCapital("C", 10000000).
debts("A", "B", 7000000).
debts("B", "C", 2000000).
debts("B", "C", 9000000).
|}

let facts () =
  match Parser.parse (Program.to_string Stress_test.simple_program ^ economy) with
  | Ok { facts; _ } -> facts
  | Error e -> failwith e

let run () =
  Bench_util.section "templates"
    "Domain glossary, explanation templates and the Default(C) walk-through (Figs. 6-8)";
  Bench_util.subsection "domain glossary (Figure 7)";
  print_endline (Glossary.to_string Stress_test.simple_glossary);

  let pipeline = Stress_test.simple_pipeline () in
  Bench_util.subsection "deterministic explanation templates (Figure 6, left)";
  List.iter
    (fun (name, tpl) -> Printf.printf "%s:\n  %s\n" name (Template.skeleton tpl))
    pipeline.deterministic;
  Bench_util.subsection "enhanced templates (Figure 6, right)";
  List.iter
    (fun (name, tpl) -> Printf.printf "%s:\n  %s\n" name (Template.skeleton tpl))
    pipeline.enhanced;

  match Pipeline.reason pipeline (facts ()) with
  | Error e -> failwith e
  | Ok result -> (
    match Pipeline.explain_query pipeline result {|default("C")|} with
    | Error e -> failwith e
    | Ok [ e ] ->
      Bench_util.subsection "chase graph portion deriving Default(C) (Figure 8)";
      print_endline (Ekg_engine.Proof.to_string e.proof);
      Bench_util.subsection "template mapping (Example 4.7)";
      Printf.printf "  tau = {%s}\n"
        (String.concat ", " (Ekg_engine.Proof.rule_sequence e.proof));
      Printf.printf "  mapping: %s\n" (Proof_mapper.to_string e.mapping);
      Bench_util.paper_note
        "tau = {alpha, beta, gamma, beta, gamma}; simple path {alpha,beta,gamma} \
         then the dashed cycle {beta*,gamma} (their Pi3 + Gamma2)";
      Bench_util.subsection "textual explanation (Example 4.8)";
      print_endline e.text;
      let constants = Verbalizer.constant_strings Stress_test.simple_glossary e.proof in
      Printf.printf "\n  completeness: %.0f%% of the %d proof constants retained\n"
        (100. *. Ekg_llm.Omission.retained_ratio ~constants e.text)
        (List.length constants)
    | Ok _ -> failwith "expected one explanation")
