examples/close_link_example.ml: Close_link Ekg_apps Ekg_core Ekg_datalog Ekg_engine Ekg_llm Fmt List Pipeline Reasoning_path Verbalizer
