examples/close_link_example.mli:
