examples/company_control_example.ml: Company_control Depgraph Ekg_apps Ekg_core Ekg_engine Ekg_kernel Fmt List Pipeline Reasoning_path String Verbalizer
