examples/company_control_example.mli:
