examples/golden_power_example.ml: Ekg_apps Ekg_core Ekg_datalog Ekg_engine Fmt Golden_power List Pipeline Reasoning_path String
