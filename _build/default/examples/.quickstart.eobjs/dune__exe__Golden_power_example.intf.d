examples/golden_power_example.mli:
