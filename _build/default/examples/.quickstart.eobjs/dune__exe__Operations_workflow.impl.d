examples/operations_workflow.ml: Ekg_apps Ekg_core Ekg_datagen Ekg_engine Ekg_kernel Ekg_llm Fmt Pipeline Prng Report Result Stress_test String Template_store Termination Textutil
