examples/operations_workflow.mli:
