examples/quickstart.ml: Ekg_core Ekg_datalog Ekg_engine Fmt Glossary List Pipeline Reasoning_path String Template
