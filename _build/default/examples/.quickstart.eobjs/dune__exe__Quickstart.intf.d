examples/quickstart.mli:
