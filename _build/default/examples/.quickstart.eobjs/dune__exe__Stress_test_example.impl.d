examples/stress_test_example.ml: Ekg_apps Ekg_core Ekg_engine Fmt List Pipeline Reasoning_path Stress_test String
