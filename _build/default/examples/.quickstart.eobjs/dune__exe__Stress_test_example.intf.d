examples/stress_test_example.mli:
