(* Close links (§6.2): integrated-ownership links between financial
   entities, the third application graded in the paper's expert study.
   Also demonstrates privacy: the explanation is produced entirely
   in-process, and we contrast it with what the simulated LLM baseline
   would return for the same proof.

   Run with: dune exec examples/close_link_example.exe *)

open Ekg_core
open Ekg_apps

let () =
  let pipeline = Close_link.pipeline () in

  Fmt.pr "== close link program ==@.%s@.@."
    (Ekg_datalog.Program.to_string Close_link.program);
  Fmt.pr "== reasoning paths ==@.%s@.@."
    (Reasoning_path.analysis_to_string pipeline.analysis);

  let result =
    match Pipeline.reason pipeline Close_link.scenario_edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "== derived close links ==@.";
  List.iter
    (fun f -> Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f))
    (Ekg_engine.Database.active result.db "closeLink");
  Fmt.pr "@.";

  match Pipeline.explain_query pipeline result {|closeLink("HoldCo", "OpCo")|} with
  | Error e -> failwith e
  | Ok [ e ] ->
    Fmt.pr "== template-based explanation (stays in-house) ==@.%s@.@." e.text;
    let deterministic =
      Verbalizer.verbalize_proof Close_link.glossary Close_link.program e.proof
    in
    Fmt.pr "== deterministic verbalization (the LLM baseline's input) ==@.%s@.@."
      deterministic;
    let constants = Verbalizer.constant_strings Close_link.glossary e.proof in
    let summary =
      Ekg_llm.Mock_llm.rewrite Ekg_llm.Mock_llm.Summarize
        ~proof_length:(Ekg_engine.Proof.length e.proof)
        ~constants deterministic
    in
    Fmt.pr "== what an LLM summary returns (simulated; may omit figures) ==@.%s@.@."
      summary;
    Fmt.pr "omission ratio of the simulated summary: %.2f@."
      (Ekg_llm.Omission.omitted_ratio ~constants summary);
    Fmt.pr "omission ratio of the template-based text: %.2f@."
      (Ekg_llm.Omission.omitted_ratio ~constants e.text)
  | Ok _ -> assert false
