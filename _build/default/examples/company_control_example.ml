(* Company control (§5): who controls whom in an ownership network.

   Reproduces the representative scenario of Figures 12/13 and the
   Irish Bank / Madrid Credit walk-through of Figure 15, comparing the
   template-based explanation with the deterministic verbalization the
   paper feeds to its LLM baselines.

   Run with: dune exec examples/company_control_example.exe *)

open Ekg_core
open Ekg_apps

let () =
  let pipeline = Company_control.pipeline () in

  Fmt.pr "== dependency graph (Figure 9a) ==@.%s@."
    (Depgraph.to_dot Company_control.program);
  Fmt.pr "== reasoning paths (Figure 10) ==@.%s@.@."
    (Reasoning_path.analysis_to_string pipeline.analysis);

  let result =
    match Pipeline.reason pipeline Company_control.scenario_edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "== derived control edges (Figure 13, auto-control omitted) ==@.";
  List.iter
    (fun (f : Ekg_engine.Fact.t) ->
      match f.args with
      | [| x; y |] when not (Ekg_kernel.Value.equal x y) ->
        Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f)
      | _ -> ())
    (Ekg_engine.Database.active result.db "control");
  Fmt.pr "@.";

  let explain q =
    match Pipeline.explain_query pipeline result q with
    | Ok [ e ] ->
      Fmt.pr "== Q_e = {%s} ==@.reasoning paths: %s@.@.%s@.@."
        (Ekg_engine.Fact.to_string e.fact)
        (String.concat " + " e.paths_used)
        e.text;
      e
    | Ok _ -> failwith "expected a single matching fact"
    | Error e -> failwith e
  in

  (* the business analyst's question from §5 *)
  let _ = explain {|control("B", "D")|} in

  (* the Figure 15 walk-through *)
  let e = explain {|control("IrishBank", "MadridCredit")|} in
  Fmt.pr "== deterministic explanation (Figure 15, first row) ==@.%s@."
    (Verbalizer.verbalize_proof Company_control.glossary Company_control.program e.proof)
