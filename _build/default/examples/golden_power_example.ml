(* Golden-power screening: flagging acquisitions of strategic companies
   that trigger government vetting powers — an application mixing
   stratified negation, arithmetic and a negative constraint, with a
   business report for every blocked deal.

   Run with: dune exec examples/golden_power_example.exe *)

open Ekg_core
open Ekg_apps

let () =
  let pipeline = Golden_power.pipeline () in

  Fmt.pr "== golden power program ==@.%s@.@."
    (Ekg_datalog.Program.to_string Golden_power.program);
  Fmt.pr "== reasoning paths ==@.%s@.@."
    (Reasoning_path.analysis_to_string pipeline.analysis);

  let result =
    match Pipeline.reason pipeline Golden_power.scenario_edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "== blocked deals ==@.";
  List.iter
    (fun f -> Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f))
    (Ekg_engine.Database.active result.db "blockedDeal");
  Fmt.pr "@.";

  List.iter
    (fun (f : Ekg_engine.Fact.t) ->
      match Pipeline.explain pipeline result f with
      | Ok e ->
        Fmt.pr "== why is %s blocked? (paths %s) ==@.%s@.@."
          (Ekg_engine.Fact.to_string f)
          (String.concat " + " e.paths_used)
          e.text
      | Error msg -> Fmt.epr "unexpected: %s@." msg)
    (Ekg_engine.Database.active result.db "blockedDeal");

  (* the negative constraint c1 at work: a vetting recorded for a deal
     that never triggered the power is a data-quality violation *)
  Fmt.pr "== consistency check on a corrupted instance ==@.";
  match Pipeline.reason pipeline Golden_power.inconsistent_edb with
  | Error e -> Fmt.pr "rejected as expected: %s@." e
  | Ok _ -> failwith "inconsistent instance was accepted"
