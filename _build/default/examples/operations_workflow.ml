(* The operational workflow of §4.4, end to end:

   1. deploy a KG application: structural analysis + template
      generation happen once;
   2. the Vadalog experts review the enhanced templates, hand-edit one,
      and store them (the once-for-all human-in-the-loop step, with the
      omission guard vetting every edit);
   3. analysts query explanations — full reports, or truncated to the
      last reasoning hops on long cascades;
   4. a report that must leave the organization is pseudonymized first.

   Run with: dune exec examples/operations_workflow.exe *)

open Ekg_kernel
open Ekg_core
open Ekg_apps

let () =
  (* 1. deployment *)
  let pipeline = Stress_test.simple_pipeline () in
  Fmt.pr "== deployment: termination vetting and analysis ==@.";
  Fmt.pr "%s@.@." (Termination.to_string (Termination.analyze pipeline.program));

  (* 2. expert review: a hand-edit that keeps every token is accepted… *)
  let stored = Template_store.save pipeline in
  let edited = Textutil.replace_all stored ~pattern:"Given that" ~by:"Considering that" in
  let pipeline =
    match Template_store.load pipeline edited with
    | Ok p ->
      Fmt.pr "== template store: expert edit accepted by the omission guard ==@.@.";
      p
    | Error es -> failwith (String.concat "; " es)
  in
  (* …while an edit that loses a token is rejected *)
  (match
     Template_store.load pipeline
       (Textutil.replace_all stored ~pattern:"<P1#0>" ~by:"its capital")
   with
  | Error es ->
    Fmt.pr "== template store: token-losing edit rejected ==@.  %s@.@."
      (String.concat "; " es)
  | Ok _ -> failwith "the omission guard must reject token loss");

  (* 3. analysts at work: a deep cascade, full and truncated *)
  let rng = Prng.create 2026 in
  let inst = Ekg_datagen.Debts.simple_cascade rng ~depth:6 in
  let result =
    match Pipeline.reason pipeline inst.edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  let goal =
    match Ekg_engine.Query.ask result.db inst.goal with
    | (f, _) :: _ -> f
    | [] -> failwith "cascade target not derived"
  in
  let full = Result.get_ok (Pipeline.explain pipeline result goal) in
  Fmt.pr "== full report (%d chase steps) ==@.%s@.@."
    (Ekg_engine.Proof.length full.proof)
    (Report.render (Report.of_explanation ~title:"Cascade default review" pipeline full));

  let brief = Result.get_ok (Pipeline.explain ~horizon:2 pipeline result goal) in
  Fmt.pr "== same query, horizon 2 (the analyst's short version) ==@.%s@.@." brief.text;

  (* 4. sharing outside: pseudonymize entities, keep the figures *)
  let anonymized, mapping =
    Ekg_llm.Anonymize.pseudonymize ~entities:inst.entities brief.text
  in
  Fmt.pr "== pseudonymized for external sharing ==@.%s@.@." anonymized;
  Fmt.pr "== re-identified internally ==@.%s@."
    (Ekg_llm.Anonymize.reidentify mapping anonymized)
