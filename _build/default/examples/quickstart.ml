(* Quickstart: the paper's running example end to end (Examples 4.3,
   4.7 and 4.8).

   We (1) write a small Vadalog stress-test program, (2) run the
   structural analysis to distill its reasoning paths, (3) turn them
   into explanation templates, (4) run the chase over a toy economy,
   and (5) answer the explanation query Q_e = {default("C")}.

   Run with: dune exec examples/quickstart.exe *)

open Ekg_core

let program_src = {|
% Example 4.3: one-channel stress test
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).

% The extensional knowledge of Figure 8
shock("A", 6000000).
hasCapital("A", 5000000).
hasCapital("B", 2000000).
hasCapital("C", 10000000).
debts("A", "B", 7000000).
debts("B", "C", 2000000).
debts("B", "C", 9000000).
|}

let glossary_src = {|
# Figure 7: the domain glossary from the internal data dictionary
hasCapital(f, p:euros) :: <f> is a financial institution with capital of <p>
shock(f, s:euros)      :: a shock amounting to <s> affects <f>
default(f)             :: <f> is in default
debts(d, c, v:euros)   :: <d> has an amount <v> of debts with <c>
risk(c, e:euros)       :: <c> is at risk of defaulting given its loan of <e> of exposures to a defaulted debtor
|}

let () =
  let { Ekg_datalog.Parser.program; facts } =
    match Ekg_datalog.Parser.parse program_src with
    | Ok p -> p
    | Error e -> failwith e
  in
  let glossary =
    match Glossary.parse_spec glossary_src with
    | Ok g -> g
    | Error e -> failwith e
  in

  Fmt.pr "== 1. the program ==@.%s@.@." (Ekg_datalog.Program.to_string program);

  let pipeline = Pipeline.build program glossary in
  Fmt.pr "== 2. structural analysis (Figures 4 and 5) ==@.%s@.@."
    (Reasoning_path.analysis_to_string pipeline.analysis);

  Fmt.pr "== 3. explanation templates (Figure 6) ==@.";
  List.iter
    (fun (name, tpl) -> Fmt.pr "%s:@.  %s@." name (Template.skeleton tpl))
    pipeline.deterministic;
  Fmt.pr "@.enhanced:@.";
  List.iter
    (fun (name, tpl) -> Fmt.pr "%s:@.  %s@." name (Template.skeleton tpl))
    pipeline.enhanced;
  Fmt.pr "@.";

  let result =
    match Pipeline.reason pipeline facts with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "== 4. reasoning (chase graph of Figure 8) ==@.";
  List.iter
    (fun f -> Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f))
    (Ekg_engine.Database.active result.db "default");
  Fmt.pr "@.";

  match Pipeline.explain_query pipeline result {|default("C")|} with
  | Error e -> failwith e
  | Ok [ e ] ->
    Fmt.pr "== 5. explanation query Q_e = {default(\"C\")} (Example 4.8) ==@.";
    Fmt.pr "proof: %s@." (String.concat ", " (Ekg_engine.Proof.rule_sequence e.proof));
    Fmt.pr "templates used: %s@.@." (String.concat " + " e.paths_used);
    Fmt.pr "%s@." e.text
  | Ok _ -> assert false
