(* Two-channel stress test (§5): propagation of a default shock over
   long-term and short-term exposures, with a business report for every
   cascade default — the Default(F) narrative of §5.

   Run with: dune exec examples/stress_test_example.exe *)

open Ekg_core
open Ekg_apps

let () =
  let pipeline = Stress_test.pipeline () in

  Fmt.pr "== reasoning paths of the stress test (Figure 10) ==@.%s@.@."
    (Reasoning_path.analysis_to_string pipeline.analysis);

  let result =
    match Pipeline.reason pipeline Stress_test.scenario_edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  Fmt.pr "== simulating a 14M euro shock on entity A ==@.";
  Fmt.pr "cascade defaults:@.";
  List.iter
    (fun f -> Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f))
    (Ekg_engine.Database.active result.db "default");
  Fmt.pr "@.";

  (* one business report per default, as the supervisory analysts
     consume them *)
  List.iter
    (fun (f : Ekg_engine.Fact.t) ->
      match Pipeline.explain pipeline result f with
      | Ok e ->
        Fmt.pr "== how did %s default? (%d chase steps, paths %s) ==@.%s@.@."
          (Ekg_engine.Fact.to_string f)
          (Ekg_engine.Proof.length e.proof)
          (String.concat " + " e.paths_used)
          e.text
      | Error _ -> () (* shocked entity without derivation is impossible here *))
    (Ekg_engine.Database.active result.db "default")
