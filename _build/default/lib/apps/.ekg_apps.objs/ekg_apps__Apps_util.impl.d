lib/apps/apps_util.ml: Ekg_datalog Parser
