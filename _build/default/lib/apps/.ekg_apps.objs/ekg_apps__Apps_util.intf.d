lib/apps/apps_util.mli: Atom Ekg_datalog Program
