lib/apps/close_link.ml: Apps_util Atom Ekg_core Ekg_datalog Glossary Pipeline Term
