lib/apps/close_link.mli: Atom Ekg_core Ekg_datalog Program
