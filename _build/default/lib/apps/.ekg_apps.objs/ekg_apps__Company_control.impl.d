lib/apps/company_control.ml: Apps_util Atom Ekg_core Ekg_datalog Glossary List Pipeline Term
