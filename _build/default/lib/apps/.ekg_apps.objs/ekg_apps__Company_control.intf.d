lib/apps/company_control.mli: Atom Ekg_core Ekg_datalog Program
