lib/apps/golden_power.ml: Apps_util Atom Company_control Ekg_core Ekg_datalog Glossary Pipeline Term
