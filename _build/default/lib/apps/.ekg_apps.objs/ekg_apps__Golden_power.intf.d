lib/apps/golden_power.mli: Atom Ekg_core Ekg_datalog Program
