lib/apps/stress_test.ml: Apps_util Atom Ekg_core Ekg_datalog Ekg_kernel Glossary Money Pipeline Term
