lib/apps/stress_test.mli: Atom Ekg_core Ekg_datalog Program
