open Ekg_datalog

let parse_program_exn src =
  match Parser.parse src with
  | Ok { program; _ } -> program
  | Error e -> failwith ("Apps_util.parse_program_exn: " ^ e)

let parse_facts_exn src =
  (* a fact block has no rules; piggy-back on the parser with a dummy
     goal directive satisfied by a throwaway rule *)
  match Parser.parse (src ^ "\n_dummy_: edb_marker(X) -> edb_marker_copy(X).") with
  | Ok { facts; _ } -> facts
  | Error e -> failwith ("Apps_util.parse_facts_exn: " ^ e)
