(** Shared helpers for the bundled KG applications. *)

open Ekg_datalog

val parse_program_exn : string -> Program.t
(** Parse an application source, raising [Failure] on errors — the
    bundled sources are static and covered by tests. *)

val parse_facts_exn : string -> Atom.t list
(** Parse a fact-only source block. *)
