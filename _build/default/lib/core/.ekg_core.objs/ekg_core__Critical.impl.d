lib/core/critical.ml: Depgraph Ekg_datalog Ekg_graph List Program Rule
