lib/core/critical.mli: Ekg_datalog Program
