lib/core/depgraph.ml: Ekg_datalog Ekg_graph Fun List Program Rule
