lib/core/depgraph.mli: Ekg_datalog Ekg_graph Program
