lib/core/enhancer.ml: Array Atom Bytes Char Ekg_datalog Ekg_kernel List Reasoning_path Rule Template Verbalizer
