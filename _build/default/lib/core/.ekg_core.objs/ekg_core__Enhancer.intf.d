lib/core/enhancer.mli: Glossary Template
