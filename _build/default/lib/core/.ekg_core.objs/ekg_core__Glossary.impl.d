lib/core/glossary.ml: Ekg_kernel List Money Printf Result String Textutil Value
