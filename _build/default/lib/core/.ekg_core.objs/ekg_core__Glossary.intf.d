lib/core/glossary.mli: Ekg_kernel Value
