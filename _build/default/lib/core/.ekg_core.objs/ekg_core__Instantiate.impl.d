lib/core/instantiate.ml: Bytes Char Ekg_engine Ekg_kernel List Proof Proof_mapper String Template Textutil Verbalizer
