lib/core/instantiate.mli: Proof_mapper Reasoning_path Template
