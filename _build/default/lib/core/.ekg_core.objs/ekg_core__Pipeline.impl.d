lib/core/pipeline.ml: Atom Chase Ekg_datalog Ekg_engine Ekg_kernel Enhancer Fact Glossary Instantiate List Parser Program Proof Proof_mapper Query Reasoning_path Template Verbalizer
