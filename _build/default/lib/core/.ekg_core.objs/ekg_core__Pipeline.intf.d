lib/core/pipeline.mli: Atom Chase Ekg_datalog Ekg_engine Fact Glossary Program Proof Proof_mapper Reasoning_path Template
