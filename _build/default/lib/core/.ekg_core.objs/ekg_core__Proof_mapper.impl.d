lib/core/proof_mapper.ml: Array Bool Ekg_datalog Ekg_engine Fact List Printf Program Proof Reasoning_path Rule String
