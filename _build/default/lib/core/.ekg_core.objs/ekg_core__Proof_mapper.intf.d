lib/core/proof_mapper.mli: Ekg_engine Proof Reasoning_path
