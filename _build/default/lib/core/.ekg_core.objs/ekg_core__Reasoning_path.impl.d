lib/core/reasoning_path.ml: Critical Depgraph Ekg_datalog Hashtbl Int List Printf Program Rule Set String
