lib/core/reasoning_path.mli: Ekg_datalog Program Rule
