lib/core/report.ml: Ekg_engine Ekg_kernel Pipeline Printf String Textutil
