lib/core/report.mli: Pipeline
