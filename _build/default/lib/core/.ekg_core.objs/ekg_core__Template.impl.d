lib/core/template.ml: Buffer Ekg_datalog Hashtbl List Printf Reasoning_path String Verbalizer
