lib/core/template.mli: Glossary Reasoning_path Verbalizer
