lib/core/template_store.ml: Buffer Ekg_kernel Enhancer List Pipeline Printf String Template Textutil
