lib/core/template_store.mli: Pipeline
