lib/core/termination.ml: Atom Depgraph Ekg_datalog Ekg_graph List Printf Program Rule Set String Term
