lib/core/termination.mli: Ekg_datalog Program Rule
