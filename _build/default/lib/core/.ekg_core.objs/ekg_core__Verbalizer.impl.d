lib/core/verbalizer.ml: Array Atom Buffer Ekg_datalog Ekg_engine Ekg_kernel Expr Glossary List Option Printf Program Rule String Subst Term Textutil
