lib/core/verbalizer.mli: Atom Ekg_datalog Ekg_engine Expr Glossary Program Rule
