open Ekg_datalog
module G = Ekg_graph.Digraph

(* The edge contributed by rule [r] into its head is recursive iff the
   head can reach some body predicate of [r] in D(Σ): closing that edge
   then yields a cycle. *)
let rule_edge_on_cycle g (r : Rule.t) =
  let head = Rule.head_pred r in
  let reachable = G.reachable_from g head in
  List.exists (fun p -> List.mem p reachable) (Rule.body_preds r)

let critical_nodes (p : Program.t) =
  let g = Depgraph.build p in
  let leaf = Depgraph.leaf p in
  let is_crit v =
    Program.is_intensional p v
    &&
    if v = leaf then true
    else begin
      let in_rules = Program.rules_deriving p v in
      let cyclic, acyclic = List.partition (rule_edge_on_cycle g) in_rules in
      match cyclic, acyclic with
      | _ :: _, _ :: _ -> true (* recursion entry point *)
      | [], _ -> List.length acyclic > 1 (* non-recursive diamond join *)
      | _ :: _, [] -> false (* all in-edges inside the recursive region *)
    end
  in
  List.filter is_crit (Program.preds p)

let is_critical p v = List.mem v (critical_nodes p)
