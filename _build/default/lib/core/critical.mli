(** Critical nodes of the dependency graph (Definition 4.1).

    A node V is critical when it is intensional and either it is the
    leaf or its in-degree witnesses a genuine branching of reasoning
    stories.  We refine "deg⁻(V) > 1" as it is applied in the paper's
    own examples (Figures 4, 9 and 10): a recursion entry point — a
    node with both a base-case in-edge lying outside every cycle and a
    recursive in-edge lying on a cycle — is critical, while a node
    whose multiple in-edges all belong to cycles through the same
    critical region (e.g. [Risk] in the two-channel stress test, fed by
    both σ5 and σ6) is not.  For non-recursive programs the plain
    in-degree criterion applies (a diamond's join node is critical). *)

open Ekg_datalog

val critical_nodes : Program.t -> string list
(** Sorted list of critical predicates, always containing the leaf. *)

val is_critical : Program.t -> string -> bool
