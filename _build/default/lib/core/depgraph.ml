open Ekg_datalog
module G = Ekg_graph.Digraph

let build (p : Program.t) =
  let g = G.create () in
  List.iter (fun pred -> G.add_node g pred) (Program.preds p);
  List.iter
    (fun (r : Rule.t) ->
      let dst = Rule.head_pred r in
      List.iter (fun src -> G.add_edge g ~src ~dst ~label:r.id) (Rule.body_preds r))
    p.rules;
  g

let roots = Program.edb_preds
let leaf (p : Program.t) = p.goal

let is_recursive p = G.is_cyclic (build p)

let to_dot p = G.to_dot ~name:"dependency_graph" ~label_to_string:Fun.id (build p)
