(** The dependency graph D(Σ) of a Vadalog program (§3): vertices are
    predicates; there is a rule-labelled edge from a' to a whenever a'
    appears in the body and a in the head of a rule. *)

open Ekg_datalog

val build : Program.t -> string Ekg_graph.Digraph.t
(** Edge labels are rule ids.  Negated body atoms contribute edges like
    positive ones (the dependency exists either way). *)

val roots : Program.t -> string list
(** Root nodes: extensional predicates — they do not depend on other
    nodes and appear in rules whose bodies contain no intensional
    predicate (§4.1). Sorted. *)

val leaf : Program.t -> string
(** The leaf: the goal predicate of the program. *)

val is_recursive : Program.t -> bool
(** The program is recursive iff D(Σ) is cyclic. *)

val to_dot : Program.t -> string
(** GraphViz rendering of D(Σ) — the shape of Figures 3 and 9. *)
