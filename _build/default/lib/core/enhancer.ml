open Ekg_datalog

type outcome = {
  template : Template.t;
  fell_back : bool;
  dropped_clauses : int;
}

let guard ~reference candidate =
  match Template.missing_tokens ~reference candidate with
  | [] -> Ok candidate
  | missing -> Error missing

(* Synonym tables: applied to literal chunks only, so tokens can never
   be damaged.  Two families give the "different but interchangeable"
   versions of §4.2. *)
let synonyms_a =
  [
    (" is higher than ", " exceeds ");
    (" is lower than ", " falls below ");
    ("amounting to ", "of ");
    (" is at risk of defaulting", " faces a risk of default");
  ]

let synonyms_b =
  [
    (" is higher than ", " is above ");
    (" is lower than ", " stays below ");
    (" is in default", " has defaulted");
  ]

let apply_synonyms table pieces =
  List.map
    (function
      | Template.Lit s ->
        Template.Lit
          (List.fold_left
             (fun acc (pattern, by) -> Ekg_kernel.Textutil.replace_all acc ~pattern ~by)
             s table)
      | Template.Slot _ as p -> p)
    pieces

let connectors =
  [|
    (fun body head -> (Template.Lit "Given that " :: body) @ (Template.Lit ", " :: head));
    (fun body head -> (Template.Lit "Because " :: body) @ (Template.Lit ", " :: head));
    (fun body head -> body @ (Template.Lit "; therefore, " :: head));
    (fun body head -> (Template.Lit "As " :: body) @ (Template.Lit ", " :: head));
  |]

(* Build an enhanced sentence for rule [i]: drop clauses that repeat
   the head of an earlier rule in the path (the chaining redundancy the
   paper's LLM-enhanced templates elide), then rephrase. *)
let enhanced_pieces ?(drop_chained = true) ~style g (path : Reasoning_path.t) =
  let pieces_of i chunks =
    List.map
      (function
        | Verbalizer.Lit s -> Template.Lit s
        | Verbalizer.Slot sl -> Template.Slot (i, sl))
      chunks
  in
  let sentences =
    List.mapi
      (fun i (r : Rule.t) ->
        let multi = Reasoning_path.is_multi path r.id in
        let parts = Verbalizer.rule_parts g ~multi r in
        let earlier_heads =
          List.filteri (fun j _ -> j < i) path.rules |> List.map Rule.head_pred
        in
        let chained (a : Atom.t option) =
          match a with
          | Some atom ->
            List.mem atom.Atom.pred earlier_heads || List.mem atom.Atom.pred path.terminals
          | None -> false
        in
        let kept, dropped =
          if drop_chained && i > 0 then
            List.partition (fun (src, _) -> not (chained src)) parts.body_clauses
          else (parts.body_clauses, [])
        in
        (* never drop everything: a sentence needs a body *)
        let kept, dropped = if kept = [] then (parts.body_clauses, []) else (kept, dropped) in
        let body = Verbalizer.join_chunks " and " (List.map snd kept) in
        let connect = connectors.((style + i) mod Array.length connectors) in
        let assembled =
          connect (pieces_of i body) (pieces_of i (parts.head @ parts.agg))
          @ [ Template.Lit "." ]
        in
        (assembled, List.length dropped))
      path.rules
  in
  let dropped_total = List.fold_left (fun acc (_, d) -> acc + d) 0 sentences in
  let pieces =
    List.concat
      (List.mapi (fun i (s, _) -> if i = 0 then s else Template.Lit " " :: s) sentences)
  in
  (pieces, dropped_total)

let capitalize_pieces pieces =
  (* capitalize the first literal character of each sentence *)
  let start_of_sentence = ref true in
  List.map
    (fun p ->
      match p with
      | Template.Slot _ ->
        start_of_sentence := false;
        p
      | Template.Lit s ->
        let b = Bytes.of_string s in
        for i = 0 to Bytes.length b - 1 do
          let c = Bytes.get b i in
          if !start_of_sentence && c <> ' ' then begin
            Bytes.set b i (Char.uppercase_ascii c);
            start_of_sentence := false
          end;
          if c = '.' then start_of_sentence := true
        done;
        Template.Lit (Bytes.to_string b))
    pieces

let enhance ?(style = 0) g (det : Template.t) =
  let build drop_chained =
    let pieces, dropped = enhanced_pieces ~drop_chained ~style g det.Template.path in
    let pieces = apply_synonyms (if style mod 2 = 0 then synonyms_a else synonyms_b) pieces in
    let pieces = capitalize_pieces pieces in
    ({ det with Template.pieces; enhanced = true }, dropped)
  in
  let candidate, dropped = build true in
  match guard ~reference:det candidate with
  | Ok t -> { template = t; fell_back = false; dropped_clauses = dropped }
  | Error _ -> (
    (* retry without clause dropping *)
    let candidate, _ = build false in
    match guard ~reference:det candidate with
    | Ok t -> { template = t; fell_back = false; dropped_clauses = 0 }
    | Error _ -> { template = det; fell_back = true; dropped_clauses = 0 })
