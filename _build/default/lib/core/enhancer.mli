(** Template enhancement (§4.2, "Enhancement of templates").

    The paper sends each deterministic explanation template to an LLM
    ("Rephrase the following text:") and double-checks that every token
    survives.  In this reproduction the rephrasing is performed by a
    deterministic rewriting engine (see DESIGN.md §3 on substitutions):
    it removes the clauses made redundant by rule chaining, varies the
    sentence connectors, and applies synonym rewrites — all without
    ever touching tokens — then runs the same token-presence guard.

    Several [style]s produce different but interchangeable enriched
    versions of the same template, as repeated LLM calls would. *)

type outcome = {
  template : Template.t;     (** the enhanced template (or the original) *)
  fell_back : bool;          (** true when the guard rejected the rewrite *)
  dropped_clauses : int;     (** chaining clauses removed as redundant *)
}

val enhance : ?style:int -> Glossary.t -> Template.t -> outcome
(** Enhance a deterministic template.  The token-presence guard
    guarantees the result verbalizes every (step, variable) token of
    the input; on guard failure, the input template is returned
    unchanged with [fell_back = true]. *)

val guard : reference:Template.t -> Template.t -> (Template.t, (int * string) list) result
(** The omission guard in isolation: [Error missing] lists the tokens
    the candidate lost.  Exposed so that faulty rewriters (simulated
    hallucinating LLMs) can be tested against it. *)
