open Ekg_kernel

type fmt =
  | Plain
  | Euros
  | Percent

type entry = {
  pred : string;
  args : (string * fmt) list;
  pattern : string;
}

type t = entry list

let entry ~pred ~args ~pattern = { pred; args; pattern }

let mentions pattern name =
  List.length (Textutil.split_on_string ~sep:("<" ^ name ^ ">") pattern) > 1

let make entries =
  let rec check = function
    | [] -> Ok entries
    | e :: rest ->
      if List.exists (fun e' -> e'.pred = e.pred) rest then
        Error ("duplicate glossary entry for predicate " ^ e.pred)
      else begin
        let missing =
          List.filter (fun (name, _) -> not (mentions e.pattern name)) e.args
        in
        match missing with
        | [] -> check rest
        | (name, _) :: _ ->
          Error
            (Printf.sprintf "glossary entry for %s: token <%s> missing from pattern" e.pred
               name)
      end
  in
  check entries

let make_exn entries =
  match make entries with
  | Ok g -> g
  | Error e -> invalid_arg ("Glossary.make_exn: " ^ e)

let find t pred = List.find_opt (fun e -> e.pred = pred) t
let preds t = List.map (fun e -> e.pred) t |> List.sort String.compare

let format_value fmt v =
  match fmt, v with
  | Plain, _ -> Value.to_display v
  | Euros, (Value.Int _ | Value.Num _) -> Money.euros (Value.as_float v)
  | Percent, (Value.Int _ | Value.Num _) -> Money.percent (Value.as_float v)
  | (Euros | Percent), _ -> Value.to_display v

let arg_fmt t ~pred i =
  match find t pred with
  | Some e -> (
    match List.nth_opt e.args i with
    | Some (_, f) -> f
    | None -> Plain)
  | None -> Plain

let fmt_of_string = function
  | "" | "plain" -> Ok Plain
  | "euros" | "euro" -> Ok Euros
  | "percent" | "share" -> Ok Percent
  | other -> Error ("unknown glossary format: " ^ other)

let parse_entry_line line =
  match Textutil.split_on_string ~sep:"::" line with
  | [ head; pattern ] -> (
    let head = String.trim head and pattern = String.trim pattern in
    match String.index_opt head '(' with
    | None -> Error ("missing '(' in glossary head: " ^ head)
    | Some i ->
      if head.[String.length head - 1] <> ')' then
        Error ("missing ')' in glossary head: " ^ head)
      else begin
        let pred = String.trim (String.sub head 0 i) in
        let args_str = String.sub head (i + 1) (String.length head - i - 2) in
        let parse_arg a =
          match String.split_on_char ':' (String.trim a) with
          | [ name ] -> Result.map (fun f -> (String.trim name, f)) (fmt_of_string "")
          | [ name; f ] -> Result.map (fun f -> (String.trim name, f)) (fmt_of_string (String.trim f))
          | _ -> Error ("malformed glossary argument: " ^ a)
        in
        let rec parse_args = function
          | [] -> Ok []
          | a :: rest -> (
            match parse_arg a with
            | Error e -> Error e
            | Ok arg -> Result.map (fun l -> arg :: l) (parse_args rest))
        in
        let raw_args =
          if String.trim args_str = "" then []
          else String.split_on_char ',' args_str
        in
        Result.map (fun args -> entry ~pred ~args ~pattern) (parse_args raw_args)
      end)
  | _ -> Error ("expected 'pred(args) :: pattern' in: " ^ line)

let parse_spec src =
  let lines =
    String.split_on_char '\n' src
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (Textutil.starts_with ~prefix:"#" l))
  in
  let rec go acc = function
    | [] -> make (List.rev acc)
    | line :: rest -> (
      match parse_entry_line line with
      | Ok e -> go (e :: acc) rest
      | Error e -> Error e)
  in
  go [] lines

let to_string t =
  t
  |> List.map (fun e ->
         let args = String.concat ", " (List.map (fun (n, _) -> "<" ^ n ^ ">") e.args) in
         Printf.sprintf "%-40s %s" (e.pred ^ "(" ^ args ^ ")") e.pattern)
  |> String.concat "\n"
