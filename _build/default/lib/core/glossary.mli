(** The domain glossary (§4.2, Figures 7 and 11): a data dictionary
    mapping each predicate of the schema to a natural-language pattern
    whose [<token>] markers correspond to the predicate's argument
    positions, plus a display format for each argument. *)

open Ekg_kernel

type fmt =
  | Plain    (** render the constant as-is *)
  | Euros    (** monetary amount: ["14 million euros"] *)
  | Percent  (** ownership share stored as a fraction: ["83%"] *)

type entry = {
  pred : string;
  args : (string * fmt) list;  (** argument token names, in order *)
  pattern : string;            (** e.g. ["<f> is a financial institution with capital <p>"] *)
}

type t

val entry : pred:string -> args:(string * fmt) list -> pattern:string -> entry

val make : entry list -> (t, string) result
(** Fails on duplicate predicates or on argument tokens missing from
    their pattern (each argument must be verbalizable). *)

val make_exn : entry list -> t

val find : t -> string -> entry option
val preds : t -> string list
(** Sorted. *)

val format_value : fmt -> Value.t -> string

val arg_fmt : t -> pred:string -> int -> fmt
(** Format of the i-th argument; [Plain] when unknown. *)

val to_string : t -> string
(** Two-column rendering of the glossary — the shape of Figure 7. *)

val parse_spec : string -> (t, string) result
(** Parse the textual glossary format used by data dictionaries on
    disk: one entry per line,

    {v
    # capital in euros
    hasCapital(f, p:euros) :: <f> is a company with capital of <p>
    own(x, y, s:percent)   :: <x> owns <s> of the shares of <y>
    v}

    Argument formats are [plain] (default), [euros], [percent];
    [#]-lines and blank lines are ignored. *)
