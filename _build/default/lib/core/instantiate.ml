open Ekg_kernel
open Ekg_engine

let dedup_keep_order xs =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

let resolve_slot blocks step_idx (sl : Verbalizer.slot) =
  match List.find_opt (fun (b : Proof_mapper.block) -> b.path_rule = step_idx) blocks with
  | None -> "<" ^ sl.Verbalizer.var ^ ">"
  | Some b ->
    let values =
      List.map (fun (s : Proof.step) -> Verbalizer.resolve_in_step s sl) b.steps
    in
    Textutil.join_and (dedup_keep_order values)

let render_assignment (template : Template.t) blocks =
  template.Template.pieces
  |> List.map (function
       | Template.Lit s -> s
       | Template.Slot (i, sl) -> resolve_slot blocks i sl)
  |> String.concat ""

let cleanup text =
  let text = Textutil.normalize_spaces text in
  (* capitalize sentence starts *)
  let b = Bytes.of_string text in
  let cap = ref true in
  Bytes.iteri
    (fun i c ->
      if !cap && c <> ' ' then begin
        Bytes.set b i (Char.uppercase_ascii c);
        cap := false
      end;
      if c = '.' || c = '!' || c = '?' then cap := true)
    b;
  Bytes.to_string b

let render_mapping ~template_for (m : Proof_mapper.mapping) =
  m.assignments
  |> List.map (fun (a : Proof_mapper.assignment) ->
         render_assignment (template_for a.path) a.blocks)
  |> String.concat " "
  |> cleanup
