(** Token-for-constant substitution (§4.3, Example 4.8): rendering the
    selected explanation templates against the chase steps that
    instantiate them.

    Tokens resolve through the step bindings; contributor-list tokens
    of multi-contributor aggregations render as textual conjunctions
    ("sum of loans of 2 million euros and 9 million euros"); when one
    path rule instantiates several parallel chase steps, the values
    are joined the same way. *)

val render_assignment : Template.t -> Proof_mapper.block list -> string
(** Instantiate one template on its matched blocks. *)

val render_mapping :
  template_for:(Reasoning_path.t -> Template.t) ->
  Proof_mapper.mapping ->
  string
(** The full explanation: each assignment rendered in τ order and
    joined into a report, with sentence-level cleanup (capitalization,
    whitespace normalization). *)

val cleanup : string -> string
(** The sentence-level cleanup pass alone. *)
