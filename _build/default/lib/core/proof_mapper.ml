open Ekg_datalog
open Ekg_engine

type block = {
  path_rule : int;
  steps : Proof.step list;
}

type assignment = {
  path : Reasoning_path.t;
  blocks : block list;
}

type mapping = {
  assignments : assignment list;
  fallbacks : int;
}

(* A step instantiates a path rule when the rule ids agree and the
   observed contributor multiplicity matches the path's variant flag. *)
let step_fits path (r : Rule.t) (s : Proof.step) =
  s.Proof.rule_id = r.id && Bool.equal s.Proof.multi (Reasoning_path.is_multi path r.id)

let match_path_at (path : Reasoning_path.t) steps k =
  let n = Array.length steps in
  let rules = Array.of_list path.rules in
  let nrules = Array.length rules in
  let rec go i pos acc =
    if i >= nrules then Some (List.rev acc, pos)
    else begin
      let r = rules.(i) in
      (* Blocks longer than one step are only meaningful when the next
         rule aggregates them into a dashed (multi) variant. *)
      let unbounded =
        i + 1 < nrules
        && Rule.has_agg rules.(i + 1)
        && Reasoning_path.is_multi path rules.(i + 1).id
      in
      let cap = if unbounded then n - pos else 1 in
      let rec run_len j len =
        if len >= cap || j >= n then len
        else if step_fits path r steps.(j) then run_len (j + 1) (len + 1)
        else len
      in
      let len = run_len pos 0 in
      if len = 0 then None
      else begin
        let block_steps = List.init len (fun d -> steps.(pos + d)) in
        go (i + 1) (pos + len) ({ path_rule = i; steps = block_steps } :: acc)
      end
    end
  in
  if k >= n then None else go 0 k []

let adhoc_path (s : Proof.step) (program : Program.t) =
  let rule =
    match Program.find_rule program s.rule_id with
    | Some r -> r
    | None ->
      (* a step always comes from a program rule; defensive fallback *)
      Rule.make ~id:s.rule_id ~body:[ Rule.Pos (Fact.atom s.fact) ] ~head:(Fact.atom s.fact)
        ()
  in
  {
    Reasoning_path.name = "adhoc:" ^ s.rule_id ^ (if s.multi then "*" else "");
    kind = Reasoning_path.Cycle;
    rules = [ rule ];
    multi_flags = (if Rule.has_agg rule then [ (rule.id, s.multi) ] else []);
    terminals = [];
  }

let best_match candidates steps pos =
  List.fold_left
    (fun best path ->
      match match_path_at path steps pos with
      | None -> best
      | Some (blocks, next) -> (
        match best with
        | Some (_, _, best_next) when best_next >= next -> best
        | _ -> Some (path, blocks, next)))
    None candidates

let map_proof (analysis : Reasoning_path.analysis) (proof : Proof.t) =
  let steps = Array.of_list proof.steps in
  let n = Array.length steps in
  let assignments = ref [] in
  let fallbacks = ref 0 in
  let pos = ref 0 in
  let first = ref true in
  while !pos < n do
    let candidates =
      if !first then analysis.simple_paths @ analysis.cycles else analysis.cycles
    in
    (match best_match candidates steps !pos with
    | Some (path, blocks, next) ->
      assignments := { path; blocks } :: !assignments;
      pos := next
    | None ->
      let s = steps.(!pos) in
      let path = adhoc_path s analysis.program in
      incr fallbacks;
      assignments := { path; blocks = [ { path_rule = 0; steps = [ s ] } ] } :: !assignments;
      incr pos);
    first := false
  done;
  { assignments = List.rev !assignments; fallbacks = !fallbacks }

let paths_used m = List.map (fun a -> a.path.Reasoning_path.name) m.assignments

let to_string m =
  m.assignments
  |> List.map (fun a ->
         Printf.sprintf "%s covering [%s]" a.path.Reasoning_path.name
           (String.concat "; "
              (List.map
                 (fun b ->
                   String.concat ", "
                     (List.map (fun (s : Proof.step) -> s.rule_id) b.steps))
                 a.blocks)))
  |> String.concat " + "
