(** Mapping chase steps to templates (§4.3, Example 4.7).

    Given the linearized chase-step sequence τ of a proof, the mapper
    (i) selects the simple reasoning path instantiating the highest
    number of the first chase steps, then (ii) repeatedly appends the
    reasoning cycle instantiating the highest number of the following
    steps, until the leaf is reached.  Aggregation-variant selection is
    driven by the contributor multiplicity observed in each step: a
    step with several contributors only matches a "dashed" path.

    When several consecutive steps fire the same rule because their
    conclusions feed one multi-contributor aggregation (parallel
    branches of the proof DAG), they form one {e block} and verbalize
    with textual conjunctions. *)

open Ekg_engine

type block = {
  path_rule : int;          (** index of the rule within the path *)
  steps : Proof.step list;  (** the chase steps this rule instantiates *)
}

type assignment = {
  path : Reasoning_path.t;
  blocks : block list;
}

type mapping = {
  assignments : assignment list;  (** in τ order *)
  fallbacks : int;                (** steps covered by ad-hoc single-rule paths *)
}

val match_path_at :
  Reasoning_path.t -> Proof.step array -> int -> (block list * int) option
(** [match_path_at path τ k] attempts to instantiate the full path on
    the steps starting at position [k]; on success returns the blocks
    and the next uncovered position. *)

val map_proof : Reasoning_path.analysis -> Proof.t -> mapping
(** Total: every chase step is covered, using ad-hoc single-rule paths
    when no enumerated path applies (counted in [fallbacks]). *)

val paths_used : mapping -> string list
(** Names of the reasoning paths, in order of use. *)

val to_string : mapping -> string
