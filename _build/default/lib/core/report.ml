open Ekg_kernel

type t = {
  title : string;
  subject : string;
  application_goal : string;
  steps : int;
  reasoning_paths : string list;
  body : string;
  appendix : string;
}

let of_explanation ?(title = "Reasoning report") (pipeline : Pipeline.t)
    (e : Pipeline.explanation) =
  {
    title;
    subject = Ekg_engine.Fact.to_string e.fact;
    application_goal = pipeline.program.goal;
    steps = Ekg_engine.Proof.length e.proof;
    reasoning_paths = e.paths_used;
    body = e.text;
    appendix = Ekg_engine.Proof.to_string e.proof;
  }

let render ?(width = 78) r =
  let rule = String.make (min width 78) '=' in
  String.concat "\n"
    [
      rule;
      r.title;
      rule;
      Printf.sprintf "Subject:          %s" r.subject;
      Printf.sprintf "Reasoning task:   %s" r.application_goal;
      Printf.sprintf "Inference length: %d chase steps" r.steps;
      Printf.sprintf "Reasoning paths:  %s" (String.concat " + " r.reasoning_paths);
      "";
      Textutil.wrap ~width r.body;
      "";
      "Appendix - formal derivation";
      String.make (min width 78) '-';
      r.appendix;
    ]

let render_markdown r =
  String.concat "\n"
    [
      "# " ^ r.title;
      "";
      Printf.sprintf "- **Subject:** `%s`" r.subject;
      Printf.sprintf "- **Reasoning task:** `%s`" r.application_goal;
      Printf.sprintf "- **Inference length:** %d chase steps" r.steps;
      Printf.sprintf "- **Reasoning paths:** %s" (String.concat " + " r.reasoning_paths);
      "";
      r.body;
      "";
      "## Appendix — formal derivation";
      "";
      "```";
      r.appendix;
      "```";
    ]
