(** Business reports (§1, §5): the packaged deliverable a supervisory
    analyst reads — the natural-language explanation, which reasoning
    stories produced it, and the formal derivation as an auditable
    appendix. *)

type t = {
  title : string;
  subject : string;            (** the explained fact, rendered *)
  application_goal : string;   (** the reasoning task's answer predicate *)
  steps : int;                 (** proof length in chase steps *)
  reasoning_paths : string list;
  body : string;               (** the template-based explanation *)
  appendix : string;           (** formal chase-step derivation *)
}

val of_explanation : ?title:string -> Pipeline.t -> Pipeline.explanation -> t
(** Default title: ["Reasoning report"]. *)

val render : ?width:int -> t -> string
(** Plain-text report, body wrapped at [width] (default 78). *)

val render_markdown : t -> string
(** Markdown rendering for front-ends. *)
