type piece =
  | Lit of string
  | Slot of int * Verbalizer.slot

type t = {
  path : Reasoning_path.t;
  pieces : piece list;
  enhanced : bool;
}

let of_path g (path : Reasoning_path.t) =
  let pieces =
    List.concat
      (List.mapi
         (fun i (r : Ekg_datalog.Rule.t) ->
           let multi = Reasoning_path.is_multi path r.id in
           let chunks = Verbalizer.verbalize_rule g ~multi r in
           let sep = if i = 0 then [] else [ Lit " " ] in
           sep
           @ List.map
               (function
                 | Verbalizer.Lit s -> Lit s
                 | Verbalizer.Slot sl -> Slot (i, sl))
               chunks)
         path.rules)
  in
  { path; pieces; enhanced = false }

let render piece_to_string t = String.concat "" (List.map piece_to_string t.pieces)

let skeleton t =
  render (function Lit s -> s | Slot (_, sl) -> "<" ^ sl.Verbalizer.var ^ ">") t

let marker_text t =
  render
    (function
      | Lit s -> s
      | Slot (i, sl) -> Printf.sprintf "<%s#%d>" sl.Verbalizer.var i)
    t

let tokens t =
  let rec dedup seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then dedup seen rest else x :: dedup (x :: seen) rest
  in
  dedup []
    (List.filter_map
       (function Lit _ -> None | Slot (i, sl) -> Some (i, sl.Verbalizer.var))
       t.pieces)

(* Slot metadata of [like], keyed by (step, var).  A token may occur
   with both list and non-list flavours; keep the first occurrence. *)
let slot_table like =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Lit _ -> ()
      | Slot (i, sl) ->
        let key = (i, sl.Verbalizer.var) in
        if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key sl)
    like.pieces;
  tbl

let of_marker_text ~like text =
  let tbl = slot_table like in
  let n = String.length text in
  let pieces = ref [] in
  let buf = Buffer.create 64 in
  let error = ref None in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := Lit (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n && !error = None do
    if text.[!i] = '<' then begin
      match String.index_from_opt text !i '>' with
      | Some j -> (
        let inner = String.sub text (!i + 1) (j - !i - 1) in
        match String.index_opt inner '#' with
        | Some k -> (
          let var = String.sub inner 0 k in
          let step = String.sub inner (k + 1) (String.length inner - k - 1) in
          match int_of_string_opt step with
          | Some step -> (
            match Hashtbl.find_opt tbl (step, var) with
            | Some sl ->
              flush ();
              pieces := Slot (step, sl) :: !pieces;
              i := j + 1
            | None -> error := Some (Printf.sprintf "unknown token <%s#%d>" var step))
          | None ->
            Buffer.add_char buf '<';
            incr i)
        | None ->
          Buffer.add_char buf '<';
          incr i)
      | None ->
        Buffer.add_char buf '<';
        incr i
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
    flush ();
    Ok { path = like.path; pieces = List.rev !pieces; enhanced = true }

let missing_tokens ~reference candidate =
  let present = tokens candidate in
  List.filter (fun tok -> not (List.mem tok present)) (tokens reference)
