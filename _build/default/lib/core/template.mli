(** Explanation templates (§4.2, Figure 6): the verbalization of a
    reasoning path, with tokens that map back to the rules' literals.

    A token is a (step, variable) pair — the variable of the path's
    step-th rule.  Templates render in three forms: the {e skeleton}
    (tokens as [<var>], the display form of Figure 6), the {e marker
    text} (tokens as [<var#step>], an unambiguous round-trippable form
    the enhancer rewrites), and the instantiated explanation (tokens
    substituted with chase constants, via {!Instantiate}). *)

type piece =
  | Lit of string
  | Slot of int * Verbalizer.slot  (** step index within the path, slot *)

type t = {
  path : Reasoning_path.t;
  pieces : piece list;
  enhanced : bool;  (** produced by the enhancer rather than the verbalizer *)
}

val of_path : Glossary.t -> Reasoning_path.t -> t
(** Deterministic template: each rule of the path verbalized in order.
    Aggregations are verbalized only in rules the path marks as
    multi-contributor ("dashed"), per §4.2. *)

val skeleton : t -> string
(** Tokens as [<var>]. *)

val marker_text : t -> string
(** Tokens as [<var#step>]. *)

val tokens : t -> (int * string) list
(** Distinct (step, variable) tokens, in order of first occurrence. *)

val of_marker_text : like:t -> string -> (t, string) result
(** Re-parse a transformed marker text, inheriting each token's slot
    metadata (format, contributor-list flag) from [like].  Fails on
    markers that do not occur in [like] — the enhancer cannot invent
    tokens. *)

val missing_tokens : reference:t -> t -> (int * string) list
(** Tokens of [reference] absent from the candidate — the omission
    guard of §4.4 (empty means complete). *)
