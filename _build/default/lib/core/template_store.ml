open Ekg_kernel

let save (p : Pipeline.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# enhanced explanation templates (goal: %s)\n" p.program.goal);
  Buffer.add_string buf "# tokens are <var#step>; every token must be preserved\n";
  List.iter
    (fun (name, tpl) ->
      Buffer.add_string buf (Printf.sprintf "@template %s\n" name);
      Buffer.add_string buf (Template.marker_text tpl);
      Buffer.add_char buf '\n')
    p.enhanced;
  Buffer.contents buf

let load (p : Pipeline.t) serialized =
  let lines = String.split_on_char '\n' serialized in
  (* group into (name, text) entries *)
  let entries = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (name, body) ->
      entries := (name, String.concat " " (List.rev body)) :: !entries;
      current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      let trimmed = String.trim line in
      if Textutil.starts_with ~prefix:"@template " trimmed then begin
        flush ();
        let name =
          String.trim
            (String.sub trimmed (String.length "@template ")
               (String.length trimmed - String.length "@template "))
        in
        current := Some (name, [])
      end
      else if trimmed = "" || Textutil.starts_with ~prefix:"#" trimmed then ()
      else begin
        match !current with
        | Some (name, body) -> current := Some (name, trimmed :: body)
        | None -> ()
      end)
    lines;
  flush ();
  let entries = List.rev !entries in
  let errors = ref [] in
  let enhanced =
    List.filter_map
      (fun (name, text) ->
        match List.assoc_opt name p.deterministic with
        | None ->
          errors := Printf.sprintf "unknown template name: %s" name :: !errors;
          None
        | Some det -> (
          match Template.of_marker_text ~like:det text with
          | Error e ->
            errors := Printf.sprintf "template %s: %s" name e :: !errors;
            None
          | Ok candidate -> (
            match Enhancer.guard ~reference:det candidate with
            | Ok t -> Some (name, t)
            | Error missing ->
              errors :=
                Printf.sprintf "template %s: omission guard rejected it (missing %s)"
                  name
                  (String.concat ", "
                     (List.map (fun (i, v) -> Printf.sprintf "<%s#%d>" v i) missing))
                :: !errors;
              None)))
      entries
  in
  match List.rev !errors with
  | [] ->
    (* paths without a stored template keep their generated one *)
    let merged =
      List.map
        (fun (name, tpl) ->
          match List.assoc_opt name enhanced with
          | Some stored -> (name, stored)
          | None -> (name, tpl))
        p.enhanced
    in
    Ok { p with enhanced = merged }
  | es -> Error es
