(** Persistence of enhanced templates, supporting the once-for-all
    human-in-the-loop step of §4.4: templates for a deployed KG
    application are pre-computed, reviewed (and possibly hand-edited)
    by the Vadalog experts, stored, and reloaded at query time.

    The on-disk format is line-oriented and human-editable:

    {v
    # templates for: stress test
    @template Π2
    Given that a shock of <S#0> hits <F#0> ..., <F#0> is in default. ...
    @template Γ1*
    ...
    v}

    Tokens use the unambiguous [<var#step>] marker syntax.  At load
    time every template is re-parsed against the pipeline's
    deterministic templates and passed through the omission guard, so a
    hand-edit that loses a token is rejected with a diagnostic — the
    "automatic preventive check" of §4.4. *)

val save : Pipeline.t -> string
(** Serialize the pipeline's enhanced templates. *)

val load : Pipeline.t -> string -> (Pipeline.t, string list) result
(** Replace the pipeline's enhanced templates with the stored (possibly
    hand-edited) ones.  Fails with one diagnostic per rejected template
    (unknown path name, unknown token, or guard violation); on success
    every stored template is token-complete. *)
