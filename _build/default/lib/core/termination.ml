open Ekg_datalog

type verdict =
  | Terminates of string
  | May_diverge of string list

module PosSet = Set.Make (struct
  type t = string * int

  let compare = compare
end)

(* positions of a variable within an atom *)
let var_positions (a : Atom.t) v =
  List.mapi (fun i t -> (i, t)) a.args
  |> List.filter_map (fun (i, t) -> if t = Term.Var v then Some (a.pred, i) else None)

let head_positions_of_var (r : Rule.t) v = var_positions r.head v

(* affected positions: existential head positions, closed under
   propagation through rules whose variable occurs only in affected
   body positions *)
let affected_set (p : Program.t) =
  let base =
    List.fold_left
      (fun acc (r : Rule.t) ->
        List.fold_left
          (fun acc v ->
            List.fold_left (fun acc pos -> PosSet.add pos acc) acc
              (head_positions_of_var r v))
          acc (Rule.existential_vars r))
      PosSet.empty p.rules
  in
  let step affected =
    List.fold_left
      (fun acc (r : Rule.t) ->
        let positives = Rule.positive_atoms r in
        List.fold_left
          (fun acc v ->
            let body_occurrences =
              List.concat_map (fun a -> var_positions a v) positives
            in
            if
              body_occurrences <> []
              && List.for_all (fun pos -> PosSet.mem pos affected) body_occurrences
            then
              List.fold_left (fun acc pos -> PosSet.add pos acc) acc
                (head_positions_of_var r v)
            else acc)
          acc (Rule.body_vars r))
      affected p.rules
  in
  let rec fix affected =
    let affected' = step affected in
    if PosSet.equal affected affected' then affected else fix affected'
  in
  fix base

let affected_positions p = PosSet.elements (affected_set p)

let dangerous_vars p (r : Rule.t) =
  let affected = affected_set p in
  let positives = Rule.positive_atoms r in
  let head_vars = Atom.vars r.head in
  List.filter
    (fun v ->
      let body_occurrences = List.concat_map (fun a -> var_positions a v) positives in
      body_occurrences <> []
      && List.for_all (fun pos -> PosSet.mem pos affected) body_occurrences
      && List.mem v head_vars)
    (Rule.body_vars r)

let is_warded (p : Program.t) =
  List.for_all
    (fun (r : Rule.t) ->
      match dangerous_vars p r with
      | [] -> true
      | dangerous ->
        (* one body atom must contain every dangerous variable *)
        List.exists
          (fun (a : Atom.t) ->
            let vars = Atom.vars a in
            List.for_all (fun v -> List.mem v vars) dangerous)
          (Rule.positive_atoms r))
    p.rules

(* a rule is recursive when its head predicate transitively feeds one
   of its own positive body predicates *)
let recursive_rules (p : Program.t) =
  let g = Depgraph.build p in
  List.filter
    (fun (r : Rule.t) ->
      let head = Rule.head_pred r in
      let reachable = Ekg_graph.Digraph.reachable_from g head in
      List.exists (fun q -> List.mem q reachable) (Rule.positive_body_preds r))
    p.rules

(* value invention: head variables produced by arithmetic assignments
   or aggregations rather than copied from the data *)
let invented_head_vars (r : Rule.t) =
  let head_vars = Atom.vars r.head in
  let from_assignments =
    List.filter_map
      (fun (v, _) -> if List.mem v head_vars then Some (v, `Arithmetic) else None)
      r.assignments
  in
  let from_agg =
    match r.agg with
    | Some a when List.mem a.result head_vars -> [ (a.result, `Aggregate) ]
    | Some _ | None -> []
  in
  from_assignments @ from_agg

let analyze (p : Program.t) =
  let has_existentials =
    List.exists (fun r -> Rule.existential_vars r <> []) p.rules
  in
  let recursive = recursive_rules p in
  if has_existentials && not (is_warded p) then
    May_diverge
      (List.filter_map
         (fun (r : Rule.t) ->
           if dangerous_vars p r <> [] then
             Some
               (Printf.sprintf
                  "rule %s: dangerous variables %s have no ward — the program is not \
                   warded"
                  r.id
                  (String.concat ", " (dangerous_vars p r)))
           else None)
         p.rules)
  else begin
    let unbounded =
      List.filter_map
        (fun (r : Rule.t) ->
          match List.filter (fun (_, kind) -> kind = `Arithmetic) (invented_head_vars r) with
          | [] -> None
          | (v, _) :: _ ->
            Some
              (Printf.sprintf
                 "rule %s: arithmetic value %s feeds the recursive predicate %s — \
                  unbounded unless its comparisons cap it"
                 r.id v (Rule.head_pred r)))
        recursive
    in
    match unbounded with
    | _ :: _ -> May_diverge unbounded
    | [] ->
      let aggregating_recursion =
        List.exists
          (fun (r : Rule.t) -> invented_head_vars r <> [])
          recursive
      in
      if has_existentials then
        Terminates "warded existentials with isomorphism preemption"
      else if recursive = [] then Terminates "non-recursive"
      else if aggregating_recursion then
        Terminates "monotonic aggregation over finite contributors"
      else Terminates "recursive Datalog without value invention"
  end

let to_string = function
  | Terminates why -> "terminates: " ^ why
  | May_diverge reasons ->
    "may diverge:\n" ^ String.concat "\n" (List.map (fun r -> "  - " ^ r) reasons)
