(** Static termination analysis.

    The paper restricts itself to "Vadalog programs involved in
    reasoning tasks whose termination is guaranteed" (§3), pointing to
    the warded Datalog± results for the existential fragment and to
    isomorphism preemption for recursion (§5).  This module implements
    the corresponding static checks so a deployed KG application can be
    vetted before the chase runs:

    - {e affected positions} and the {e wardedness} condition for
      programs with existential heads (Gottlob et al.);
    - detection of {e value invention through recursion} — arithmetic
      assignments or aggregates feeding new constants into a recursive
      predicate — distinguishing the benign monotonic-aggregation form
      (finite contributors ⇒ finitely many aggregate values) from
      unbounded arithmetic generation (e.g. [n(X), Y = X + 1 -> n(Y)]),
      which only a runtime guard can stop. *)

open Ekg_datalog

type verdict =
  | Terminates of string
      (** statically guaranteed; the string names the argument, e.g.
          ["non-recursive"], ["recursive Datalog without value
          invention"], ["monotonic aggregation over finite
          contributors"], ["warded existentials with isomorphism
          preemption"] *)
  | May_diverge of string list
      (** each entry names a rule and why it may invent unboundedly
          many values (the chase's [max_rounds] guard still applies) *)

val affected_positions : Program.t -> (string * int) list
(** Positions (predicate, index) that may carry labelled nulls:
    existential head positions, closed under propagation.  Sorted. *)

val dangerous_vars : Program.t -> Rule.t -> string list
(** Variables of the rule that occur only in affected body positions
    and propagate to its head. *)

val is_warded : Program.t -> bool
(** Every rule's dangerous variables appear together in one body atom
    (the ward).  Programs without existentials are trivially warded. *)

val analyze : Program.t -> verdict

val to_string : verdict -> string
