open Ekg_kernel
open Ekg_datalog

type slot = {
  var : string;
  fmt : Glossary.fmt;
  list_slot : bool;
}

type chunk =
  | Lit of string
  | Slot of slot

let chunks_to_skeleton chunks =
  chunks
  |> List.map (function Lit s -> s | Slot sl -> "<" ^ sl.var ^ ">")
  |> String.concat ""

let chunks_to_text ~resolve chunks =
  chunks |> List.map (function Lit s -> s | Slot sl -> resolve sl) |> String.concat ""

let lit s = Lit s

let join_chunks sep parts =
  let rec go = function
    | [] -> []
    | [ last ] -> last
    | part :: rest -> part @ [ lit sep ] @ go rest
  in
  go parts

(* Parse the [<token>] markers of a glossary pattern. *)
let parse_pattern pattern resolve_token =
  let n = String.length pattern in
  let chunks = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then begin
      chunks := lit (Buffer.contents buf) :: !chunks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    if pattern.[!i] = '<' then begin
      match String.index_from_opt pattern !i '>' with
      | Some j ->
        flush ();
        let name = String.sub pattern (!i + 1) (j - !i - 1) in
        chunks := resolve_token name :: !chunks;
        i := j + 1
      | None ->
        Buffer.add_char buf '<';
        incr i
    end
    else begin
      Buffer.add_char buf pattern.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !chunks

let fallback_entry (a : Atom.t) =
  let names = List.mapi (fun i _ -> (Printf.sprintf "a%d" (i + 1), Glossary.Plain)) a.args in
  let tokens = List.map (fun (n, _) -> "<" ^ n ^ ">") names in
  let pattern =
    if tokens = [] then a.pred ^ " holds"
    else "the relation " ^ a.pred ^ " holds for " ^ Textutil.join_and tokens
  in
  Glossary.entry ~pred:a.pred ~args:names ~pattern

let term_chunk fmt = function
  | Term.Var v -> Slot { var = v; fmt; list_slot = false }
  | Term.Cst c -> lit (Glossary.format_value fmt c)

let verbalize_atom g (a : Atom.t) =
  let entry =
    match Glossary.find g a.pred with
    | Some e when List.length e.args = List.length a.args -> e
    | Some _ | None -> fallback_entry a
  in
  let resolve_token name =
    let rec index i = function
      | [] -> None
      | (n, f) :: rest -> if n = name then Some (i, f) else index (i + 1) rest
    in
    match index 0 entry.args with
    | Some (i, f) -> term_chunk f (List.nth a.args i)
    | None -> lit ("<" ^ name ^ ">")
  in
  parse_pattern entry.pattern resolve_token

let rec verbalize_expr ?(const_fmt = Glossary.Plain) ~fmt_of e =
  let recur e = verbalize_expr ~const_fmt ~fmt_of e in
  match e with
  | Expr.Term (Term.Var v) -> [ Slot { var = v; fmt = fmt_of v; list_slot = false } ]
  | Expr.Term (Term.Cst c) -> [ lit (Glossary.format_value const_fmt c) ]
  | Expr.Neg e -> lit "the negation of " :: recur e
  | Expr.Add (a, b) -> (lit "the sum of " :: recur a) @ (lit " and " :: recur b)
  | Expr.Mul (a, b) -> (lit "the product of " :: recur a) @ (lit " and " :: recur b)
  | Expr.Sub (a, b) -> recur a @ (lit " minus " :: recur b)
  | Expr.Div (a, b) -> recur a @ (lit " divided by " :: recur b)

let cmp_words = function
  | Expr.Eq -> " is equal to "
  | Expr.Ne -> " is different from "
  | Expr.Lt -> " is lower than "
  | Expr.Le -> " is at most "
  | Expr.Gt -> " is higher than "
  | Expr.Ge -> " is at least "

let verbalize_cmp ~fmt_of (c : Expr.cmp) =
  (* constants compared against a formatted variable borrow its format,
     so [TS > 0.5] reads "exceeds 50%" when TS is a share *)
  let const_fmt =
    List.fold_left
      (fun acc v -> if acc = Glossary.Plain then fmt_of v else acc)
      Glossary.Plain (Expr.cmp_vars c)
  in
  verbalize_expr ~const_fmt ~fmt_of c.lhs
  @ (lit (cmp_words c.op) :: verbalize_expr ~const_fmt ~fmt_of c.rhs)

let agg_phrase = function
  | Rule.Sum -> "the sum of"
  | Rule.Prod -> "the product of"
  | Rule.Min -> "the minimum of"
  | Rule.Max -> "the maximum of"
  | Rule.Count -> "the number of"

let rule_fmt_map g (r : Rule.t) =
  let atoms = Rule.positive_atoms r @ [ r.head ] in
  fun var ->
    let rec scan = function
      | [] -> Glossary.Plain
      | (a : Atom.t) :: rest ->
        let rec pos i = function
          | [] -> None
          | Term.Var v :: _ when v = var -> Some i
          | _ :: args -> pos (i + 1) args
        in
        (match pos 0 a.args with
        | Some i -> Glossary.arg_fmt g ~pred:a.pred i
        | None -> scan rest)
    in
    scan atoms

(* Raise the [list_slot] flag on slots whose variable varies across the
   contributors of a multi-contributor aggregation. *)
let mark_list_slots varying chunks =
  List.map
    (function
      | Slot sl when List.mem sl.var varying -> Slot { sl with list_slot = true }
      | c -> c)
    chunks

type rule_parts = {
  body_clauses : (Atom.t option * chunk list) list;
  head : chunk list;
  agg : chunk list;
}

let rule_parts g ~multi (r : Rule.t) =
  let base_fmt = rule_fmt_map g r in
  (* aggregation results and assignment targets inherit the format of
     the variables they are computed from *)
  let derived_fmt v =
    let from_vars vars =
      List.fold_left
        (fun acc w -> if acc = Glossary.Plain then base_fmt w else acc)
        Glossary.Plain vars
    in
    match r.agg with
    | Some a when v = a.result -> from_vars (Expr.vars a.input)
    | _ -> (
      match List.assoc_opt v r.assignments with
      | Some e -> from_vars (Expr.vars e)
      | None -> Glossary.Plain)
  in
  let fmt_of v =
    match base_fmt v with
    | Glossary.Plain -> derived_fmt v
    | f -> f
  in
  let varying =
    match r.agg with
    | Some a when multi ->
      let stable = a.result :: Rule.group_vars r in
      List.filter (fun v -> not (List.mem v stable)) (Rule.body_vars r)
    | Some _ | None -> []
  in
  let body_clauses =
    List.map
      (function
        | Rule.Pos a -> (Some a, mark_list_slots varying (verbalize_atom g a))
        | Rule.Not a -> (None, lit "it is not the case that " :: verbalize_atom g a))
      r.body
    @ List.map
        (fun (v, e) ->
          ( None,
            Slot { var = v; fmt = fmt_of v; list_slot = false }
            :: lit " is " :: verbalize_expr ~fmt_of e ))
        r.assignments
    @ List.map (fun c -> (None, verbalize_cmp ~fmt_of c)) r.conditions
  in
  let head = mark_list_slots varying (verbalize_atom g r.head) in
  let agg =
    match r.agg with
    | Some a when multi ->
      [ lit ", with " ]
      @ [ Slot { var = a.result; fmt = fmt_of a.result; list_slot = false } ]
      @ [ lit (" given by " ^ agg_phrase a.func ^ " ") ]
      @ mark_list_slots (Expr.vars a.input) (verbalize_expr ~fmt_of a.input)
    | Some _ | None -> []
  in
  { body_clauses; head; agg }

let verbalize_rule g ~multi (r : Rule.t) =
  let parts = rule_parts g ~multi r in
  (lit "Since " :: join_chunks ", and " (List.map snd parts.body_clauses))
  @ (lit ", then " :: parts.head)
  @ parts.agg
  @ [ lit "." ]

let resolve_in_step (step : Ekg_engine.Proof.step) (sl : slot) =
  let render v = Glossary.format_value sl.fmt v in
  if sl.list_slot && step.multi then begin
    let values =
      List.filter_map
        (fun (c : Ekg_engine.Provenance.contributor) ->
          Option.map render (Subst.find c.binding sl.var))
        step.contributors
    in
    let rec dedup = function
      | [] -> []
      | x :: rest -> x :: dedup (List.filter (fun y -> y <> x) rest)
    in
    Textutil.join_and (dedup values)
  end
  else
    match Subst.find step.binding sl.var with
    | Some v -> render v
    | None -> (
      (* variables of aggregated bodies live in contributor bindings *)
      match
        List.find_map
          (fun (c : Ekg_engine.Provenance.contributor) -> Subst.find c.binding sl.var)
          step.contributors
      with
      | Some v -> render v
      | None -> "<" ^ sl.var ^ ">")

let verbalize_step g (program : Program.t) (step : Ekg_engine.Proof.step) =
  match Program.find_rule program step.rule_id with
  | Some r ->
    let chunks = verbalize_rule g ~multi:step.multi r in
    chunks_to_text ~resolve:(resolve_in_step step) chunks
  | None -> "The fact " ^ Ekg_engine.Fact.to_string step.fact ^ " was derived."

let verbalize_proof g program (proof : Ekg_engine.Proof.t) =
  proof.steps |> List.map (verbalize_step g program) |> String.concat " "

let constant_strings g (proof : Ekg_engine.Proof.t) =
  Ekg_engine.Proof.facts_used proof
  |> List.concat_map (fun (f : Ekg_engine.Fact.t) ->
         Array.to_list
           (Array.mapi
              (fun i v -> Glossary.format_value (Glossary.arg_fmt g ~pred:f.pred i) v)
              f.args))
  |> List.sort_uniq String.compare
