(** The verbalizer (§4.2): the deterministic translation of Vadalog
    syntax into natural language of the form "Since ⟨body⟩, then
    ⟨head⟩", driven by the domain glossary.

    The output is a list of {!chunk}s: literal text interleaved with
    variable slots.  Applied to a rule, the slots name the rule's
    variables (the template tokens of Figure 6); applied to a ground
    chase step, the slots are resolved and the result is plain prose —
    the deterministic instance explanation the paper feeds to the LLM
    baselines. *)

open Ekg_datalog

type slot = {
  var : string;          (** rule variable the token stands for *)
  fmt : Glossary.fmt;    (** display format, inherited from the glossary *)
  list_slot : bool;      (** renders as a conjunction over contributors *)
}

type chunk =
  | Lit of string
  | Slot of slot

val chunks_to_skeleton : chunk list -> string
(** Render with [<var>] markers — the template display form. *)

val chunks_to_text : resolve:(slot -> string) -> chunk list -> string
(** Render with slots resolved to constants. *)

val verbalize_atom : Glossary.t -> Atom.t -> chunk list
(** Glossary pattern with argument tokens replaced by the atom's
    terms: variables become slots, constants are formatted inline.
    Predicates missing from the glossary use a generic fallback. *)

val verbalize_cmp : fmt_of:(string -> Glossary.fmt) -> Expr.cmp -> chunk list
(** E.g. [s > p1] becomes ["<s> is higher than <p1>"]. *)

val verbalize_expr :
  ?const_fmt:Glossary.fmt -> fmt_of:(string -> Glossary.fmt) -> Expr.t -> chunk list
(** Arithmetic in words: [w1 * w2] becomes
    ["the product of <w1> and <w2>"].  Constants render with
    [const_fmt] (default [Plain]). *)

val agg_phrase : Rule.agg_func -> string
(** ["the sum of"], ["the product of"], … *)

val rule_fmt_map : Glossary.t -> Rule.t -> string -> Glossary.fmt
(** Display format of a rule variable, looked up through the glossary
    entries of the atoms where the variable occurs. *)

val join_chunks : string -> chunk list list -> chunk list
(** Interleave the given literal separator. *)

type rule_parts = {
  body_clauses : (Atom.t option * chunk list) list;
      (** one clause per body literal / assignment / condition, with
          the source atom when the clause verbalizes a positive atom *)
  head : chunk list;
  agg : chunk list;  (** aggregation phrase; empty unless multi *)
}

val rule_parts : Glossary.t -> multi:bool -> Rule.t -> rule_parts
(** Clause-level decomposition of a rule's verbalization, used by the
    template enhancer to restructure sentences without touching
    tokens. *)

val verbalize_rule : Glossary.t -> multi:bool -> Rule.t -> chunk list
(** One sentence: "Since ⟨atoms and conditions⟩, then ⟨head⟩." —
    with the aggregation verbalized ("with <e> given by the sum of
    <v>") only in the [multi] (dashed) variant, per §4.2. *)

val resolve_in_step : Ekg_engine.Proof.step -> slot -> string
(** Resolve a slot against a chase step's bindings; contributor-list
    slots of multi-contributor steps render as a conjunction
    ("2 million euros and 9 million euros"). *)

val verbalize_step : Glossary.t -> Program.t -> Ekg_engine.Proof.step -> string
(** Ground verbalization of one chase step. Contributor lists are
    spelled out in full ("2 million euros and 9 million euros"). *)

val verbalize_proof : Glossary.t -> Program.t -> Ekg_engine.Proof.t -> string
(** The deterministic explanation of a proof: every chase step
    verbalized one by one (the baseline of §6.2/§6.3). *)

val constant_strings : Glossary.t -> Ekg_engine.Proof.t -> string list
(** The display forms of every constant used by the proof, rendered
    with the same glossary formats the explanations use ("50%",
    "7 million euros") — the reference set for the completeness
    measurements of §6.3.  Deduplicated. *)
