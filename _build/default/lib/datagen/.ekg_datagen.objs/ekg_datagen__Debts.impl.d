lib/datagen/debts.ml: Array Atom Ekg_apps Ekg_datalog Ekg_kernel List Money Printf Prng Stress_test Term
