lib/datagen/debts.mli: Atom Ekg_datalog Ekg_kernel Prng
