lib/datagen/owners.ml: Array Atom Ekg_apps Ekg_datalog Ekg_kernel Float List Printf Prng String Term
