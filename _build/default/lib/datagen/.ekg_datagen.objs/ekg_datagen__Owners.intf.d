lib/datagen/owners.mli: Atom Ekg_datalog Ekg_kernel Prng
