lib/datagen/participations.ml: Array Atom Ekg_apps Ekg_datalog Ekg_kernel Float List Printf Prng Term
