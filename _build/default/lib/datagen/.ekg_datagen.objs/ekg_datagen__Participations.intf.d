lib/datagen/participations.mli: Atom Ekg_datalog Ekg_kernel Prng
