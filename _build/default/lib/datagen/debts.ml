open Ekg_kernel
open Ekg_datalog
open Ekg_apps

type instance = {
  edb : Atom.t list;
  goal : Atom.t;
  entities : string list;
}

let m = Money.of_millions

let fresh_names rng n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else begin
      let name = Printf.sprintf "FI_%05d" (Prng.int rng 100_000) in
      if List.mem name acc then go acc k else go (name :: acc) (k - 1)
    end
  in
  go [] n

let capital rng = m (2. +. Prng.float rng 8.)

let default_goal name = Atom.make "default" [ Term.str name ]

(* Cascade over the single [debts] channel: entity i's exposure to the
   defaulted entity i−1 always exceeds its capital. *)
let simple_cascade rng ~depth =
  if depth < 0 then invalid_arg "Debts.simple_cascade: negative depth";
  let names = fresh_names rng (depth + 1) in
  let arr = Array.of_list names in
  let capitals = Array.init (depth + 1) (fun _ -> capital rng) in
  let edb = ref [] in
  Array.iteri (fun i name -> edb := Stress_test.has_capital name capitals.(i) :: !edb) arr;
  edb := Stress_test.shock arr.(0) (capitals.(0) +. m (1. +. Prng.float rng 5.)) :: !edb;
  for i = 1 to depth do
    let exposure = capitals.(i) +. m (0.5 +. Prng.float rng 4.) in
    edb := Stress_test.debts arr.(i - 1) arr.(i) exposure :: !edb
  done;
  { edb = List.rev !edb; goal = default_goal arr.(depth); entities = names }

let dual_cascade rng ~depth =
  if depth < 0 then invalid_arg "Debts.dual_cascade: negative depth";
  let names = fresh_names rng (depth + 1) in
  let arr = Array.of_list names in
  let capitals = Array.init (depth + 1) (fun _ -> capital rng) in
  let edb = ref [] in
  Array.iteri (fun i name -> edb := Stress_test.has_capital name capitals.(i) :: !edb) arr;
  edb := Stress_test.shock arr.(0) (capitals.(0) +. m (1. +. Prng.float rng 5.)) :: !edb;
  for i = 1 to depth do
    (* split an above-capital total across the two channels *)
    let total = capitals.(i) +. m (1. +. Prng.float rng 4.) in
    let long_part = total *. (0.3 +. Prng.float rng 0.4) in
    edb := Stress_test.long_term_debts arr.(i - 1) arr.(i) long_part :: !edb;
    edb := Stress_test.short_term_debts arr.(i - 1) arr.(i) (total -. long_part) :: !edb
  done;
  { edb = List.rev !edb; goal = default_goal arr.(depth); entities = names }

let single_channel_cascade rng ~depth ~long =
  if depth < 0 then invalid_arg "Debts.single_channel_cascade: negative depth";
  let names = fresh_names rng (depth + 1) in
  let arr = Array.of_list names in
  let capitals = Array.init (depth + 1) (fun _ -> capital rng) in
  let edb = ref [] in
  Array.iteri (fun i name -> edb := Stress_test.has_capital name capitals.(i) :: !edb) arr;
  edb := Stress_test.shock arr.(0) (capitals.(0) +. m (1. +. Prng.float rng 5.)) :: !edb;
  let debt = if long then Stress_test.long_term_debts else Stress_test.short_term_debts in
  for i = 1 to depth do
    let exposure = capitals.(i) +. m (0.5 +. Prng.float rng 4.) in
    edb := debt arr.(i - 1) arr.(i) exposure :: !edb
  done;
  { edb = List.rev !edb; goal = default_goal arr.(depth); entities = names }

let multi_debt_cascade rng ~depth ~debts_per_hop =
  if depth < 1 then invalid_arg "Debts.multi_debt_cascade: depth must be >= 1";
  if debts_per_hop < 2 then
    invalid_arg "Debts.multi_debt_cascade: debts_per_hop must be >= 2";
  let names = fresh_names rng (depth + 1) in
  let arr = Array.of_list names in
  let capitals = Array.init (depth + 1) (fun _ -> capital rng) in
  let edb = ref [] in
  Array.iteri (fun i name -> edb := Stress_test.has_capital name capitals.(i) :: !edb) arr;
  edb := Stress_test.shock arr.(0) (capitals.(0) +. m (1. +. Prng.float rng 5.)) :: !edb;
  for i = 1 to depth do
    let total = capitals.(i) +. m (1. +. Prng.float rng 4.) in
    (* distinct loan amounts so set semantics keeps them all *)
    let shares = List.init debts_per_hop (fun k -> float_of_int (k + 1)) in
    let norm = List.fold_left ( +. ) 0. shares in
    List.iter
      (fun s -> edb := Stress_test.debts arr.(i - 1) arr.(i) (total *. s /. norm) :: !edb)
      shares
  done;
  { edb = List.rev !edb; goal = default_goal arr.(depth); entities = names }
