(** Synthetic exposure networks for the stress test applications, with
    proof-length-targeted default cascades (x-axes of Figures 17b
    and 18b). *)

open Ekg_kernel
open Ekg_datalog

type instance = {
  edb : Atom.t list;
  goal : Atom.t;
  entities : string list;
}

val simple_cascade : Prng.t -> depth:int -> instance
(** For the one-channel program of Example 4.3: a shock defaults the
    first entity and the default cascades through [depth] creditors.
    Proof length = 1 + 2·depth (α then β,γ per hop); [depth ≥ 0]. *)

val dual_cascade : Prng.t -> depth:int -> instance
(** For the two-channel program σ4–σ7: every hop propagates through
    both a long-term and a short-term exposure, so each hop costs three
    chase steps (σ5, σ6, σ7).  Proof length = 1 + 3·depth. *)

val single_channel_cascade : Prng.t -> depth:int -> long:bool -> instance
(** Two-channel program, one active channel: proof length =
    1 + 2·depth. *)

val multi_debt_cascade : Prng.t -> depth:int -> debts_per_hop:int -> instance
(** One-channel cascade whose hops aggregate [debts_per_hop ≥ 2]
    distinct loans — exercising the dashed (multi-contributor)
    reasoning paths.  Proof length = 1 + 2·depth. *)
