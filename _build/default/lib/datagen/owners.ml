open Ekg_kernel
open Ekg_datalog

type instance = {
  edb : Atom.t list;
  goal : Atom.t;
  entities : string list;
}

let syllables = [| "ban"; "cor"; "fin"; "hold"; "inv"; "cap"; "tru"; "cred"; "mer"; "lux" |]

let fresh_name rng =
  let s1 = Prng.pick_array rng syllables in
  let s2 = Prng.pick_array rng syllables in
  Printf.sprintf "%s%s_%04d" (String.capitalize_ascii s1) s2 (Prng.int rng 10_000)

let fresh_names rng n =
  let rec go acc k =
    if k = 0 then acc
    else begin
      let name = fresh_name rng in
      if List.mem name acc then go acc k else go (name :: acc) (k - 1)
    end
  in
  go [] n

let majority_share rng = 0.51 +. Prng.float rng 0.44

let chain rng ~hops =
  if hops < 1 then invalid_arg "Owners.chain: hops must be >= 1";
  let names = fresh_names rng (hops + 1) in
  let arr = Array.of_list names in
  let owns = ref [] in
  for i = 0 to hops - 1 do
    owns := Ekg_apps.Company_control.own arr.(i) arr.(i + 1) (majority_share rng) :: !owns
  done;
  let companies = List.map Ekg_apps.Company_control.company names in
  {
    edb = companies @ List.rev !owns;
    goal = Atom.make "control" [ Term.str arr.(0); Term.str arr.(hops) ];
    entities = names;
  }

let aggregated rng ~hops ~fanout =
  if hops < 2 then invalid_arg "Owners.aggregated: hops must be >= 2";
  if fanout < 2 then invalid_arg "Owners.aggregated: fanout must be >= 2";
  (* head controls a chain of [hops - 1] edges ending at the pivot;
     the pivot and [fanout - 1] directly-controlled intermediaries each
     hold a minority of the target, jointly above 50%. *)
  let base = chain rng ~hops:(hops - 1) in
  let pivot = List.nth base.entities 0 in
  ignore pivot;
  let chain_end = List.nth base.entities (List.length base.entities - 1) in
  let head = List.hd base.entities in
  let extras = fresh_names rng (fanout - 1) in
  let target = fresh_name rng in
  (* distinct minority shares summing just above 50% *)
  let weights = List.init fanout (fun k -> 1. +. (0.35 *. float_of_int k)) in
  let norm = List.fold_left ( +. ) 0. weights in
  let shares = List.map (fun w -> 0.55 *. w /. norm) weights in
  let joint_edges =
    List.map2
      (fun holder share -> Ekg_apps.Company_control.own holder target share)
      (chain_end :: extras) shares
  in
  let extra_ownership =
    List.map (fun e -> Ekg_apps.Company_control.own head e (majority_share rng)) extras
  in
  let companies = List.map Ekg_apps.Company_control.company (target :: extras) in
  {
    edb = base.edb @ companies @ extra_ownership @ joint_edges;
    goal = Atom.make "control" [ Term.str head; Term.str target ];
    entities = base.entities @ extras @ [ target ];
  }

let random_network rng ~entities ~density =
  if entities < 2 then invalid_arg "Owners.random_network: need at least 2 entities";
  let names = fresh_names rng entities in
  let arr = Array.of_list names in
  let owns = ref [] in
  (* give every entity at most 100% of distributed shares *)
  Array.iteri
    (fun yi y ->
      let remaining = ref 1.0 in
      Array.iteri
        (fun xi x ->
          if xi <> yi && !remaining > 0.05 && Prng.bernoulli rng density then begin
            let s = Float.min !remaining (0.05 +. Prng.float rng 0.6) in
            remaining := !remaining -. s;
            owns := Ekg_apps.Company_control.own x y s :: !owns
          end)
        arr)
    arr;
  List.map Ekg_apps.Company_control.company names @ List.rev !owns
