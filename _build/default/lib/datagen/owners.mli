(** Synthetic ownership networks for the company control application
    (§6: "we applied the … KG applications over artificially generated
    data, as individual shares … are confidential").

    Generators are proof-length-targeted: [chain ~hops] yields an EDB
    whose goal fact has a proof of exactly [hops] chase steps (one σ1
    activation plus hops−1 σ3 activations), the x-axis of Figures 17a
    and 18a. *)

open Ekg_kernel
open Ekg_datalog

type instance = {
  edb : Atom.t list;
  goal : Atom.t;        (** the derived fact to explain *)
  entities : string list;
}

val chain : Prng.t -> hops:int -> instance
(** A control chain of [hops] majority-ownership edges; proof length =
    [hops].  Share sizes and entity names vary with the generator
    state.  Requires [hops ≥ 1]. *)

val aggregated : Prng.t -> hops:int -> fanout:int -> instance
(** Like {!chain} but the last hop is controlled jointly through
    [fanout ≥ 2] intermediaries, each majority-owned by the head of the
    chain: the proof exercises a multi-contributor σ3 aggregation.
    Proof length = [hops − 1] direct steps for each intermediary's
    control plus the joint step. *)

val random_network : Prng.t -> entities:int -> density:float -> Atom.t list
(** A random ownership graph (shares normalized so no entity is
    over-owned); for robustness tests rather than targeted proofs. *)
