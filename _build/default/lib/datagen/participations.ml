open Ekg_kernel
open Ekg_datalog

type instance = {
  edb : Atom.t list;
  goal : Atom.t;
  entities : string list;
}

let fresh_names rng n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else begin
      let name = Printf.sprintf "Part_%05d" (Prng.int rng 100_000) in
      if List.mem name acc then go acc k else go (name :: acc) (k - 1)
    end
  in
  go [] n

(* shares high enough that the running product stays above 20% *)
let chain rng ~hops =
  if hops < 1 then invalid_arg "Participations.chain: hops must be >= 1";
  (* product of h shares ≥ 0.2 requires shares ≥ 0.2^(1/h); keep a
     margin so rounding never dips below the threshold *)
  let min_share = Float.exp (Float.log 0.2 /. float_of_int hops) +. 0.02 in
  if min_share >= 0.99 then
    invalid_arg "Participations.chain: hops too deep for the 20% threshold";
  let names = fresh_names rng (hops + 1) in
  let arr = Array.of_list names in
  let edb = ref [] in
  for i = 0 to hops - 1 do
    let share = min_share +. Prng.float rng (0.99 -. min_share) in
    edb := Ekg_apps.Close_link.own arr.(i) arr.(i + 1) share :: !edb
  done;
  {
    edb = List.rev !edb;
    goal = Atom.make "closeLink" [ Term.str arr.(0); Term.str arr.(hops) ];
    entities = names;
  }

let with_noise rng ~hops ~noise_edges =
  let base = chain rng ~hops in
  let extras = fresh_names rng (noise_edges + 1) in
  let arr = Array.of_list extras in
  let noise = ref [] in
  for i = 0 to noise_edges - 1 do
    (* sub-threshold stakes between fresh entities *)
    let share = 0.02 +. Prng.float rng 0.15 in
    noise :=
      Ekg_apps.Close_link.own arr.(i) arr.((i + 1) mod Array.length arr) share :: !noise
  done;
  { base with edb = base.edb @ List.rev !noise; entities = base.entities @ extras }
