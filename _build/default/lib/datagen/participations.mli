(** Synthetic participation networks for the close-links application —
    used by the harness's extension experiments (the paper's §7 future
    work: validating the approach beyond its original applications). *)

open Ekg_kernel
open Ekg_datalog

type instance = {
  edb : Atom.t list;
  goal : Atom.t;
  entities : string list;
}

val chain : Prng.t -> hops:int -> instance
(** A participation chain whose integrated product stays above the 20%
    close-link threshold across [hops] edges (shares are drawn high
    enough, up to 99%, that the product cannot dip below it); proof
    length = [hops + 1] chase steps (cl1, then hops−1 activations of
    cl2, then cl3).  Requires [hops ≥ 1]; beyond ~50 hops the needed
    shares exceed the 99% cap and the call raises
    [Invalid_argument]. *)

val with_noise : Prng.t -> hops:int -> noise_edges:int -> instance
(** Like {!chain}, plus unrelated sub-threshold participations that the
    reasoning must ignore. *)
