lib/datalog/atom.ml: Format List String Term
