lib/datalog/atom.mli: Format Term
