lib/datalog/expr.ml: Ekg_kernel Format List Option Term Value
