lib/datalog/expr.mli: Ekg_kernel Format Term Value
