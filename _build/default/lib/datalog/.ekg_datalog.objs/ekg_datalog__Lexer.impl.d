lib/datalog/lexer.ml: Buffer List Printf String
