lib/datalog/lexer.mli:
