lib/datalog/parser.ml: Atom Ekg_kernel Expr Lexer List Printf Program Rule String Term Value
