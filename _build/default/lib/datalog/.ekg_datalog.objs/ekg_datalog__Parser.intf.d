lib/datalog/parser.mli: Atom Program Rule
