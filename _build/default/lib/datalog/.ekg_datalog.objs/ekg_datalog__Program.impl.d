lib/datalog/program.ml: Atom Format Hashtbl List Printf Rule Set String
