lib/datalog/program.mli: Format Rule
