lib/datalog/rule.ml: Atom Expr Format List Printf Result String
