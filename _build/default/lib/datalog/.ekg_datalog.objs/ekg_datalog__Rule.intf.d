lib/datalog/rule.mli: Atom Expr Format
