lib/datalog/subst.ml: Array Atom Ekg_kernel Format List Map String Term Value
