lib/datalog/subst.mli: Atom Ekg_kernel Format Term Value
