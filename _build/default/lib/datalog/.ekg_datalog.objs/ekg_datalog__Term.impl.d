lib/datalog/term.ml: Ekg_kernel Format List String Value
