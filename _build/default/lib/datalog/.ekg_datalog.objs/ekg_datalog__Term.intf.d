lib/datalog/term.mli: Ekg_kernel Format Value
