type t = {
  pred : string;
  args : Term.t list;
}

let make pred args = { pred; args }
let arity a = List.length a.args
let vars a = Term.vars a.args
let is_ground a = not (List.exists Term.is_var a.args)

let compare a b =
  match String.compare a.pred b.pred with
  | 0 -> List.compare Term.compare a.args b.args
  | c -> c

let equal a b = compare a b = 0

let to_string a =
  if a.args = [] then a.pred
  else a.pred ^ "(" ^ String.concat ", " (List.map Term.to_string a.args) ^ ")"

let pp fmt a = Format.pp_print_string fmt (to_string a)
