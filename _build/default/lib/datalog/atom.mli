(** Atoms [R(t₁,…,tₙ)] over a relational schema (§3). *)

type t = {
  pred : string;        (** relation symbol *)
  args : Term.t list;   (** terms, length = arity *)
}

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> string list
(** Distinct variables in first-occurrence order. *)

val is_ground : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
