open Ekg_kernel

type t =
  | Term of Term.t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type cmp = {
  op : cmp_op;
  lhs : t;
  rhs : t;
}

let term t = Term t
let var v = Term (Term.Var v)
let cst c = Term (Term.Cst c)

let rec collect_vars acc = function
  | Term (Term.Var v) -> v :: acc
  | Term (Term.Cst _) -> acc
  | Neg e -> collect_vars acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> collect_vars (collect_vars acc a) b

let dedup_keep_order xs =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

let vars e = dedup_keep_order (List.rev (collect_vars [] e))
let cmp_vars c = dedup_keep_order (vars c.lhs @ vars c.rhs)

let rec eval lookup = function
  | Term (Term.Var v) -> lookup v
  | Term (Term.Cst c) -> Some c
  | Neg e -> Option.map Value.neg (eval lookup e)
  | Add (a, b) -> binop lookup Value.add a b
  | Sub (a, b) -> binop lookup Value.sub a b
  | Mul (a, b) -> binop lookup Value.mul a b
  | Div (a, b) -> binop lookup Value.div a b

and binop lookup f a b =
  match eval lookup a, eval lookup b with
  | Some x, Some y -> (try Some (f x y) with Invalid_argument _ -> None)
  | _, _ -> None

let eval_cmp lookup { op; lhs; rhs } =
  match eval lookup lhs, eval lookup rhs with
  | Some x, Some y ->
    let c = Value.compare x y in
    Some
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)
  | _, _ -> None

let cmp_op_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_op_of_string = function
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

(* Parenthesize sub-expressions of lower precedence. *)
let rec to_string = function
  | Term t -> Term.to_string t
  | Neg e -> "-" ^ atomically e
  | Add (a, b) -> to_string a ^ " + " ^ to_string b
  | Sub (a, b) -> to_string a ^ " - " ^ atomically b
  | Mul (a, b) -> atomically a ^ " * " ^ atomically b
  | Div (a, b) -> atomically a ^ " / " ^ atomically b

and atomically e =
  match e with
  | Term _ -> to_string e
  | Neg _ | Add _ | Sub _ | Mul _ | Div _ -> "(" ^ to_string e ^ ")"

let cmp_to_string c = to_string c.lhs ^ " " ^ cmp_op_to_string c.op ^ " " ^ to_string c.rhs

let pp fmt e = Format.pp_print_string fmt (to_string e)
