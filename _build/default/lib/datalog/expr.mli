(** Arithmetic expressions and comparison operators appearing in rule
    bodies (§3, Vadalog Extensions). *)

open Ekg_kernel

type t =
  | Term of Term.t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type cmp = {
  op : cmp_op;
  lhs : t;
  rhs : t;
}

val term : Term.t -> t
val var : string -> t
val cst : Value.t -> t

val vars : t -> string list
(** Distinct variables, first-occurrence order. *)

val cmp_vars : cmp -> string list

val eval : (string -> Value.t option) -> t -> Value.t option
(** [eval lookup e] evaluates [e] under the (partial) assignment
    [lookup]; [None] if some variable is unbound or the arithmetic is
    ill-typed. *)

val eval_cmp : (string -> Value.t option) -> cmp -> bool option
(** [None] when not all variables are bound. *)

val cmp_op_to_string : cmp_op -> string
val cmp_op_of_string : string -> cmp_op option
val to_string : t -> string
val cmp_to_string : cmp -> string
val pp : Format.formatter -> t -> unit
