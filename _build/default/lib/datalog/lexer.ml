type token =
  | IDENT of string
  | UVAR of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW
  | TURNSTILE
  | COLON
  | AT
  | NOT
  | EQ
  | CMP of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type located = {
  tok : token;
  line : int;
  col : int;
}

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_digit c || is_lower c || is_upper c || c = '\''

exception Lex_error of string

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let toks = ref [] in
  let emit tok ~line:l ~col:c = toks := { tok; line = l; col = c } :: !toks in
  let advance () =
    if !pos < n then begin
      if src.[!pos] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr pos
    end
  in
  let cur () = if !pos < n then Some src.[!pos] else None in
  let next () = if !pos + 1 < n then Some src.[!pos + 1] else None in
  let fail msg = raise (Lex_error (Printf.sprintf "%s at line %d, column %d" msg !line !col)) in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  try
    while !pos < n do
      let l = !line and c = !col in
      match src.[!pos] with
      | ' ' | '\t' | '\r' | '\n' -> advance ()
      | '%' | '#' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done
      | '(' -> emit LPAREN ~line:l ~col:c; advance ()
      | ')' -> emit RPAREN ~line:l ~col:c; advance ()
      | ',' -> emit COMMA ~line:l ~col:c; advance ()
      | '@' -> emit AT ~line:l ~col:c; advance ()
      | '+' -> emit PLUS ~line:l ~col:c; advance ()
      | '*' -> emit STAR ~line:l ~col:c; advance ()
      | '/' -> emit SLASH ~line:l ~col:c; advance ()
      | '.' ->
        (* distinguish the clause terminator from a leading decimal point *)
        (match next () with
        | Some d when is_digit d -> fail "numbers must not start with '.'"
        | _ ->
          emit DOT ~line:l ~col:c;
          advance ())
      | '-' ->
        if next () = Some '>' then begin
          advance ();
          advance ();
          emit ARROW ~line:l ~col:c
        end
        else begin
          emit MINUS ~line:l ~col:c;
          advance ()
        end
      | ':' ->
        if next () = Some '-' then begin
          advance ();
          advance ();
          emit TURNSTILE ~line:l ~col:c
        end
        else begin
          emit COLON ~line:l ~col:c;
          advance ()
        end
      | '=' ->
        if next () = Some '=' then begin
          advance ();
          advance ();
          emit (CMP "==") ~line:l ~col:c
        end
        else begin
          emit EQ ~line:l ~col:c;
          advance ()
        end
      | '!' ->
        if next () = Some '=' then begin
          advance ();
          advance ();
          emit (CMP "!=") ~line:l ~col:c
        end
        else begin
          emit NOT ~line:l ~col:c;
          advance ()
        end
      | '<' ->
        if next () = Some '=' then begin
          advance ();
          advance ();
          emit (CMP "<=") ~line:l ~col:c
        end
        else begin
          emit (CMP "<") ~line:l ~col:c;
          advance ()
        end
      | '>' ->
        if next () = Some '=' then begin
          advance ();
          advance ();
          emit (CMP ">=") ~line:l ~col:c
        end
        else begin
          emit (CMP ">") ~line:l ~col:c;
          advance ()
        end
      | '"' ->
        advance ();
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          match cur () with
          | None -> fail "unterminated string literal"
          | Some '"' ->
            advance ();
            closed := true
          | Some '\\' ->
            advance ();
            (match cur () with
            | Some 'n' -> Buffer.add_char buf '\n'; advance ()
            | Some 't' -> Buffer.add_char buf '\t'; advance ()
            | Some ch -> Buffer.add_char buf ch; advance ()
            | None -> fail "unterminated escape in string literal")
          | Some ch ->
            Buffer.add_char buf ch;
            advance ()
        done;
        emit (STRING (Buffer.contents buf)) ~line:l ~col:c
      | ch when is_digit ch ->
        let intpart = read_while is_digit in
        let isfloat =
          match cur (), next () with
          | Some '.', Some d when is_digit d -> true
          | _ -> false
        in
        if isfloat then begin
          advance ();
          let fracpart = read_while is_digit in
          let expo =
            match cur () with
            | Some ('e' | 'E') ->
              advance ();
              let sign =
                match cur () with
                | Some ('+' | '-') ->
                  let s = String.make 1 src.[!pos] in
                  advance ();
                  s
                | _ -> ""
              in
              "e" ^ sign ^ read_while is_digit
            | _ -> ""
          in
          emit (FLOAT (float_of_string (intpart ^ "." ^ fracpart ^ expo))) ~line:l ~col:c
        end
        else emit (INT (int_of_string intpart)) ~line:l ~col:c
      | ch when is_lower ch ->
        let id = read_while is_ident_char in
        if id = "not" then emit NOT ~line:l ~col:c else emit (IDENT id) ~line:l ~col:c
      | ch when is_upper ch ->
        let id = read_while is_ident_char in
        emit (UVAR id) ~line:l ~col:c
      | ch -> fail (Printf.sprintf "unexpected character %C" ch)
    done;
    emit EOF ~line:!line ~col:!col;
    Ok (List.rev !toks)
  with Lex_error msg -> Error msg

let token_to_string = function
  | IDENT s -> s
  | UVAR s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "\"" ^ s ^ "\""
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "->"
  | TURNSTILE -> ":-"
  | COLON -> ":"
  | AT -> "@"
  | NOT -> "not"
  | EQ -> "="
  | CMP s -> s
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EOF -> "<eof>"
