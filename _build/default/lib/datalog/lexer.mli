(** Tokenizer for the Vadalog-style surface syntax.

    Conventions: identifiers starting with a lower-case letter are
    predicate or constant symbols, identifiers starting with an
    upper-case letter or [_] are variables; [%] and [#] start
    line comments; strings are double-quoted. *)

type token =
  | IDENT of string   (** lower-case identifier *)
  | UVAR of string    (** variable *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW             (** [->] *)
  | TURNSTILE         (** [:-] *)
  | COLON
  | AT
  | NOT               (** keyword [not] or [!] before an atom *)
  | EQ                (** [=] *)
  | CMP of string     (** [==] [!=] [<] [<=] [>] [>=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type located = {
  tok : token;
  line : int;
  col : int;
}

val tokenize : string -> (located list, string) result
(** The token stream always ends with a located [EOF]. Errors carry a
    human-readable message with position. *)

val token_to_string : token -> string
