open Ekg_kernel

type parsed = {
  program : Program.t;
  facts : Atom.t list;
}

exception Parse_error of string

type state = {
  mutable toks : Lexer.located list;
}

let peek st = match st.toks with [] -> assert false | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> Some t | _ -> None

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let t = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s at line %d, column %d)" msg
          (Lexer.token_to_string t.tok) t.line t.col))

let expect st tok msg =
  if (peek st).tok = tok then advance st else fail st msg

let parse_ident st =
  match (peek st).tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* --- expressions ------------------------------------------------------- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match (peek st).tok with
    | Lexer.PLUS ->
      advance st;
      lhs := Expr.Add (!lhs, parse_multiplicative st)
    | Lexer.MINUS ->
      advance st;
      lhs := Expr.Sub (!lhs, parse_multiplicative st)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_factor st) in
  let continue = ref true in
  while !continue do
    match (peek st).tok with
    | Lexer.STAR ->
      advance st;
      lhs := Expr.Mul (!lhs, parse_factor st)
    | Lexer.SLASH ->
      advance st;
      lhs := Expr.Div (!lhs, parse_factor st)
    | _ -> continue := false
  done;
  !lhs

and parse_factor st =
  match (peek st).tok with
  | Lexer.MINUS ->
    advance st;
    Expr.Neg (parse_factor st)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | Lexer.UVAR v ->
    advance st;
    Expr.var v
  | Lexer.INT i ->
    advance st;
    Expr.cst (Value.int i)
  | Lexer.FLOAT f ->
    advance st;
    Expr.cst (Value.num f)
  | Lexer.STRING s ->
    advance st;
    Expr.cst (Value.str s)
  | Lexer.IDENT "true" ->
    advance st;
    Expr.cst (Value.bool true)
  | Lexer.IDENT "false" ->
    advance st;
    Expr.cst (Value.bool false)
  | Lexer.IDENT s ->
    (* bare lower-case identifier in expression position: constant symbol *)
    advance st;
    Expr.cst (Value.str s)
  | _ -> fail st "expected expression"

(* --- terms and atoms --------------------------------------------------- *)

let parse_term st =
  match (peek st).tok with
  | Lexer.UVAR v ->
    advance st;
    Term.var v
  | Lexer.INT i ->
    advance st;
    Term.int i
  | Lexer.FLOAT f ->
    advance st;
    Term.num f
  | Lexer.MINUS -> (
    advance st;
    match (peek st).tok with
    | Lexer.INT i ->
      advance st;
      Term.int (-i)
    | Lexer.FLOAT f ->
      advance st;
      Term.num (-.f)
    | _ -> fail st "expected number after '-'")
  | Lexer.STRING s ->
    advance st;
    Term.str s
  | Lexer.IDENT "true" ->
    advance st;
    Term.cst (Value.bool true)
  | Lexer.IDENT "false" ->
    advance st;
    Term.cst (Value.bool false)
  | Lexer.IDENT s ->
    advance st;
    Term.str s
  | _ -> fail st "expected term"

let parse_atom_inner st =
  let pred = parse_ident st in
  match (peek st).tok with
  | Lexer.LPAREN ->
    advance st;
    if (peek st).tok = Lexer.RPAREN then begin
      advance st;
      Atom.make pred []
    end
    else begin
      let args = ref [ parse_term st ] in
      while (peek st).tok = Lexer.COMMA do
        advance st;
        args := parse_term st :: !args
      done;
      expect st Lexer.RPAREN "expected ')' closing atom";
      Atom.make pred (List.rev !args)
    end
  | _ -> Atom.make pred []

(* --- body elements ----------------------------------------------------- *)

type body_element =
  | B_lit of Rule.body_literal
  | B_cmp of Expr.cmp
  | B_assign of string * Expr.t
  | B_agg of Rule.aggregation

let parse_cmp_rhs st op lhs =
  let rhs = parse_expr st in
  match Expr.cmp_op_of_string op with
  | Some o -> B_cmp { Expr.op = o; lhs; rhs }
  | None -> fail st ("unknown comparison operator " ^ op)

let parse_body_element st =
  match (peek st).tok with
  | Lexer.NOT ->
    advance st;
    B_lit (Rule.Not (parse_atom_inner st))
  | Lexer.IDENT _ -> (
    (* atom, unless an operator follows the identifier: then it is a
       constant-headed comparison such as [x <= Y] *)
    match peek2 st with
    | Some { tok = Lexer.LPAREN; _ } -> B_lit (Rule.Pos (parse_atom_inner st))
    | Some { tok = Lexer.CMP op; _ } ->
      let lhs = parse_expr st in
      advance st;
      (* skip CMP, already captured *)
      parse_cmp_rhs st op lhs
    | Some { tok = Lexer.PLUS | Lexer.MINUS | Lexer.STAR | Lexer.SLASH; _ } ->
      let lhs = parse_expr st in
      (match (peek st).tok with
      | Lexer.CMP op ->
        advance st;
        parse_cmp_rhs st op lhs
      | _ -> fail st "expected comparison operator after expression")
    | _ -> B_lit (Rule.Pos (parse_atom_inner st)))
  | Lexer.UVAR v -> (
    match peek2 st with
    | Some { tok = Lexer.EQ; _ } -> (
      advance st;
      (* variable *)
      advance st;
      (* '=' *)
      match (peek st).tok, peek2 st with
      | Lexer.IDENT f, Some { tok = Lexer.LPAREN; _ } when Rule.agg_func_of_string f <> None
        -> (
        advance st;
        advance st;
        let input = parse_expr st in
        expect st Lexer.RPAREN "expected ')' closing aggregation";
        match Rule.agg_func_of_string f with
        | Some func -> B_agg { Rule.func; result = v; input }
        | None -> assert false)
      | _ -> B_assign (v, parse_expr st))
    | _ ->
      let lhs = parse_expr st in
      (match (peek st).tok with
      | Lexer.CMP op ->
        advance st;
        parse_cmp_rhs st op lhs
      | _ -> fail st "expected comparison or assignment after variable"))
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.LPAREN | Lexer.MINUS ->
    let lhs = parse_expr st in
    (match (peek st).tok with
    | Lexer.CMP op ->
      advance st;
      parse_cmp_rhs st op lhs
    | _ -> fail st "expected comparison operator after expression")
  | _ -> fail st "expected body literal"

let parse_body st =
  let elems = ref [ parse_body_element st ] in
  while (peek st).tok = Lexer.COMMA do
    advance st;
    elems := parse_body_element st :: !elems
  done;
  List.rev !elems

let assemble_rule st ~id elems head =
  let body = List.filter_map (function B_lit l -> Some l | _ -> None) elems in
  let conditions = List.filter_map (function B_cmp c -> Some c | _ -> None) elems in
  let assignments = List.filter_map (function B_assign (v, e) -> Some (v, e) | _ -> None) elems in
  let aggs = List.filter_map (function B_agg a -> Some a | _ -> None) elems in
  let agg =
    match aggs with
    | [] -> None
    | [ a ] -> Some a
    | _ -> fail st "at most one aggregation per rule is supported"
  in
  Rule.make ~id ~conditions ~assignments ?agg ~body ~head ()

(* --- statements -------------------------------------------------------- *)

type statement =
  | S_rule of Rule.t
  | S_fact of Atom.t
  | S_goal of string

let parse_statement st =
  match (peek st).tok with
  | Lexer.AT -> (
    advance st;
    let d = parse_ident st in
    match d with
    | "goal" | "output" ->
      expect st Lexer.LPAREN "expected '(' after directive";
      let p = parse_ident st in
      expect st Lexer.RPAREN "expected ')' closing directive";
      expect st Lexer.DOT "expected '.' after directive";
      S_goal p
    | other -> fail st ("unknown directive @" ^ other))
  | _ ->
    let id =
      match (peek st).tok, peek2 st with
      | Lexer.IDENT label, Some { tok = Lexer.COLON; _ } ->
        advance st;
        advance st;
        label
      | _ -> ""
    in
    let elems = parse_body st in
    (match (peek st).tok with
    | Lexer.ARROW ->
      advance st;
      let head = parse_atom_inner st in
      expect st Lexer.DOT "expected '.' terminating rule";
      S_rule (assemble_rule st ~id elems head)
    | Lexer.TURNSTILE ->
      (* head-first form: the "body" we parsed must be a single atom *)
      (match elems with
      | [ B_lit (Rule.Pos head) ] ->
        advance st;
        let body_elems = parse_body st in
        expect st Lexer.DOT "expected '.' terminating rule";
        S_rule (assemble_rule st ~id body_elems head)
      | _ -> fail st "head of ':-' rule must be a single atom")
    | Lexer.DOT ->
      (match elems with
      | [ B_lit (Rule.Pos a) ] when Atom.is_ground a ->
        advance st;
        S_fact a
      | [ B_lit (Rule.Pos _) ] -> fail st "facts must be ground"
      | _ -> fail st "expected '->' or ':-'")
    | _ -> fail st "expected '->', ':-' or '.'")

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks } in
    try
      let rules = ref [] and facts = ref [] and goal = ref None in
      while (peek st).tok <> Lexer.EOF do
        match parse_statement st with
        | S_rule r -> rules := r :: !rules
        | S_fact f -> facts := f :: !facts
        | S_goal g -> goal := Some g
      done;
      let rules = List.rev !rules in
      if rules = [] && !goal = None then Error "program has no rules"
      else begin
        let program = Program.make ?goal:!goal rules in
        match Program.validate program with
        | Ok () -> Ok { program; facts = List.rev !facts }
        | Error es -> Error (String.concat "; " es)
      end
    with Parse_error msg -> Error msg)

let parse_rule src =
  let src = String.trim src in
  let src = if src <> "" && src.[String.length src - 1] = '.' then src else src ^ "." in
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks } in
    try
      match parse_statement st with
      | S_rule r when (peek st).tok = Lexer.EOF -> Ok r
      | S_rule _ -> Error "trailing input after rule"
      | S_fact _ | S_goal _ -> Error "expected a rule"
    with Parse_error msg -> Error msg)

let parse_atom src =
  match Lexer.tokenize (String.trim src) with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks } in
    try
      let a = parse_atom_inner st in
      if (peek st).tok = Lexer.DOT then advance st;
      if (peek st).tok = Lexer.EOF then Ok a else Error "trailing input after atom"
    with Parse_error msg -> Error msg)
