(** Recursive-descent parser for Vadalog-style programs.

    Surface syntax (one clause per [.]-terminated statement):

    {v
    % the stress-test program of Example 4.3
    alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
    beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
    gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
    @goal(default).

    shock("A", 6000000).      % ground facts may be mixed in
    v}

    Rules may equivalently be written head-first with [:-].  Rule
    labels ([alpha:] …) are optional; unlabelled rules are named
    [r1], [r2], … in order.  Comparisons use [== != < <= > >=];
    [V = expr] is an arithmetic assignment and [V = sum(E)] (or
    [prod], [min], [max], [count], and their [m]-prefixed monotonic
    spellings) an aggregation. *)

type parsed = {
  program : Program.t;
  facts : Atom.t list;  (** ground facts included in the source *)
}

val parse : string -> (parsed, string) result
(** Parse a full program text. *)

val parse_rule : string -> (Rule.t, string) result
(** Parse a single rule (with or without trailing [.]). *)

val parse_atom : string -> (Atom.t, string) result
(** Parse a single (possibly non-ground) atom, e.g. a query. *)
