type t = {
  rules : Rule.t list;
  goal : string;
}

let assign_ids rules =
  List.mapi
    (fun i (r : Rule.t) -> if r.id = "" then { r with id = Printf.sprintf "r%d" (i + 1) } else r)
    rules

let make ?goal rules =
  let rules = assign_ids rules in
  let goal =
    match goal, List.rev rules with
    | Some g, _ -> g
    | None, last :: _ -> Rule.head_pred last
    | None, [] -> invalid_arg "Program.make: empty program and no goal"
  in
  { rules; goal }

let rule_ids t = List.map (fun (r : Rule.t) -> r.id) t.rules
let find_rule t id = List.find_opt (fun (r : Rule.t) -> r.id = id) t.rules

module SSet = Set.Make (String)

let preds t =
  List.fold_left
    (fun acc r -> SSet.add (Rule.head_pred r) (SSet.union acc (SSet.of_list (Rule.body_preds r))))
    SSet.empty t.rules
  |> SSet.elements

let idb_preds t =
  List.fold_left (fun acc r -> SSet.add (Rule.head_pred r) acc) SSet.empty t.rules
  |> SSet.elements

let edb_preds t =
  let idb = SSet.of_list (idb_preds t) in
  List.filter (fun p -> not (SSet.mem p idb)) (preds t)

let is_intensional t p = List.mem p (idb_preds t)

let rules_deriving t p = List.filter (fun r -> Rule.head_pred r = p) t.rules
let rules_consuming t p = List.filter (fun r -> List.mem p (Rule.body_preds r)) t.rules

(* A program is recursive iff some head predicate transitively reaches
   itself through body-to-head edges. *)
let is_recursive t =
  let depends_next p =
    List.concat_map (fun r -> [ Rule.head_pred r ]) (rules_consuming t p)
  in
  let reaches_self start =
    let rec go visited frontier =
      match frontier with
      | [] -> false
      | p :: rest ->
        if p = start && visited <> SSet.empty then true
        else if SSet.mem p visited then go visited rest
        else go (SSet.add p visited) (depends_next p @ rest)
    in
    go SSet.empty (depends_next start)
  in
  List.exists reaches_self (idb_preds t)

let uses_negation t =
  List.exists (fun r -> Rule.negative_atoms r <> []) t.rules

let uses_aggregation t = List.exists Rule.has_agg t.rules

let validate t =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  (* per-rule safety *)
  List.iter (fun r -> match Rule.validate r with Ok () -> () | Error e -> err e) t.rules;
  (* distinct labels *)
  let ids = rule_ids t in
  let rec dup = function
    | [] -> ()
    | x :: rest -> if List.mem x rest then err ("duplicate rule label: " ^ x) else dup rest
  in
  dup ids;
  (* consistent arities *)
  let arities = Hashtbl.create 16 in
  let check_atom (a : Atom.t) =
    match Hashtbl.find_opt arities a.pred with
    | None -> Hashtbl.add arities a.pred (Atom.arity a)
    | Some n ->
      if n <> Atom.arity a then
        err (Printf.sprintf "predicate %s used with arities %d and %d" a.pred n (Atom.arity a))
  in
  List.iter
    (fun (r : Rule.t) ->
      check_atom r.head;
      List.iter (function Rule.Pos a | Rule.Not a -> check_atom a) r.body)
    t.rules;
  (* goal must exist *)
  if not (List.mem t.goal (preds t)) then err ("goal predicate not in program: " ^ t.goal);
  match List.rev !errors with [] -> Ok () | es -> Error es

let to_string t =
  String.concat "\n" (List.map Rule.to_string t.rules)
  ^ Printf.sprintf "\n@goal(%s)." t.goal

let pp fmt t = Format.pp_print_string fmt (to_string t)
