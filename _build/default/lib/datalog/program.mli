(** Vadalog programs: a set of rules together with the goal (answer)
    predicate of the reasoning task (§3, Reasoning Task). *)

type t = {
  rules : Rule.t list;
  goal : string;  (** the [Ans] predicate of the reasoning task *)
}

val make : ?goal:string -> Rule.t list -> t
(** When [goal] is omitted it defaults to the head predicate of the
    last rule, which matches how the paper's applications are written.
    Rules without labels are assigned ["r1"], ["r2"], … in order. *)

val rule_ids : t -> string list
val find_rule : t -> string -> Rule.t option
val preds : t -> string list
(** All predicates, sorted. *)

val idb_preds : t -> string list
(** Intensional predicates: those occurring in some head. Sorted. *)

val edb_preds : t -> string list
(** Extensional predicates. Sorted. *)

val is_intensional : t -> string -> bool

val rules_deriving : t -> string -> Rule.t list
(** Rules whose head predicate is the given one, in program order. *)

val rules_consuming : t -> string -> Rule.t list
(** Rules with the predicate in their (positive or negative) body. *)

val is_recursive : t -> bool
(** True iff the dependency graph is cyclic (§3): some predicate
    transitively depends on itself. *)

val uses_negation : t -> bool
val uses_aggregation : t -> bool

val validate : t -> (unit, string list) result
(** Per-rule safety plus program-level checks: distinct rule labels,
    consistent predicate arities, goal is a known predicate. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
