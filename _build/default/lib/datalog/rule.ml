type body_literal =
  | Pos of Atom.t
  | Not of Atom.t

type agg_func = Sum | Prod | Min | Max | Count

type aggregation = {
  func : agg_func;
  result : string;
  input : Expr.t;
}

type t = {
  id : string;
  body : body_literal list;
  conditions : Expr.cmp list;
  assignments : (string * Expr.t) list;
  agg : aggregation option;
  head : Atom.t;
}

let make ?(id = "") ?(conditions = []) ?(assignments = []) ?agg ~body ~head () =
  { id; body; conditions; assignments; agg; head }

let positive_atoms r = List.filter_map (function Pos a -> Some a | Not _ -> None) r.body
let negative_atoms r = List.filter_map (function Not a -> Some a | Pos _ -> None) r.body

let dedup xs =
  let rec go seen = function
    | [] -> []
    | x :: rest -> if List.mem x seen then go seen rest else x :: go (x :: seen) rest
  in
  go [] xs

let body_preds r =
  dedup (List.map (function Pos a | Not a -> a.Atom.pred) r.body)

let positive_body_preds r = dedup (List.map (fun a -> a.Atom.pred) (positive_atoms r))
let head_pred r = r.head.Atom.pred

let body_vars r = dedup (List.concat_map Atom.vars (positive_atoms r))

let bound_vars r =
  let from_atoms = body_vars r in
  let from_assignments = List.map fst r.assignments in
  let from_agg = match r.agg with Some a -> [ a.result ] | None -> [] in
  dedup (from_atoms @ from_assignments @ from_agg)

let existential_vars r =
  let bound = bound_vars r in
  List.filter (fun v -> not (List.mem v bound)) (Atom.vars r.head)

let has_agg r = r.agg <> None

let group_vars r =
  match r.agg with
  | None -> []
  | Some a ->
    let ex = existential_vars r in
    List.filter (fun v -> v <> a.result && not (List.mem v ex)) (Atom.vars r.head)

let validate r =
  let bound = bound_vars r in
  let atoms_bound = body_vars r in
  let check_bound what vs =
    match List.filter (fun v -> not (List.mem v bound)) vs with
    | [] -> Ok ()
    | v :: _ -> Error (Printf.sprintf "rule %s: unbound variable %s in %s" r.id v what)
  in
  let ( let* ) = Result.bind in
  let* () =
    (* conditions may mention the aggregation result *)
    List.fold_left
      (fun acc c ->
        let* () = acc in
        check_bound ("condition " ^ Expr.cmp_to_string c) (Expr.cmp_vars c))
      (Ok ()) r.conditions
  in
  let* () =
    List.fold_left
      (fun acc (v, e) ->
        let* () = acc in
        let deps = List.filter (fun x -> x <> v) (Expr.vars e) in
        check_bound ("assignment " ^ v) deps)
      (Ok ()) r.assignments
  in
  let* () =
    match r.agg with
    | None -> Ok ()
    | Some a ->
      let deps = Expr.vars a.input in
      (match List.filter (fun v -> not (List.mem v atoms_bound)) deps with
      | [] -> Ok ()
      | v :: _ ->
        Error
          (Printf.sprintf "rule %s: aggregation input variable %s not bound by body atoms"
             r.id v))
  in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        match List.filter (fun v -> not (List.mem v atoms_bound)) (Atom.vars a) with
        | [] -> Ok ()
        | v :: _ ->
          Error
            (Printf.sprintf "rule %s: variable %s of negated atom %s not bound positively"
               r.id v (Atom.to_string a)))
      (Ok ()) (negative_atoms r)
  in
  if positive_atoms r = [] then Error (Printf.sprintf "rule %s: no positive body atom" r.id)
  else Ok ()

let agg_func_to_string = function
  | Sum -> "sum"
  | Prod -> "prod"
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"

let agg_func_of_string = function
  | "sum" | "msum" -> Some Sum
  | "prod" | "mprod" -> Some Prod
  | "min" | "mmin" -> Some Min
  | "max" | "mmax" -> Some Max
  | "count" | "mcount" -> Some Count
  | _ -> None

let to_string r =
  let lit = function
    | Pos a -> Atom.to_string a
    | Not a -> "not " ^ Atom.to_string a
  in
  let parts =
    List.map lit r.body
    @ List.map (fun (v, e) -> v ^ " = " ^ Expr.to_string e) r.assignments
    @ (match r.agg with
      | Some a ->
        [ a.result ^ " = " ^ agg_func_to_string a.func ^ "(" ^ Expr.to_string a.input ^ ")" ]
      | None -> [])
    @ List.map Expr.cmp_to_string r.conditions
  in
  let label = if r.id = "" then "" else r.id ^ ": " in
  label ^ String.concat ", " parts ^ " -> " ^ Atom.to_string r.head ^ "."

let pp fmt r = Format.pp_print_string fmt (to_string r)
