(** Rules: function-free Horn clauses (TGDs) with the Vadalog
    extensions used by the paper's applications — monotonic
    aggregations, comparison built-ins, arithmetic assignments and
    negated atoms (§3). *)

type body_literal =
  | Pos of Atom.t
  | Not of Atom.t  (** stratified negation *)

type agg_func = Sum | Prod | Min | Max | Count

type aggregation = {
  func : agg_func;
  result : string;  (** variable receiving the aggregate, e.g. [e] in [e = sum(v)] *)
  input : Expr.t;   (** expression aggregated over the contributors *)
}

type t = {
  id : string;                          (** rule label, e.g. ["alpha"], ["sigma3"] *)
  body : body_literal list;
  conditions : Expr.cmp list;           (** comparison built-ins *)
  assignments : (string * Expr.t) list; (** [v = expr] arithmetic bindings *)
  agg : aggregation option;
  head : Atom.t;
}

val make :
  ?id:string ->
  ?conditions:Expr.cmp list ->
  ?assignments:(string * Expr.t) list ->
  ?agg:aggregation ->
  body:body_literal list ->
  head:Atom.t ->
  unit ->
  t

val positive_atoms : t -> Atom.t list
val negative_atoms : t -> Atom.t list
val body_preds : t -> string list
(** Distinct predicates of positive and negative body atoms. *)

val positive_body_preds : t -> string list
val head_pred : t -> string

val body_vars : t -> string list
(** Variables bound by positive body atoms, first-occurrence order. *)

val bound_vars : t -> string list
(** Variables bound by positive atoms, assignments, or the aggregation
    result. *)

val existential_vars : t -> string list
(** Head variables not bound in the body: the ∃-quantified [z̄]. *)

val has_agg : t -> bool

val group_vars : t -> string list
(** For an aggregation rule, the SQL-like grouping key: head variables
    other than the aggregation result and existentials. *)

val validate : t -> (unit, string) result
(** Safety: condition/assignment/aggregation variables must be bound;
    negated-atom variables must occur in positive atoms; head variables
    must be bound or existential. *)

val agg_func_to_string : agg_func -> string
val agg_func_of_string : string -> agg_func option
val to_string : t -> string
(** Vadalog-style rendering [body -> head.] with the label prefix. *)

val pp : Format.formatter -> t -> unit
