open Ekg_kernel
module SMap = Map.Make (String)

type t = Value.t SMap.t

let empty = SMap.empty
let is_empty = SMap.is_empty
let bind t v x = SMap.add v x t
let find t v = SMap.find_opt v t
let lookup = find
let mem t v = SMap.mem v t
let to_list t = SMap.bindings t
let of_list l = List.fold_left (fun acc (v, x) -> SMap.add v x acc) SMap.empty l
let cardinal = SMap.cardinal

let merge a b =
  let ok = ref true in
  let merged =
    SMap.union
      (fun _ x y ->
        if Value.equal x y then Some x
        else begin
          ok := false;
          Some x
        end)
      a b
  in
  if !ok then Some merged else None

let apply_term t = function
  | Term.Var v as tm -> (
    match find t v with
    | Some x -> Term.Cst x
    | None -> tm)
  | Term.Cst _ as tm -> tm

let apply_atom t (a : Atom.t) = Atom.make a.pred (List.map (apply_term t) a.args)

let ground_atom t a =
  let a' = apply_atom t a in
  if Atom.is_ground a' then Some a' else None

let match_atom t ~pattern tuple =
  let rec go t args i =
    match args with
    | [] -> Some t
    | Term.Cst c :: rest -> if Value.equal c tuple.(i) then go t rest (i + 1) else None
    | Term.Var v :: rest -> (
      match find t v with
      | Some x -> if Value.equal x tuple.(i) then go t rest (i + 1) else None
      | None -> go (bind t v tuple.(i)) rest (i + 1))
  in
  go t pattern.Atom.args 0

let equal a b = SMap.equal Value.equal a b

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat ", "
       (List.map (fun (v, x) -> v ^ " ↦ " ^ Value.to_string x) (to_list t)))
