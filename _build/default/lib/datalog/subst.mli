(** Substitutions: finite maps from variables to values — the
    homomorphisms θ applied in chase steps (§3). *)

open Ekg_kernel

type t

val empty : t
val is_empty : t -> bool
val bind : t -> string -> Value.t -> t
val find : t -> string -> Value.t option
val lookup : t -> string -> Value.t option
(** Alias of {!find}, shaped for {!Expr.eval}. *)

val mem : t -> string -> bool
val to_list : t -> (string * Value.t) list
(** Sorted by variable name. *)

val of_list : (string * Value.t) list -> t
val cardinal : t -> int

val merge : t -> t -> t option
(** Union; [None] on conflicting bindings. *)

val apply_term : t -> Term.t -> Term.t
(** Replace bound variables by their constants. *)

val apply_atom : t -> Atom.t -> Atom.t

val ground_atom : t -> Atom.t -> Atom.t option
(** [Some] only when the result is ground. *)

val match_atom : t -> pattern:Atom.t -> Value.t array -> t option
(** Extend the substitution so that [pattern] maps onto the given
    ground tuple (the homomorphism check); [None] on mismatch.
    Assumes the tuple's length equals the pattern's arity. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
