open Ekg_kernel

type t =
  | Var of string
  | Cst of Value.t

let var v = Var v
let cst c = Cst c
let int i = Cst (Value.int i)
let num f = Cst (Value.num f)
let str s = Cst (Value.str s)

let is_var = function Var _ -> true | Cst _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> Value.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal a b = compare a b = 0

let vars terms =
  let rec go seen acc = function
    | [] -> List.rev acc
    | Var v :: rest ->
      if List.mem v seen then go seen acc rest else go (v :: seen) (v :: acc) rest
    | Cst _ :: rest -> go seen acc rest
  in
  go [] [] terms

let to_string = function
  | Var v -> v
  | Cst c -> Value.to_string c

let pp fmt t = Format.pp_print_string fmt (to_string t)
