(** Terms: variables and constants (§3, Relational Foundations). *)

open Ekg_kernel

type t =
  | Var of string   (** universally (or existentially) quantified variable *)
  | Cst of Value.t  (** constant (or labelled null, at runtime) *)

val var : string -> t
val cst : Value.t -> t
val int : int -> t
val num : float -> t
val str : string -> t

val is_var : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val vars : t list -> string list
(** Distinct variable names, in first-occurrence order. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
