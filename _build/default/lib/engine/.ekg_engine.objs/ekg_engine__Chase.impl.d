lib/engine/chase.ml: Array Atom Database Ekg_datalog Ekg_kernel Fact Hashtbl Int List Matcher Option Printf Program Provenance Rule Stratify String Subst Term Value
