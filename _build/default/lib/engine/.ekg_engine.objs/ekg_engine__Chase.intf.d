lib/engine/chase.mli: Atom Database Ekg_datalog Program Provenance Stdlib
