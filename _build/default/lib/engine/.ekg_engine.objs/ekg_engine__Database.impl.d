lib/engine/database.ml: Array Atom Ekg_datalog Ekg_kernel Fact Hashtbl Int List Option String Subst Term Value
