lib/engine/database.mli: Atom Ekg_datalog Ekg_kernel Fact Subst Value
