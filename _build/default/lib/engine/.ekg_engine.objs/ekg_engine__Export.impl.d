lib/engine/export.ml: Array Chase Database Ekg_graph Ekg_kernel Fact Fun List Printf Proof Provenance String Value
