lib/engine/export.mli: Chase Database Proof
