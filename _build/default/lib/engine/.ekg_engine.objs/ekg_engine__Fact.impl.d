lib/engine/fact.ml: Array Atom Ekg_datalog Ekg_kernel Format List Term Value
