lib/engine/fact.mli: Atom Ekg_datalog Ekg_kernel Format Value
