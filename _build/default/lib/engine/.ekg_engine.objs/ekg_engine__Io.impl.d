lib/engine/io.ml: Array Atom Buffer Char Chase Database Ekg_datalog Ekg_kernel Fact Filename Float Fun List Printf Provenance String Sys Term Textutil Value
