lib/engine/io.mli: Atom Chase Ekg_datalog Fact
