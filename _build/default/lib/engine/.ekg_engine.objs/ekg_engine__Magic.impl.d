lib/engine/magic.ml: Atom Chase Ekg_datalog Fact Hashtbl List Printf Program Query Rule String Term
