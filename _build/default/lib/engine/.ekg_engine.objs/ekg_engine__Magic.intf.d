lib/engine/magic.mli: Atom Ekg_datalog Fact Program
