lib/engine/matcher.ml: Array Atom Database Ekg_datalog Ekg_kernel Expr Fact List Map Provenance Rule Subst Value
