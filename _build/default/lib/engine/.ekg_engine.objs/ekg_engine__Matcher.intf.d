lib/engine/matcher.mli: Database Ekg_datalog Ekg_kernel Provenance Rule Subst Value
