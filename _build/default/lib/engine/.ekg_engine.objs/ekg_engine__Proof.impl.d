lib/engine/proof.ml: Array Database Ekg_datalog Ekg_kernel Fact Hashtbl Int List Printf Provenance String Subst Value
