lib/engine/proof.mli: Database Ekg_datalog Ekg_kernel Fact Provenance Subst
