lib/engine/provenance.ml: Database Ekg_datalog Ekg_graph Fact Hashtbl Int List Subst
