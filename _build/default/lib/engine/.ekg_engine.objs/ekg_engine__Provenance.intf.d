lib/engine/provenance.mli: Database Ekg_datalog Ekg_graph Subst
