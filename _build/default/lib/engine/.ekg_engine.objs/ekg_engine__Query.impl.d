lib/engine/query.ml: Database Ekg_datalog Parser Subst
