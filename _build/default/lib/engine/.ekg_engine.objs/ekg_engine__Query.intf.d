lib/engine/query.mli: Atom Database Ekg_datalog Fact Subst
