lib/engine/stratify.ml: Atom Ekg_datalog Hashtbl List Program Rule
