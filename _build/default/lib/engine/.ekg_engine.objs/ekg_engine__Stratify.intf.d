lib/engine/stratify.mli: Ekg_datalog Program Rule
