lib/engine/why.ml: Database Fact Hashtbl Int List Provenance Set String
