lib/engine/why.mli: Database Fact Provenance
