open Ekg_kernel
open Ekg_datalog

module Key = struct
  type t = string * Value.t array

  let equal (p1, a1) (p2, a2) =
    p1 = p2
    && Array.length a1 = Array.length a2
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if not (Value.equal v a2.(i)) then ok := false) a1;
    !ok

  let hash (p, a) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Hashtbl.hash p) a
end

module KeyTbl = Hashtbl.Make (Key)

(* secondary index: facts by (predicate, argument position, value) *)
module ArgKey = struct
  type t = string * int * Value.t

  let equal (p1, i1, v1) (p2, i2, v2) = p1 = p2 && i1 = i2 && Value.equal v1 v2
  let hash (p, i, v) = (Hashtbl.hash p * 31) + (i * 7) + Value.hash v
end

module ArgTbl = Hashtbl.Make (ArgKey)

type t = {
  by_id : (int, Fact.t) Hashtbl.t;
  by_key : int KeyTbl.t;
  by_pred : (string, int list ref) Hashtbl.t; (* newest first *)
  by_arg : int list ref ArgTbl.t;             (* newest first *)
  inactive : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable null_counter : int;
}

let create () =
  {
    by_id = Hashtbl.create 256;
    by_key = KeyTbl.create 256;
    by_pred = Hashtbl.create 16;
    by_arg = ArgTbl.create 1024;
    inactive = Hashtbl.create 16;
    next_id = 0;
    null_counter = 0;
  }

let add t pred args =
  let key = (pred, args) in
  match KeyTbl.find_opt t.by_key key with
  | Some id -> `Existing (Hashtbl.find t.by_id id)
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    let f = { Fact.id; pred; args } in
    Hashtbl.add t.by_id id f;
    KeyTbl.add t.by_key key id;
    let ids =
      match Hashtbl.find_opt t.by_pred pred with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add t.by_pred pred r;
        r
    in
    ids := id :: !ids;
    Array.iteri
      (fun i v ->
        let k = (pred, i, v) in
        match ArgTbl.find_opt t.by_arg k with
        | Some r -> r := id :: !r
        | None -> ArgTbl.add t.by_arg k (ref [ id ]))
      args;
    `Added f

let add_atom t (a : Atom.t) =
  if not (Atom.is_ground a) then Error ("non-ground fact: " ^ Atom.to_string a)
  else begin
    let args =
      Array.of_list
        (List.map (function Term.Cst c -> c | Term.Var _ -> assert false) a.args)
    in
    Ok (add t a.pred args)
  end

let deactivate t id = Hashtbl.replace t.inactive id ()
let is_active t id = Hashtbl.mem t.by_id id && not (Hashtbl.mem t.inactive id)
let fact t id = Hashtbl.find t.by_id id

let find_exact t pred args =
  Option.map (fun id -> Hashtbl.find t.by_id id) (KeyTbl.find_opt t.by_key (pred, args))

let ids_of_pred t pred =
  match Hashtbl.find_opt t.by_pred pred with
  | Some r -> List.rev !r
  | None -> []

let all_of_pred t pred = List.map (fact t) (ids_of_pred t pred)

let active t pred =
  List.filter_map
    (fun id -> if is_active t id then Some (fact t id) else None)
    (ids_of_pred t pred)

let preds t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.by_pred [] |> List.sort String.compare

let active_all t =
  preds t |> List.concat_map (ids_of_pred t)
  |> List.filter (is_active t)
  |> List.sort Int.compare
  |> List.map (fact t)

let size t = Hashtbl.length t.by_id
let active_size t = size t - Hashtbl.length t.inactive

let fresh_null t =
  let i = t.null_counter in
  t.null_counter <- i + 1;
  Value.null i

let matching t (pattern : Atom.t) subst =
  let arity = List.length pattern.args in
  (* use the narrowest argument index available under the current
     substitution; fall back to the full predicate scan *)
  let candidates =
    let rec best i args acc =
      match args with
      | [] -> acc
      | term :: rest ->
        let bound =
          match term with
          | Term.Cst c -> Some c
          | Term.Var v -> Subst.find subst v
        in
        let acc =
          match bound with
          | None -> acc
          | Some v -> (
            let ids =
              match ArgTbl.find_opt t.by_arg (pattern.pred, i, v) with
              | Some r -> !r
              | None -> []
            in
            match acc with
            | Some shorter when List.length shorter <= List.length ids -> acc
            | Some _ | None -> Some ids)
        in
        best (i + 1) rest acc
    in
    match best 0 pattern.args None with
    | Some ids -> List.rev_map (fact t) (List.filter (is_active t) ids)
    | None -> active t pattern.pred
  in
  List.filter_map
    (fun f ->
      if Array.length f.Fact.args <> arity then None
      else
        match Subst.match_atom subst ~pattern f.Fact.args with
        | Some s -> Some (f, s)
        | None -> None)
    candidates
