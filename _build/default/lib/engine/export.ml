open Ekg_kernel
module G = Ekg_graph.Digraph

let chase_graph_dot (res : Chase.result) =
  G.to_dot ~name:"chase_graph" ~label_to_string:Fun.id
    (Provenance.to_digraph res.prov res.db)

let proof_dot db (proof : Proof.t) =
  let g = G.create () in
  List.iter
    (fun (s : Proof.step) ->
      let dst = Fact.to_string s.fact in
      G.add_node g dst;
      List.iter
        (fun (p : Fact.t) ->
          G.add_edge g ~src:(Fact.to_string p) ~dst ~label:s.rule_id)
        s.premises)
    proof.steps;
  ignore db;
  G.to_dot ~name:"proof" ~label_to_string:Fun.id g

let is_entity = function
  | Value.Str _ -> true
  | Value.Int _ | Value.Num _ | Value.Bool _ | Value.Null _ -> false

let instance_dot ?preds db =
  let wanted p =
    match preds with
    | None -> true
    | Some ps -> List.mem p ps
  in
  let g = G.create () in
  List.iter
    (fun (f : Fact.t) ->
      if wanted f.pred then begin
        match Array.to_list f.args with
        | [ a; b ] when is_entity a && is_entity b ->
          G.add_edge g ~src:(Value.to_display a) ~dst:(Value.to_display b) ~label:f.pred
        | a :: b :: rest when is_entity a && is_entity b ->
          let label =
            f.pred ^ "(" ^ String.concat ", " (List.map Value.to_display rest) ^ ")"
          in
          G.add_edge g ~src:(Value.to_display a) ~dst:(Value.to_display b) ~label
        | a :: rest when is_entity a ->
          let annotated =
            Value.to_display a
            ^
            if rest = [] then " [" ^ f.pred ^ "]"
            else
              Printf.sprintf " [%s: %s]" f.pred
                (String.concat ", " (List.map Value.to_display rest))
          in
          G.add_node g annotated
        | _ -> ()
      end)
    (Database.active_all db);
  G.to_dot ~name:"instance" ~label_to_string:Fun.id g
