(** Graph exports for analysts' front-ends: the chase graph (Figure 8)
    and the instance-level knowledge graph (Figures 12/13) rendered as
    GraphViz DOT, the visual companions of the textual explanations. *)

val chase_graph_dot : Chase.result -> string
(** Every derived fact with its rule-labelled derivation edges. *)

val proof_dot : Database.t -> Proof.t -> string
(** Only the portion of the chase graph deriving one fact — the shape
    of Figure 8. *)

val instance_dot : ?preds:string list -> Database.t -> string
(** Facts as a property graph: binary predicates over two entity
    arguments become labelled edges (extra arguments join the label),
    unary and other facts become node annotations.  [preds] restricts
    the rendered predicates. *)
