open Ekg_kernel
open Ekg_datalog

type t = {
  id : int;
  pred : string;
  args : Value.t array;
}

let atom f = Atom.make f.pred (List.map Term.cst (Array.to_list f.args))
let arg f i = f.args.(i)

let equal_tuple f pred args =
  f.pred = pred
  && Array.length f.args = Array.length args
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Value.equal v args.(i)) then ok := false) f.args;
      !ok)

let to_string f = Atom.to_string (atom f)
let pp fmt f = Format.pp_print_string fmt (to_string f)
