(** Ground facts materialized by the chase, identified by the id the
    database assigned at insertion time.  Ids are also the nodes of the
    chase graph. *)

open Ekg_kernel
open Ekg_datalog

type t = {
  id : int;
  pred : string;
  args : Value.t array;
}

val atom : t -> Atom.t
val arg : t -> int -> Value.t
val equal_tuple : t -> string -> Value.t array -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
