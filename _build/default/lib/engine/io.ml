open Ekg_kernel
open Ekg_datalog

(* --- CSV ----------------------------------------------------------------- *)

type csv_field =
  | Quoted of string
  | Bare of string

let parse_csv_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let error = ref None in
  let flush quoted =
    fields := (if quoted then Quoted (Buffer.contents buf) else Bare (String.trim (Buffer.contents buf))) :: !fields;
    Buffer.clear buf
  in
  let in_quotes = ref false in
  let was_quoted = ref false in
  while !i < n && !error = None do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else begin
      match c with
      | '"' when String.trim (Buffer.contents buf) = "" ->
        in_quotes := true;
        was_quoted := true;
        Buffer.clear buf;
        incr i
      | ',' ->
        flush !was_quoted;
        was_quoted := false;
        incr i
      | _ ->
        Buffer.add_char buf c;
        incr i
    end
  done;
  if !in_quotes then Error "unterminated quoted field"
  else begin
    flush !was_quoted;
    Ok (List.rev !fields)
  end

let value_of_field = function
  | Quoted s -> Value.str s
  | Bare s -> (
    match int_of_string_opt s with
    | Some i -> Value.int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Value.num f
      | None -> (
        match s with
        | "true" -> Value.bool true
        | "false" -> Value.bool false
        | _ -> Value.str s)))

let facts_of_csv ~pred content =
  let lines = String.split_on_char '\n' content in
  let rec go lineno arity acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || Textutil.starts_with ~prefix:"#" trimmed then
        go (lineno + 1) arity acc rest
      else begin
        match parse_csv_line trimmed with
        | Error e -> Error (Printf.sprintf "%s.csv line %d: %s" pred lineno e)
        | Ok fields -> (
          let values = List.map value_of_field fields in
          match arity with
          | Some a when a <> List.length values ->
            Error
              (Printf.sprintf "%s.csv line %d: expected %d fields, found %d" pred lineno
                 a (List.length values))
          | _ ->
            let atom = Atom.make pred (List.map Term.cst values) in
            go (lineno + 1) (Some (List.length values)) (atom :: acc) rest)
      end
  in
  go 1 None [] lines

let csv_field v =
  match v with
  | Value.Str s -> "\"" ^ Textutil.replace_all s ~pattern:"\"" ~by:"\"\"" ^ "\""
  | Value.Int _ | Value.Num _ | Value.Bool _ | Value.Null _ -> Value.to_display v

let facts_to_csv facts =
  facts
  |> List.map (fun (f : Fact.t) ->
         String.concat "," (Array.to_list (Array.map csv_field f.args)))
  |> String.concat "\n"

let load_directory dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
    let csvs =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".csv")
      |> List.sort String.compare
    in
    let read_file path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    List.fold_left
      (fun acc file ->
        match acc with
        | Error _ -> acc
        | Ok facts -> (
          let pred = Filename.remove_extension file in
          match facts_of_csv ~pred (read_file (Filename.concat dir file)) with
          | Ok more -> Ok (facts @ more)
          | Error e -> Error e))
      (Ok []) csvs

(* --- JSON ----------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_value = function
  | Value.Str s -> "\"" ^ json_escape s ^ "\""
  | Value.Int i -> string_of_int i
  | Value.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Value.Bool b -> string_of_bool b
  | Value.Null i -> Printf.sprintf "{\"null\": %d}" i

let fact_to_json (f : Fact.t) =
  Printf.sprintf "{\"id\": %d, \"predicate\": \"%s\", \"args\": [%s]}" f.id
    (json_escape f.pred)
    (String.concat ", " (Array.to_list (Array.map json_of_value f.args)))

let facts_to_json facts =
  "[" ^ String.concat ", " (List.map fact_to_json facts) ^ "]"

let result_to_json (res : Chase.result) =
  let facts = Database.active_all res.db in
  let entries =
    List.map
      (fun (f : Fact.t) ->
        match Provenance.derivation res.prov f.id with
        | None -> fact_to_json f
        | Some d ->
          Printf.sprintf
            "{\"id\": %d, \"predicate\": \"%s\", \"args\": [%s], \"rule\": \"%s\", \
             \"premises\": [%s]}"
            f.id (json_escape f.pred)
            (String.concat ", " (Array.to_list (Array.map json_of_value f.args)))
            (json_escape d.rule_id)
            (String.concat ", " (List.map string_of_int d.premises)))
      facts
  in
  "{\"facts\": [" ^ String.concat ", " entries ^ "]}"
