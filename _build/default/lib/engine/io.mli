(** Loading and exporting extensional data.

    The paper distributes its synthetic financial data as flat files;
    this module reads one relation per CSV file ([own.csv] holds the
    [own] facts) and exports instances back to CSV or JSON for
    front-ends.  CSV: comma-separated, double quotes with [""]
    escaping, [#]-comment and blank lines ignored.  Unquoted numeric
    fields parse as numbers, everything else as strings. *)

open Ekg_datalog

val facts_of_csv : pred:string -> string -> (Atom.t list, string) result
(** Parse CSV content into facts of the given predicate; every row must
    have the same arity.  Errors carry the offending line number. *)

val facts_to_csv : Fact.t list -> string
(** Render facts as CSV rows (strings quoted, numbers bare). *)

val load_directory : string -> (Atom.t list, string) result
(** Read every [<pred>.csv] in the directory; the file's base name is
    the predicate. *)

val fact_to_json : Fact.t -> string
val facts_to_json : Fact.t list -> string
(** A JSON array of {"predicate": …, "args": […]} objects. *)

val result_to_json : Chase.result -> string
(** The materialized instance: active facts grouped by predicate, with
    each derived fact carrying its rule and premise ids — a serialized
    chase graph front-ends can render. *)
