open Ekg_datalog

type answer = {
  facts : Fact.t list;
  derived_count : int;
  pruned : bool;
}

let adornment (a : Atom.t) =
  String.concat ""
    (List.map (function Term.Cst _ -> "b" | Term.Var _ -> "f") a.args)

let adorned_name pred ad = pred ^ "__" ^ ad
let magic_name pred ad = "m__" ^ pred ^ "__" ^ ad

(* binding pattern of an atom under a set of bound variables *)
let adornment_under bound (a : Atom.t) =
  String.concat ""
    (List.map
       (function
         | Term.Cst _ -> "b"
         | Term.Var v -> if List.mem v bound then "b" else "f")
       a.args)

let bound_args ad (a : Atom.t) =
  List.filteri (fun i _ -> ad.[i] = 'b') a.args

let in_fragment (p : Program.t) =
  List.for_all
    (fun (r : Rule.t) ->
      (not (Rule.has_agg r))
      && Rule.negative_atoms r = []
      && Rule.existential_vars r = [])
    p.rules

let rewrite (p : Program.t) (query : Atom.t) =
  if not (List.mem query.pred (Program.preds p)) then
    Error ("unknown predicate in query: " ^ query.pred)
  else if not (Program.is_intensional p query.pred) then
    Error ("query predicate is extensional: " ^ query.pred)
  else begin
    let idb = Program.idb_preds p in
    let is_idb q = List.mem q idb in
    let counter = ref 0 in
    let fresh_id base =
      incr counter;
      Printf.sprintf "%s#m%d" base !counter
    in
    let out_rules = ref [] in
    let visited = Hashtbl.create 16 in
    let rec demand pred ad =
      if not (Hashtbl.mem visited (pred, ad)) then begin
        Hashtbl.add visited (pred, ad) ();
        List.iter (fun r -> adorn_rule r ad) (Program.rules_deriving p pred)
      end
    and adorn_rule (r : Rule.t) ad =
      (* variables bound on entry: the head's 'b' positions, excluding
         variables the rule itself computes (assignments or aggregates
         bind them only later) *)
      let computed =
        List.map fst r.assignments
        @ (match r.agg with Some a -> [ a.result ] | None -> [])
      in
      let head_bound =
        List.concat
          (List.mapi
             (fun i t ->
               match t with
               | Term.Var v when ad.[i] = 'b' && not (List.mem v computed) -> [ v ]
               | Term.Var _ | Term.Cst _ -> [])
             r.head.Atom.args)
      in
      let magic_head_atom =
        Atom.make (magic_name (Rule.head_pred r) ad) (bound_args ad r.head)
      in
      (* walk the positive atoms, adorning IDB ones and emitting their
         magic rules; negative atoms stay as they are (fragment check
         rejects them anyway for the pruned path) *)
      let bound = ref head_bound in
      let prefix = ref [ Rule.Pos magic_head_atom ] in
      let new_body =
        List.map
          (fun lit ->
            match lit with
            | Rule.Not _ -> lit
            | Rule.Pos a ->
              let lit' =
                if is_idb a.Atom.pred then begin
                  let ad' = adornment_under !bound a in
                  demand a.Atom.pred ad';
                  (* magic rule: demand for this subgoal *)
                  let magic_rule =
                    Rule.make ~id:(fresh_id r.id)
                      ~body:(List.rev !prefix)
                      ~head:(Atom.make (magic_name a.Atom.pred ad') (bound_args ad' a))
                      ()
                  in
                  out_rules := magic_rule :: !out_rules;
                  Rule.Pos (Atom.make (adorned_name a.Atom.pred ad') a.Atom.args)
                end
                else Rule.Pos a
              in
              bound := List.sort_uniq String.compare (Atom.vars a @ !bound);
              prefix := lit' :: !prefix;
              lit')
          r.body
      in
      let modified =
        {
          r with
          Rule.id = fresh_id r.id;
          head = Atom.make (adorned_name (Rule.head_pred r) ad) r.head.Atom.args;
          body = Rule.Pos magic_head_atom :: new_body;
        }
      in
      out_rules := modified :: !out_rules
    in
    let qad = adornment query in
    demand query.pred qad;
    let seed = Atom.make (magic_name query.pred qad) (bound_args qad query) in
    let program = Program.make ~goal:(adorned_name query.pred qad) (List.rev !out_rules) in
    match Program.validate program with
    | Ok () -> Ok (program, [ seed ])
    | Error es -> Error ("magic rewriting produced an invalid program: " ^ String.concat "; " es)
  end

let answer (p : Program.t) edb (query : Atom.t) =
  let full () =
    match Chase.run p edb with
    | Error e -> Error e
    | Ok res ->
      Ok
        {
          facts = List.map fst (Query.ask res.db query);
          derived_count = res.derived_count;
          pruned = false;
        }
  in
  if not (in_fragment p) then full ()
  else begin
    match rewrite p query with
    | Error _ -> full ()
    | Ok (magic_program, seeds) -> (
      match Chase.run magic_program (edb @ seeds) with
      | Error e -> Error e
      | Ok res ->
        let adorned_query =
          Atom.make (adorned_name query.pred (adornment query)) query.Atom.args
        in
        let facts =
          Query.ask res.db adorned_query
          |> List.map (fun ((f : Fact.t), _) -> { f with pred = query.pred })
        in
        Ok { facts; derived_count = res.derived_count; pruned = true })
  end
