(** Goal-directed query answering via the magic-sets transformation —
    the classic top-down/bottom-up bridge of the Datalog literature the
    paper builds on (§1's "top-down logical inference methods typically
    adopted in KRR", §2's recursive-query references).

    Answering an explanation query does not always need the full
    materialization: [answer] rewrites the program with respect to the
    query's binding pattern (adornment), adds magic predicates that
    propagate the query constants, runs the ordinary chase on the
    rewritten program, and reads the answers off.  The derived instance
    is restricted to facts relevant to the query — often dramatically
    smaller than the full fixpoint.

    Supported fragment: positive Datalog with comparisons and
    arithmetic assignments.  Aggregations, negation and existential
    heads fall back to full materialization (their magic variants are
    not sound in general); the [pruned] flag in the result tells which
    path ran. *)

open Ekg_datalog

type answer = {
  facts : Fact.t list;           (** the facts matching the query *)
  derived_count : int;           (** facts materialized to answer it *)
  pruned : bool;                 (** true when the magic rewriting ran *)
}

val adornment : Atom.t -> string
(** ["bf"]-style binding pattern: [b] for constant arguments, [f] for
    variables. *)

val rewrite : Program.t -> Atom.t -> (Program.t * Atom.t list, string) result
(** The magic program and its seed facts for the given query; fails on
    queries over unknown predicates. *)

val answer : Program.t -> Atom.t list -> Atom.t -> (answer, string) result
(** Answer the query over the extensional facts, goal-directed when the
    program is in the supported fragment. *)
