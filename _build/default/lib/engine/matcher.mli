(** Body evaluation: enumerating the homomorphisms θ that make a rule
    applicable to the current database (§3, Chase Procedure).

    Non-aggregating rules yield one {!match_result} per homomorphism;
    aggregating rules yield one {!agg_result} per SQL-like group, with
    the contributors that feed the monotonic aggregate. *)

open Ekg_kernel
open Ekg_datalog

type match_result = {
  binding : Subst.t;         (** θ extended with assignment results *)
  used_facts : int list;     (** premise fact ids, positive atoms in body order *)
}

type agg_result = {
  group_binding : Subst.t;   (** group variables + aggregation result *)
  value : Value.t;           (** the aggregate *)
  contributors : Provenance.contributor list;  (** one per distinct body match *)
}

type delta = {
  mem : int -> bool;          (** fact id in the previous round's delta *)
  has_pred : string -> bool;  (** some delta fact has this predicate *)
}

val match_rule : ?delta:delta -> Database.t -> Rule.t -> match_result list
(** Matches of a non-aggregating rule.  With [delta], only matches
    using at least one delta fact are returned, and the join is seeded
    from the delta facts (semi-naive evaluation).  Raises
    [Invalid_argument] on aggregating rules. *)

val match_agg_rule : Database.t -> Rule.t -> agg_result list
(** Groups of an aggregating rule, conditions already enforced
    (including those over the aggregate result).  Raises
    [Invalid_argument] on non-aggregating rules. *)
