open Ekg_kernel
open Ekg_datalog

type step = {
  index : int;
  rule_id : string;
  fact : Fact.t;
  binding : Subst.t;
  contributors : Provenance.contributor list;
  multi : bool;
  premises : Fact.t list;
}

type t = {
  goal : Fact.t;
  steps : step list;
}

(* Post-order DFS over the derivation DAG: premises are fully explained
   before the step that consumes them, matching the paper's τ.
   [derivation_for] chooses which derivation explains each fact. *)
let build db ~derivation_for (goal : Fact.t) =
  match derivation_for goal.id with
  | None -> None
  | Some _ ->
    let visited = Hashtbl.create 32 in
    let steps = ref [] in
    let rec visit fact_id =
      if not (Hashtbl.mem visited fact_id) then begin
        Hashtbl.add visited fact_id ();
        match derivation_for fact_id with
        | None -> ()
        | Some (d : Provenance.derivation) ->
          List.iter visit d.premises;
          let contributors = d.contributors in
          steps :=
            {
              index = 0;
              rule_id = d.rule_id;
              fact = Database.fact db fact_id;
              binding = d.binding;
              contributors;
              multi = List.length contributors >= 2;
              premises = List.map (Database.fact db) d.premises;
            }
            :: !steps
      end
    in
    visit goal.id;
    let steps = List.rev !steps in
    Some { goal; steps = List.mapi (fun i s -> { s with index = i }) steps }

let of_fact db prov (goal : Fact.t) =
  build db ~derivation_for:(Provenance.derivation prov) goal

(* Shortest proof: per fact, pick the derivation minimizing the tree
   cost 1 + Σ cost(premises) (premise ids always precede the fact's,
   so the recursion is well-founded).  Tree cost over-counts shared
   sub-derivations, but those are deduplicated when the proof is
   built, so the selection is a sound heuristic for compactness. *)
let shortest_of_fact db prov (goal : Fact.t) =
  let memo : (int, int * Provenance.derivation option) Hashtbl.t = Hashtbl.create 64 in
  let rec cost id =
    match Hashtbl.find_opt memo id with
    | Some (c, _) -> c
    | None ->
      let result =
        match Provenance.alternatives prov id with
        | [] -> (0, None) (* extensional *)
        | ds ->
          let best =
            List.fold_left
              (fun acc (d : Provenance.derivation) ->
                let c = 1 + List.fold_left (fun s p -> s + cost p) 0 d.premises in
                match acc with
                | Some (c', _) when c' <= c -> acc
                | _ -> Some (c, d))
              None ds
          in
          (match best with
          | Some (c, d) -> (c, Some d)
          | None -> (0, None))
      in
      Hashtbl.replace memo id result;
      fst result
  in
  ignore (cost goal.id);
  let derivation_for id =
    ignore (cost id);
    match Hashtbl.find_opt memo id with
    | Some (_, d) -> d
    | None -> None
  in
  build db ~derivation_for goal

let length t = List.length t.steps
let rule_sequence t = List.map (fun s -> s.rule_id) t.steps

let truncate t ~horizon =
  if horizon < 1 then invalid_arg "Proof.truncate: horizon must be >= 1";
  (* distance of each step's fact from the goal, walking premise links
     backwards from the goal step *)
  let step_of = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace step_of s.fact.id s) t.steps;
  let depth = Hashtbl.create 16 in
  let rec walk id d =
    match Hashtbl.find_opt step_of id with
    | None -> ()
    | Some s ->
      let better =
        match Hashtbl.find_opt depth id with
        | Some d' -> d < d'
        | None -> true
      in
      if better then begin
        Hashtbl.replace depth id d;
        List.iter (fun (p : Fact.t) -> walk p.id (d + 1)) s.premises
      end
  in
  walk t.goal.id 0;
  let kept =
    List.filter
      (fun s ->
        match Hashtbl.find_opt depth s.fact.id with
        | Some d -> d < horizon
        | None -> false)
      t.steps
  in
  let kept_ids = List.map (fun s -> s.fact.id) kept in
  let assumed =
    kept
    |> List.concat_map (fun s -> s.premises)
    |> List.filter (fun (p : Fact.t) ->
           Hashtbl.mem step_of p.id && not (List.mem p.id kept_ids))
    |> List.sort_uniq (fun (a : Fact.t) (b : Fact.t) -> Int.compare a.id b.id)
  in
  ({ goal = t.goal; steps = List.mapi (fun i s -> { s with index = i }) kept }, assumed)

let facts_used t =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let push (f : Fact.t) =
    if not (Hashtbl.mem seen f.id) then begin
      Hashtbl.add seen f.id ();
      acc := f :: !acc
    end
  in
  List.iter
    (fun s ->
      List.iter push s.premises;
      push s.fact)
    t.steps;
  List.rev !acc

let constants t =
  let seen = ref [] in
  List.iter
    (fun (f : Fact.t) ->
      Array.iter
        (fun v -> if not (List.exists (Value.equal v) !seen) then seen := v :: !seen)
        f.args)
    (facts_used t);
  List.rev !seen

let to_string t =
  t.steps
  |> List.map (fun s ->
         Printf.sprintf "%2d. [%s]%s %s <= %s" (s.index + 1) s.rule_id
           (if s.multi then "*" else "")
           (Fact.to_string s.fact)
           (String.concat ", " (List.map Fact.to_string s.premises)))
  |> String.concat "\n"
