(** Proofs: the portion of the chase graph that derives a fact of
    interest, linearized into the ordered chase-step sequence τ that
    the template mapper consumes (§4.3, Example 4.7). *)

open Ekg_datalog

type step = {
  index : int;                                 (** position in τ, from 0 *)
  rule_id : string;                            (** activated rule *)
  fact : Fact.t;                               (** fact derived by the step *)
  binding : Subst.t;                           (** homomorphism θ of the step *)
  contributors : Provenance.contributor list;  (** aggregation contributors *)
  multi : bool;                                (** ≥ 2 aggregation contributors *)
  premises : Fact.t list;                      (** premise facts of the step *)
}

type t = {
  goal : Fact.t;
  steps : step list;  (** τ: dependency order, premises before conclusions *)
}

val of_fact : Database.t -> Provenance.t -> Fact.t -> t option
(** The fact's primary proof (the first derivation the chase found for
    every sub-fact); [None] when the fact is extensional (nothing to
    explain). *)

val shortest_of_fact : Database.t -> Provenance.t -> Fact.t -> t option
(** Like {!of_fact}, but choosing for every sub-fact the recorded
    derivation that minimizes the proof's tree cost — the most compact
    explanation when a fact was derived in several ways. *)

val length : t -> int
(** Number of chase steps — the x-axis of Figures 17 and 18. *)

val truncate : t -> horizon:int -> t * Fact.t list
(** Keep only the steps within [horizon] derivation hops of the goal
    (the "recent history" an analyst asks for on a very long cascade).
    Returns the truncated proof plus the intensional facts now taken as
    assumptions — their own derivations fell outside the horizon.
    [truncate p ~horizon:n] with [n ≥] the proof's depth is the
    identity with no assumptions. Raises [Invalid_argument] when
    [horizon < 1]. *)

val rule_sequence : t -> string list
(** Rule labels of τ in order, e.g. [\["alpha"; "beta"; "gamma"\]]. *)

val facts_used : t -> Fact.t list
(** Every fact appearing in the proof (premises and conclusions),
    deduplicated, in first-use order. *)

val constants : t -> Ekg_kernel.Value.t list
(** Distinct constants appearing in the proof's facts — the paper's
    completeness measure counts how many survive into the final text. *)

val to_string : t -> string
(** One chase step per line, for debugging and golden tests. *)
