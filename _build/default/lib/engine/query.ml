open Ekg_datalog

let ask db atom = Database.matching db atom Subst.empty

let ask_one db atom =
  match ask db atom with
  | (f, _) :: _ -> Some f
  | [] -> None

let holds db atom = ask db atom <> []

let parse_and_ask db s =
  match Parser.parse_atom s with
  | Ok a -> Ok (ask db a)
  | Error e -> Error e
