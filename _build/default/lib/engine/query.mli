(** Queries over a materialized instance: pattern matching against the
    active facts, used both for reasoning-task answers and to resolve
    explanation queries Q_e = {fact} (§4.3). *)

open Ekg_datalog

val ask : Database.t -> Atom.t -> (Fact.t * Subst.t) list
(** All active facts the (possibly non-ground) atom maps onto. *)

val ask_one : Database.t -> Atom.t -> Fact.t option
(** First match, if any. *)

val holds : Database.t -> Atom.t -> bool

val parse_and_ask : Database.t -> string -> ((Fact.t * Subst.t) list, string) result
(** Parse an atom such as ["control(\"B\", \"D\")"] and query it. *)
