open Ekg_datalog

let strata (p : Program.t) =
  if not (Program.uses_negation p) then Ok [ p.rules ]
  else begin
    let preds = Program.preds p in
    let stratum = Hashtbl.create 16 in
    List.iter (fun q -> Hashtbl.replace stratum q 0) preds;
    let get q = Hashtbl.find stratum q in
    let changed = ref true in
    let iterations = ref 0 in
    let bound = List.length preds + 1 in
    let too_deep = ref false in
    while !changed && not !too_deep do
      changed := false;
      incr iterations;
      if !iterations > bound * bound then too_deep := true
      else
        List.iter
          (fun (r : Rule.t) ->
            let h = Rule.head_pred r in
            let require n =
              if get h < n then begin
                Hashtbl.replace stratum h n;
                changed := true
              end
            in
            List.iter (fun (a : Atom.t) -> require (get a.pred)) (Rule.positive_atoms r);
            List.iter (fun (a : Atom.t) -> require (get a.pred + 1)) (Rule.negative_atoms r);
            if get h >= bound then too_deep := true)
          p.rules
    done;
    if !too_deep then Error "program is not stratifiable (recursion through negation)"
    else begin
      let max_stratum =
        List.fold_left (fun acc (r : Rule.t) -> max acc (get (Rule.head_pred r))) 0 p.rules
      in
      let groups =
        List.init (max_stratum + 1) (fun i ->
            List.filter (fun r -> get (Rule.head_pred r) = i) p.rules)
      in
      Ok (List.filter (fun g -> g <> []) groups)
    end
  end
