(** Stratification for programs with negation.

    Assigns each rule to a stratum such that a predicate is never
    negated within its own stratum; fails on recursion through
    negation, which the chase cannot evaluate. *)

open Ekg_datalog

val strata : Program.t -> (Rule.t list list, string) result
(** Rules grouped by ascending stratum; programs without negation
    yield a single stratum. *)
