type witness = Fact.t list

module IntSet = Set.Make (Int)

(* The recorded derivations form a DAG (premise ids precede the
   conclusion's), so a memoized recursion terminates.  Witnesses are
   id-sets; products of premises' witnesses are unions. *)
let witness_sets ?(max_witnesses = 64) (prov : Provenance.t) goal_id =
  let memo : (int, IntSet.t list) Hashtbl.t = Hashtbl.create 64 in
  let truncate l =
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take max_witnesses l
  in
  let dedup sets =
    let rec go acc = function
      | [] -> List.rev acc
      | s :: rest ->
        if List.exists (IntSet.equal s) acc then go acc rest else go (s :: acc) rest
    in
    go [] sets
  in
  (* keep only minimal sets: drop any strict superset of another *)
  let minimize sets =
    List.filter
      (fun s ->
        not
          (List.exists (fun s' -> (not (IntSet.equal s s')) && IntSet.subset s' s) sets))
      sets
  in
  let rec compute id =
    match Hashtbl.find_opt memo id with
    | Some ws -> ws
    | None ->
      let result =
        match Provenance.alternatives prov id with
        | [] -> [ IntSet.singleton id ] (* extensional *)
        | derivations ->
          let per_derivation (d : Provenance.derivation) =
            (* product: one witness from each premise, unioned *)
            List.fold_left
              (fun acc premise ->
                let ws = compute premise in
                truncate
                  (List.concat_map (fun a -> List.map (IntSet.union a) ws) acc))
              [ IntSet.empty ] d.premises
          in
          minimize (dedup (truncate (List.concat_map per_derivation derivations)))
      in
      Hashtbl.replace memo id result;
      result
  in
  compute goal_id

let why ?max_witnesses db prov (goal : Fact.t) =
  witness_sets ?max_witnesses prov goal.id
  |> List.map (fun s -> List.map (Database.fact db) (IntSet.elements s))

let polynomial ?max_witnesses db prov goal =
  let witnesses = why ?max_witnesses db prov goal in
  witnesses
  |> List.map (fun w -> String.concat "·" (List.map Fact.to_string w))
  |> String.concat " + "
