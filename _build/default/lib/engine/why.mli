(** Why-provenance: the witness sets of a derived fact (§2's data
    provenance lineage — Buneman et al.'s why-provenance, Green et
    al.'s provenance semirings).

    A witness is a set of extensional facts sufficient to re-derive the
    fact; the why-provenance is the set of minimal witnesses, the
    positive provenance polynomial with each product listed once.
    Complements the paper's proof-based explanations: the proof says
    {e how} the chase derived the fact, the witnesses say {e which
    data} it rests on — the paper's "origin of the facts … from the
    original tuples in the database D" (§1). *)

type witness = Fact.t list
(** Sorted by fact id, duplicate-free. *)

val why :
  ?max_witnesses:int -> Database.t -> Provenance.t -> Fact.t -> witness list
(** The minimal witnesses of a fact, built over every recorded
    derivation (including alternatives).  An extensional fact is its
    own single witness.  The computation is capped at [max_witnesses]
    (default 64) intermediate witnesses per fact to bound the
    combinatorial blow-up; when the cap bites, the result is a sound
    subset of the why-provenance. *)

val polynomial : ?max_witnesses:int -> Database.t -> Provenance.t -> Fact.t -> string
(** Render as a provenance polynomial over the extensional facts, e.g.
    ["own(\"A\",\"B\",0.6)·company(\"A\") + own(\"A\",\"B\",0.6)·…"]. *)
