lib/graphlib/digraph.ml: Buffer Hashtbl List Map Printf Set String
