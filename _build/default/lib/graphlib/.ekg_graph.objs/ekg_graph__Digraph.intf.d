lib/graphlib/digraph.mli:
