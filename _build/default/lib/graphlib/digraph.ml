module SMap = Map.Make (String)
module SSet = Set.Make (String)

type 'a edge = {
  src : string;
  dst : string;
  label : 'a;
}

type 'a t = {
  mutable node_set : SSet.t;
  mutable out_edges : 'a edge list SMap.t; (* newest first *)
  mutable in_edges : 'a edge list SMap.t;
}

let create () = { node_set = SSet.empty; out_edges = SMap.empty; in_edges = SMap.empty }
let copy t = { node_set = t.node_set; out_edges = t.out_edges; in_edges = t.in_edges }

let add_node t n = t.node_set <- SSet.add n t.node_set

let edge_list m k = match SMap.find_opt k m with Some es -> es | None -> []

let add_edge t ~src ~dst ~label =
  add_node t src;
  add_node t dst;
  let e = { src; dst; label } in
  if not (List.mem e (edge_list t.out_edges src)) then begin
    t.out_edges <- SMap.add src (e :: edge_list t.out_edges src) t.out_edges;
    t.in_edges <- SMap.add dst (e :: edge_list t.in_edges dst) t.in_edges
  end

let remove_edge t ~src ~dst ~label =
  let e = { src; dst; label } in
  let drop es = List.filter (fun e' -> e' <> e) es in
  t.out_edges <- SMap.add src (drop (edge_list t.out_edges src)) t.out_edges;
  t.in_edges <- SMap.add dst (drop (edge_list t.in_edges dst)) t.in_edges

let mem_node t n = SSet.mem n t.node_set

let mem_edge t ~src ~dst = List.exists (fun e -> e.dst = dst) (edge_list t.out_edges src)

let nodes t = SSet.elements t.node_set

let compare_edge a b =
  match String.compare a.src b.src with
  | 0 -> String.compare a.dst b.dst
  | c -> c

let edges t =
  SMap.fold (fun _ es acc -> List.rev_append es acc) t.out_edges []
  |> List.stable_sort compare_edge

let succ t n = List.rev (edge_list t.out_edges n)
let pred t n = List.rev (edge_list t.in_edges n)
let out_degree t n = List.length (edge_list t.out_edges n)
let in_degree t n = List.length (edge_list t.in_edges n)
let node_count t = SSet.cardinal t.node_set
let edge_count t = SMap.fold (fun _ es acc -> acc + List.length es) t.out_edges 0

let closure next t start =
  let visited = ref SSet.empty in
  let rec go n =
    if not (SSet.mem n !visited) then begin
      visited := SSet.add n !visited;
      List.iter go (next t n)
    end
  in
  if mem_node t start then go start;
  SSet.elements !visited

let reachable_from t n = closure (fun t n -> List.map (fun e -> e.dst) (succ t n)) t n
let co_reachable t n = closure (fun t n -> List.map (fun e -> e.src) (pred t n)) t n

let depends_on t a a' = List.mem a (reachable_from t a')

(* Tarjan's strongly connected components. *)
let sccs t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun e ->
        let w = e.dst in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := List.sort String.compare (pop []) :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes t);
  !components

let has_self_loop t n = List.exists (fun e -> e.dst = n) (succ t n)

let nodes_on_cycles t =
  let from_sccs =
    sccs t |> List.filter (fun c -> List.length c > 1) |> List.concat
  in
  let self_loops = List.filter (has_self_loop t) (nodes t) in
  SSet.elements (SSet.union (SSet.of_list from_sccs) (SSet.of_list self_loops))

let is_cyclic t = nodes_on_cycles t <> []

let edge_on_cycle t e =
  if e.src = e.dst then true
  else
    List.exists (fun c -> List.mem e.src c && List.mem e.dst c && List.length c > 1) (sccs t)
    (* src and dst in the same non-trivial SCC means the edge can be
       closed into a cycle only if the edge itself participates; for a
       multigraph, any edge inside an SCC lies on a cycle because the
       SCC provides a return path from dst to src. *)

let topological_sort t =
  if is_cyclic t then None
  else begin
    let in_deg = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace in_deg n (in_degree t n)) (nodes t);
    let ready = List.filter (fun n -> Hashtbl.find in_deg n = 0) (nodes t) in
    let rec go acc = function
      | [] -> List.rev acc
      | n :: rest ->
        let newly_ready =
          List.filter_map
            (fun e ->
              let d = Hashtbl.find in_deg e.dst - 1 in
              Hashtbl.replace in_deg e.dst d;
              if d = 0 then Some e.dst else None)
            (succ t n)
        in
        go (n :: acc) (List.merge String.compare (List.sort String.compare newly_ready) rest)
    in
    Some (go [] ready)
  end

let to_dot ?(name = "G") ~label_to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  %S;\n" n)) (nodes t);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S];\n" e.src e.dst (label_to_string e.label)))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
