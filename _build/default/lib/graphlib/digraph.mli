(** Directed multigraphs with string nodes and labelled edges.

    Both graphs manipulated by the system — the dependency graph D(Σ)
    of a rule program (nodes = predicates, edge labels = rule ids) and
    knowledge-graph visualizations used in the comprehension study —
    are instances of this structure.  Parallel edges with distinct
    labels are allowed; a duplicate (src, label, dst) triple is kept
    only once. *)

type 'a t

type 'a edge = {
  src : string;
  dst : string;
  label : 'a;
}

val create : unit -> 'a t
val copy : 'a t -> 'a t

val add_node : 'a t -> string -> unit
(** Idempotent. *)

val add_edge : 'a t -> src:string -> dst:string -> label:'a -> unit
(** Adds missing endpoints; idempotent on exact triples (by structural
    equality of labels). *)

val remove_edge : 'a t -> src:string -> dst:string -> label:'a -> unit

val mem_node : 'a t -> string -> bool
val mem_edge : 'a t -> src:string -> dst:string -> bool

val nodes : 'a t -> string list
(** Sorted. *)

val edges : 'a t -> 'a edge list
(** Sorted by (src, dst). *)

val succ : 'a t -> string -> 'a edge list
(** Outgoing edges. *)

val pred : 'a t -> string -> 'a edge list
(** Incoming edges. *)

val out_degree : 'a t -> string -> int
val in_degree : 'a t -> string -> int

val node_count : 'a t -> int
val edge_count : 'a t -> int

(** {1 Algorithms} *)

val reachable_from : 'a t -> string -> string list
(** Nodes reachable from the given node (inclusive), sorted. *)

val co_reachable : 'a t -> string -> string list
(** Nodes from which the given node is reachable (inclusive), sorted. *)

val depends_on : 'a t -> string -> string -> bool
(** [depends_on g a a'] holds iff there is a (non-empty or empty) path
    from [a'] to [a]: the paper's [a' ≺ a] relation. *)

val is_cyclic : 'a t -> bool

val sccs : 'a t -> string list list
(** Strongly connected components (Tarjan), in reverse topological
    order of the condensation; each component sorted. *)

val nodes_on_cycles : 'a t -> string list
(** Nodes belonging to some cycle: members of non-trivial SCCs, plus
    self-loop nodes.  Sorted. *)

val edge_on_cycle : 'a t -> 'a edge -> bool
(** True iff the edge lies on some cycle (src and dst in the same SCC,
    or a self-loop). *)

val topological_sort : 'a t -> string list option
(** [None] when the graph is cyclic. *)

val to_dot : ?name:string -> label_to_string:('a -> string) -> 'a t -> string
(** GraphViz rendering for documentation and debugging. *)
