lib/kernel/money.ml: Float Printf String
