lib/kernel/money.mli:
