lib/kernel/prng.ml: Array Float Int64 List
