lib/kernel/prng.mli:
