lib/kernel/textutil.ml: Buffer Char List String
