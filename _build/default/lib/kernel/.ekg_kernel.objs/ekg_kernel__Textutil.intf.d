lib/kernel/textutil.mli:
