lib/kernel/value.ml: Bool Float Format Hashtbl Int Printf Stdlib String
