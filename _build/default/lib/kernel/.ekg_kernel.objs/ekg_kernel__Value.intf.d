lib/kernel/value.mli: Format
