let strip_trailing_zeros s =
  if String.contains s '.' then begin
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '0' do
      decr n
    done;
    if !n > 0 && s.[!n - 1] = '.' then decr n;
    String.sub s 0 !n
  end
  else s

let plain f =
  if Float.is_integer f then Printf.sprintf "%.0f" f
  else strip_trailing_zeros (Printf.sprintf "%.2f" f)

let euros amount =
  let a = Float.abs amount in
  if a >= 1e9 then plain (amount /. 1e9) ^ " billion euros"
  else if a >= 1e6 then plain (amount /. 1e6) ^ " million euros"
  else plain amount ^ " euros"

let compact amount =
  let a = Float.abs amount in
  if a >= 1e9 then plain (amount /. 1e9) ^ "B"
  else if a >= 1e6 then plain (amount /. 1e6) ^ "M"
  else if a >= 1e3 then plain (amount /. 1e3) ^ "K"
  else plain amount

let percent share = plain (share *. 100.) ^ "%"

let of_millions m = m *. 1e6
