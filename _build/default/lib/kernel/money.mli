(** Rendering of monetary amounts and percentages in business reports.

    The paper's explanations render exposures as e.g. ["14 million
    euros"] (or compactly ["14M"]) and ownership shares as
    percentages (["83%"]). *)

val euros : float -> string
(** [euros 14_000_000.] is ["14 million euros"]; amounts below one
    million render plainly (["7500 euros"]); billions use
    ["billion"]. *)

val compact : float -> string
(** [compact 14_000_000.] is ["14M"]; [compact 2_500.] is ["2.5K"]. *)

val percent : float -> string
(** [percent 0.83] is ["83%"] (shares are stored as fractions). *)

val of_millions : float -> float
(** [of_millions 14.] is [14_000_000.] — convenience for test data. *)
