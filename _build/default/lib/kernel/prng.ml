type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let float t bound =
  (* 53 uniform mantissa bits *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bits = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem bits (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample_without_replacement t k xs =
  let shuffled = shuffle t xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled
