(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (synthetic data,
    simulated respondents, the LLM omission model) draws from a seeded
    [Prng.t] so that all experiment outputs are bit-reproducible. *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a generator with a decorrelated
    stream, for handing to sub-components. *)

val next_int64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] picks [min k (length xs)]
    distinct elements, preserving no particular order. *)
