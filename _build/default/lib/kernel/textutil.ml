let join_with_final ~final = function
  | [] -> ""
  | [ x ] -> x
  | xs ->
    let rec go = function
      | [] -> ""
      | [ x ] -> x
      | [ x; y ] -> x ^ " " ^ final ^ " " ^ y
      | x :: rest -> x ^ ", " ^ go rest
    in
    go xs

let join_and xs = join_with_final ~final:"and" xs
let join_or xs = join_with_final ~final:"or" xs

let capitalize_sentence s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

let ensure_period s =
  let s = String.trim s in
  if s = "" then s
  else
    match s.[String.length s - 1] with
    | '.' | '!' | '?' -> s
    | _ -> s ^ "."

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let normalize_spaces s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      if is_space c then pending := true
      else begin
        if !pending && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

let words s =
  String.split_on_char ' ' (normalize_spaces s) |> List.filter (fun w -> w <> "")

let sentences s =
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let buf = Buffer.create 64 in
  let acc = ref [] in
  let flush () =
    let t = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if t <> "" then acc := t :: !acc
  in
  String.iteri
    (fun i c ->
      match c with
      | '.' when i > 0 && i + 1 < n && is_digit s.[i - 1] && is_digit s.[i + 1] ->
        (* decimal point, e.g. "90.52%": not a sentence boundary *)
        Buffer.add_char buf c
      | '.' | '!' | '?' -> flush ()
      | _ -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !acc

let word_count s = List.length (words s)
let sentence_count s = List.length (sentences s)

let is_vowel c =
  match Char.lowercase_ascii c with
  | 'a' | 'e' | 'i' | 'o' | 'u' | 'y' -> true
  | _ -> false

let syllables_of_word w =
  let n = String.length w in
  let count = ref 0 in
  let in_group = ref false in
  for i = 0 to n - 1 do
    if is_vowel w.[i] then begin
      if not !in_group then incr count;
      in_group := true
    end
    else in_group := false
  done;
  (* silent final e *)
  let c = if n >= 2 && Char.lowercase_ascii w.[n - 1] = 'e' && !count > 1 then !count - 1 else !count in
  max 1 c

let syllable_estimate s = List.fold_left (fun acc w -> acc + syllables_of_word w) 0 (words s)

let is_token_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokens s =
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Buffer.contents buf :: !acc;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_token_char c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !acc

let contains_word text w = List.mem w (tokens text)

let replace_all s ~pattern ~by =
  if pattern = "" then s
  else begin
    let buf = Buffer.create (String.length s) in
    let plen = String.length pattern in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if !i + plen <= n && String.sub s !i plen = pattern then begin
        Buffer.add_string buf by;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let wrap ~width s =
  if width < 1 then invalid_arg "Textutil.wrap: width must be positive";
  let rec go line acc = function
    | [] -> List.rev (if line = "" then acc else line :: acc)
    | w :: rest ->
      if line = "" then go w acc rest
      else if String.length line + 1 + String.length w <= width then
        go (line ^ " " ^ w) acc rest
      else go w (line :: acc) rest
  in
  String.concat "\n" (go "" [] (words s))

let split_on_string ~sep s =
  if sep = "" then invalid_arg "Textutil.split_on_string: empty separator";
  let slen = String.length sep in
  let n = String.length s in
  let acc = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i <= n - slen do
    if String.sub s !i slen = sep then begin
      acc := String.sub s !start (!i - !start) :: !acc;
      i := !i + slen;
      start := !i
    end
    else incr i
  done;
  acc := String.sub s !start (n - !start) :: !acc;
  List.rev !acc
