(** Small text-processing toolbox used by the verbalizer, the template
    enhancer, the simulated LLM and the readability metrics. *)

val join_and : string list -> string
(** ["a", "b", "c"] becomes ["a, b and c"]; singletons unchanged. *)

val join_or : string list -> string

val capitalize_sentence : string -> string
(** Upper-case the first letter, leaving the rest untouched. *)

val ensure_period : string -> string
(** Append ["."] unless the string already ends with sentence
    punctuation. *)

val normalize_spaces : string -> string
(** Collapse runs of whitespace to single spaces and trim. *)

val words : string -> string list
(** Split on whitespace, dropping empties. *)

val sentences : string -> string list
(** Split on [.!?] boundaries, trimming; drops empty fragments. *)

val word_count : string -> int
val sentence_count : string -> int

val syllable_estimate : string -> int
(** Heuristic English syllable count (vowel groups, min 1/word). *)

val contains_word : string -> string -> bool
(** [contains_word text w] tests whole-token containment,
    case-sensitively, where tokens are maximal alphanumeric runs. *)

val replace_all : string -> pattern:string -> by:string -> string
(** Replace every (non-overlapping) occurrence of [pattern]. *)

val starts_with : prefix:string -> string -> bool
val split_on_string : sep:string -> string -> string list

val wrap : width:int -> string -> string
(** Greedy word wrap; words longer than [width] get their own line.
    Raises [Invalid_argument] when [width < 1]. *)
