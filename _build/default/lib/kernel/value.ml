type t =
  | Int of int
  | Num of float
  | Str of string
  | Bool of bool
  | Null of int

let int i = Int i
let num f = Num f
let str s = Str s
let bool b = Bool b
let null i = Null i

let is_null = function Null _ -> true | Int _ | Num _ | Str _ | Bool _ -> false

let tag = function
  | Int _ -> 0
  | Num _ -> 0 (* same tag: numerics compare together *)
  | Str _ -> 1
  | Bool _ -> 2
  | Null _ -> 3

let to_float = function
  | Int i -> Some (float_of_int i)
  | Num f -> Some f
  | Str _ | Bool _ | Null _ -> None

let as_float v =
  match to_float v with
  | Some f -> f
  | None -> invalid_arg "Value.as_float: non-numeric value"

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | (Int _ | Num _), (Int _ | Num _) -> Float.compare (as_float a) (as_float b)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Null x, Null y -> Int.compare x y
  | _, _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Int i -> Hashtbl.hash (float_of_int i)
  | Num f ->
    (* hash integral floats like the corresponding int so that
       [equal a b] implies [hash a = hash b] *)
    Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  | Null i -> Hashtbl.hash (0x6e75, i)

(* Arithmetic stays in [Int] when both operands are integers (except
   division), otherwise promotes to [Num]. *)
let arith name int_op float_op a b =
  match a, b with
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Num _), (Int _ | Num _) -> Num (float_op (as_float a) (as_float b))
  | _, _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operand")

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | (Int _ | Num _), (Int _ | Num _) -> Num (as_float a /. as_float b)
  | _, _ -> invalid_arg "Value.div: non-numeric operand"

let neg = function
  | Int i -> Int (-i)
  | Num f -> Num (-.f)
  | Str _ | Bool _ | Null _ -> invalid_arg "Value.neg: non-numeric operand"

let min_v a b = if compare a b <= 0 then a else b
let max_v a b = if compare a b >= 0 then a else b

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    Printf.sprintf "%g" f

let to_string = function
  | Int i -> string_of_int i
  | Num f -> float_to_string f
  | Str s -> "\"" ^ String.escaped s ^ "\""
  | Bool b -> string_of_bool b
  | Null i -> Printf.sprintf "ν%d" i

let to_display = function
  | Str s -> s
  | Num f -> float_to_string f
  | (Int _ | Bool _ | Null _) as v -> to_string v

let pp fmt v = Format.pp_print_string fmt (to_string v)
