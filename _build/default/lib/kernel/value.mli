(** Typed constants of the reasoning substrate.

    Vadalog values are drawn from a countably infinite set of constants.
    We support the carrier types needed by the paper's financial
    applications: integers, reals, strings and booleans, plus labelled
    nulls introduced by existential quantification in rule heads. *)

type t =
  | Int of int          (** machine integer *)
  | Num of float        (** real number (shares, exposures, ...) *)
  | Str of string       (** entity identifiers, channel tags, ... *)
  | Bool of bool        (** truth values produced by built-ins *)
  | Null of int         (** labelled null [ν_i] from existential heads *)

(** {1 Construction} *)

val int : int -> t
val num : float -> t
val str : string -> t
val bool : bool -> t
val null : int -> t

(** {1 Classification} *)

val is_null : t -> bool

(** {1 Comparison}

    A total order: values of the same carrier compare naturally, values
    of different carriers compare by carrier tag.  [Int] and [Num] are
    compared numerically so that [Int 1 = Num 1.0] holds, as in Vadalog
    where both denote the same number. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Numeric views} *)

val to_float : t -> float option
(** [to_float v] is the numeric value of [v], if it is numeric. *)

val as_float : t -> float
(** Like {!to_float} but raises [Invalid_argument] for non-numerics. *)

(** {1 Arithmetic}

    Binary arithmetic promotes [Int] to [Num] when the operands mix
    carriers; division always yields [Num].  All functions raise
    [Invalid_argument] on non-numeric operands. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t

(** {1 Printing} *)

val to_string : t -> string
(** Render for diagnostics and Datalog syntax: strings are quoted. *)

val to_display : t -> string
(** Render for natural-language output: strings are unquoted, integral
    floats drop the trailing [.0]. *)

val pp : Format.formatter -> t -> unit
