lib/llm/anonymize.ml: Buffer Ekg_kernel Int List Printf String Textutil
