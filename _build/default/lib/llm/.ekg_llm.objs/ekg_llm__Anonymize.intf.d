lib/llm/anonymize.mli:
