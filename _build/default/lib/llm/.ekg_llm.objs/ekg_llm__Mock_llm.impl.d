lib/llm/mock_llm.ml: Array Ekg_kernel Float Hashtbl List Prng String Textutil
