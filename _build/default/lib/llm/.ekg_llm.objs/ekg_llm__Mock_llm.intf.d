lib/llm/mock_llm.mli:
