lib/llm/omission.ml: Array Buffer List String
