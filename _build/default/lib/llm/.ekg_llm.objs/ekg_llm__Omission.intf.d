lib/llm/omission.mli:
