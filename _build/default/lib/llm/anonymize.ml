open Ekg_kernel

type mapping = (string * string) list

(* whole-word replacement: the entity must not be embedded in a larger
   alphanumeric token *)
let replace_word text ~word ~by =
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let n = String.length text and m = String.length word in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if
      !i + m <= n
      && String.sub text !i m = word
      && (!i = 0 || not (is_word_char text.[!i - 1]))
      && (!i + m = n || not (is_word_char text.[!i + m]))
    then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let pseudonymize ~entities text =
  let distinct =
    List.sort_uniq String.compare (List.filter (fun e -> e <> "") entities)
  in
  (* longest first so longer names are replaced before their prefixes *)
  let by_length =
    List.stable_sort (fun a b -> Int.compare (String.length b) (String.length a)) distinct
  in
  (* pseudonym numbers follow the caller's order for stability *)
  let numbered = List.mapi (fun i e -> (e, Printf.sprintf "Entity-%d" (i + 1))) distinct in
  let mapping =
    List.map (fun e -> (e, List.assoc e numbered)) by_length
  in
  let anonymized =
    List.fold_left
      (fun acc (original, pseudonym) -> replace_word acc ~word:original ~by:pseudonym)
      text mapping
  in
  (anonymized, List.map (fun e -> (e, List.assoc e numbered)) distinct)

let reidentify mapping text =
  List.fold_left
    (fun acc (original, pseudonym) -> Textutil.replace_all acc ~pattern:pseudonym ~by:original)
    text mapping
