(** Entity pseudonymization for explanations (§1, "LLMs and Data
    Privacy": anonymization as the practical alternative when text must
    leave the organization).

    Replaces entity names in a business report with stable pseudonyms
    (Entity-1, Entity-2, …), keeping a mapping for later
    re-identification.  Monetary amounts and shares are left intact —
    the paper notes that anonymizing unstructured text is exactly what
    remains hard, and this module covers only the tractable
    named-entity part; it exists so the trade-off can be measured. *)

type mapping = (string * string) list
(** pairs (original, pseudonym) *)

val pseudonymize : entities:string list -> string -> string * mapping
(** [pseudonymize ~entities text] replaces every whole-word occurrence
    of each entity, longest names first (so ["IrishBankHolding"] is not
    half-replaced through ["IrishBank"]).  Pseudonyms are assigned in
    order of the [entities] list. *)

val reidentify : mapping -> string -> string
(** Inverse rewriting. [reidentify m (fst (pseudonymize ~entities t))]
    restores [t] whenever no pseudonym collides with existing text. *)
