open Ekg_kernel

type task =
  | Paraphrase
  | Summarize

type config = {
  seed : int;
  para_max : float;
  para_mid : float;
  para_rate : float;
  sum_max : float;
  sum_mid : float;
  sum_rate : float;
  hallucination_rate : float;
}

let default_config =
  {
    seed = 20250325;
    para_max = 0.40;
    para_mid = 17.;
    para_rate = 0.22;
    sum_max = 0.70;
    sum_mid = 11.;
    sum_rate = 0.28;
    hallucination_rate = 0.;
  }

let omission_probability cfg task ~proof_length =
  let l = float_of_int proof_length in
  let logistic pmax mid rate = pmax /. (1. +. Float.exp (-.rate *. (l -. mid))) in
  match task with
  | Paraphrase -> logistic cfg.para_max cfg.para_mid cfg.para_rate
  | Summarize -> logistic cfg.sum_max cfg.sum_mid cfg.sum_rate

(* --- surface rewriting -------------------------------------------------- *)

let synonym_sets =
  [|
    [
      ("Since ", "Given that ");
      (", then ", ", ");
      (" is higher than ", " exceeds ");
      (" is lower than ", " is below ");
      ("amounting to ", "of ");
    ];
    [
      ("Since ", "Because ");
      (", then ", ", consequently ");
      (" is higher than ", " surpasses ");
      (" is lower than ", " falls short of ");
      (" is in default", " defaults");
    ];
    [
      ("Since ", "As ");
      (", then ", ", so ");
      (" is higher than ", " is greater than ");
      (" is lower than ", " is smaller than ");
    ];
  |]

let apply_pairs pairs text =
  List.fold_left (fun acc (pattern, by) -> Textutil.replace_all acc ~pattern ~by) text pairs

(* Remove one constant from the text the way an LLM summary elides a
   figure: amounts become vague quantifiers, entities become pronouns.
   Common carrier phrases ("of X", "to X") are collapsed. *)
let elide_constant text constant =
  let vague =
    if
      List.exists
        (fun unit_word -> Textutil.contains_word constant unit_word)
        [ "euros"; "euro"; "million"; "billion" ]
      || String.contains constant '%'
    then "a significant amount"
    else "the entity"
  in
  let attempts =
    [
      ("amounting to " ^ constant, "");
      ("of " ^ constant, "");
      ("to " ^ constant, "to " ^ vague);
      (constant, vague);
    ]
  in
  List.fold_left
    (fun acc (pattern, by) -> Textutil.replace_all acc ~pattern ~by)
    text attempts

(* Drop the arithmetic-justification clauses ("and 83% is higher than
   50%"): summaries and tight paraphrases skip the threshold check, and
   the constants involved also occur in their carrier clauses. *)
let comparison_markers =
  [
    " is higher than ";
    " is lower than ";
    " is at least ";
    " is at most ";
    " exceeds ";
    " is below ";
    " surpasses ";
    " falls short of ";
    " is greater than ";
    " is smaller than ";
  ]

let drop_condition_clauses text =
  let sentences = Textutil.sentences text in
  let strip sentence =
    let segments = Textutil.split_on_string ~sep:", " sentence in
    let keep seg =
      not
        (List.exists
           (fun marker -> List.length (Textutil.split_on_string ~sep:marker seg) > 1)
           comparison_markers)
    in
    match List.filter keep segments with
    | [] -> sentence
    | kept -> String.concat ", " kept
  in
  String.concat ". " (List.map strip sentences) ^ "."

(* Fuse sentence pairs: drop the scaffolding of the second sentence and
   join with a semicolon, the way summaries compress chains. *)
let fuse_sentences text =
  let sentences = Textutil.sentences text in
  let rec fuse = function
    | a :: b :: rest ->
      let b' = apply_pairs [ ("Given that ", ""); ("Since ", ""); ("Because ", "") ] b in
      (a ^ "; " ^ b') :: fuse rest
    | [ last ] -> [ last ]
    | [] -> []
  in
  String.concat ". " (fuse sentences) ^ "."

let rewrite ?(config = default_config) task ~proof_length ~constants text =
  (* derive a per-input deterministic stream: same text, same answer *)
  let rng =
    Prng.create (config.seed + (Hashtbl.hash (task, proof_length, text) land 0xFFFFFF))
  in
  let style = Prng.int rng (Array.length synonym_sets) in
  let text = apply_pairs synonym_sets.(style) text in
  let p = omission_probability config task ~proof_length in
  let distinct =
    List.sort_uniq String.compare (List.filter (fun c -> c <> "") constants)
  in
  let text =
    List.fold_left
      (fun acc c -> if Prng.bernoulli rng p then elide_constant acc c else acc)
      text distinct
  in
  let text = drop_condition_clauses text in
  (* rare fabrications: a fluent but unsupported claim, the failure
     mode the template approach rules out by construction *)
  let text =
    if Prng.bernoulli rng config.hallucination_rate then
      text
      ^ " Moreover, Meridian Trust also holds a significant stake of 42% in the group."
    else text
  in
  ignore fuse_sentences;
  Textutil.normalize_spaces text
