(** Simulated LLM baseline (see DESIGN.md §3, substitution 1).

    The paper's baselines prompt ChatGPT with "Generate a paraphrased /
    summarized version of the following text:" over the deterministic
    proof verbalization.  This module reproduces the two observable
    properties those baselines exhibit in the paper's experiments:

    - short inputs come back fluent and essentially complete;
    - as proofs grow, the output {e omits constants}, and the
      summarization prompt omits more than the paraphrasing one
      (Figure 17).

    Rewriting is deterministic given the seed: synonym and connector
    rewrites plus sentence fusion model the fluency gain, and a
    calibrated logistic omission model drops a growing share of the
    input's constants. *)

type task =
  | Paraphrase
  | Summarize

type config = {
  seed : int;
  para_max : float;      (** asymptotic omission ratio, paraphrase *)
  para_mid : float;      (** chase steps at half the asymptote *)
  para_rate : float;     (** logistic steepness *)
  sum_max : float;
  sum_mid : float;
  sum_rate : float;
  hallucination_rate : float;
      (** probability of fabricating an unsupported claim per rewrite —
          the paper's "in some rare cases, even hallucinations" (§1);
          0 in {!default_config} so the Figure 16/17 calibration is
          unaffected *)
}

val default_config : config
(** Calibrated against the levels readable from the paper's Figure 17. *)

val omission_probability : config -> task -> proof_length:int -> float
(** The per-constant drop probability at a given proof length. *)

val rewrite :
  ?config:config ->
  task ->
  proof_length:int ->
  constants:string list ->
  string ->
  string
(** [rewrite task ~proof_length ~constants text] is the simulated LLM
    answer.  [constants] are the display forms of the proof's constants
    as they occur in [text]; each is dropped independently with
    {!omission_probability}, replaced by a vague phrase the way LLM
    summaries elide figures.  The same (config, task, proof_length,
    constants, text) always produces the same output. *)
