(* Tokenize into maximal alphanumeric runs, keeping '.' only between
   digits so "6.87" stays one token while "euros." loses its period and
   "long-term" splits into "long" and "term".  The same tokenizer is
   applied to the text and to the constants, so matching is stable. *)
let tokens s =
  let n = String.length s in
  let is_alnum c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let is_digit c = c >= '0' && c <= '9' in
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Buffer.contents buf :: !acc;
      Buffer.clear buf
    end
  in
  String.iteri
    (fun i c ->
      if is_alnum c then Buffer.add_char buf c
      else if
        c = '.' && i > 0 && i + 1 < n && is_digit s.[i - 1] && is_digit s.[i + 1]
      then Buffer.add_char buf c
      else flush ())
    s;
  flush ();
  List.rev !acc

let contains_phrase text phrase =
  let text_toks = Array.of_list (tokens text) in
  let phrase_toks = Array.of_list (tokens phrase) in
  let n = Array.length text_toks and m = Array.length phrase_toks in
  if m = 0 then true
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if not !found then begin
        let ok = ref true in
        for j = 0 to m - 1 do
          if text_toks.(i + j) <> phrase_toks.(j) then ok := false
        done;
        if !ok then found := true
      end
    done;
    !found
  end

let retained ~constants text =
  let distinct = List.sort_uniq String.compare constants in
  List.filter (contains_phrase text) distinct

let retained_ratio ~constants text =
  let distinct = List.sort_uniq String.compare constants in
  match distinct with
  | [] -> 1.0
  | _ ->
    float_of_int (List.length (retained ~constants text))
    /. float_of_int (List.length distinct)

let omitted_ratio ~constants text = 1. -. retained_ratio ~constants text
