(** Measuring information loss in generated explanations (§6.3).

    The paper quantifies completeness as the ratio between the
    constants present in the textual explanation and the constants the
    correct inference requires.  Constants are matched as whole-token
    phrases (so the entity "B" does not match inside "Bank"). *)

val contains_phrase : string -> string -> bool
(** [contains_phrase text phrase] — consecutive-token containment. *)

val retained : constants:string list -> string -> string list
(** The constants (display forms) present in the text. *)

val retained_ratio : constants:string list -> string -> float
(** |retained| / |constants|; 1.0 on an empty constant list. *)

val omitted_ratio : constants:string list -> string -> float
(** 1 − {!retained_ratio} — the y-axis of Figure 17. *)
