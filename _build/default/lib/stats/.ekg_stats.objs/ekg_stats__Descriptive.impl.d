lib/stats/descriptive.ml: Array Float List Printf String
