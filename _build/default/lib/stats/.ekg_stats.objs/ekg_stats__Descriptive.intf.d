lib/stats/descriptive.mli:
