lib/stats/likert.ml: Array Descriptive Float List
