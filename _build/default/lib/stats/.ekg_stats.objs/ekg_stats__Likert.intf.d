lib/stats/likert.mli:
