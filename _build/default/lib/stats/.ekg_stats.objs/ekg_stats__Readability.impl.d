lib/stats/readability.ml: Ekg_kernel Float List String Textutil
