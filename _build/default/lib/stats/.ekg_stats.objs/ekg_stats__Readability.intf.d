lib/stats/readability.mli:
