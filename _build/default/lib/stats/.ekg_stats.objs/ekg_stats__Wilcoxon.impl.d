lib/stats/wilcoxon.ml: Array Float List
