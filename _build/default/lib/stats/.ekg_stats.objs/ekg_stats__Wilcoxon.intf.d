lib/stats/wilcoxon.mli: Stdlib
