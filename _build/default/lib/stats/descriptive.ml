let require_nonempty name = function
  | [] -> invalid_arg ("Descriptive." ^ name ^ ": empty sample")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  let xs = require_nonempty "variance" xs in
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs /. float_of_int (n - 1)
  end

let std_dev xs = sqrt (variance xs)

let sorted xs = List.sort Float.compare xs

let quantile q xs =
  let xs = require_nonempty "quantile" xs in
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then a.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (a.(lo) *. (1. -. w)) +. (a.(hi) *. w)
  end

let median xs = quantile 0.5 xs

let min_max xs =
  let xs = require_nonempty "min_max" xs in
  ( List.fold_left Float.min Float.infinity xs,
    List.fold_left Float.max Float.neg_infinity xs )

type five_number = {
  low_whisker : float;
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;
  outliers : float list;
}

let five_number xs =
  let xs = require_nonempty "five_number" xs in
  let q1 = quantile 0.25 xs and q3 = quantile 0.75 xs in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let inliers = List.filter (fun x -> x >= lo_fence && x <= hi_fence) xs in
  let outliers = List.filter (fun x -> x < lo_fence || x > hi_fence) xs in
  let low_whisker, high_whisker =
    match inliers with
    | [] -> (q1, q3)
    | _ -> min_max inliers
  in
  { low_whisker; q1; median = median xs; q3; high_whisker; outliers = sorted outliers }

let to_string f =
  Printf.sprintf "[%.3f | %.3f %.3f %.3f | %.3f]%s" f.low_whisker f.q1 f.median f.q3
    f.high_whisker
    (if f.outliers = [] then ""
     else
       " outliers: "
       ^ String.concat ", " (List.map (Printf.sprintf "%.3f") f.outliers))
