(** Descriptive statistics over float samples. *)

val mean : float list -> float
(** Raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val std_dev : float list -> float

val median : float list -> float

val quantile : float -> float list -> float
(** Linear interpolation between order statistics; [quantile 0.25] is
    the first quartile. *)

val min_max : float list -> float * float

type five_number = {
  low_whisker : float;   (** smallest sample ≥ q1 − 1.5·IQR *)
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;  (** largest sample ≤ q3 + 1.5·IQR *)
  outliers : float list;
}

val five_number : float list -> five_number
(** Tukey boxplot summary — the shape of the paper's Figures 17/18. *)

val to_string : five_number -> string
