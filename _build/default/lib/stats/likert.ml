type t = int

let of_int v = max 1 (min 5 v)

let of_score s =
  let s = Float.max 0. (Float.min 1. s) in
  of_int (1 + int_of_float (Float.round (s *. 4.)))

let to_floats vs = List.map float_of_int vs
let mean vs = Descriptive.mean (to_floats vs)
let std_dev vs = Descriptive.std_dev (to_floats vs)

let distribution vs =
  let counts = Array.make 5 0 in
  List.iter (fun v -> counts.(of_int v - 1) <- counts.(of_int v - 1) + 1) vs;
  counts
