(** 5-point Likert scales, as used by the paper's expert study. *)

type t = int
(** Invariant: 1 ≤ value ≤ 5, enforced by {!of_int} / {!of_score}. *)

val of_int : int -> t
(** Clamped into [1, 5]. *)

val of_score : float -> t
(** Map a quality score in [0, 1] to the scale (0 → 1, 1 → 5),
    rounding to the nearest grade. *)

val mean : t list -> float
val std_dev : t list -> float
val distribution : t list -> int array
(** Counts for grades 1..5, index 0 = grade 1. *)

val to_floats : t list -> float list
