open Ekg_kernel

type metrics = {
  words : int;
  sentences : int;
  avg_sentence_length : float;
  avg_word_length : float;
  flesch : float;
  type_token_ratio : float;
  bigram_redundancy : float;
}

let analyze text =
  let words = Textutil.words text in
  let nw = max 1 (List.length words) in
  let ns = max 1 (Textutil.sentence_count text) in
  let syllables = max 1 (Textutil.syllable_estimate text) in
  let chars = List.fold_left (fun acc w -> acc + String.length w) 0 words in
  let lowered = List.map String.lowercase_ascii words in
  let distinct = List.sort_uniq String.compare lowered in
  let bigrams =
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | [ _ ] | [] -> []
    in
    go lowered
  in
  let nb = List.length bigrams in
  let distinct_bigrams = List.sort_uniq compare bigrams in
  let redundancy =
    if nb = 0 then 0.
    else 1. -. (float_of_int (List.length distinct_bigrams) /. float_of_int nb)
  in
  let wf = float_of_int nw and sf = float_of_int ns in
  {
    words = List.length words;
    sentences = Textutil.sentence_count text;
    avg_sentence_length = wf /. sf;
    avg_word_length = float_of_int chars /. wf;
    flesch =
      206.835 -. (1.015 *. (wf /. sf)) -. (84.6 *. (float_of_int syllables /. wf));
    type_token_ratio = float_of_int (List.length distinct) /. wf;
    bigram_redundancy = redundancy;
  }

let clamp01 x = Float.max 0. (Float.min 1. x)

(* Readable business prose sits around 15-25 words per sentence; very
   long verbalized proofs and heavy repetition read poorly. *)
let fluency_score text =
  let m = analyze text in
  let sentence_fit =
    let l = m.avg_sentence_length in
    if l <= 8. then l /. 8.
    else if l <= 26. then 1.
    else clamp01 (1. -. ((l -. 26.) /. 30.))
  in
  let variety = clamp01 (m.type_token_ratio *. 2.) in
  let non_redundant = clamp01 (1. -. (m.bigram_redundancy *. 1.4)) in
  let flesch_fit = clamp01 ((m.flesch +. 20.) /. 100.) in
  clamp01
    ((0.3 *. sentence_fit) +. (0.25 *. variety) +. (0.3 *. non_redundant)
    +. (0.15 *. flesch_fit))
