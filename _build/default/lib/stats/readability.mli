(** Text-quality metrics driving the simulated expert graders (§6.2).

    The paper's experts grade fluency/compactness on a Likert scale; we
    approximate their judgement with standard surface metrics. *)

type metrics = {
  words : int;
  sentences : int;
  avg_sentence_length : float;   (** words per sentence *)
  avg_word_length : float;       (** characters per word *)
  flesch : float;                (** Flesch reading ease (higher = easier) *)
  type_token_ratio : float;      (** lexical variety in [0,1] *)
  bigram_redundancy : float;     (** repeated-bigram share in [0,1]; high = repetitive *)
}

val analyze : string -> metrics

val fluency_score : string -> float
(** Composite in [0, 1]: rewards readable sentence lengths and lexical
    variety, penalizes redundancy.  Used as the mean of the simulated
    Likert graders. *)
