type result = {
  n : int;
  w_plus : float;
  w_minus : float;
  statistic : float;
  z : float;
  p_value : float;
  exact : bool;
}

(* Abramowitz & Stegun 7.1.26 rational approximation of erf, accurate
   to ~1.5e-7: enough for reporting p-values to three decimals. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let poly = ((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1 in
  sign *. (1. -. (poly *. t *. Float.exp (-.x *. x)))

let normal_cdf z = 0.5 *. (1. +. erf (z /. Float.sqrt 2.))

(* Mid-ranks of the absolute differences. *)
let rank_abs diffs =
  let indexed = List.mapi (fun i d -> (i, Float.abs d)) diffs in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) indexed in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let ranks = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && snd arr.(!j + 1) = snd arr.(!i) do
      incr j
    done;
    let mid = (float_of_int (!i + 1) +. float_of_int (!j + 1)) /. 2. in
    for k = !i to !j do
      let orig, _ = arr.(k) in
      ranks.(orig) <- mid
    done;
    i := !j + 1
  done;
  (ranks, arr)

let tie_groups arr =
  let n = Array.length arr in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && snd arr.(!j + 1) = snd arr.(!i) do
      incr j
    done;
    let size = !j - !i + 1 in
    if size > 1 then groups := size :: !groups;
    i := !j + 1
  done;
  !groups

(* Exact null distribution of W+ for integer ranks 1..n. *)
let exact_p_value n w =
  let total = 1 lsl n in
  let count_le = ref 0 and count_ge = ref 0 in
  for mask = 0 to total - 1 do
    let wp = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then wp := !wp + i + 1
    done;
    if float_of_int !wp <= w then incr count_le;
    if float_of_int !wp >= w then incr count_ge
  done;
  let p_le = float_of_int !count_le /. float_of_int total in
  let p_ge = float_of_int !count_ge /. float_of_int total in
  Float.min 1.0 (2. *. Float.min p_le p_ge)

let signed_rank xs ys =
  if List.length xs <> List.length ys then Error "samples must have equal length"
  else begin
    let diffs = List.map2 ( -. ) xs ys |> List.filter (fun d -> d <> 0.) in
    match diffs with
    | [] -> Error "all paired differences are zero"
    | _ ->
      let n = List.length diffs in
      let ranks, sorted_arr = rank_abs diffs in
      let w_plus =
        List.fold_left ( +. ) 0.
          (List.mapi (fun i d -> if d > 0. then ranks.(i) else 0.) diffs)
      in
      let total = float_of_int (n * (n + 1)) /. 2. in
      let w_minus = total -. w_plus in
      let statistic = Float.min w_plus w_minus in
      let ties = tie_groups sorted_arr in
      if n <= 12 && ties = [] then begin
        let p = exact_p_value n w_plus in
        Ok { n; w_plus; w_minus; statistic; z = 0.; p_value = p; exact = true }
      end
      else begin
        let nf = float_of_int n in
        let mu = nf *. (nf +. 1.) /. 4. in
        let tie_term =
          List.fold_left
            (fun acc t ->
              let tf = float_of_int t in
              acc +. ((tf *. tf *. tf) -. tf))
            0. ties
        in
        let sigma2 = (nf *. (nf +. 1.) *. ((2. *. nf) +. 1.) /. 24.) -. (tie_term /. 48.) in
        let sigma = Float.sqrt sigma2 in
        if sigma = 0. then Error "zero variance (all differences tied at one magnitude)"
        else begin
          (* continuity correction toward the mean *)
          let delta = w_plus -. mu in
          let corrected =
            if delta > 0.5 then delta -. 0.5 else if delta < -0.5 then delta +. 0.5 else 0.
          in
          let z = corrected /. sigma in
          let p = 2. *. (1. -. normal_cdf (Float.abs z)) in
          Ok { n; w_plus; w_minus; statistic; z; p_value = Float.min 1.0 p; exact = false }
        end
      end
  end

let significant ?(alpha = 0.05) r = r.p_value < alpha
