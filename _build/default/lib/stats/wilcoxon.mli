(** Wilcoxon signed-rank test for paired samples — the test the paper
    uses to compare Likert scores of explanation methods (§6.2).

    Two-sided, with zero-difference pairs dropped (Wilcoxon's original
    treatment), mid-ranks for ties, and the normal approximation with
    tie correction and continuity correction.  For n ≤ 12 without ties
    the exact null distribution is enumerated instead. *)

type result = {
  n : int;          (** pairs remaining after dropping zero differences *)
  w_plus : float;   (** sum of ranks of positive differences *)
  w_minus : float;
  statistic : float;  (** min(W+, W−) *)
  z : float;          (** normal approximation z-score (0 for exact path) *)
  p_value : float;    (** two-sided *)
  exact : bool;       (** p-value from exact enumeration *)
}

val signed_rank : float list -> float list -> (result, string) Stdlib.result
(** [signed_rank xs ys] tests H0: the paired differences are symmetric
    about zero.  Fails on length mismatch or when every difference is
    zero. *)

val significant : ?alpha:float -> result -> bool
(** Default [alpha] 0.05. *)
