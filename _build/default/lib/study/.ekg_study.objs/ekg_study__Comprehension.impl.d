lib/study/comprehension.ml: Array Buffer Ekg_core Ekg_engine Ekg_kernel Glossary Hashtbl List Option Prng String Textutil Value
