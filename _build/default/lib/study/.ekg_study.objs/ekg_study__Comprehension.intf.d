lib/study/comprehension.mli: Ekg_core Ekg_engine Ekg_kernel Glossary Prng
