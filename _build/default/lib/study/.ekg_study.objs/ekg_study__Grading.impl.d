lib/study/grading.ml: Ekg_kernel Ekg_stats Likert List Prng Readability Wilcoxon
