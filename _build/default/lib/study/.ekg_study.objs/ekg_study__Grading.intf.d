lib/study/grading.mli: Ekg_kernel Ekg_stats Likert Prng Wilcoxon
