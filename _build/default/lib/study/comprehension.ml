open Ekg_kernel
open Ekg_core

type archetype =
  | Wrong_edge
  | Wrong_value
  | Wrong_agg_order
  | Wrong_chain

let archetype_label = function
  | Wrong_edge -> "wrong edge"
  | Wrong_value -> "wrong value"
  | Wrong_agg_order -> "wrong aggregation"
  | Wrong_chain -> "wrong chain"

let all_archetypes = [ Wrong_edge; Wrong_value; Wrong_agg_order; Wrong_chain ]

type element = string list

type viz = {
  elements : element list;
  label : [ `Correct | `Corrupted of archetype ];
}

(* display strings of a fact in the order its glossary pattern mentions
   them *)
let fact_element glossary (f : Ekg_engine.Fact.t) : element =
  match Glossary.find glossary f.pred with
  | None -> Array.to_list (Array.map Value.to_display f.args)
  | Some entry ->
    let rendered i =
      Glossary.format_value (Glossary.arg_fmt glossary ~pred:f.pred i) f.args.(i)
    in
    let order = ref [] in
    let pat = entry.pattern in
    let n = String.length pat in
    let i = ref 0 in
    while !i < n do
      if pat.[!i] = '<' then begin
        match String.index_from_opt pat !i '>' with
        | Some j ->
          let name = String.sub pat (!i + 1) (j - !i - 1) in
          (match List.find_index (fun (a, _) -> a = name) entry.args with
          | Some idx -> order := idx :: !order
          | None -> ());
          i := j + 1
        | None -> incr i
      end
      else incr i
    done;
    List.rev_map rendered !order

(* one ordered element per multi-contributor aggregation: the
   contributors' distinguishing numeric values, rendered with the same
   glossary format the explanation uses *)
let aggregation_elements (proof : Ekg_engine.Proof.t) glossary : element list =
  List.filter_map
    (fun (s : Ekg_engine.Proof.step) ->
      if not s.multi then None
      else begin
        let premise_by_id id =
          List.find_opt (fun (f : Ekg_engine.Fact.t) -> f.id = id) s.premises
        in
        let contributor_value (c : Ekg_engine.Provenance.contributor) =
          List.find_map
            (fun id ->
              match premise_by_id id with
              | None -> None
              | Some f ->
                let n = Array.length f.args in
                let rec scan i =
                  if i >= n then None
                  else
                    match f.args.(i) with
                    | Value.Int _ | Value.Num _ ->
                      Some
                        (Glossary.format_value
                           (Glossary.arg_fmt glossary ~pred:f.pred i)
                           f.args.(i))
                    | _ -> scan (i + 1)
                in
                scan 0)
            c.facts
        in
        let contributor_values = List.filter_map contributor_value s.contributors in
        (* the conjunction must appear verbatim: a reversed list does
           not match *)
        if List.length contributor_values >= 2 then
          Some [ Textutil.join_and contributor_values ]
        else None
      end)
    proof.steps

let correct_viz glossary (proof : Ekg_engine.Proof.t) =
  let edb_elements =
    Ekg_engine.Proof.facts_used proof
    |> List.filter (fun (f : Ekg_engine.Fact.t) ->
           List.exists
             (fun (s : Ekg_engine.Proof.step) ->
               List.exists (fun (p : Ekg_engine.Fact.t) -> p.id = f.id) s.premises)
             proof.steps
           && not
                (List.exists
                   (fun (s : Ekg_engine.Proof.step) -> s.fact.id = f.id)
                   proof.steps))
    |> List.map (fact_element glossary)
  in
  { elements = edb_elements @ aggregation_elements proof glossary; label = `Correct }

(* --- corruption ------------------------------------------------------------- *)

let entities_of viz =
  viz.elements |> List.concat
  |> List.filter (fun s ->
         String.length s > 0
         && (not (String.contains s ' '))
         && not (s.[0] >= '0' && s.[0] <= '9'))
  |> List.sort_uniq String.compare

let numeric_positions viz =
  List.concat
    (List.mapi
       (fun ei el ->
         List.filter (fun s -> String.length s > 0 && s.[0] >= '0' && s.[0] <= '9') el
         |> List.map (fun s -> (ei, s)))
       viz.elements)

let perturb_value s =
  let head = List.hd (String.split_on_char ' ' s) in
  "13.7" ^ String.sub s (String.length head) (String.length s - String.length head)

let corrupt rng archetype viz =
  let elements = viz.elements in
  let fallback_value () =
    match numeric_positions viz with
    | [] -> elements
    | positions ->
      let ei, s = Prng.pick rng positions in
      List.mapi
        (fun i el ->
          if i = ei then List.map (fun x -> if x = s then perturb_value s else x) el
          else el)
        elements
  in
  let corrupted =
    match archetype with
    | Wrong_value -> fallback_value ()
    | Wrong_edge -> (
      match entities_of viz with
      | a :: b :: _ -> [ a; "8.88 million euros"; b ] :: elements
      | _ -> fallback_value ())
    | Wrong_agg_order -> (
      let split_conjunction s =
        match Textutil.split_on_string ~sep:" and " s with
        | [ front; last ] -> Some (Textutil.split_on_string ~sep:", " front @ [ last ])
        | _ -> None
      in
      let is_agg el =
        match el with
        | [ s ] -> (
          match split_conjunction s with
          | Some (v :: _ :: _) -> String.length v > 0 && v.[0] >= '0' && v.[0] <= '9'
          | Some _ | None -> false)
        | _ -> false
      in
      match List.find_opt is_agg elements with
      | Some ([ s ] as agg) ->
        let reversed =
          match split_conjunction s with
          | Some values -> [ Textutil.join_and (List.rev values) ]
          | None -> agg
        in
        List.map (fun el -> if el == agg then reversed else el) elements
      | Some _ | None -> fallback_value ())
    | Wrong_chain -> (
      match entities_of viz with
      | a :: b :: _ ->
        List.map
          (fun el -> List.map (fun s -> if s = a then b else if s = b then a else s) el)
          elements
      | _ -> fallback_value ())
  in
  { elements = corrupted; label = `Corrupted archetype }

(* --- the simulated reader ------------------------------------------------------ *)

let tokens s =
  let is_alnum c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '.'
  in
  let buf = Buffer.create 8 and acc = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      let t = Buffer.contents buf in
      let t =
        if String.length t > 0 && t.[String.length t - 1] = '.' then
          String.sub t 0 (String.length t - 1)
        else t
      in
      if t <> "" then acc := t :: !acc;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_alnum c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !acc

let element_supported text element =
  let sentences = Textutil.sentences text in
  let parts = List.map tokens element in
  List.exists
    (fun sentence ->
      let stoks = Array.of_list (tokens sentence) in
      let n = Array.length stoks in
      let find_from start part =
        let m = List.length part in
        let parr = Array.of_list part in
        let rec scan i =
          if i + m > n then None
          else begin
            let ok = ref true in
            Array.iteri (fun j p -> if stoks.(i + j) <> p then ok := false) parr;
            if !ok then Some (i + m) else scan (i + 1)
          end
        in
        scan start
      in
      let rec go cursor = function
        | [] -> true
        | part :: rest -> (
          match find_from cursor part with
          | Some next -> go next rest
          | None -> false)
      in
      go 0 parts)
    sentences

let support_fraction text viz =
  match viz.elements with
  | [] -> 0.
  | els ->
    let supported = List.length (List.filter (element_supported text) els) in
    float_of_int supported /. float_of_int (List.length els)

type outcome = {
  participants : int;
  correct : int;
  errors : (archetype * int) list;
}

let run_case rng ~participants ~noise ~text vizs =
  let errors = Hashtbl.create 4 in
  let correct = ref 0 in
  for _ = 1 to participants do
    let scored =
      List.map
        (fun viz -> (support_fraction text viz +. Prng.gaussian rng ~mu:0. ~sigma:noise, viz))
        vizs
    in
    let best =
      List.fold_left
        (fun acc (s, v) ->
          match acc with
          | Some (s', _) when s' >= s -> acc
          | _ -> Some (s, v))
        None scored
    in
    match best with
    | Some (_, { label = `Correct; _ }) -> incr correct
    | Some (_, { label = `Corrupted a; _ }) ->
      Hashtbl.replace errors a (1 + Option.value ~default:0 (Hashtbl.find_opt errors a))
    | None -> ()
  done;
  {
    participants;
    correct = !correct;
    errors = List.map (fun a -> (a, Option.value ~default:0 (Hashtbl.find_opt errors a))) all_archetypes;
  }

let accuracy o =
  if o.participants = 0 then 0.
  else float_of_int o.correct /. float_of_int o.participants
