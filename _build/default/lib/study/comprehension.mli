(** The comprehension-study apparatus (§6.1): knowledge-graph
    visualizations, the four error archetypes used to corrupt them, and
    the simulated reader that matches a textual explanation against a
    visualization.

    A visualization is a list of {e elements}; an element is the
    ordered list of display strings a faithful reading of the
    explanation must support: entity names and glossary-formatted
    values in pattern order for extensional facts, plus one
    conjunction element ("2 million euros and 9 million euros") per
    multi-contributor aggregation. *)

open Ekg_kernel
open Ekg_core

type archetype =
  | Wrong_edge        (** archetype I: a fabricated edge *)
  | Wrong_value       (** archetype II: a perturbed property value *)
  | Wrong_agg_order   (** archetype III: reversed aggregation values *)
  | Wrong_chain       (** archetype IV: two chain entities swapped *)

val archetype_label : archetype -> string
val all_archetypes : archetype list

type element = string list

type viz = {
  elements : element list;
  label : [ `Correct | `Corrupted of archetype ];
}

val correct_viz : Glossary.t -> Ekg_engine.Proof.t -> viz
(** The faithful visualization of a proof: its extensional facts plus
    its aggregation conjunctions. *)

val corrupt : Prng.t -> archetype -> viz -> viz
(** Apply one archetype; archetypes inapplicable to the instance
    (e.g. no aggregation to reorder) degrade to {!Wrong_value}. *)

val element_supported : string -> element -> bool
(** Some sentence of the text mentions all the element's display
    strings, in order. *)

val support_fraction : string -> viz -> float
(** Share of supported elements, in [0, 1]. *)

type outcome = {
  participants : int;
  correct : int;
  errors : (archetype * int) list;  (** distractor pick counts *)
}

val run_case :
  Prng.t -> participants:int -> noise:float -> text:string -> viz list -> outcome
(** Each simulated participant scores every visualization
    ({!support_fraction} plus Gaussian reading noise) and picks the
    best; ties resolve toward the earlier visualization. *)

val accuracy : outcome -> float
