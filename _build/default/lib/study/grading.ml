open Ekg_kernel
open Ekg_stats

type panel_config = {
  graders : int;
  grader_bias_sigma : float;
  item_noise_sigma : float;
}

let default_config = { graders = 14; grader_bias_sigma = 0.06; item_noise_sigma = 0.16 }

let grade rng ~bias ~noise text =
  let score =
    Readability.fluency_score text +. bias +. Prng.gaussian rng ~mu:0. ~sigma:noise
  in
  Likert.of_score score

type panel_result = {
  per_method : (string * Likert.t list) list;
}

let panel ?(config = default_config) rng ~methods ~scenarios =
  List.iter
    (fun texts ->
      if List.length texts <> List.length methods then
        invalid_arg "Grading.panel: scenario text count differs from methods")
    scenarios;
  let collected = List.map (fun m -> (m, ref [])) methods in
  for _ = 1 to config.graders do
    let bias = Prng.gaussian rng ~mu:0. ~sigma:config.grader_bias_sigma in
    List.iter
      (fun texts ->
        List.iter2
          (fun m text ->
            let acc = List.assoc m collected in
            acc := grade rng ~bias ~noise:config.item_noise_sigma text :: !acc)
          methods texts)
      scenarios
  done;
  { per_method = List.map (fun (m, acc) -> (m, List.rev !acc)) collected }

let wilcoxon_pairs result =
  let rec pairs = function
    | [] -> []
    | (m1, g1) :: rest ->
      List.map
        (fun (m2, g2) ->
          (m1, m2, Wilcoxon.signed_rank (Likert.to_floats g1) (Likert.to_floats g2)))
        rest
      @ pairs rest
  in
  pairs result.per_method
