(** The expert-grading apparatus (§6.2): simulated central-bank experts
    assigning 5-value Likert grades to explanation texts.

    Each grade is the text's readability-driven fluency score plus a
    per-grader bias (some experts grade systematically higher) and
    per-item noise, discretized to the Likert scale — the grader model
    of DESIGN.md §3. *)

open Ekg_kernel
open Ekg_stats

type panel_config = {
  graders : int;         (** the paper uses 14 *)
  grader_bias_sigma : float;
  item_noise_sigma : float;
}

val default_config : panel_config

val grade : Prng.t -> bias:float -> noise:float -> string -> Likert.t
(** One grade for one text. *)

type panel_result = {
  per_method : (string * Likert.t list) list;  (** method name → all grades *)
}

val panel :
  ?config:panel_config ->
  Prng.t ->
  methods:string list ->
  scenarios:string list list ->
  panel_result
(** [panel rng ~methods ~scenarios] grades every scenario's texts
    (one per method, in [methods] order) with every grader; grades are
    paired across methods, as the Wilcoxon analysis requires.  Raises
    [Invalid_argument] when a scenario's text count differs from
    [methods]. *)

val wilcoxon_pairs :
  panel_result -> (string * string * (Wilcoxon.result, string) result) list
(** Pairwise signed-rank tests between all method pairs. *)
