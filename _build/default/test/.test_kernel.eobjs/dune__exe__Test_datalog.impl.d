test/test_datalog.ml: Alcotest Atom Ekg_datalog Ekg_kernel Expr List Parser Printf Program QCheck2 QCheck_alcotest Rule Subst Term Textutil Value
