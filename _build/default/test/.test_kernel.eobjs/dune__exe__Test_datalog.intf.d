test/test_datalog.mli:
