test/test_graph.ml: Alcotest Digraph Ekg_graph Ekg_kernel Fun Hashtbl Int List QCheck2 QCheck_alcotest String
