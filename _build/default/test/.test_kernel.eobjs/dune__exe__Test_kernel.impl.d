test/test_kernel.ml: Alcotest Ekg_kernel Float Fun Int List Money Prng QCheck2 QCheck_alcotest String Textutil Value
