test/test_llm.ml: Alcotest Anonymize Ekg_kernel Ekg_llm Float List Mock_llm Omission Printf
