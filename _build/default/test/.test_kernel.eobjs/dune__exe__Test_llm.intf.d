test/test_llm.mli:
