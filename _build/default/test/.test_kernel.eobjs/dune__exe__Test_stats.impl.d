test/test_stats.ml: Alcotest Array Descriptive Ekg_stats Float Likert List QCheck2 QCheck_alcotest Readability String Wilcoxon
