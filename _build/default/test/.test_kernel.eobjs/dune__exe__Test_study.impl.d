test/test_study.ml: Alcotest Comprehension Ekg_apps Ekg_core Ekg_datagen Ekg_kernel Ekg_stats Ekg_study Grading List Pipeline Prng Stress_test String Textutil
