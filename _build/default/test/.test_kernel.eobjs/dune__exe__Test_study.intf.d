test/test_study.mli:
