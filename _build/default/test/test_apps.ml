(* Tests for the bundled financial KG applications against the paper's
   scenarios (§5): derived control edges, the default cascade, close
   links, and the Figure 15 walk-through. *)

open Ekg_datalog
open Ekg_engine
open Ekg_core
open Ekg_apps

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

let run_app program edb =
  match Chase.run program edb with
  | Ok r -> r
  | Error e -> Alcotest.failf "chase: %s" e

let holds db src =
  match Query.parse_and_ask db src with
  | Ok ((_ : (Fact.t * Subst.t) list) as l) -> l <> []
  | Error e -> Alcotest.failf "query %s: %s" src e

(* --- company control ---------------------------------------------------------- *)

let test_control_program_valid () =
  check bool' "validates" true (Program.validate Company_control.program = Ok ());
  check bool' "recursive with aggregation" true
    (Program.is_recursive Company_control.program
    && Program.uses_aggregation Company_control.program)

let test_control_scenario () =
  let res = run_app Company_control.program Company_control.scenario_edb in
  (* direct majority *)
  check bool' "A controls B (60%)" true (holds res.db {|control("A", "B")|});
  (* via controlled subsidiary: B controls E (55%), E owns 25% of D,
     B owns 30% directly: 55% jointly *)
  check bool' "B controls D jointly" true (holds res.db {|control("B", "D")|});
  (* transitively A controls everything B controls *)
  check bool' "A controls D through B" true (holds res.db {|control("A", "D")|});
  (* no spurious control *)
  check bool' "D does not control F (10%)" false (holds res.db {|control("D", "F")|});
  (* self-control from σ2 *)
  check bool' "self control" true (holds res.db {|control("A", "A")|})

let test_control_figure_15 () =
  let res = run_app Company_control.program Company_control.scenario_edb in
  check bool' "IrishBank controls FondoItaliano (83%)" true
    (holds res.db {|control("IrishBank", "FondoItaliano")|});
  check bool' "IrishBank controls FrenchPLC (54%)" true
    (holds res.db {|control("IrishBank", "FrenchPLC")|});
  (* the Figure 15 conclusion: joint 36% + 21% = 57% *)
  check bool' "IrishBank controls MadridCredit jointly" true
    (holds res.db {|control("IrishBank", "MadridCredit")|});
  (* neither subsidiary alone controls Madrid Credit *)
  check bool' "FondoItaliano alone does not control" false
    (holds res.db {|control("FondoItaliano", "MadridCredit")|})

let test_control_explanation_complete () =
  let pipeline = Company_control.pipeline () in
  let res =
    match Pipeline.reason pipeline Company_control.scenario_edb with
    | Ok r -> r
    | Error e -> Alcotest.failf "reason: %s" e
  in
  match Pipeline.explain_query pipeline res {|control("IrishBank", "MadridCredit")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    let constants = Verbalizer.constant_strings Company_control.glossary e.proof in
    check bool' "all constants in the report" true
      (Ekg_llm.Omission.retained_ratio ~constants e.text = 1.0);
    check bool' "percent formatting used" true
      (Ekg_llm.Omission.contains_phrase e.text "83%");
    check bool' "joint sum verbalized" true
      (Ekg_llm.Omission.contains_phrase e.text "57%")
  | Ok _ -> Alcotest.fail "expected one explanation"

(* --- stress test ----------------------------------------------------------------- *)

let test_stress_program_valid () =
  check bool' "two-channel validates" true (Program.validate Stress_test.program = Ok ());
  check bool' "simple validates" true
    (Program.validate Stress_test.simple_program = Ok ())

let test_stress_scenario_cascade () =
  let res = run_app Stress_test.program Stress_test.scenario_edb in
  List.iter
    (fun name ->
      check bool' (name ^ " defaults") true
        (holds res.db (Printf.sprintf {|default("%s")|} name)))
    [ "A"; "B"; "C"; "F" ];
  (* D and E survive: E's 1M exposure is under its 3M capital *)
  check bool' "D survives" false (holds res.db {|default("D")|});
  check bool' "E survives" false (holds res.db {|default("E")|})

let test_stress_channels_tracked () =
  let res = run_app Stress_test.program Stress_test.scenario_edb in
  check bool' "long channel risk on B" true (holds res.db {|risk("B", X, "long")|});
  check bool' "short channel risk on C" true (holds res.db {|risk("C", X, "short")|});
  (* F is at risk on both channels *)
  check bool' "F long risk" true (holds res.db {|risk("F", X, "long")|});
  check bool' "F short risk" true (holds res.db {|risk("F", X, "short")|})

let test_stress_default_f_explanation () =
  let pipeline = Stress_test.pipeline () in
  let res =
    match Pipeline.reason pipeline Stress_test.scenario_edb with
    | Ok r -> r
    | Error e -> Alcotest.failf "reason: %s" e
  in
  match Pipeline.explain_query pipeline res {|default("F")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    let constants = Verbalizer.constant_strings Stress_test.glossary e.proof in
    check bool' "report is complete" true
      (Ekg_llm.Omission.retained_ratio ~constants e.text = 1.0);
    (* the §5 narrative's constituents *)
    List.iter
      (fun phrase ->
        check bool' ("mentions " ^ phrase) true
          (Ekg_llm.Omission.contains_phrase e.text phrase))
      [
        "14 million euros";
        "7 million euros";
        "9 million euros";
        "2 million euros";
        "8 million euros";
      ]
  | Ok _ -> Alcotest.fail "expected one explanation"

(* --- close link --------------------------------------------------------------------- *)

let test_close_link_scenario () =
  let res = run_app Close_link.program Close_link.scenario_edb in
  check bool' "direct 50% link" true (holds res.db {|closeLink("HoldCo", "MidCo")|});
  check bool' "chained 30% link" true (holds res.db {|closeLink("HoldCo", "OpCo")|});
  check bool' "direct 25% link" true (holds res.db {|closeLink("HoldCo", "SideCo")|});
  check bool' "sub-threshold chain rejected" false
    (holds res.db {|closeLink("SideCo", "OpCo")|});
  check bool' "15% direct rejected" false (holds res.db {|closeLink("OpCo", "TinyCo")|})

let test_close_link_product_values () =
  let res = run_app Close_link.program Close_link.scenario_edb in
  (* 0.5 * 0.6 = 0.3 integrated participation *)
  check bool' "integrated participation computed" true
    (holds res.db {|pathOwn("HoldCo", "OpCo", 0.3)|})

let test_close_link_explanation () =
  let pipeline = Close_link.pipeline () in
  let res =
    match Pipeline.reason pipeline Close_link.scenario_edb with
    | Ok r -> r
    | Error e -> Alcotest.failf "reason: %s" e
  in
  match Pipeline.explain_query pipeline res {|closeLink("HoldCo", "OpCo")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    check int' "no ad-hoc fallbacks" 0 e.mapping.fallbacks;
    check bool' "mentions the product" true
      (Ekg_llm.Omission.contains_phrase e.text "the product of 50% and 60%")
  | Ok _ -> Alcotest.fail "expected one explanation"

(* --- golden power -------------------------------------------------------------------- *)

let test_golden_power_program_valid () =
  check bool' "validates" true (Program.validate Golden_power.program = Ok ());
  check bool' "uses negation" true (Program.uses_negation Golden_power.program);
  check bool' "not recursive" true (not (Program.is_recursive Golden_power.program))

let test_golden_power_scenario () =
  let res = run_app Golden_power.program Golden_power.scenario_edb in
  (* the creeping domestic takeover and the foreign acquisition are blocked *)
  check bool' "domestic creeping blocked" true
    (holds res.db {|blockedDeal("DomesticFund", "PowerGridCo")|});
  check bool' "foreign acquisition blocked" true
    (holds res.db {|blockedDeal("OverseasHolding", "DefenseTechCo")|});
  (* the vetted deal proceeds; the non-strategic one never triggers *)
  check bool' "vetted deal not blocked" false
    (holds res.db {|blockedDeal("ForeignBank", "TelecomCo")|});
  check bool' "non-strategic trade ignored" false
    (holds res.db {|goldenPower("RetailFund", "BakeryChain")|});
  (* EU buyer under 50% does not trigger the foreign-buyer rule *)
  check bool' "vetted deal did trigger golden power" true
    (holds res.db {|goldenPower("ForeignBank", "TelecomCo")|})

let test_golden_power_constraint () =
  match Chase.run Golden_power.program Golden_power.inconsistent_edb with
  | Error msg ->
    check bool' "constraint c1 named" true (Ekg_kernel.Textutil.contains_word msg "c1")
  | Ok _ -> Alcotest.fail "spurious vetting accepted"

let test_golden_power_explanation () =
  let pipeline = Golden_power.pipeline () in
  let res =
    match Pipeline.reason pipeline Golden_power.scenario_edb with
    | Ok r -> r
    | Error e -> Alcotest.failf "reason: %s" e
  in
  match
    Pipeline.explain_query pipeline res {|blockedDeal("DomesticFund", "PowerGridCo")|}
  with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    let constants = Verbalizer.constant_strings Golden_power.glossary e.proof in
    check bool' "complete" true
      (Ekg_llm.Omission.retained_ratio ~constants e.text = 1.0);
    check bool' "negation verbalized" true
      (Ekg_llm.Omission.contains_phrase e.text "it is not the case that");
    check bool' "arithmetic verbalized" true
      (Ekg_llm.Omission.contains_phrase e.text "the sum of 15% and 40%")
  | Ok _ -> Alcotest.fail "expected one explanation"

(* --- structural analysis of the bundled apps matches Figure 10 ---------------------- *)

let test_apps_reasoning_path_counts () =
  let count_base paths = List.length (List.filter Reasoning_path.is_base paths) in
  let cc = Reasoning_path.analyze Company_control.program in
  check int' "company control: 5 simple paths" 5 (count_base cc.simple_paths);
  check int' "company control: 1 cycle" 1 (count_base cc.cycles);
  let st = Reasoning_path.analyze Stress_test.program in
  check int' "stress test: 4 simple paths" 4 (count_base st.simple_paths);
  check int' "stress test: 3 cycles" 3 (count_base st.cycles);
  let s = Reasoning_path.analyze Stress_test.simple_program in
  check int' "example 4.3: 2 simple paths" 2 (count_base s.simple_paths);
  check int' "example 4.3: 1 cycle" 1 (count_base s.cycles)

let () =
  Alcotest.run "apps"
    [
      ( "company-control",
        [
          Alcotest.test_case "program valid" `Quick test_control_program_valid;
          Alcotest.test_case "scenario" `Quick test_control_scenario;
          Alcotest.test_case "figure 15" `Quick test_control_figure_15;
          Alcotest.test_case "explanation complete" `Quick
            test_control_explanation_complete;
        ] );
      ( "stress-test",
        [
          Alcotest.test_case "programs valid" `Quick test_stress_program_valid;
          Alcotest.test_case "cascade" `Quick test_stress_scenario_cascade;
          Alcotest.test_case "channels tracked" `Quick test_stress_channels_tracked;
          Alcotest.test_case "default F explanation" `Quick
            test_stress_default_f_explanation;
        ] );
      ( "close-link",
        [
          Alcotest.test_case "scenario" `Quick test_close_link_scenario;
          Alcotest.test_case "product values" `Quick test_close_link_product_values;
          Alcotest.test_case "explanation" `Quick test_close_link_explanation;
        ] );
      ( "golden-power",
        [
          Alcotest.test_case "program valid" `Quick test_golden_power_program_valid;
          Alcotest.test_case "scenario" `Quick test_golden_power_scenario;
          Alcotest.test_case "constraint" `Quick test_golden_power_constraint;
          Alcotest.test_case "explanation" `Quick test_golden_power_explanation;
        ] );
      ( "structural",
        [ Alcotest.test_case "path counts (Fig. 10)" `Quick test_apps_reasoning_path_counts ]
      );
    ]
