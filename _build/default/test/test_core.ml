(* Tests for the paper's primary contribution: dependency graph,
   critical nodes, reasoning paths (checked against the paper's own
   tables in Figures 4, 5 and 10), glossary, verbalizer, templates,
   enhancement with the omission guard, proof-to-template mapping and
   the end-to-end pipeline (checked against Example 4.8). *)

open Ekg_kernel
open Ekg_datalog
open Ekg_core

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let parse_exn src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

let example_4_3 =
  {|
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).
|}

let company_control =
  {|
s1: own(X, Y, S), S > 0.5 -> control(X, Y).
s2: company(X) -> control(X, X).
s3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
|}

let stress_test =
  {|
s4: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
s5: default(D), longTermDebts(D, C, V), E = sum(V) -> risk(C, E, "long").
s6: default(D), shortTermDebts(D, C, V), E = sum(V) -> risk(C, E, "short").
s7: risk(C, E, T), hasCapital(C, P2), L = sum(E), L > P2 -> default(C).
@goal(default).
|}

let program_of src = (parse_exn src).Parser.program

let glossary_4_3 =
  Glossary.make_exn
    [
      Glossary.entry ~pred:"hasCapital"
        ~args:[ ("f", Glossary.Plain); ("p", Glossary.Euros) ]
        ~pattern:"<f> is a financial institution with capital of <p>";
      Glossary.entry ~pred:"shock"
        ~args:[ ("f", Glossary.Plain); ("s", Glossary.Euros) ]
        ~pattern:"a shock amounting to <s> affects <f>";
      Glossary.entry ~pred:"default" ~args:[ ("f", Glossary.Plain) ]
        ~pattern:"<f> is in default";
      Glossary.entry ~pred:"debts"
        ~args:[ ("d", Glossary.Plain); ("c", Glossary.Plain); ("v", Glossary.Euros) ]
        ~pattern:"<d> has an amount <v> of debts with <c>";
      Glossary.entry ~pred:"risk"
        ~args:[ ("c", Glossary.Plain); ("e", Glossary.Euros) ]
        ~pattern:"<c> is at risk given its loan of <e> to a defaulted debtor";
    ]

(* --- dependency graph ------------------------------------------------------ *)

let test_depgraph_shape () =
  let p = program_of example_4_3 in
  let g = Depgraph.build p in
  check bool' "5 predicates" true (Ekg_graph.Digraph.node_count g = 5);
  check bool' "roots are shock, hasCapital, debts" true
    (Depgraph.roots p = [ "debts"; "hasCapital"; "shock" ]);
  check string' "leaf is the goal" "default" (Depgraph.leaf p);
  check bool' "cyclic (recursive program)" true (Depgraph.is_recursive p);
  check bool' "edge shock->default labelled alpha" true
    (List.exists
       (fun (e : string Ekg_graph.Digraph.edge) ->
         e.src = "shock" && e.dst = "default" && e.label = "alpha")
       (Ekg_graph.Digraph.edges g))

(* --- critical nodes (Definition 4.1) ---------------------------------------- *)

let test_critical_example_4_3 () =
  check bool' "only default critical (Fig. 3)" true
    (Critical.critical_nodes (program_of example_4_3) = [ "default" ])

let test_critical_company_control () =
  check bool' "only control critical" true
    (Critical.critical_nodes (program_of company_control) = [ "control" ])

let test_critical_stress_test () =
  (* risk has two in-rules but both inside the recursive region: the
     paper's Figure 10 does not split paths at risk *)
  check bool' "only default critical" true
    (Critical.critical_nodes (program_of stress_test) = [ "default" ])

let test_critical_dag_diamond () =
  let p =
    program_of
      {|
a1: base1(X) -> mid(X).
a2: base2(X) -> mid(X).
a3: mid(X) -> top(X).
@goal(top).
|}
  in
  check bool' "diamond join critical" true
    (Critical.critical_nodes p = [ "mid"; "top" ])

(* --- reasoning paths (Definition 4.2, Figures 4, 5, 10) ---------------------- *)

let path_sets paths =
  paths
  |> List.filter Reasoning_path.is_base
  |> List.map (fun p -> List.sort String.compare (Reasoning_path.rule_ids p))
  |> List.sort compare

let test_paths_example_4_3 () =
  let a = Reasoning_path.analyze (program_of example_4_3) in
  check bool' "simple paths: {alpha}, {alpha,beta,gamma} (Fig. 4a)" true
    (path_sets a.simple_paths = [ [ "alpha" ]; [ "alpha"; "beta"; "gamma" ] ]);
  check bool' "cycles: {beta,gamma} (Fig. 4b)" true
    (path_sets a.cycles = [ [ "beta"; "gamma" ] ]);
  (* aggregation variants (Fig. 5): beta is the only aggregating rule *)
  let starred =
    List.filter (fun p -> not (Reasoning_path.is_base p)) a.simple_paths
  in
  check int' "one dashed simple path" 1 (List.length starred);
  check bool' "dashed variant marks beta" true
    (Reasoning_path.is_multi (List.hd starred) "beta")

let test_paths_company_control () =
  let a = Reasoning_path.analyze (program_of company_control) in
  check bool' "five simple paths (Fig. 10)" true
    (path_sets a.simple_paths
    = [ [ "s1" ]; [ "s1"; "s2"; "s3" ]; [ "s1"; "s3" ]; [ "s2" ]; [ "s2"; "s3" ] ]);
  check bool' "one cycle {s3}" true (path_sets a.cycles = [ [ "s3" ] ])

let test_paths_stress_test () =
  let a = Reasoning_path.analyze (program_of stress_test) in
  check bool' "four simple paths (Fig. 10)" true
    (path_sets a.simple_paths
    = [
        [ "s4" ];
        [ "s4"; "s5"; "s6"; "s7" ];
        [ "s4"; "s5"; "s7" ];
        [ "s4"; "s6"; "s7" ];
      ]);
  check bool' "three cycles (Fig. 10)" true
    (path_sets a.cycles = [ [ "s5"; "s6"; "s7" ]; [ "s5"; "s7" ]; [ "s6"; "s7" ] ])

let test_paths_rule_order () =
  let a = Reasoning_path.analyze (program_of example_4_3) in
  let pi2 =
    List.find
      (fun p ->
        Reasoning_path.is_base p
        && List.length p.Reasoning_path.rules = 3)
      a.simple_paths
  in
  check bool' "premises before consumers" true
    (Reasoning_path.rule_ids pi2 = [ "alpha"; "beta"; "gamma" ])

let test_paths_edge_once_finiteness () =
  (* every path uses each rule at most once *)
  let check_once (p : Reasoning_path.t) =
    let ids = Reasoning_path.rule_ids p in
    List.length ids = List.length (List.sort_uniq String.compare ids)
  in
  List.iter
    (fun src ->
      let a = Reasoning_path.analyze (program_of src) in
      check bool' "each edge visited once" true
        (List.for_all check_once (a.simple_paths @ a.cycles)))
    [ example_4_3; company_control; stress_test ]

let test_paths_cycle_terminals () =
  let a = Reasoning_path.analyze (program_of example_4_3) in
  List.iter
    (fun (c : Reasoning_path.t) ->
      check bool' "cycle hangs from the critical node" true
        (c.terminals = [ "default" ]))
    a.cycles

(* --- glossary ----------------------------------------------------------------- *)

let test_glossary_validation () =
  (match
     Glossary.make
       [
         Glossary.entry ~pred:"p" ~args:[ ("x", Glossary.Plain) ] ~pattern:"no token here";
       ]
   with
  | Error msg -> check bool' "missing token reported" true (Textutil.contains_word msg "x")
  | Ok _ -> Alcotest.fail "pattern without token accepted");
  match
    Glossary.make
      [
        Glossary.entry ~pred:"p" ~args:[] ~pattern:"p holds";
        Glossary.entry ~pred:"p" ~args:[] ~pattern:"again";
      ]
  with
  | Error msg -> check bool' "duplicate reported" true (Textutil.contains_word msg "duplicate")
  | Ok _ -> Alcotest.fail "duplicate predicate accepted"

let test_glossary_formats () =
  check string' "euros" "7 million euros"
    (Glossary.format_value Glossary.Euros (Value.num 7_000_000.));
  check string' "percent" "55%" (Glossary.format_value Glossary.Percent (Value.num 0.55));
  check string' "plain string" "A" (Glossary.format_value Glossary.Plain (Value.str "A"))

let test_glossary_parse_spec () =
  let src =
    {|
# comment line
hasCapital(f, p:euros) :: <f> has capital of <p>
own(x, y, s:percent)   :: <x> owns <s> of <y>
default(f)             :: <f> is in default
|}
  in
  match Glossary.parse_spec src with
  | Error e -> Alcotest.fail e
  | Ok g ->
    check bool' "three entries" true (Glossary.preds g = [ "default"; "hasCapital"; "own" ]);
    check bool' "euros fmt" true (Glossary.arg_fmt g ~pred:"hasCapital" 1 = Glossary.Euros);
    check bool' "percent fmt" true (Glossary.arg_fmt g ~pred:"own" 2 = Glossary.Percent);
    check bool' "default fmt plain" true (Glossary.arg_fmt g ~pred:"own" 0 = Glossary.Plain)

let test_glossary_parse_spec_errors () =
  (match Glossary.parse_spec "broken line without separator" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted");
  match Glossary.parse_spec "p(x:bogus) :: <x>" with
  | Error msg -> check bool' "unknown format" true (Textutil.contains_word msg "bogus")
  | Ok _ -> Alcotest.fail "unknown format accepted"

(* --- verbalizer ------------------------------------------------------------------ *)

let rule_of src =
  match Parser.parse_rule src with
  | Ok r -> r
  | Error e -> Alcotest.failf "rule: %s" e

let test_verbalize_atom () =
  let a = Atom.make "debts" [ Term.var "D"; Term.str "B"; Term.num 7e6 ] in
  let text = Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_atom glossary_4_3 a) in
  check string' "tokens and formatted constants" "<D> has an amount 7 million euros of debts with B"
    text

let test_verbalize_atom_fallback () =
  let a = Atom.make "unknownPred" [ Term.var "X"; Term.var "Y" ] in
  let text = Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_atom glossary_4_3 a) in
  check bool' "generic fallback mentions predicate" true
    (Textutil.contains_word text "unknownPred")

let test_verbalize_rule_single_vs_multi () =
  let beta = rule_of "beta: default(D), debts(D, C, V), E = sum(V) -> risk(C, E)." in
  let single =
    Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule glossary_4_3 ~multi:false beta)
  in
  let multi =
    Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule glossary_4_3 ~multi:true beta)
  in
  check bool' "single variant omits the aggregator (§4.2)" true
    (not (Textutil.contains_word single "sum"));
  check bool' "multi variant verbalizes the aggregator" true
    (Textutil.contains_word multi "sum")

let test_verbalize_comparison_words () =
  let alpha = rule_of "alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F)." in
  let text =
    Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule glossary_4_3 ~multi:false alpha)
  in
  check bool' "'is higher than' used for >" true
    (Textutil.split_on_string ~sep:"is higher than" text |> List.length > 1);
  check bool' "since/then scaffolding" true (Textutil.starts_with ~prefix:"Since " text)

let test_verbalize_negation () =
  let g = Glossary.make_exn [] in
  let r = rule_of "p(X), not q(X) -> r(X)." in
  let text = Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule g ~multi:false r) in
  check bool' "negation phrase" true
    (Textutil.split_on_string ~sep:"it is not the case" text |> List.length > 1)

let test_verbalize_arithmetic () =
  let g = Glossary.make_exn [] in
  let r = rule_of "p(X, A, B), W = A * B -> q(X, W)." in
  let text = Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule g ~multi:false r) in
  check bool' "product in words" true
    (Textutil.split_on_string ~sep:"the product of" text |> List.length > 1)

let test_verbalize_count_min_max () =
  let g = Glossary.make_exn [] in
  List.iter
    (fun (src, phrase) ->
      let r = rule_of src in
      let text =
        Verbalizer.chunks_to_skeleton (Verbalizer.verbalize_rule g ~multi:true r)
      in
      check bool' (phrase ^ " phrasing") true
        (Textutil.split_on_string ~sep:phrase text |> List.length > 1))
    [
      ("p(X, V), N = count(V) -> q(X, N).", "the number of");
      ("p(X, V), N = min(V) -> q(X, N).", "the minimum of");
      ("p(X, V), N = max(V) -> q(X, N).", "the maximum of");
      ("p(X, V), N = prod(V) -> q(X, N).", "the product of");
    ]

let test_count_aggregation_end_to_end () =
  (* a fourth aggregate function through the full pipeline *)
  let src =
    {|
holds: own(X, Y, S), S >= 0.2 -> stake(X, Y).
influence: stake(X, Y), N = count(Y), N >= 2 -> influential(X).
@goal(influential).
own("F", "A", 0.3). own("F", "B", 0.25). own("G", "C", 0.5). own("G", "D", 0.1).
|}
  in
  let { Parser.program; facts } = parse_exn src in
  let g = Glossary.make_exn [] in
  let pipeline = Pipeline.build program g in
  match Pipeline.reason pipeline facts with
  | Error e -> Alcotest.fail e
  | Ok result -> (
    check bool' "only F influential" true
      (Ekg_engine.Database.active result.db "influential"
       |> List.map Ekg_engine.Fact.to_string
      = [ {|influential("F")|} ]);
    match Pipeline.explain_query pipeline result {|influential("F")|} with
    | Ok [ e ] ->
      check bool' "count verbalized" true
        (Textutil.split_on_string ~sep:"the number of" e.text |> List.length > 1);
      check bool' "count value 2 appears" true
        (Ekg_llm.Omission.contains_phrase e.text "2")
    | Ok _ -> Alcotest.fail "expected one explanation"
    | Error e -> Alcotest.fail e)

(* --- templates --------------------------------------------------------------------- *)

let analysis_4_3 = lazy (Reasoning_path.analyze (program_of example_4_3))

let pi2 () =
  List.find
    (fun p -> Reasoning_path.is_base p && List.length p.Reasoning_path.rules = 3)
    (Lazy.force analysis_4_3).simple_paths

let test_template_tokens () =
  let tpl = Template.of_path glossary_4_3 (pi2 ()) in
  let tokens = Template.tokens tpl in
  (* step 0 = alpha: F, S, P1; step 1 = beta: D, C, V, E; step 2 = gamma *)
  check bool' "alpha tokens present" true
    (List.mem (0, "F") tokens && List.mem (0, "S") tokens && List.mem (0, "P1") tokens);
  check bool' "beta tokens present" true (List.mem (1, "D") tokens && List.mem (1, "E") tokens);
  check bool' "gamma tokens present" true (List.mem (2, "C") tokens)

let test_template_marker_roundtrip () =
  let tpl = Template.of_path glossary_4_3 (pi2 ()) in
  match Template.of_marker_text ~like:tpl (Template.marker_text tpl) with
  | Ok tpl' ->
    check string' "round-trip preserves skeleton" (Template.skeleton tpl)
      (Template.skeleton tpl');
    check bool' "round-trip preserves tokens" true
      (Template.tokens tpl = Template.tokens tpl')
  | Error e -> Alcotest.fail e

let test_template_marker_rejects_unknown () =
  let tpl = Template.of_path glossary_4_3 (pi2 ()) in
  match Template.of_marker_text ~like:tpl "made up <Z#9> token" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown token accepted"

let test_template_missing_tokens () =
  let tpl = Template.of_path glossary_4_3 (pi2 ()) in
  let truncated =
    (* drop everything after the first sentence *)
    let text = Template.marker_text tpl in
    let first = List.hd (Textutil.sentences text) ^ "." in
    match Template.of_marker_text ~like:tpl first with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  check bool' "missing tokens detected" true
    (Template.missing_tokens ~reference:tpl truncated <> [])

(* --- enhancer ------------------------------------------------------------------------ *)

let test_enhancer_token_complete () =
  let a = Lazy.force analysis_4_3 in
  List.iter
    (fun path ->
      let det = Template.of_path glossary_4_3 path in
      let outcome = Enhancer.enhance glossary_4_3 det in
      check bool'
        ("enhanced template is token-complete: " ^ path.Reasoning_path.name)
        true
        (Template.missing_tokens ~reference:det outcome.template = []))
    (a.simple_paths @ a.cycles)

let test_enhancer_drops_chained_clauses () =
  let det = Template.of_path glossary_4_3 (pi2 ()) in
  let outcome = Enhancer.enhance glossary_4_3 det in
  check bool' "chaining redundancy removed" true (outcome.dropped_clauses > 0);
  check bool' "did not fall back" true (not outcome.fell_back)

let test_enhancer_styles_differ () =
  let det = Template.of_path glossary_4_3 (pi2 ()) in
  let s0 = (Enhancer.enhance ~style:0 glossary_4_3 det).template in
  let s1 = (Enhancer.enhance ~style:1 glossary_4_3 det).template in
  check bool' "styles produce different texts" true
    (Template.skeleton s0 <> Template.skeleton s1)

let test_enhancer_guard_catches_faulty_rewriter () =
  (* simulate a hallucinating LLM that deletes a token *)
  let det = Template.of_path glossary_4_3 (pi2 ()) in
  let text = Template.marker_text det in
  let butchered = Textutil.replace_all text ~pattern:"<P1#0>" ~by:"its capital" in
  match Template.of_marker_text ~like:det butchered with
  | Ok candidate -> (
    match Enhancer.guard ~reference:det candidate with
    | Error missing -> check bool' "token loss detected" true (List.mem (0, "P1") missing)
    | Ok _ -> Alcotest.fail "token deletion not caught")
  | Error e -> Alcotest.fail e

(* --- mapping and instantiation (Examples 4.7 and 4.8) --------------------------------- *)

let economy_facts =
  {|
shock("A", 6000000).
hasCapital("A", 5000000).
hasCapital("B", 2000000).
hasCapital("C", 10000000).
debts("A", "B", 7000000).
debts("B", "C", 2000000).
debts("B", "C", 9000000).
|}

let pipeline_4_3 () =
  let { Parser.program; _ } = parse_exn example_4_3 in
  Pipeline.build program glossary_4_3

let run_economy () =
  let { Parser.facts; _ } = parse_exn (example_4_3 ^ economy_facts) in
  let pipeline = pipeline_4_3 () in
  let result =
    match Pipeline.reason pipeline facts with
    | Ok r -> r
    | Error e -> Alcotest.failf "reasoning: %s" e
  in
  (pipeline, result)

let test_mapping_example_4_7 () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|default("C")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    (* the paper maps τ = {α,β,γ,β,γ} to the simple path {α,β,γ} plus
       the dashed cycle (their Π3 + Γ2, our Π2 + dashed Γ1) *)
    check bool' "two templates used" true (List.length e.paths_used = 2);
    (match e.mapping.assignments with
    | [ first; second ] ->
      check bool' "simple path first" true
        (first.path.Reasoning_path.kind = Reasoning_path.Simple);
      check bool' "simple path covers alpha beta gamma" true
        (Reasoning_path.rule_ids first.path = [ "alpha"; "beta"; "gamma" ]);
      check bool' "simple path is solid (single contributor)" true
        (Reasoning_path.is_base first.path);
      check bool' "cycle second" true
        (second.path.Reasoning_path.kind = Reasoning_path.Cycle);
      check bool' "cycle is dashed (multi contributor)" true
        (Reasoning_path.is_multi second.path "beta")
    | _ -> Alcotest.fail "expected exactly two assignments");
    check int' "no fallbacks" 0 e.mapping.fallbacks
  | Ok _ -> Alcotest.fail "expected one explanation"

let test_explanation_example_4_8 () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|default("C")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    (* every constant of the proof must appear, with the paper's
       aggregation rendering "sum of 2 million euros and 9 million" *)
    let constants = Verbalizer.constant_strings glossary_4_3 e.proof in
    List.iter
      (fun c ->
        check bool' ("constant present: " ^ c) true
          (Ekg_llm.Omission.contains_phrase e.text c))
      constants;
    check bool' "aggregation contributors spelled out" true
      (Ekg_llm.Omission.contains_phrase e.text "2 million euros and 9 million euros");
    check bool' "deterministic text also complete" true
      (Ekg_llm.Omission.retained_ratio ~constants e.deterministic_text = 1.0)
  | Ok _ -> Alcotest.fail "expected one explanation"

let test_explanation_direct_default () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|default("A")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    check bool' "single-step proof uses Π1" true
      (e.paths_used = [ "Π1" ]);
    check bool' "one sentence suffices" true
      (Textutil.sentence_count e.text <= 2)
  | Ok _ -> Alcotest.fail "expected one explanation"

let test_explain_with_horizon () =
  let pipeline, result = run_economy () in
  let f =
    match Ekg_engine.Query.parse_and_ask result.db {|default("C")|} with
    | Ok ((f, _) :: _) -> f
    | _ -> Alcotest.fail "default(C) missing"
  in
  match Pipeline.explain ~horizon:2 pipeline result f with
  | Error e -> Alcotest.fail e
  | Ok e ->
    check int' "two steps kept" 2 (Ekg_engine.Proof.length e.proof);
    check bool' "assumption preamble present" true
      (Textutil.starts_with ~prefix:"Taking as already established" e.text);
    check bool' "assumed default(B) verbalized" true
      (Ekg_llm.Omission.contains_phrase e.text "B is in default");
    (* the truncated narrative still carries the final-hop constants *)
    List.iter
      (fun phrase ->
        check bool' ("mentions " ^ phrase) true
          (Ekg_llm.Omission.contains_phrase e.text phrase))
      [ "11 million euros"; "10 million euros" ]

let test_explain_edb_rejected () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|shock("A", 6000000)|} with
  | Error msg -> check bool' "extensional rejected" true (Textutil.contains_word msg "extensional")
  | Ok _ -> Alcotest.fail "extensional fact explained"

let test_explain_pattern_query () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result "default(X)" with
  | Ok es -> check int' "all three defaults explained" 3 (List.length es)
  | Error e -> Alcotest.fail e

let test_mapping_total_on_random_cascades () =
  (* the mapper must cover every step of arbitrary proofs *)
  let rng = Prng.create 7 in
  let pipeline = pipeline_4_3 () in
  for depth = 0 to 6 do
    let inst = Ekg_datagen.Debts.simple_cascade rng ~depth in
    match Pipeline.reason pipeline inst.edb with
    | Error e -> Alcotest.fail e
    | Ok result -> (
      match Pipeline.explain_atom pipeline result inst.goal with
      | Ok [ e ] ->
        let covered =
          List.fold_left
            (fun acc (a : Proof_mapper.assignment) ->
              acc
              + List.fold_left (fun n (b : Proof_mapper.block) -> n + List.length b.steps) 0
                  a.blocks)
            0 e.mapping.assignments
        in
        check int'
          (Printf.sprintf "all %d steps covered at depth %d"
             (Ekg_engine.Proof.length e.proof) depth)
          (Ekg_engine.Proof.length e.proof) covered
      | Ok _ -> Alcotest.fail "expected one explanation"
      | Error e -> Alcotest.fail e)
  done

let test_ad_hoc_fallback_progresses () =
  (* a proof whose middle step has no enumerated cycle still explains:
     engineered by querying an intermediate predicate (risk) whose
     proofs end mid-path *)
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|risk("B", 7000000)|} with
  | Ok [ e ] -> check bool' "text produced" true (String.length e.text > 0)
  | Ok _ -> Alcotest.fail "expected one explanation"
  | Error e -> Alcotest.fail e

(* --- properties over random programs --------------------------------------------------- *)

(* Random layered programs over an extensional e(X, V): base, join,
   aggregation and self-recursive rule shapes, goal = the top
   predicate.  Small enough to chase exhaustively, rich enough to
   exercise recursion and aggregation in the analysis. *)
let random_program_gen =
  let open QCheck2.Gen in
  let* layers = int_range 1 3 in
  let* shapes =
    (* one or two rule shapes per layer: 0 base, 1 join, 2 agg, 3 self-rec *)
    list_repeat layers (list_size (int_range 1 2) (int_range 0 3))
  in
  let pred i = Printf.sprintf "p%d" i in
  let rules =
    List.concat
      (List.mapi
         (fun i layer_shapes ->
           let this = pred (i + 1) in
           let lower = if i = 0 then "e" else pred i in
           (* guarantee derivability of the layer *)
           let shapes = 0 :: layer_shapes in
           List.mapi
             (fun j shape ->
               let id = Printf.sprintf "%s_%d" this j in
               let src =
                 match shape with
                 | 0 -> Printf.sprintf "%s: e(X, V) -> %s(X, V)." id this
                 | 1 ->
                   Printf.sprintf "%s: %s(X, V), e(X, W) -> %s(X, W)." id lower this
                 | 2 ->
                   Printf.sprintf "%s: %s(X, V), S = sum(V) -> %s(X, S)." id lower this
                 | _ -> Printf.sprintf "%s: %s(X, V), e(X, W) -> %s(X, W)." id this this
               in
               src)
             shapes)
         shapes)
  in
  let* edb_pairs =
    list_size (int_range 1 6) (pair (int_range 0 3) (int_range 1 9))
  in
  let src =
    String.concat "\n" rules
    ^ Printf.sprintf "\n@goal(%s).\n" (pred layers)
    ^ String.concat "\n"
        (List.map
           (fun (x, v) -> Printf.sprintf "e(\"n%d\", %d)." x v)
           (List.sort_uniq compare edb_pairs))
  in
  return src

let prop_analysis_invariants =
  QCheck2.Test.make ~name:"reasoning-path invariants on random programs" ~count:80
    random_program_gen (fun src ->
      match Parser.parse src with
      | Error _ -> false
      | Ok { program; _ } ->
        let a = Reasoning_path.analyze program in
        let all = a.simple_paths @ a.cycles in
        let edge_once (p : Reasoning_path.t) =
          let ids = Reasoning_path.rule_ids p in
          List.length ids = List.length (List.sort_uniq String.compare ids)
        in
        let base_exists paths =
          (* every rule set occurs with an all-solid variant *)
          List.for_all
            (fun p ->
              List.exists
                (fun q ->
                  Reasoning_path.is_base q
                  && List.sort String.compare (Reasoning_path.rule_ids q)
                     = List.sort String.compare (Reasoning_path.rule_ids p))
                paths)
            paths
        in
        let cycles_have_terminals =
          List.for_all
            (fun (c : Reasoning_path.t) -> c.terminals <> [])
            a.cycles
        in
        all <> []
        && List.for_all edge_once all
        && base_exists a.simple_paths
        && base_exists a.cycles
        && cycles_have_terminals)

let prop_random_programs_explain_completely =
  QCheck2.Test.make ~name:"explanations complete on random programs" ~count:60
    random_program_gen (fun src ->
      match Parser.parse src with
      | Error _ -> false
      | Ok { program; facts } -> (
        let glossary = Glossary.make_exn [] in
        let pipeline = Pipeline.build program glossary in
        match Pipeline.reason pipeline facts with
        | Error _ -> false
        | Ok result ->
          let goals = Ekg_engine.Database.active result.db program.goal in
          List.for_all
            (fun f ->
              match Pipeline.explain pipeline result f with
              | Error _ -> false
              | Ok e ->
                let covered =
                  List.fold_left
                    (fun acc (a : Proof_mapper.assignment) ->
                      acc
                      + List.fold_left
                          (fun n (b : Proof_mapper.block) -> n + List.length b.steps)
                          0 a.blocks)
                    0 e.mapping.assignments
                in
                let constants = Verbalizer.constant_strings glossary e.proof in
                covered = Ekg_engine.Proof.length e.proof
                && Ekg_llm.Omission.retained_ratio ~constants e.text = 1.0
                && Ekg_llm.Omission.retained_ratio ~constants e.deterministic_text = 1.0)
            goals))

let core_qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_analysis_invariants; prop_random_programs_explain_completely ]

(* --- termination analysis --------------------------------------------------------------- *)

let verdict_of src =
  Termination.analyze (program_of src)

let test_termination_nonrecursive () =
  match verdict_of "p(X) -> q(X). q(X) -> r(X)." with
  | Termination.Terminates why ->
    check bool' "non-recursive" true (Textutil.contains_word why "recursive")
  | Termination.May_diverge _ -> Alcotest.fail "non-recursive flagged"

let test_termination_plain_recursion () =
  match
    verdict_of "e(X, Y) -> path(X, Y). path(X, Z), e(Z, Y) -> path(X, Y). @goal(path)."
  with
  | Termination.Terminates _ -> ()
  | Termination.May_diverge _ -> Alcotest.fail "transitive closure flagged"

let test_termination_monotonic_aggregation () =
  (* the paper's applications: aggregation inside recursion, bounded
     contributors *)
  List.iter
    (fun program ->
      match Termination.analyze program with
      | Termination.Terminates why ->
        check bool' "monotonic argument" true
          (Textutil.contains_word why "monotonic" || Textutil.contains_word why "recursive")
      | Termination.May_diverge rs ->
        Alcotest.failf "paper application flagged: %s" (String.concat "; " rs))
    [ Ekg_apps.Company_control.program; Ekg_apps.Stress_test.program ]

let test_termination_arithmetic_invention () =
  match verdict_of "n(X), Y = X + 1, Y < 10 -> n(Y). @goal(n)." with
  | Termination.May_diverge reasons ->
    check bool' "rule named" true
      (List.exists (fun r -> Textutil.contains_word r "r1") reasons)
  | Termination.Terminates _ -> Alcotest.fail "counter rule accepted"

let test_termination_close_link_flagged () =
  (* cl2 multiplies shares inside recursion: statically unbounded, in
     practice capped by its >= 0.01 materiality floor *)
  match Termination.analyze Ekg_apps.Close_link.program with
  | Termination.May_diverge reasons ->
    check bool' "names cl2" true
      (List.exists (fun r -> Textutil.contains_word r "cl2") reasons)
  | Termination.Terminates _ -> Alcotest.fail "product recursion not flagged"

let test_affected_positions_and_wardedness () =
  let p =
    program_of
      {|
r1: person(X) -> hasParent(X, Y).
r2: hasParent(X, Y) -> person(Y).
@goal(person).
|}
  in
  let affected = Termination.affected_positions p in
  check bool' "hasParent/2 second position affected" true
    (List.mem ("hasParent", 1) affected);
  check bool' "person position affected by propagation" true
    (List.mem ("person", 0) affected);
  check bool' "warded (single-atom bodies)" true (Termination.is_warded p);
  (match Termination.analyze p with
  | Termination.Terminates why ->
    check bool' "warded verdict" true (Textutil.contains_word why "warded")
  | Termination.May_diverge _ -> Alcotest.fail "warded program flagged");
  (* a genuinely unwarded program: two dangerous variables from
     different atoms meeting in the head *)
  let unwarded =
    program_of
      {|
r1: a(X) -> p(X, Y).
r2: b(X) -> q(X, Y).
r3: p(X, U), q(X, V) -> r(U, V).
r4: r(U, V) -> a(U).
@goal(r).
|}
  in
  check bool' "not warded" true (not (Termination.is_warded unwarded))

(* --- report ---------------------------------------------------------------------------- *)

let test_report_render () =
  let pipeline, result = run_economy () in
  match Pipeline.explain_query pipeline result {|default("C")|} with
  | Error e -> Alcotest.fail e
  | Ok [ e ] ->
    let report = Report.of_explanation ~title:"Stress test report" pipeline e in
    let text = Report.render ~width:60 report in
    check bool' "title present" true
      (Textutil.split_on_string ~sep:"Stress test report" text |> List.length > 1);
    check bool' "subject present" true
      (Textutil.split_on_string ~sep:{|default("C")|} text |> List.length > 1);
    (* the narrative body (everything before the appendix) is wrapped;
       the formal appendix keeps one derivation per line *)
    let body_part =
      List.hd (Textutil.split_on_string ~sep:"Appendix" text)
    in
    check bool' "body wrapped at 60" true
      (List.for_all
         (fun l -> String.length l <= 78)
         (String.split_on_char '\n' body_part));
    let md = Report.render_markdown report in
    check bool' "markdown heading" true (Textutil.starts_with ~prefix:"# " md)
  | Ok _ -> Alcotest.fail "expected one explanation"

(* --- template store (§4.4 human-in-the-loop persistence) ------------------------------ *)

let test_store_roundtrip () =
  let pipeline = pipeline_4_3 () in
  let serialized = Template_store.save pipeline in
  match Template_store.load pipeline serialized with
  | Error es -> Alcotest.fail (String.concat "; " es)
  | Ok pipeline' ->
    List.iter2
      (fun (n1, t1) (n2, t2) ->
        check string' "same names" n1 n2;
        check string' ("skeleton preserved: " ^ n1) (Template.skeleton t1)
          (Template.skeleton t2))
      pipeline.enhanced pipeline'.enhanced

let test_store_accepts_hand_edit () =
  let pipeline = pipeline_4_3 () in
  let serialized = Template_store.save pipeline in
  (* an expert rewording that keeps every token *)
  let edited =
    Textutil.replace_all serialized ~pattern:"Given that" ~by:"Considering that"
  in
  match Template_store.load pipeline edited with
  | Ok pipeline' ->
    let _, tpl = List.hd pipeline'.enhanced in
    check bool' "edit visible" true
      (Textutil.split_on_string ~sep:"Considering that" (Template.skeleton tpl)
       |> List.length > 1)
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_store_guard_rejects_token_loss () =
  let pipeline = pipeline_4_3 () in
  let serialized = Template_store.save pipeline in
  (* an expert "simplification" that deletes the capital token *)
  let butchered =
    Textutil.replace_all serialized ~pattern:"<P1#0>" ~by:"its capital"
  in
  match Template_store.load pipeline butchered with
  | Error es ->
    check bool' "guard names the token" true
      (List.exists (fun e -> Textutil.split_on_string ~sep:"P1" e |> List.length > 1) es)
  | Ok _ -> Alcotest.fail "token-losing edit accepted"

let test_store_unknown_name_rejected () =
  let pipeline = pipeline_4_3 () in
  match Template_store.load pipeline "@template Π99\nsome text\n" with
  | Error es -> check bool' "unknown name" true (es <> [])
  | Ok _ -> Alcotest.fail "unknown template name accepted"

let test_store_partial_file_keeps_generated () =
  let pipeline = pipeline_4_3 () in
  (* store only Π1; the rest must keep their generated templates *)
  let tpl_pi1 = List.assoc "Π1" pipeline.enhanced in
  let partial = "@template Π1\n" ^ Template.marker_text tpl_pi1 ^ "\n" in
  match Template_store.load pipeline partial with
  | Ok pipeline' ->
    check int' "same number of templates" (List.length pipeline.enhanced)
      (List.length pipeline'.enhanced)
  | Error es -> Alcotest.fail (String.concat "; " es)

let () =
  Alcotest.run "core"
    [
      ("depgraph", [ Alcotest.test_case "shape" `Quick test_depgraph_shape ]);
      ( "critical",
        [
          Alcotest.test_case "example 4.3" `Quick test_critical_example_4_3;
          Alcotest.test_case "company control" `Quick test_critical_company_control;
          Alcotest.test_case "stress test" `Quick test_critical_stress_test;
          Alcotest.test_case "dag diamond" `Quick test_critical_dag_diamond;
        ] );
      ( "reasoning-paths",
        [
          Alcotest.test_case "example 4.3 (Fig. 4/5)" `Quick test_paths_example_4_3;
          Alcotest.test_case "company control (Fig. 10)" `Quick test_paths_company_control;
          Alcotest.test_case "stress test (Fig. 10)" `Quick test_paths_stress_test;
          Alcotest.test_case "rule order" `Quick test_paths_rule_order;
          Alcotest.test_case "edge-once finiteness" `Quick test_paths_edge_once_finiteness;
          Alcotest.test_case "cycle terminals" `Quick test_paths_cycle_terminals;
        ] );
      ( "glossary",
        [
          Alcotest.test_case "validation" `Quick test_glossary_validation;
          Alcotest.test_case "formats" `Quick test_glossary_formats;
          Alcotest.test_case "parse spec" `Quick test_glossary_parse_spec;
          Alcotest.test_case "parse spec errors" `Quick test_glossary_parse_spec_errors;
        ] );
      ( "verbalizer",
        [
          Alcotest.test_case "atom" `Quick test_verbalize_atom;
          Alcotest.test_case "fallback" `Quick test_verbalize_atom_fallback;
          Alcotest.test_case "single vs multi aggregation" `Quick
            test_verbalize_rule_single_vs_multi;
          Alcotest.test_case "comparison words" `Quick test_verbalize_comparison_words;
          Alcotest.test_case "negation" `Quick test_verbalize_negation;
          Alcotest.test_case "arithmetic" `Quick test_verbalize_arithmetic;
          Alcotest.test_case "count/min/max phrasing" `Quick test_verbalize_count_min_max;
          Alcotest.test_case "count aggregation end to end" `Quick
            test_count_aggregation_end_to_end;
        ] );
      ( "template",
        [
          Alcotest.test_case "tokens" `Quick test_template_tokens;
          Alcotest.test_case "marker round-trip" `Quick test_template_marker_roundtrip;
          Alcotest.test_case "unknown marker rejected" `Quick
            test_template_marker_rejects_unknown;
          Alcotest.test_case "missing tokens" `Quick test_template_missing_tokens;
        ] );
      ( "enhancer",
        [
          Alcotest.test_case "token complete" `Quick test_enhancer_token_complete;
          Alcotest.test_case "drops chained clauses" `Quick
            test_enhancer_drops_chained_clauses;
          Alcotest.test_case "styles differ" `Quick test_enhancer_styles_differ;
          Alcotest.test_case "guard catches faulty rewriter" `Quick
            test_enhancer_guard_catches_faulty_rewriter;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "mapping (Example 4.7)" `Quick test_mapping_example_4_7;
          Alcotest.test_case "explanation (Example 4.8)" `Quick
            test_explanation_example_4_8;
          Alcotest.test_case "direct default" `Quick test_explanation_direct_default;
          Alcotest.test_case "horizon" `Quick test_explain_with_horizon;
          Alcotest.test_case "EDB rejected" `Quick test_explain_edb_rejected;
          Alcotest.test_case "pattern query" `Quick test_explain_pattern_query;
          Alcotest.test_case "mapping total on cascades" `Quick
            test_mapping_total_on_random_cascades;
          Alcotest.test_case "ad hoc fallback" `Quick test_ad_hoc_fallback_progresses;
        ] );
      ( "termination",
        [
          Alcotest.test_case "non-recursive" `Quick test_termination_nonrecursive;
          Alcotest.test_case "plain recursion" `Quick test_termination_plain_recursion;
          Alcotest.test_case "monotonic aggregation" `Quick
            test_termination_monotonic_aggregation;
          Alcotest.test_case "arithmetic invention" `Quick
            test_termination_arithmetic_invention;
          Alcotest.test_case "close link flagged" `Quick
            test_termination_close_link_flagged;
          Alcotest.test_case "affected positions / wardedness" `Quick
            test_affected_positions_and_wardedness;
        ] );
      ("report", [ Alcotest.test_case "render" `Quick test_report_render ]);
      ("properties", core_qsuite);
      ( "template-store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "hand edit accepted" `Quick test_store_accepts_hand_edit;
          Alcotest.test_case "token loss rejected" `Quick
            test_store_guard_rejects_token_loss;
          Alcotest.test_case "unknown name rejected" `Quick
            test_store_unknown_name_rejected;
          Alcotest.test_case "partial file" `Quick test_store_partial_file_keeps_generated;
        ] );
    ]
