(* Tests for the synthetic data generators: proof-length targeting (the
   x-axes of Figures 17 and 18 depend on it) and well-formedness. *)

open Ekg_kernel
open Ekg_engine
open Ekg_apps
open Ekg_datagen

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

let proof_length program edb goal =
  match Chase.run program edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db goal with
    | (f, _) :: _ -> (
      match Proof.of_fact res.db res.prov f with
      | Some p -> Proof.length p
      | None -> Alcotest.fail "goal fact has no proof")
    | [] -> Alcotest.failf "goal %s not derived" (Ekg_datalog.Atom.to_string goal))

let test_owner_chain_lengths () =
  let rng = Prng.create 11 in
  List.iter
    (fun hops ->
      let inst = Owners.chain rng ~hops in
      check int'
        (Printf.sprintf "chain of %d hops has proof length %d" hops hops)
        hops
        (proof_length Company_control.program inst.edb inst.goal))
    [ 1; 2; 5; 10; 21 ]

let test_owner_chain_variety () =
  let rng = Prng.create 12 in
  let a = Owners.chain rng ~hops:3 in
  let b = Owners.chain rng ~hops:3 in
  check bool' "distinct entities across samples" true (a.entities <> b.entities)

let test_owner_aggregated_multi_contributor () =
  let rng = Prng.create 13 in
  let inst = Owners.aggregated rng ~hops:3 ~fanout:3 in
  match Chase.run Company_control.program inst.edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db inst.goal with
    | (f, _) :: _ -> (
      match Proof.of_fact res.db res.prov f with
      | Some p ->
        check bool' "final step aggregates several contributors" true
          (List.exists (fun (s : Proof.step) -> s.multi) p.steps)
      | None -> Alcotest.fail "no proof")
    | [] -> Alcotest.fail "joint control not derived")

let test_owner_random_network_normalized () =
  let rng = Prng.create 14 in
  let edb = Owners.random_network rng ~entities:12 ~density:0.4 in
  (* no entity may be over-owned *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (a : Ekg_datalog.Atom.t) ->
      if a.pred = "own" then begin
        match a.args with
        | [ _; Ekg_datalog.Term.Cst y; Ekg_datalog.Term.Cst s ] ->
          let key = Value.to_display y in
          let cur = Option.value ~default:0. (Hashtbl.find_opt totals key) in
          Hashtbl.replace totals key (cur +. Value.as_float s)
        | _ -> ()
      end)
    edb;
  Hashtbl.iter
    (fun y total ->
      if total > 1.0 +. 1e-9 then Alcotest.failf "%s is over-owned: %f" y total)
    totals;
  (* the network must still run through the chase *)
  match Chase.run Company_control.program edb with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "random network does not chase: %s" e

let test_simple_cascade_lengths () =
  let rng = Prng.create 15 in
  List.iter
    (fun depth ->
      let inst = Debts.simple_cascade rng ~depth in
      check int'
        (Printf.sprintf "simple cascade depth %d" depth)
        ((2 * depth) + 1)
        (proof_length Stress_test.simple_program inst.edb inst.goal))
    [ 0; 1; 2; 4; 8 ]

let test_dual_cascade_lengths () =
  let rng = Prng.create 16 in
  List.iter
    (fun depth ->
      let inst = Debts.dual_cascade rng ~depth in
      check int'
        (Printf.sprintf "dual cascade depth %d" depth)
        ((3 * depth) + 1)
        (proof_length Stress_test.program inst.edb inst.goal))
    [ 0; 1; 3; 7 ]

let test_single_channel_lengths () =
  let rng = Prng.create 17 in
  List.iter
    (fun long ->
      let inst = Debts.single_channel_cascade rng ~depth:3 ~long in
      check int'
        (Printf.sprintf "single channel (long=%b)" long)
        7
        (proof_length Stress_test.program inst.edb inst.goal))
    [ true; false ]

let test_multi_debt_cascade () =
  let rng = Prng.create 18 in
  let inst = Debts.multi_debt_cascade rng ~depth:2 ~debts_per_hop:3 in
  match Chase.run Stress_test.simple_program inst.edb with
  | Error e -> Alcotest.failf "chase: %s" e
  | Ok res -> (
    match Query.ask res.db inst.goal with
    | (f, _) :: _ ->
      let p = Option.get (Proof.of_fact res.db res.prov f) in
      check int' "length unchanged by extra debts" 5 (Proof.length p);
      check bool' "aggregation steps are multi" true
        (List.exists (fun (s : Proof.step) -> s.multi) p.steps)
    | [] -> Alcotest.fail "cascade target not derived")

let test_generators_deterministic () =
  let a = Debts.dual_cascade (Prng.create 99) ~depth:3 in
  let b = Debts.dual_cascade (Prng.create 99) ~depth:3 in
  check bool' "same seed, same instance" true (a.edb = b.edb)

let test_generator_guards () =
  Alcotest.check_raises "chain hops >= 1"
    (Invalid_argument "Owners.chain: hops must be >= 1") (fun () ->
      ignore (Owners.chain (Prng.create 1) ~hops:0));
  Alcotest.check_raises "fanout >= 2"
    (Invalid_argument "Owners.aggregated: fanout must be >= 2") (fun () ->
      ignore (Owners.aggregated (Prng.create 1) ~hops:3 ~fanout:1))

let () =
  Alcotest.run "datagen"
    [
      ( "owners",
        [
          Alcotest.test_case "chain lengths" `Quick test_owner_chain_lengths;
          Alcotest.test_case "variety" `Quick test_owner_chain_variety;
          Alcotest.test_case "aggregated multi-contributor" `Quick
            test_owner_aggregated_multi_contributor;
          Alcotest.test_case "random network normalized" `Quick
            test_owner_random_network_normalized;
        ] );
      ( "debts",
        [
          Alcotest.test_case "simple cascade lengths" `Quick test_simple_cascade_lengths;
          Alcotest.test_case "dual cascade lengths" `Quick test_dual_cascade_lengths;
          Alcotest.test_case "single channel lengths" `Quick test_single_channel_lengths;
          Alcotest.test_case "multi-debt cascade" `Quick test_multi_debt_cascade;
        ] );
      ( "participations",
        [
          Alcotest.test_case "chain lengths" `Quick (fun () ->
              let rng = Prng.create 19 in
              List.iter
                (fun hops ->
                  let inst = Participations.chain rng ~hops in
                  check int'
                    (Printf.sprintf "chain of %d hops" hops)
                    (hops + 1)
                    (proof_length Close_link.program inst.edb inst.goal))
                [ 1; 2; 4; 5 ]);
          Alcotest.test_case "noise does not break the link" `Quick (fun () ->
              let rng = Prng.create 20 in
              let inst = Participations.with_noise rng ~hops:3 ~noise_edges:5 in
              check int' "length unchanged" 4
                (proof_length Close_link.program inst.edb inst.goal));
          Alcotest.test_case "too-deep chain rejected" `Quick (fun () ->
              match Participations.chain (Prng.create 21) ~hops:200 with
              | exception Invalid_argument _ -> ()
              | _ -> Alcotest.fail "200-hop chain needs shares above the 99% cap");
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "guards" `Quick test_generator_guards;
        ] );
    ]
