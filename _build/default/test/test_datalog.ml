(* Tests for the Datalog substrate: terms, atoms, expressions, rules,
   programs and the Vadalog-style parser (including round-trips). *)

open Ekg_kernel
open Ekg_datalog

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

let parse_rule_exn src =
  match Parser.parse_rule src with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse_rule %S: %s" src e

let parse_exn src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse: %s" e

(* --- terms and atoms ----------------------------------------------------- *)

let test_term_vars_order () =
  let terms = [ Term.var "X"; Term.int 1; Term.var "Y"; Term.var "X" ] in
  check bool' "distinct vars, first occurrence order" true (Term.vars terms = [ "X"; "Y" ])

let test_atom_ground () =
  let a = Atom.make "p" [ Term.int 1; Term.str "a" ] in
  check bool' "ground" true (Atom.is_ground a);
  let b = Atom.make "p" [ Term.var "X" ] in
  check bool' "non-ground" false (Atom.is_ground b);
  check string' "rendering" "p(1, \"a\")" (Atom.to_string a)

(* --- expressions --------------------------------------------------------- *)

let test_expr_eval () =
  let lookup = function
    | "X" -> Some (Value.int 4)
    | "Y" -> Some (Value.num 0.5)
    | _ -> None
  in
  let e = Expr.Mul (Expr.var "X", Expr.Add (Expr.var "Y", Expr.cst (Value.num 1.5))) in
  check bool' "4 * (0.5 + 1.5) = 8" true (Expr.eval lookup e = Some (Value.num 8.0));
  check bool' "unbound variable" true (Expr.eval lookup (Expr.var "Z") = None)

let test_expr_cmp () =
  let lookup = function "X" -> Some (Value.int 3) | _ -> None in
  let cmp op = { Expr.op; lhs = Expr.var "X"; rhs = Expr.cst (Value.num 3.0) } in
  check bool' "3 == 3.0" true (Expr.eval_cmp lookup (cmp Expr.Eq) = Some true);
  check bool' "3 > 3.0 false" true (Expr.eval_cmp lookup (cmp Expr.Gt) = Some false);
  check bool' "unbound gives None" true
    (Expr.eval_cmp (fun _ -> None) (cmp Expr.Lt) = None)

let test_expr_to_string_precedence () =
  let e = Expr.Mul (Expr.Add (Expr.var "A", Expr.var "B"), Expr.var "C") in
  check string' "parenthesized" "(A + B) * C" (Expr.to_string e)

(* --- rules ---------------------------------------------------------------- *)

let test_rule_accessors () =
  let r =
    parse_rule_exn "beta: default(D), debts(D, C, V), E = sum(V) -> risk(C, E)."
  in
  check string' "id" "beta" r.id;
  check string' "head pred" "risk" (Rule.head_pred r);
  check bool' "body preds" true (Rule.body_preds r = [ "default"; "debts" ]);
  check bool' "has aggregation" true (Rule.has_agg r);
  check bool' "group vars" true (Rule.group_vars r = [ "C" ]);
  check bool' "no existentials" true (Rule.existential_vars r = []);
  check bool' "bound vars include result" true (List.mem "E" (Rule.bound_vars r))

let test_rule_existentials () =
  let r = parse_rule_exn "person(X) -> hasParent(X, Y)." in
  check bool' "Y is existential" true (Rule.existential_vars r = [ "Y" ])

let test_rule_validation () =
  let r = parse_rule_exn "p(X), Y > 2 -> q(X)." in
  (match Rule.validate r with
  | Error msg -> check bool' "mentions unbound var" true (Textutil.contains_word msg "Y")
  | Ok () -> Alcotest.fail "unbound condition variable accepted");
  let r2 = parse_rule_exn "p(X), not q(X, Z) -> r(X)." in
  (match Rule.validate r2 with
  | Error msg -> check bool' "unsafe negation rejected" true (Textutil.contains_word msg "Z")
  | Ok () -> Alcotest.fail "unsafe negation accepted");
  let ok = parse_rule_exn "p(X), q(X, Y), X > Y -> r(X, Y)." in
  check bool' "safe rule validates" true (Rule.validate ok = Ok ())

let test_rule_to_string_roundtrip () =
  let srcs =
    [
      "alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).";
      "beta: default(D), debts(D, C, V), E = sum(V) -> risk(C, E).";
      "cl2: pathOwn(X, Z, W1), own(Z, Y, W2), W = W1 * W2, W >= 0.01 -> pathOwn(X, Y, W).";
      "neg: p(X), not q(X) -> r(X).";
    ]
  in
  List.iter
    (fun src ->
      let r = parse_rule_exn src in
      let r' = parse_rule_exn (Rule.to_string r) in
      check bool' ("round-trip: " ^ src) true (Rule.to_string r = Rule.to_string r'))
    srcs

(* --- programs -------------------------------------------------------------- *)

let company_control_src =
  {|
s1: own(X, Y, S), S > 0.5 -> control(X, Y).
s2: company(X) -> control(X, X).
s3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
|}

let test_program_classification () =
  let { Parser.program; _ } = parse_exn company_control_src in
  check bool' "edb preds" true (Program.edb_preds program = [ "company"; "own" ]);
  check bool' "idb preds" true (Program.idb_preds program = [ "control" ]);
  check bool' "recursive" true (Program.is_recursive program);
  check bool' "uses aggregation" true (Program.uses_aggregation program);
  check bool' "no negation" true (not (Program.uses_negation program));
  check string' "goal" "control" program.goal;
  check int' "rules deriving control" 3
    (List.length (Program.rules_deriving program "control"))

let test_program_default_goal () =
  let { Parser.program; _ } = parse_exn "p(X) -> q(X). q(X) -> r(X)." in
  check string' "defaults to last head" "r" program.goal

let test_program_auto_labels () =
  let { Parser.program; _ } = parse_exn "p(X) -> q(X). q(X) -> r(X)." in
  check bool' "auto labels r1 r2" true (Program.rule_ids program = [ "r1"; "r2" ])

let test_program_arity_mismatch () =
  match Parser.parse "p(X) -> q(X). p(X, Y) -> r(X)." with
  | Error msg -> check bool' "arity error mentions p" true (Textutil.contains_word msg "p")
  | Ok _ -> Alcotest.fail "inconsistent arity accepted"

let test_program_duplicate_labels () =
  match Parser.parse "a: p(X) -> q(X). a: q(X) -> r(X)." with
  | Error msg -> check bool' "duplicate label" true (Textutil.contains_word msg "duplicate")
  | Ok _ -> Alcotest.fail "duplicate labels accepted"

(* --- parser ------------------------------------------------------------------ *)

let test_parser_facts () =
  let { Parser.facts; _ } = parse_exn {|p(X) -> q(X). p("a"). p("b"). q("seed").|} in
  check int' "three facts" 3 (List.length facts)

let test_parser_head_first_form () =
  let r1 = parse_rule_exn "q(X) :- p(X), X > 2." in
  let r2 = parse_rule_exn "p(X), X > 2 -> q(X)." in
  check string' "both forms agree" (Rule.to_string r1) (Rule.to_string r2)

let test_parser_comments_and_whitespace () =
  let { Parser.program; _ } =
    parse_exn "% comment\n  p(X) -> q(X). # another\n\n@goal(q)."
  in
  check int' "one rule" 1 (List.length program.rules)

let test_parser_negative_numbers () =
  let { Parser.facts; _ } = parse_exn "p(X) -> q(X). p(-3). p(-2.5)." in
  check int' "negative constants" 2 (List.length facts)

let test_parser_errors_positioned () =
  (match Parser.parse "p(X -> q(X)." with
  | Error msg -> check bool' "mentions line" true (Textutil.contains_word msg "line")
  | Ok _ -> Alcotest.fail "unbalanced paren accepted");
  match Parser.parse "p(X) -> q(X). p(\"unterminated." with
  | Error msg ->
    check bool' "unterminated string reported" true
      (Textutil.contains_word msg "unterminated")
  | Ok _ -> Alcotest.fail "unterminated string accepted"

let test_parser_aggregations () =
  List.iter
    (fun (src, expected) ->
      let r = parse_rule_exn src in
      match r.agg with
      | Some a -> check bool' src true (a.func = expected)
      | None -> Alcotest.failf "no aggregation parsed in %s" src)
    [
      ("p(X, V), S = sum(V) -> q(X, S).", Rule.Sum);
      ("p(X, V), S = msum(V) -> q(X, S).", Rule.Sum);
      ("p(X, V), S = prod(V) -> q(X, S).", Rule.Prod);
      ("p(X, V), S = min(V) -> q(X, S).", Rule.Min);
      ("p(X, V), S = max(V) -> q(X, S).", Rule.Max);
      ("p(X, V), S = count(V) -> q(X, S).", Rule.Count);
    ]

let test_parser_rejects_double_agg () =
  match Parser.parse_rule "p(X, V), S = sum(V), T = max(V) -> q(X, S, T)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two aggregations accepted"

let test_parse_atom () =
  (match Parser.parse_atom {|control("B", "D")|} with
  | Ok a ->
    check string' "pred" "control" a.pred;
    check int' "arity" 2 (Atom.arity a)
  | Error e -> Alcotest.fail e);
  match Parser.parse_atom "control(X, \"D\")" with
  | Ok a -> check bool' "pattern with var" true (not (Atom.is_ground a))
  | Error e -> Alcotest.fail e

(* program generator for round-trip property: arity is encoded in the
   predicate name so generated programs always validate *)
let program_gen =
  let open QCheck2.Gen in
  let var = oneofl [ "X"; "Y"; "Z"; "W" ] in
  let pred = oneofl [ "p"; "q"; "r"; "s" ] in
  let atom =
    let* p = pred in
    let* args = list_size (int_range 1 3) (map Term.var var) in
    return (Atom.make (Printf.sprintf "%s%d" p (List.length args)) args)
  in
  let rule =
    let* body = list_size (int_range 1 3) atom in
    let* head_pred = oneofl [ "t"; "u" ] in
    let body_vars = List.concat_map Atom.vars body in
    let head_args =
      match body_vars with
      | [] -> [ Term.var "X" ]
      | v :: _ -> [ Term.var v ]
    in
    return
      (Rule.make
         ~body:(List.map (fun a -> Rule.Pos a) body)
         ~head:(Atom.make (head_pred ^ "1") head_args)
         ())
  in
  list_size (int_range 1 4) rule

let prop_program_roundtrip =
  QCheck2.Test.make ~name:"program print/parse round-trip" ~count:200 program_gen
    (fun rules ->
      let program = Program.make rules in
      match Parser.parse (Program.to_string program) with
      | Ok { program = program'; _ } ->
        Program.to_string program = Program.to_string program'
      | Error _ -> false)

(* --- substitutions ----------------------------------------------------------- *)

let test_subst_merge () =
  let s1 = Subst.of_list [ ("X", Value.int 1) ] in
  let s2 = Subst.of_list [ ("Y", Value.int 2) ] in
  let s3 = Subst.of_list [ ("X", Value.int 9) ] in
  (match Subst.merge s1 s2 with
  | Some m -> check int' "merged size" 2 (Subst.cardinal m)
  | None -> Alcotest.fail "disjoint merge failed");
  check bool' "conflict detected" true (Subst.merge s1 s3 = None)

let test_subst_match_atom () =
  let pattern = Atom.make "p" [ Term.var "X"; Term.str "k"; Term.var "X" ] in
  let ok = [| Value.int 1; Value.str "k"; Value.int 1 |] in
  let bad_const = [| Value.int 1; Value.str "other"; Value.int 1 |] in
  let bad_join = [| Value.int 1; Value.str "k"; Value.int 2 |] in
  check bool' "match binds" true (Subst.match_atom Subst.empty ~pattern ok <> None);
  check bool' "constant mismatch" true
    (Subst.match_atom Subst.empty ~pattern bad_const = None);
  check bool' "join var mismatch" true
    (Subst.match_atom Subst.empty ~pattern bad_join = None)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_program_roundtrip ]

let () =
  Alcotest.run "datalog"
    [
      ( "terms-atoms",
        [
          Alcotest.test_case "term vars order" `Quick test_term_vars_order;
          Alcotest.test_case "atom groundness" `Quick test_atom_ground;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "comparisons" `Quick test_expr_cmp;
          Alcotest.test_case "precedence printing" `Quick test_expr_to_string_precedence;
        ] );
      ( "rule",
        [
          Alcotest.test_case "accessors" `Quick test_rule_accessors;
          Alcotest.test_case "existentials" `Quick test_rule_existentials;
          Alcotest.test_case "validation" `Quick test_rule_validation;
          Alcotest.test_case "print/parse round-trip" `Quick test_rule_to_string_roundtrip;
        ] );
      ( "program",
        [
          Alcotest.test_case "classification" `Quick test_program_classification;
          Alcotest.test_case "default goal" `Quick test_program_default_goal;
          Alcotest.test_case "auto labels" `Quick test_program_auto_labels;
          Alcotest.test_case "arity mismatch" `Quick test_program_arity_mismatch;
          Alcotest.test_case "duplicate labels" `Quick test_program_duplicate_labels;
        ] );
      ( "parser",
        [
          Alcotest.test_case "facts" `Quick test_parser_facts;
          Alcotest.test_case "head-first form" `Quick test_parser_head_first_form;
          Alcotest.test_case "comments" `Quick test_parser_comments_and_whitespace;
          Alcotest.test_case "negative numbers" `Quick test_parser_negative_numbers;
          Alcotest.test_case "errors positioned" `Quick test_parser_errors_positioned;
          Alcotest.test_case "aggregation functions" `Quick test_parser_aggregations;
          Alcotest.test_case "double aggregation rejected" `Quick
            test_parser_rejects_double_agg;
          Alcotest.test_case "parse_atom" `Quick test_parse_atom;
        ] );
      ( "subst",
        [
          Alcotest.test_case "merge" `Quick test_subst_merge;
          Alcotest.test_case "match atom" `Quick test_subst_match_atom;
        ] );
      ("properties", qsuite);
    ]
