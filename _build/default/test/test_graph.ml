(* Tests for the generic labelled digraph: structure, SCCs, cycles,
   reachability and topological sorting. *)

open Ekg_graph

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

let build edges =
  let g = Digraph.create () in
  List.iter (fun (src, dst, label) -> Digraph.add_edge g ~src ~dst ~label) edges;
  g

let diamond = [ ("a", "b", "e1"); ("a", "c", "e2"); ("b", "d", "e3"); ("c", "d", "e4") ]
let cycle3 = [ ("x", "y", "1"); ("y", "z", "2"); ("z", "x", "3") ]

let test_basic_structure () =
  let g = build diamond in
  check int' "nodes" 4 (Digraph.node_count g);
  check int' "edges" 4 (Digraph.edge_count g);
  check bool' "mem edge" true (Digraph.mem_edge g ~src:"a" ~dst:"b");
  check bool' "no reverse edge" false (Digraph.mem_edge g ~src:"b" ~dst:"a");
  check int' "out degree a" 2 (Digraph.out_degree g "a");
  check int' "in degree d" 2 (Digraph.in_degree g "d")

let test_parallel_edges () =
  let g = build [ ("p", "q", "r1"); ("p", "q", "r2"); ("p", "q", "r1") ] in
  check int' "parallel edges kept, exact dup dropped" 2 (Digraph.edge_count g)

let test_remove_edge () =
  let g = build diamond in
  Digraph.remove_edge g ~src:"a" ~dst:"b" ~label:"e1";
  check int' "edge removed" 3 (Digraph.edge_count g);
  check bool' "node survives removal" true (Digraph.mem_node g "b")

let test_reachability () =
  let g = build diamond in
  check bool' "a reaches d" true (List.mem "d" (Digraph.reachable_from g "a"));
  check bool' "d reaches nothing but itself" true (Digraph.reachable_from g "d" = [ "d" ]);
  check bool' "co-reachable of d" true
    (Digraph.co_reachable g "d" = [ "a"; "b"; "c"; "d" ]);
  check bool' "depends_on: d depends on a" true (Digraph.depends_on g "d" "a")

let test_cycles () =
  let acyclic = build diamond in
  check bool' "diamond acyclic" false (Digraph.is_cyclic acyclic);
  let cyclic = build cycle3 in
  check bool' "triangle cyclic" true (Digraph.is_cyclic cyclic);
  check bool' "all on cycle" true
    (Digraph.nodes_on_cycles cyclic = [ "x"; "y"; "z" ]);
  let selfloop = build [ ("s", "s", "l") ] in
  check bool' "self loop cyclic" true (Digraph.is_cyclic selfloop);
  check bool' "self loop on cycle" true (Digraph.nodes_on_cycles selfloop = [ "s" ])

let test_sccs () =
  let g = build (cycle3 @ [ ("z", "w", "4"); ("w", "v", "5") ]) in
  let sccs = Digraph.sccs g in
  let sizes = List.sort Int.compare (List.map List.length sccs) in
  check bool' "one 3-scc and two singletons" true (sizes = [ 1; 1; 3 ])

let test_edge_on_cycle () =
  let g = build (cycle3 @ [ ("z", "w", "4") ]) in
  let on_cycle =
    List.filter (Digraph.edge_on_cycle g) (Digraph.edges g) |> List.length
  in
  check int' "three edges on the triangle" 3 on_cycle

let test_topological_sort () =
  let g = build diamond in
  (match Digraph.topological_sort g with
  | Some order ->
    let pos x =
      let rec idx i = function
        | [] -> -1
        | y :: rest -> if x = y then i else idx (i + 1) rest
      in
      idx 0 order
    in
    check bool' "a before d" true (pos "a" < pos "d");
    check bool' "b before d" true (pos "b" < pos "d")
  | None -> Alcotest.fail "diamond should sort");
  check bool' "cyclic graph has no topo order" true
    (Digraph.topological_sort (build cycle3) = None)

let test_copy_independent () =
  let g = build diamond in
  let g' = Digraph.copy g in
  Digraph.add_edge g' ~src:"d" ~dst:"a" ~label:"back";
  check bool' "copy gained the edge" true (Digraph.mem_edge g' ~src:"d" ~dst:"a");
  check bool' "original untouched" false (Digraph.mem_edge g ~src:"d" ~dst:"a");
  check bool' "original still acyclic" false (Digraph.is_cyclic g);
  check bool' "copy now cyclic" true (Digraph.is_cyclic g')

let test_to_dot () =
  let g = build [ ("a", "b", "r") ] in
  let dot = Digraph.to_dot ~label_to_string:Fun.id g in
  check bool' "dot mentions edge" true
    (Ekg_kernel.Textutil.split_on_string ~sep:"->" dot |> List.length > 1)

(* random DAG property: topological_sort orders every edge *)
let dag_gen =
  let open QCheck2.Gen in
  let* n = int_range 2 10 in
  let* edges =
    list_size (int_range 1 20)
      (let* i = int_range 0 (n - 2) in
       let* j = int_range (i + 1) (n - 1) in
       return (i, j))
  in
  return (n, edges)

let prop_topo_sort_dag =
  QCheck2.Test.make ~name:"topological sort orders all DAG edges" ~count:200 dag_gen
    (fun (_, edges) ->
      let g = Digraph.create () in
      List.iter
        (fun (i, j) ->
          Digraph.add_edge g ~src:(string_of_int i) ~dst:(string_of_int j) ~label:())
        edges;
      match Digraph.topological_sort g with
      | None -> false
      | Some order ->
        let pos = Hashtbl.create 16 in
        List.iteri (fun k v -> Hashtbl.replace pos v k) order;
        List.for_all
          (fun (i, j) ->
            Hashtbl.find pos (string_of_int i) < Hashtbl.find pos (string_of_int j))
          edges)

let prop_scc_partition =
  QCheck2.Test.make ~name:"SCCs partition the nodes" ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 30) (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let g = Digraph.create () in
      List.iter
        (fun (i, j) ->
          Digraph.add_edge g ~src:(string_of_int i) ~dst:(string_of_int j) ~label:())
        edges;
      let sccs = Digraph.sccs g in
      let flat = List.concat sccs |> List.sort String.compare in
      flat = Digraph.nodes g)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_topo_sort_dag; prop_scc_partition ]

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic structure" `Quick test_basic_structure;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "sccs" `Quick test_sccs;
          Alcotest.test_case "edge on cycle" `Quick test_edge_on_cycle;
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
      ("properties", qsuite);
    ]
