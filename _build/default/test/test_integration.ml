(* End-to-end integration properties over randomized instances: for
   every application and proof length, the template-based pipeline must
   produce complete (no constant ever lost — the paper's §6.3 claim
   "our approach, by construction, contains all constants") and
   well-mapped explanations. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

let check = Alcotest.check
let bool' = Alcotest.bool

let explain_instance pipeline (edb, goal) =
  match Pipeline.reason pipeline edb with
  | Error e -> Alcotest.failf "reason: %s" e
  | Ok result -> (
    match Pipeline.explain_atom pipeline result goal with
    | Ok (e :: _) -> e
    | Ok [] -> Alcotest.fail "no explanation"
    | Error e -> Alcotest.failf "explain: %s" e)

let assert_complete glossary (e : Pipeline.explanation) =
  let constants = Verbalizer.constant_strings glossary e.proof in
  let enhanced = Ekg_llm.Omission.retained_ratio ~constants e.text in
  let deterministic =
    Ekg_llm.Omission.retained_ratio ~constants e.deterministic_text
  in
  if enhanced < 1.0 then
    Alcotest.failf "enhanced explanation lost constants (%.2f): %s" enhanced e.text;
  if deterministic < 1.0 then
    Alcotest.failf "deterministic explanation lost constants (%.2f)" deterministic

let test_control_chains_complete () =
  let rng = Prng.create 101 in
  let pipeline = Company_control.pipeline () in
  List.iter
    (fun hops ->
      let inst = Owners.chain rng ~hops in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Company_control.glossary e;
      check bool'
        (Printf.sprintf "no fallbacks at %d hops" hops)
        true
        (e.mapping.fallbacks = 0))
    [ 1; 3; 6; 12; 21 ]

let test_control_aggregated_complete () =
  let rng = Prng.create 102 in
  let pipeline = Company_control.pipeline () in
  List.iter
    (fun fanout ->
      let inst = Owners.aggregated rng ~hops:4 ~fanout in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Company_control.glossary e)
    [ 2; 3; 5 ]

let test_simple_cascades_complete () =
  let rng = Prng.create 103 in
  let pipeline = Stress_test.simple_pipeline () in
  List.iter
    (fun depth ->
      let inst = Debts.simple_cascade rng ~depth in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Stress_test.simple_glossary e;
      check bool'
        (Printf.sprintf "no fallbacks at depth %d" depth)
        true
        (e.mapping.fallbacks = 0))
    [ 0; 1; 2; 4 ]

let test_dual_cascades_complete () =
  let rng = Prng.create 104 in
  let pipeline = Stress_test.pipeline () in
  List.iter
    (fun depth ->
      let inst = Debts.dual_cascade rng ~depth in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Stress_test.glossary e)
    [ 0; 1; 3; 5 ]

let test_multi_debt_cascades_complete () =
  let rng = Prng.create 105 in
  let pipeline = Stress_test.simple_pipeline () in
  List.iter
    (fun debts_per_hop ->
      let inst = Debts.multi_debt_cascade rng ~depth:3 ~debts_per_hop in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Stress_test.simple_glossary e)
    [ 2; 4 ]

let test_templates_more_compact_than_deterministic () =
  (* §1: template explanations should be compact — on aggregated
     instances the enhanced text must not be longer than the
     deterministic per-step verbalization *)
  let rng = Prng.create 106 in
  let pipeline = Company_control.pipeline () in
  let shorter = ref 0 in
  let total = 10 in
  for _ = 1 to total do
    let inst = Owners.chain rng ~hops:6 in
    let e = explain_instance pipeline (inst.edb, inst.goal) in
    let baseline =
      Verbalizer.verbalize_proof Company_control.glossary Company_control.program e.proof
    in
    if Textutil.word_count e.text <= Textutil.word_count baseline then incr shorter
  done;
  check bool' "enhanced text at most as long as baseline in most cases" true
    (!shorter >= 8)

let test_styles_are_interchangeable () =
  (* different enhancement styles must both be complete *)
  let rng = Prng.create 107 in
  let inst = Debts.simple_cascade rng ~depth:2 in
  List.iter
    (fun style ->
      let pipeline = Stress_test.simple_pipeline ~style () in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Stress_test.simple_glossary e)
    [ 0; 1; 2; 3 ]

let test_close_link_chains_complete () =
  let rng = Prng.create 109 in
  let pipeline = Close_link.pipeline () in
  List.iter
    (fun hops ->
      let inst = Participations.with_noise rng ~hops ~noise_edges:4 in
      let e = explain_instance pipeline (inst.edb, inst.goal) in
      assert_complete Close_link.glossary e)
    [ 1; 2; 3; 5 ]

let test_shortest_strategy_never_longer () =
  (* across random cascades, the shortest-proof strategy never yields a
     longer proof than the primary one, and stays complete *)
  let rng = Prng.create 110 in
  let pipeline = Stress_test.simple_pipeline () in
  List.iter
    (fun depth ->
      let inst = Debts.multi_debt_cascade rng ~depth ~debts_per_hop:2 in
      match Pipeline.reason pipeline inst.edb with
      | Error e -> Alcotest.failf "reason: %s" e
      | Ok result -> (
        match
          ( Pipeline.explain_atom pipeline result inst.goal,
            Pipeline.explain_atom ~strategy:`Shortest pipeline result inst.goal )
        with
        | Ok [ primary ], Ok [ shortest ] ->
          check bool' "shortest <= primary" true
            (Ekg_engine.Proof.length shortest.proof
            <= Ekg_engine.Proof.length primary.proof);
          assert_complete Stress_test.simple_glossary shortest
        | _ -> Alcotest.fail "expected one explanation per strategy"))
    [ 1; 2; 3 ]

let test_random_networks_never_crash () =
  let rng = Prng.create 108 in
  let pipeline = Company_control.pipeline () in
  for _ = 1 to 10 do
    let edb = Owners.random_network rng ~entities:10 ~density:0.35 in
    match Pipeline.reason pipeline edb with
    | Error e -> Alcotest.failf "random network failed: %s" e
    | Ok result ->
      (* explain every derived non-self control fact *)
      List.iter
        (fun (f : Ekg_engine.Fact.t) ->
          if not (Value.equal f.args.(0) f.args.(1)) then begin
            match Pipeline.explain pipeline result f with
            | Ok e -> assert_complete Company_control.glossary e
            | Error msg -> Alcotest.failf "explain failed: %s" msg
          end)
        (Ekg_engine.Database.active result.db "control")
  done

let () =
  Alcotest.run "integration"
    [
      ( "completeness",
        [
          Alcotest.test_case "control chains" `Quick test_control_chains_complete;
          Alcotest.test_case "aggregated control" `Quick test_control_aggregated_complete;
          Alcotest.test_case "simple cascades" `Quick test_simple_cascades_complete;
          Alcotest.test_case "dual cascades" `Quick test_dual_cascades_complete;
          Alcotest.test_case "multi-debt cascades" `Quick
            test_multi_debt_cascades_complete;
          Alcotest.test_case "close link chains" `Quick test_close_link_chains_complete;
          Alcotest.test_case "shortest strategy" `Quick
            test_shortest_strategy_never_longer;
        ] );
      ( "quality",
        [
          Alcotest.test_case "templates compact" `Quick
            test_templates_more_compact_than_deterministic;
          Alcotest.test_case "styles interchangeable" `Quick test_styles_are_interchangeable;
        ] );
      ( "robustness",
        [ Alcotest.test_case "random networks" `Quick test_random_networks_never_crash ]
      );
    ]
