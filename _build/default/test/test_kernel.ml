(* Unit and property tests for the kernel substrate: values, PRNG,
   text utilities and money formatting. *)

open Ekg_kernel

let ( ==> ) = QCheck2.( ==> )
let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int
let string' = Alcotest.string

(* --- Value ------------------------------------------------------------- *)

let test_value_numeric_equality () =
  check bool' "Int 1 = Num 1.0" true (Value.equal (Value.int 1) (Value.num 1.0));
  check bool' "Int 1 <> Num 1.5" false (Value.equal (Value.int 1) (Value.num 1.5));
  check int' "hash agrees on equal values"
    (Value.hash (Value.int 7))
    (Value.hash (Value.num 7.0))

let test_value_ordering () =
  check bool' "2 < 10 numerically" true (Value.compare (Value.int 2) (Value.int 10) < 0);
  check bool' "strings ordered" true (Value.compare (Value.str "a") (Value.str "b") < 0);
  check bool' "numeric before string" true
    (Value.compare (Value.int 5) (Value.str "a") < 0);
  check bool' "nulls ordered by label" true
    (Value.compare (Value.null 1) (Value.null 2) < 0)

let test_value_arithmetic () =
  check bool' "int add stays int" true (Value.add (Value.int 2) (Value.int 3) = Value.Int 5);
  check bool' "mixed add promotes" true
    (Value.equal (Value.add (Value.int 2) (Value.num 0.5)) (Value.num 2.5));
  check bool' "division always real" true
    (Value.equal (Value.div (Value.int 7) (Value.int 2)) (Value.num 3.5));
  Alcotest.check_raises "string arithmetic rejected"
    (Invalid_argument "Value.add: non-numeric operand") (fun () ->
      ignore (Value.add (Value.str "x") (Value.int 1)))

let test_value_display () =
  check string' "string unquoted in display" "A" (Value.to_display (Value.str "A"));
  check string' "string quoted in syntax" "\"A\"" (Value.to_string (Value.str "A"));
  check string' "integral float drops decimal" "3" (Value.to_display (Value.num 3.0));
  check string' "null rendering" "ν4" (Value.to_string (Value.null 4))

let prop_value_compare_total =
  let gen =
    QCheck2.Gen.oneof
      [
        QCheck2.Gen.map Value.int QCheck2.Gen.small_signed_int;
        QCheck2.Gen.map Value.num (QCheck2.Gen.float_bound_inclusive 100.);
        QCheck2.Gen.map Value.str (QCheck2.Gen.small_string ?gen:None);
        QCheck2.Gen.map Value.bool QCheck2.Gen.bool;
      ]
  in
  QCheck2.Test.make ~name:"Value.compare is antisymmetric and hash-consistent"
    ~count:500
    QCheck2.Gen.(pair gen gen)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = -c2 || (c1 = 0 && c2 = 0))
      && (not (Value.equal a b) || Value.hash a = Value.hash b))

(* --- Prng --------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 12345 and b = Prng.create 12345 in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  check bool' "same seed, same stream" true (xs = ys);
  let c = Prng.create 54321 in
  let zs = List.init 20 (fun _ -> Prng.next_int64 c) in
  check bool' "different seed, different stream" false (xs = zs)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "Prng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.fail "Prng.float out of bounds"
  done

let test_prng_shuffle_permutation () =
  let rng = Prng.create 99 in
  let xs = List.init 50 Fun.id in
  let ys = Prng.shuffle rng xs in
  check bool' "shuffle is a permutation" true
    (List.sort Int.compare ys = xs);
  let sample = Prng.sample_without_replacement rng 10 xs in
  check int' "sample size" 10 (List.length sample);
  check int' "sample distinct" 10 (List.length (List.sort_uniq Int.compare sample))

let test_prng_gaussian_moments () =
  let rng = Prng.create 2024 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
  check bool' "gaussian mean within 3 sigma of mu" true (Float.abs (mean -. 3.0) < 0.1)

(* --- Textutil ------------------------------------------------------------ *)

let test_join_and () =
  check string' "empty" "" (Textutil.join_and []);
  check string' "singleton" "a" (Textutil.join_and [ "a" ]);
  check string' "pair" "a and b" (Textutil.join_and [ "a"; "b" ]);
  check string' "triple" "a, b and c" (Textutil.join_and [ "a"; "b"; "c" ]);
  check string' "or" "a, b or c" (Textutil.join_or [ "a"; "b"; "c" ])

let test_sentences () =
  check int' "three sentences" 3 (Textutil.sentence_count "One. Two! Three?");
  check bool' "split keeps text" true
    (Textutil.sentences "Alpha beta. Gamma." = [ "Alpha beta"; "Gamma" ])

let test_normalize_spaces () =
  check string' "collapses runs" "a b c" (Textutil.normalize_spaces "  a\t b \n c ")

let test_contains_word () =
  check bool' "whole token match" true (Textutil.contains_word "B defaults today" "B");
  check bool' "no substring match" false (Textutil.contains_word "Bank defaults" "B")

let test_replace_all () =
  check string' "replaces all occurrences" "xbxb"
    (Textutil.replace_all "abab" ~pattern:"a" ~by:"x");
  check string' "pattern absent" "abc" (Textutil.replace_all "abc" ~pattern:"zz" ~by:"y")

let test_wrap () =
  let wrapped = Textutil.wrap ~width:10 "alpha beta gamma delta" in
  check bool' "all lines within width" true
    (List.for_all (fun l -> String.length l <= 10) (String.split_on_char '\n' wrapped));
  check string' "content preserved" "alpha beta gamma delta"
    (Textutil.normalize_spaces (Textutil.replace_all wrapped ~pattern:"\n" ~by:" "));
  check string' "long word on its own line" "supercalifragilistic"
    (Textutil.wrap ~width:5 "supercalifragilistic");
  Alcotest.check_raises "zero width rejected"
    (Invalid_argument "Textutil.wrap: width must be positive") (fun () ->
      ignore (Textutil.wrap ~width:0 "x"))

let test_sentences_decimals () =
  check int' "decimal points are not boundaries" 1
    (Textutil.sentence_count "B owns 90.52% of C and 7.5 million euros of debt");
  check int' "real boundary still splits" 2
    (Textutil.sentence_count "Worth 3.5 million. It defaulted.")

let test_split_on_string () =
  check bool' "basic split" true
    (Textutil.split_on_string ~sep:"::" "a::b::c" = [ "a"; "b"; "c" ]);
  check bool' "no separator" true (Textutil.split_on_string ~sep:"::" "abc" = [ "abc" ])

let prop_replace_roundtrip =
  QCheck2.Test.make ~name:"replace_all with fresh marker is reversible" ~count:200
    QCheck2.Gen.(small_string ?gen:None)
    (fun s ->
      (* use markers guaranteed absent from the alphabet of small_string *)
      let marked = Textutil.replace_all s ~pattern:"a" ~by:"@" in
      let back = Textutil.replace_all marked ~pattern:"@" ~by:"a" in
      (not (String.contains s '@')) ==> (back = s))

(* --- Money --------------------------------------------------------------- *)

let test_money_euros () =
  check string' "millions" "14 million euros" (Money.euros 14_000_000.);
  check string' "billions" "1.2 billion euros" (Money.euros 1_200_000_000.);
  check string' "plain" "7500 euros" (Money.euros 7500.);
  check string' "fractional millions" "2.5 million euros" (Money.euros 2_500_000.)

let test_money_compact () =
  check string' "compact M" "14M" (Money.compact 14_000_000.);
  check string' "compact K" "2.5K" (Money.compact 2500.)

let test_money_percent () =
  check string' "whole" "83%" (Money.percent 0.83);
  check string' "fraction" "7.5%" (Money.percent 0.075);
  check string' "over 100" "150%" (Money.percent 1.5)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_value_compare_total; prop_replace_roundtrip ]

let () =
  Alcotest.run "kernel"
    [
      ( "value",
        [
          Alcotest.test_case "numeric equality" `Quick test_value_numeric_equality;
          Alcotest.test_case "ordering" `Quick test_value_ordering;
          Alcotest.test_case "arithmetic" `Quick test_value_arithmetic;
          Alcotest.test_case "display" `Quick test_value_display;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ( "textutil",
        [
          Alcotest.test_case "join_and" `Quick test_join_and;
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "normalize spaces" `Quick test_normalize_spaces;
          Alcotest.test_case "contains word" `Quick test_contains_word;
          Alcotest.test_case "replace all" `Quick test_replace_all;
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "sentences with decimals" `Quick test_sentences_decimals;
          Alcotest.test_case "split on string" `Quick test_split_on_string;
        ] );
      ( "money",
        [
          Alcotest.test_case "euros" `Quick test_money_euros;
          Alcotest.test_case "compact" `Quick test_money_compact;
          Alcotest.test_case "percent" `Quick test_money_percent;
        ] );
      ("properties", qsuite);
    ]
