(* Tests for the simulated LLM baseline and the omission measurement
   of §6.3. *)

open Ekg_llm

let check = Alcotest.check
let bool' = Alcotest.bool

let sample_text =
  "Since a shock amounting to 6 million euros affects A, and A is a financial \
   institution with capital of 5 million euros, then A is in default. Since A is in \
   default, and A has an amount 7 million euros of debts with B, then B is at risk."

let sample_constants =
  [ "A"; "B"; "6 million euros"; "5 million euros"; "7 million euros" ]

(* --- omission measurement -------------------------------------------------- *)

let test_contains_phrase () =
  check bool' "multi-word phrase" true
    (Omission.contains_phrase sample_text "7 million euros");
  check bool' "entity token" true (Omission.contains_phrase sample_text "A");
  check bool' "no substring leakage" false
    (Omission.contains_phrase "the Bank defaulted" "B");
  check bool' "punctuation stripped" true
    (Omission.contains_phrase "capital of 5 million euros." "5 million euros")

let test_retained_ratio () =
  check bool' "full text retains everything" true
    (Omission.retained_ratio ~constants:sample_constants sample_text = 1.0);
  check bool' "empty constants trivially retained" true
    (Omission.retained_ratio ~constants:[] sample_text = 1.0);
  let partial = "A is in default." in
  let r = Omission.retained_ratio ~constants:sample_constants partial in
  check bool' "partial retention" true (r > 0. && r < 1.);
  check bool' "omitted = 1 - retained" true
    (Float.abs (Omission.omitted_ratio ~constants:sample_constants partial -. (1. -. r))
    < 1e-9)

(* --- simulated LLM ------------------------------------------------------------ *)

let test_mock_llm_deterministic () =
  let out1 =
    Mock_llm.rewrite Mock_llm.Paraphrase ~proof_length:5 ~constants:sample_constants
      sample_text
  in
  let out2 =
    Mock_llm.rewrite Mock_llm.Paraphrase ~proof_length:5 ~constants:sample_constants
      sample_text
  in
  check Alcotest.string "same inputs, same output" out1 out2

let test_mock_llm_short_proofs_complete () =
  let out =
    Mock_llm.rewrite Mock_llm.Paraphrase ~proof_length:1 ~constants:sample_constants
      sample_text
  in
  check bool' "short proofs stay (nearly) complete" true
    (Omission.retained_ratio ~constants:sample_constants out >= 0.8)

let test_omission_probability_monotone () =
  let cfg = Mock_llm.default_config in
  let prev = ref (-1.0) in
  for steps = 1 to 30 do
    let p = Mock_llm.omission_probability cfg Mock_llm.Paraphrase ~proof_length:steps in
    if p < !prev then Alcotest.fail "paraphrase omission probability not monotone";
    prev := p
  done;
  List.iter
    (fun steps ->
      let para =
        Mock_llm.omission_probability cfg Mock_llm.Paraphrase ~proof_length:steps
      in
      let summ =
        Mock_llm.omission_probability cfg Mock_llm.Summarize ~proof_length:steps
      in
      check bool'
        (Printf.sprintf "summary omits more at %d steps" steps)
        true (summ > para))
    [ 3; 9; 15; 21 ]

let test_mock_llm_omits_on_long_proofs () =
  (* average over several texts: at 21 chase steps the paraphrase
     omission must be clearly visible *)
  let ratios =
    List.init 20 (fun i ->
        let text = sample_text ^ Printf.sprintf " Variation %d." i in
        let out =
          Mock_llm.rewrite Mock_llm.Summarize ~proof_length:21
            ~constants:sample_constants text
        in
        Omission.omitted_ratio ~constants:sample_constants out)
  in
  let avg = List.fold_left ( +. ) 0. ratios /. 20. in
  check bool' "long summaries lose constants" true (avg > 0.2)

let test_mock_llm_rewrites_surface () =
  let out =
    Mock_llm.rewrite Mock_llm.Paraphrase ~proof_length:1 ~constants:[] sample_text
  in
  check bool' "text actually changed" true (out <> sample_text)

let test_mock_llm_hallucination_mode () =
  let cfg = { Mock_llm.default_config with hallucination_rate = 1.0 } in
  let out =
    Mock_llm.rewrite ~config:cfg Mock_llm.Paraphrase ~proof_length:1
      ~constants:sample_constants sample_text
  in
  check bool' "fabricated claim appended" true
    (Omission.contains_phrase out "Meridian Trust");
  (* the default configuration never hallucinates: calibration intact *)
  let clean =
    Mock_llm.rewrite Mock_llm.Paraphrase ~proof_length:1 ~constants:sample_constants
      sample_text
  in
  check bool' "default config clean" false (Omission.contains_phrase clean "Meridian Trust")

(* --- anonymization ------------------------------------------------------------- *)

let test_anonymize_roundtrip () =
  let entities = [ "IrishBank"; "MadridCredit"; "FondoItaliano" ] in
  let text =
    "IrishBank owns 83% of FondoItaliano; through it, IrishBank controls MadridCredit."
  in
  let anonymized, mapping = Anonymize.pseudonymize ~entities text in
  check bool' "no original name survives" true
    (List.for_all
       (fun e -> not (Ekg_kernel.Textutil.contains_word anonymized e))
       entities);
  check bool' "amounts survive" true
    (Ekg_kernel.Textutil.split_on_string ~sep:"83%" anonymized |> List.length > 1);
  check Alcotest.string "re-identification restores the text" text
    (Anonymize.reidentify mapping anonymized)

let test_anonymize_no_partial_replacement () =
  (* a name that prefixes another must not be replaced inside it *)
  let entities = [ "Bank"; "BankHolding" ] in
  let text = "Bank and BankHolding are distinct entities." in
  let anonymized, mapping = Anonymize.pseudonymize ~entities text in
  check bool' "two distinct pseudonyms" true
    (List.length (List.sort_uniq compare (List.map snd mapping)) = 2);
  check Alcotest.string "round-trip exact" text (Anonymize.reidentify mapping anonymized)

let test_anonymize_stable_numbering () =
  let entities = [ "Alpha"; "Beta" ] in
  let t1, m1 = Anonymize.pseudonymize ~entities "Alpha pays Beta." in
  let t2, m2 = Anonymize.pseudonymize ~entities "Beta pays Alpha." in
  check bool' "same mapping across texts" true (m1 = m2);
  check bool' "different texts differ" true (t1 <> t2)

let () =
  Alcotest.run "llm"
    [
      ( "omission",
        [
          Alcotest.test_case "contains phrase" `Quick test_contains_phrase;
          Alcotest.test_case "retained ratio" `Quick test_retained_ratio;
        ] );
      ( "mock-llm",
        [
          Alcotest.test_case "deterministic" `Quick test_mock_llm_deterministic;
          Alcotest.test_case "short proofs complete" `Quick
            test_mock_llm_short_proofs_complete;
          Alcotest.test_case "omission probability monotone" `Quick
            test_omission_probability_monotone;
          Alcotest.test_case "long proofs omit" `Quick test_mock_llm_omits_on_long_proofs;
          Alcotest.test_case "rewrites surface" `Quick test_mock_llm_rewrites_surface;
          Alcotest.test_case "hallucination mode" `Quick test_mock_llm_hallucination_mode;
        ] );
      ( "anonymize",
        [
          Alcotest.test_case "round-trip" `Quick test_anonymize_roundtrip;
          Alcotest.test_case "no partial replacement" `Quick
            test_anonymize_no_partial_replacement;
          Alcotest.test_case "stable numbering" `Quick test_anonymize_stable_numbering;
        ] );
    ]
