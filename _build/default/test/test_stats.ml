(* Tests for the statistics substrate: descriptive summaries, the
   Wilcoxon signed-rank test (against published reference values),
   Likert utilities and readability metrics. *)

open Ekg_stats

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

let close ?(eps = 1e-6) msg expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %f, got %f" msg expected got

(* --- descriptive ------------------------------------------------------------- *)

let test_mean_variance () =
  close "mean" 3.0 (Descriptive.mean [ 1.; 2.; 3.; 4.; 5. ]);
  close "sample variance" 2.5 (Descriptive.variance [ 1.; 2.; 3.; 4.; 5. ]);
  close "std dev" (sqrt 2.5) (Descriptive.std_dev [ 1.; 2.; 3.; 4.; 5. ]);
  close "singleton variance" 0.0 (Descriptive.variance [ 7. ])

let test_median_quantiles () =
  close "odd median" 3.0 (Descriptive.median [ 5.; 1.; 3.; 2.; 4. ]);
  close "even median interpolates" 2.5 (Descriptive.median [ 1.; 2.; 3.; 4. ]);
  close "q1" 1.75 (Descriptive.quantile 0.25 [ 1.; 2.; 3.; 4. ]);
  close "q0 is min" 1.0 (Descriptive.quantile 0.0 [ 3.; 1.; 2. ]);
  close "q1 is max" 3.0 (Descriptive.quantile 1.0 [ 3.; 1.; 2. ])

let test_five_number () =
  let f = Descriptive.five_number [ 1.; 2.; 3.; 4.; 5.; 100. ] in
  check bool' "100 flagged as outlier" true (f.outliers = [ 100. ]);
  check bool' "high whisker below outlier" true (f.high_whisker <= 5.);
  close "median" 3.5 f.median

let test_empty_sample_rejected () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (Descriptive.mean []))

(* --- Wilcoxon ------------------------------------------------------------------ *)

(* Classic textbook example (Wilcoxon 1945-style): differences with
   known W+ = 40, n = 9 *)
let test_wilcoxon_known_example () =
  let xs = [ 125.; 115.; 130.; 140.; 140.; 115.; 140.; 125.; 140. ] in
  let ys = [ 110.; 122.; 125.; 120.; 140.; 124.; 123.; 137.; 135. ] in
  (* one zero difference is dropped: n = 8 *)
  match Wilcoxon.signed_rank xs ys with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check int' "pairs after dropping zeros" 8 r.n;
    close "W+ + W- = n(n+1)/2" 36.0 (r.w_plus +. r.w_minus);
    check bool' "not significant at n=8 with mixed signs" true (r.p_value > 0.05)

let test_wilcoxon_strong_effect () =
  let xs = List.init 15 (fun i -> float_of_int (i + 10)) in
  let ys = List.init 15 (fun i -> float_of_int i) in
  match Wilcoxon.signed_rank xs ys with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check bool' "uniform improvement significant" true (Wilcoxon.significant r);
    close "all ranks positive" (15. *. 16. /. 2.) r.w_plus

let test_wilcoxon_exact_small_sample () =
  let xs = [ 3.; 5.; 8.; 12. ] and ys = [ 1.; 2.; 4.; 6. ] in
  match Wilcoxon.signed_rank xs ys with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check bool' "exact path used" true r.exact;
    (* all 4 differences positive: P(W+ >= 10) = 1/16, two-sided 1/8 *)
    close ~eps:1e-9 "exact p-value" 0.125 r.p_value

let test_wilcoxon_symmetric_null () =
  let xs = [ 1.; 2.; 3.; 4.; 5.; 6. ] in
  let ys = [ 2.; 1.; 4.; 3.; 6.; 5. ] in
  match Wilcoxon.signed_rank xs ys with
  | Error e -> Alcotest.fail e
  | Ok r -> check bool' "balanced differences not significant" true (r.p_value > 0.5)

let test_wilcoxon_errors () =
  (match Wilcoxon.signed_rank [ 1. ] [ 1.; 2. ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch accepted");
  match Wilcoxon.signed_rank [ 1.; 2. ] [ 1.; 2. ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-zero differences accepted"

let prop_wilcoxon_p_in_range =
  QCheck2.Test.make ~name:"Wilcoxon p-value lies in (0, 1]" ~count:200
    QCheck2.Gen.(
      list_size (int_range 5 30)
        (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pairs ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      match Wilcoxon.signed_rank xs ys with
      | Error _ -> true (* degenerate samples are allowed to fail *)
      | Ok r -> r.p_value > 0. && r.p_value <= 1.)

let prop_wilcoxon_symmetry =
  QCheck2.Test.make ~name:"Wilcoxon is symmetric in its arguments" ~count:200
    QCheck2.Gen.(
      list_size (int_range 5 20)
        (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pairs ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      match Wilcoxon.signed_rank xs ys, Wilcoxon.signed_rank ys xs with
      | Ok a, Ok b -> Float.abs (a.p_value -. b.p_value) < 1e-9
      | Error _, Error _ -> true
      | _ -> false)

(* --- Likert ----------------------------------------------------------------------- *)

let test_likert () =
  check int' "clamped low" 1 (Likert.of_int 0);
  check int' "clamped high" 5 (Likert.of_int 9);
  check int' "score 0 -> 1" 1 (Likert.of_score 0.);
  check int' "score 1 -> 5" 5 (Likert.of_score 1.);
  check int' "score 0.5 -> 3" 3 (Likert.of_score 0.5);
  close "mean" 3.0 (Likert.mean [ 2; 3; 4 ]);
  let d = Likert.distribution [ 1; 1; 5; 3 ] in
  check int' "two ones" 2 d.(0);
  check int' "one five" 1 d.(4)

(* --- readability --------------------------------------------------------------------- *)

let test_readability_metrics () =
  let m = Readability.analyze "The cat sat. The dog ran fast today." in
  check int' "two sentences" 2 m.sentences;
  check int' "eight words" 8 m.words;
  check bool' "sane sentence length" true (m.avg_sentence_length = 4.0)

let test_fluency_prefers_non_redundant () =
  let redundant =
    String.concat " "
      (List.init 12 (fun _ -> "B is at risk of defaulting given its loan of money."))
  in
  let varied =
    "A shock of 6 million euros hits A, exceeding its capital. Its creditor B, exposed \
     for 7 million, defaults in turn. The cascade finally reaches C, whose reserves \
     cannot absorb an 11 million exposure."
  in
  check bool' "varied prose scores higher" true
    (Readability.fluency_score varied > Readability.fluency_score redundant)

let test_fluency_bounds () =
  List.iter
    (fun text ->
      let s = Readability.fluency_score text in
      if s < 0. || s > 1. then Alcotest.failf "score out of range: %f" s)
    [ ""; "word"; String.concat " " (List.init 200 (fun i -> string_of_int i)) ]

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_wilcoxon_p_in_range; prop_wilcoxon_symmetry ]

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "median/quantiles" `Quick test_median_quantiles;
          Alcotest.test_case "five-number summary" `Quick test_five_number;
          Alcotest.test_case "empty rejected" `Quick test_empty_sample_rejected;
        ] );
      ( "wilcoxon",
        [
          Alcotest.test_case "known example" `Quick test_wilcoxon_known_example;
          Alcotest.test_case "strong effect" `Quick test_wilcoxon_strong_effect;
          Alcotest.test_case "exact small sample" `Quick test_wilcoxon_exact_small_sample;
          Alcotest.test_case "symmetric null" `Quick test_wilcoxon_symmetric_null;
          Alcotest.test_case "errors" `Quick test_wilcoxon_errors;
        ] );
      ("likert", [ Alcotest.test_case "scale" `Quick test_likert ]);
      ( "readability",
        [
          Alcotest.test_case "metrics" `Quick test_readability_metrics;
          Alcotest.test_case "prefers non-redundant" `Quick
            test_fluency_prefers_non_redundant;
          Alcotest.test_case "bounds" `Quick test_fluency_bounds;
        ] );
      ("properties", qsuite);
    ]
