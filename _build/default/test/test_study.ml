(* Tests for the user-study apparatus: visualization construction,
   error-archetype corruption, the simulated reader, and the expert
   grading panel. *)

open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_study

let check = Alcotest.check
let bool' = Alcotest.bool
let int' = Alcotest.int

(* a fixed explained instance to study *)
let explained () =
  let pipeline = Stress_test.simple_pipeline () in
  let rng = Prng.create 77 in
  let inst = Ekg_datagen.Debts.multi_debt_cascade rng ~depth:2 ~debts_per_hop:2 in
  match Pipeline.reason pipeline inst.edb with
  | Error e -> Alcotest.failf "reason: %s" e
  | Ok result -> (
    match Pipeline.explain_atom pipeline result inst.goal with
    | Ok [ e ] -> e
    | _ -> Alcotest.fail "explanation failed")

let test_correct_viz_fully_supported () =
  let e = explained () in
  let viz = Comprehension.correct_viz Stress_test.simple_glossary e.proof in
  check bool' "non-empty" true (viz.elements <> []);
  check bool' "every element supported by the explanation" true
    (Comprehension.support_fraction e.text viz = 1.0)

let test_viz_includes_aggregations () =
  let e = explained () in
  let viz = Comprehension.correct_viz Stress_test.simple_glossary e.proof in
  (* multi-debt cascade: at least one conjunction element *)
  check bool' "aggregation conjunction present" true
    (List.exists
       (fun el ->
         match el with
         | [ s ] -> List.length (Textutil.split_on_string ~sep:" and " s) > 1
         | _ -> false)
       viz.elements)

let test_corruptions_score_lower () =
  let e = explained () in
  let viz = Comprehension.correct_viz Stress_test.simple_glossary e.proof in
  let rng = Prng.create 78 in
  List.iter
    (fun archetype ->
      let corrupted = Comprehension.corrupt rng archetype viz in
      let s_correct = Comprehension.support_fraction e.text viz in
      let s_corrupted = Comprehension.support_fraction e.text corrupted in
      if s_corrupted >= s_correct then
        Alcotest.failf "%s scores %.3f >= correct %.3f"
          (Comprehension.archetype_label archetype)
          s_corrupted s_correct)
    Comprehension.all_archetypes

let test_reader_order_sensitivity () =
  let text = "A has an amount 7 million euros of debts with B." in
  check bool' "in-order element supported" true
    (Comprehension.element_supported text [ "A"; "7 million euros"; "B" ]);
  check bool' "reversed entity order rejected" false
    (Comprehension.element_supported text [ "B"; "7 million euros"; "A" ]);
  check bool' "missing value rejected" false
    (Comprehension.element_supported text [ "A"; "9 million euros"; "B" ])

let test_run_case_perfect_reader () =
  (* with zero noise, the correct viz always wins *)
  let e = explained () in
  let viz = Comprehension.correct_viz Stress_test.simple_glossary e.proof in
  let rng = Prng.create 79 in
  let d1 = Comprehension.corrupt rng Comprehension.Wrong_value viz in
  let d2 = Comprehension.corrupt rng Comprehension.Wrong_chain viz in
  let outcome =
    Comprehension.run_case rng ~participants:50 ~noise:0.0 ~text:e.text [ d1; viz; d2 ]
  in
  check int' "all participants correct" 50 outcome.correct;
  check bool' "accuracy 1.0" true (Comprehension.accuracy outcome = 1.0)

let test_run_case_noise_degrades () =
  let e = explained () in
  let viz = Comprehension.correct_viz Stress_test.simple_glossary e.proof in
  let rng = Prng.create 80 in
  let d1 = Comprehension.corrupt rng Comprehension.Wrong_value viz in
  let outcome =
    Comprehension.run_case rng ~participants:200 ~noise:0.8 ~text:e.text [ viz; d1 ]
  in
  check bool' "huge noise produces some errors" true (outcome.correct < 200)

(* --- grading ------------------------------------------------------------------- *)

let test_grade_bounds () =
  let rng = Prng.create 81 in
  for _ = 1 to 200 do
    let g = Grading.grade rng ~bias:0.0 ~noise:0.3 "Some explanation text here." in
    if g < 1 || g > 5 then Alcotest.fail "grade out of the Likert scale"
  done

let test_panel_pairing () =
  let rng = Prng.create 82 in
  let result =
    Grading.panel
      ~config:{ Grading.graders = 7; grader_bias_sigma = 0.05; item_noise_sigma = 0.1 }
      rng
      ~methods:[ "a"; "b" ]
      ~scenarios:[ [ "text one a"; "text one b" ]; [ "text two a"; "text two b" ] ]
  in
  List.iter
    (fun (_, grades) -> check int' "7 graders x 2 scenarios" 14 (List.length grades))
    result.per_method;
  check int' "one pair tested" 1 (List.length (Grading.wilcoxon_pairs result))

let test_panel_rejects_ragged_scenarios () =
  let rng = Prng.create 83 in
  match
    Grading.panel rng ~methods:[ "a"; "b" ] ~scenarios:[ [ "only one text" ] ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged scenario accepted"

let test_panel_better_text_scores_higher () =
  let rng = Prng.create 84 in
  let fluent =
    "A shock of 6 million euros hits A, exceeding its capital. Its creditor B, \
     exposed for 7 million, defaults in turn. The cascade finally reaches C."
  in
  let redundant =
    String.concat " "
      (List.init 14 (fun _ -> "B is at risk of defaulting given its loan of money."))
  in
  let result =
    Grading.panel rng ~methods:[ "fluent"; "redundant" ]
      ~scenarios:[ [ fluent; redundant ] ]
  in
  let mean m = Ekg_stats.Likert.mean (List.assoc m result.per_method) in
  check bool' "fluent text grades higher" true (mean "fluent" > mean "redundant")

let () =
  Alcotest.run "study"
    [
      ( "comprehension",
        [
          Alcotest.test_case "correct viz supported" `Quick
            test_correct_viz_fully_supported;
          Alcotest.test_case "aggregation elements" `Quick test_viz_includes_aggregations;
          Alcotest.test_case "corruptions score lower" `Quick test_corruptions_score_lower;
          Alcotest.test_case "reader order sensitivity" `Quick
            test_reader_order_sensitivity;
          Alcotest.test_case "perfect reader" `Quick test_run_case_perfect_reader;
          Alcotest.test_case "noise degrades" `Quick test_run_case_noise_degrades;
        ] );
      ( "grading",
        [
          Alcotest.test_case "grade bounds" `Quick test_grade_bounds;
          Alcotest.test_case "panel pairing" `Quick test_panel_pairing;
          Alcotest.test_case "ragged scenarios rejected" `Quick
            test_panel_rejects_ragged_scenarios;
          Alcotest.test_case "better text scores higher" `Quick
            test_panel_better_text_scores_higher;
        ] );
    ]
