(* Shared helpers for the experiment harness: section banners, timing,
   explanation plumbing and table rendering. *)

open Ekg_core

let section name description =
  Printf.printf "\n";
  Printf.printf "============================================================\n";
  Printf.printf "[%s] %s\n" name description;
  Printf.printf "============================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.)

(* Write a result artifact (BENCH_chase.json and friends) via tmp file
   + rename so an interrupted run leaves the previous complete file in
   place instead of a truncated one. *)
let write_file_atomic path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     flush oc
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* --- stage spans -----------------------------------------------------------

   One process-wide tracer whose finish hook aggregates self time per
   stage name; [span_summary] prints and resets the table, so each
   harness section reports the pipeline-stage breakdown of its own
   work. *)

let span_agg : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16
let span_lock = Mutex.create ()

let tracer =
  Ekg_obs.Trace.create ~capacity:16
    ~on_finish:(fun span ->
      Mutex.lock span_lock;
      let calls, self_ms =
        match Hashtbl.find_opt span_agg span.Ekg_obs.Trace.name with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0.) in
          Hashtbl.add span_agg span.Ekg_obs.Trace.name cell;
          cell
      in
      incr calls;
      self_ms := !self_ms +. Ekg_obs.Trace.self_ms span;
      Mutex.unlock span_lock)
    ()

let span_summary () =
  Mutex.lock span_lock;
  let rows =
    Hashtbl.fold
      (fun name (calls, ms) acc -> (name, !calls, !ms) :: acc)
      span_agg []
  in
  Hashtbl.reset span_agg;
  Mutex.unlock span_lock;
  match List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows with
  | [] -> ()
  | rows ->
    subsection "stage spans (self time)";
    List.iter
      (fun (name, calls, ms) ->
        Printf.printf "  %-24s %6d spans  %10.3f ms\n" name calls ms)
      rows

type explained = {
  explanation : Pipeline.explanation;
  result : Ekg_engine.Chase.result;
}

let explain_goal pipeline edb goal =
  match
    Ekg_obs.Trace.with_span tracer "chase" (fun _ ->
        Pipeline.reason pipeline edb)
  with
  | Error e -> failwith ("bench: reasoning failed: " ^ e)
  | Ok result -> (
    match Pipeline.explain_atom ~obs:tracer pipeline result goal with
    | Ok (e :: _) -> { explanation = e; result }
    | Ok [] -> failwith "bench: no explanation produced"
    | Error e -> failwith ("bench: explanation failed: " ^ e))

let five_number_row label values =
  let f = Ekg_stats.Descriptive.five_number values in
  Printf.printf "  %-14s  whiskers [%6.3f .. %6.3f]  quartiles [%6.3f %6.3f %6.3f]  mean %6.3f%s\n"
    label f.low_whisker f.high_whisker f.q1 f.median f.q3
    (Ekg_stats.Descriptive.mean values)
    (if f.outliers = [] then ""
     else Printf.sprintf "  (%d outliers)" (List.length f.outliers))

let paper_note text = Printf.printf "  paper: %s\n" text
