(* [chase-smoke] — parallel-chase smoke benchmark: runs a set of chase
   workloads at domains = 1 and domains = N, checks the outputs are
   byte-identical, and writes BENCH_chase.json with wall-clock,
   speedup and facts/sec per section.

   The headline workload ("fanout-joins") is built for the fan-out: 8
   independent 4-atom cyclic joins whose match phase dwarfs the
   sequential insert phase.  The recursive workloads (control chains,
   debt cascades) have small per-round deltas and mostly measure that
   the parallel protocol does not regress them. *)

open Ekg_datalog
open Ekg_apps
open Ekg_datagen

let domains_n = 4
let reps = 2

(* A synthetic workload of [preds] independent cyclic joins:
   ri: ei(X,Y), ei(Y,Z), ei(Z,W), ei(W,X) -> cyci(X).
   Each rule enumerates a large intermediate join for a small result
   set, and no rule feeds another, so round one carries [preds]
   balanced parallel tasks. *)
let fanout_source ~preds ~nodes ~edges =
  let rng = Ekg_kernel.Prng.create 2025 in
  let buf = Buffer.create (preds * edges * 24) in
  for i = 1 to preds do
    Buffer.add_string buf
      (Printf.sprintf
         "r%d: e%d(X,Y), e%d(Y,Z), e%d(Z,W), e%d(W,X) -> cyc%d(X).\n" i i i i
         i i)
  done;
  Buffer.add_string buf "@goal(cyc1).\n";
  for i = 1 to preds do
    for _ = 1 to edges do
      Buffer.add_string buf
        (Printf.sprintf "e%d(\"n%03d\", \"n%03d\").\n" i
           (Ekg_kernel.Prng.int rng nodes)
           (Ekg_kernel.Prng.int rng nodes))
    done
  done;
  Buffer.contents buf

let fanout_workload ~preds ~nodes ~edges () =
  match Parser.parse (fanout_source ~preds ~nodes ~edges) with
  | Ok { Parser.program; facts } -> (program, facts)
  | Error e -> failwith ("chase-smoke: fanout workload: " ^ e)

type workload = {
  w_name : string;
  program : Program.t;
  edb : Atom.t list;
}

let workloads () =
  let rng = Ekg_kernel.Prng.create 190 in
  let fanout_program, fanout_edb =
    fanout_workload ~preds:8 ~nodes:140 ~edges:1400 ()
  in
  let chain = Owners.chain rng ~hops:40 in
  let cascade = Debts.dual_cascade rng ~depth:30 in
  [
    { w_name = "fanout-joins"; program = fanout_program; edb = fanout_edb };
    {
      w_name = "control-chain-40";
      program = Company_control.program;
      edb = chain.Owners.edb;
    };
    {
      w_name = "stress-cascade-30";
      program = Stress_test.program;
      edb = cascade.Debts.edb;
    };
  ]

let run_once ~domains w =
  let t0 = Unix.gettimeofday () in
  let result = Ekg_engine.Chase.run_exn ~domains w.program w.edb in
  (result, Unix.gettimeofday () -. t0)

let best ~domains w =
  let rec go n ((_, best_s) as acc) =
    if n = 0 then acc
    else
      let (_, wall) as run = run_once ~domains w in
      go (n - 1) (if wall < best_s then run else acc)
  in
  go (reps - 1) (run_once ~domains w)

(* the full externally visible output: facts, ids, provenance and the
   chase graph — byte equality here is the determinism contract *)
let fingerprint (result : Ekg_engine.Chase.result) =
  Ekg_engine.Io.result_to_json result ^ Ekg_engine.Export.chase_graph_dot result

type section_out = {
  s_name : string;
  derived : int;
  rounds : int;
  wall_1 : float;
  wall_n : float;
  identical : bool;
}

(* --- admission-control overhead --------------------------------------------

   The server runs every chase under a deadline budget; the engine then
   polls a clock (and the cancel hook) inside its match loops.  Measure
   what that interrupt machinery costs when the budget never trips:
   p50/p99 latency of the same workload with no budget vs. with a
   roomy active deadline. *)

type overhead_out = {
  o_iters : int;
  p50_plain : float;
  p99_plain : float;
  p50_budget : float;
  p99_budget : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let measure_latencies ~iters run =
  let samples =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (run ());
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  Array.sort compare samples;
  samples

let admission_overhead w =
  let iters = 40 in
  (* warm-up, then interleave would bias caches the same way for both *)
  ignore (Ekg_engine.Chase.run_exn w.program w.edb);
  let plain =
    measure_latencies ~iters (fun () ->
        Ekg_engine.Chase.run_exn w.program w.edb)
  in
  let budgeted =
    measure_latencies ~iters (fun () ->
        Ekg_engine.Chase.run_exn
          ~budget:(Ekg_engine.Chase.within_ms 600_000.)
          w.program w.edb)
  in
  {
    o_iters = iters;
    p50_plain = percentile plain 0.50;
    p99_plain = percentile plain 0.99;
    p50_budget = percentile budgeted 0.50;
    p99_budget = percentile budgeted 0.99;
  }

(* --- observability overhead --------------------------------------------------

   The telemetry tier must be adoptable on hot paths: a noop logger or
   noop-registry lock has to cost one branch, and running the chase
   with its stats sink live (the server's default) has to stay within
   a few percent of the uninstrumented run.  Three micro/meso probes:
   ns per wide event (sink on vs. noop), ns per lock/unlock (plain
   Mutex vs. instrumented wrapper, noop and live), and p50 chase
   latency with the metrics sink on vs. off. *)

type obs_overhead_out = {
  ob_log_iters : int;
  ob_log_on_ns : float;
  ob_log_off_ns : float;
  ob_lock_iters : int;
  ob_lock_plain_ns : float;
  ob_lock_noop_ns : float;
  ob_lock_on_ns : float;
  ob_chase_iters : int;
  ob_p50_plain : float;
  ob_p50_stats : float;
}

(* a representative wide event: the field count of the server's *)
let wide_fields =
  Ekg_obs.Log.
    [
      "trace_id", Str "t-00000042";
      "method", Str "POST";
      "target", Str "/v1/sessions/s1/explain";
      "endpoint", Str "POST /v1/sessions/:id/explain";
      "status", Int 200;
      "error_code", Str "";
      "queue_wait_ms", Float 0.153;
      "session", Str "s1";
      "cache_hit", Bool false;
      "chase_source", Str "chased";
      "chase_rounds", Int 12;
      "chase_facts", Int 4096;
      "gc_minor_collections", Int 3;
      "gc_minor_words", Float 180224.;
    ]

let ns_per ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let observability_overhead w =
  let log_iters = 50_000 in
  let sink_bytes = ref 0 in
  let live =
    Ekg_obs.Log.create ~sink:(fun l -> sink_bytes := !sink_bytes + String.length l) ()
  in
  let off = Ekg_obs.Log.noop () in
  let log_on_ns =
    ns_per ~iters:log_iters (fun () ->
        Ekg_obs.Log.info live "request" wide_fields)
  in
  let log_off_ns =
    ns_per ~iters:log_iters (fun () ->
        Ekg_obs.Log.info off "request" wide_fields)
  in
  let lock_iters = 1_000_000 in
  let plain = Mutex.create () in
  let lock_plain_ns =
    ns_per ~iters:lock_iters (fun () ->
        Mutex.lock plain;
        Mutex.unlock plain)
  in
  let noop_lock = Ekg_obs.Lock.create "bench-noop" in
  let lock_noop_ns =
    ns_per ~iters:lock_iters (fun () ->
        Ekg_obs.Lock.lock noop_lock;
        Ekg_obs.Lock.unlock noop_lock)
  in
  let live_lock = Ekg_obs.Lock.create ~obs:(Ekg_obs.Metrics.create ()) "bench-live" in
  let lock_on_ns =
    ns_per ~iters:lock_iters (fun () ->
        Ekg_obs.Lock.lock live_lock;
        Ekg_obs.Lock.unlock live_lock)
  in
  (* the meso gate: the chase with its stats sink live, as the server
     runs it, against the bare engine.  The two variants are
     interleaved pair-wise so thermal / GC drift over the measurement
     window cancels instead of landing on whichever ran second. *)
  let chase_iters = 40 in
  ignore (Ekg_engine.Chase.run_exn w.program w.edb);
  let stats_sink = Ekg_obs.Metrics.create () in
  let plain_lat = Array.make chase_iters 0.
  and stats_lat = Array.make chase_iters 0. in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  for i = 0 to chase_iters - 1 do
    plain_lat.(i) <- time (fun () -> Ekg_engine.Chase.run_exn w.program w.edb);
    stats_lat.(i) <-
      time (fun () -> Ekg_engine.Chase.run_exn ~stats:stats_sink w.program w.edb)
  done;
  Array.sort compare plain_lat;
  Array.sort compare stats_lat;
  {
    ob_log_iters = log_iters;
    ob_log_on_ns = log_on_ns;
    ob_log_off_ns = log_off_ns;
    ob_lock_iters = lock_iters;
    ob_lock_plain_ns = lock_plain_ns;
    ob_lock_noop_ns = lock_noop_ns;
    ob_lock_on_ns = lock_on_ns;
    ob_chase_iters = chase_iters;
    ob_p50_plain = percentile plain_lat 0.50;
    ob_p50_stats = percentile stats_lat 0.50;
  }

(* --- incremental maintenance ------------------------------------------------

   Live updates vs. recomputation: materialize the fanout workload once,
   then apply a small batch of fresh edges and retract it again, timing
   each maintenance pass against a cold chase of the same base.
   Correctness gate: after add the maintained database must carry the
   same content fingerprint as a cold chase of the grown base, and after
   retract it must return to the original base's fingerprint. *)

type incr_out = {
  i_workload : string;
  i_batch : int;
  i_add_ms : float;
  i_retract_ms : float;
  i_cold_ms : float;
  i_identical : bool;
}

let incremental_maintenance w =
  let adds =
    (* fresh edges between existing nodes, so the delta actually joins *)
    let rng = Ekg_kernel.Prng.create 77 in
    let rec grow acc n =
      if n = 0 then acc
      else
        let text =
          Printf.sprintf "e1(\"n%03d\", \"n%03d\")"
            (Ekg_kernel.Prng.int rng 140)
            (Ekg_kernel.Prng.int rng 140)
        in
        match Parser.parse_atom text with
        | Error e -> failwith ("chase-smoke: bad incremental atom: " ^ e)
        | Ok atom ->
          if
            List.exists (Atom.equal atom) w.edb
            || List.exists (Atom.equal atom) acc
          then grow acc n
          else grow (atom :: acc) (n - 1)
    in
    grow [] 32
  in
  let exn = function
    | Ok v -> v
    | Error e ->
      failwith ("chase-smoke: incremental: " ^ Ekg_engine.Chase.error_to_string e)
  in
  let res, cold_s = run_once ~domains:1 w in
  let base_fp = Ekg_engine.Database.fingerprint res.Ekg_engine.Chase.db in
  let t0 = Unix.gettimeofday () in
  let res_add, _ = exn (Ekg_engine.Chase.add_facts w.program res adds) in
  let add_s = Unix.gettimeofday () -. t0 in
  let cold_grown =
    Ekg_engine.Chase.run_exn ~domains:1 w.program (w.edb @ List.rev adds)
  in
  let grown_ok =
    Ekg_engine.Database.fingerprint res_add.Ekg_engine.Chase.db
    = Ekg_engine.Database.fingerprint cold_grown.Ekg_engine.Chase.db
  in
  let t0 = Unix.gettimeofday () in
  let res_back, _ = exn (Ekg_engine.Chase.retract_facts w.program res_add adds) in
  let retract_s = Unix.gettimeofday () -. t0 in
  let back_ok =
    Ekg_engine.Database.fingerprint res_back.Ekg_engine.Chase.db = base_fp
  in
  {
    i_workload = w.w_name;
    i_batch = List.length adds;
    i_add_ms = add_s *. 1000.;
    i_retract_ms = retract_s *. 1000.;
    i_cold_ms = cold_s *. 1000.;
    i_identical = grown_ok && back_ok;
  }

(* --- session persistence ----------------------------------------------------

   The whole point of the snapshot store is that restoring a persisted
   materialization is cheaper than recomputing it.  For every bundled
   app: time the cold chase, the snapshot write (encode + fsync +
   rename), and the warm restore (read + decode + fingerprint check),
   gated on the restored instance being fingerprint-identical. *)

type persist_out = {
  p_app : string;
  p_facts : int;
  p_bytes : int;
  p_cold_ms : float;
  p_snapshot_ms : float;
  p_restore_ms : float;
  p_identical : bool;
}

(* Session-scale EDBs per bundled app (the demo EDBs chase in tens of
   microseconds, below the syscall floor of a snapshot read, so they
   cannot rank warm restore against cold chase meaningfully).  The
   recursive apps reuse the proof-length-targeted datagen generators;
   golden-power is non-recursive, so it gets a wide portfolio of
   independent deals. *)
let persist_edb rng = function
  | "company-control" -> (Ekg_datagen.Owners.chain rng ~hops:60).Owners.edb
  | "stress-test" -> (Ekg_datagen.Debts.dual_cascade rng ~depth:60).Debts.edb
  | "close-link" ->
    (Ekg_datagen.Participations.with_noise rng ~hops:40 ~noise_edges:400)
      .Participations.edb
  | "golden-power" ->
    (* many acquisition tranches x many sub-threshold stakes per
       strategic target: the g1 join enumerates tranches*stakes
       candidate sums per target and derives exactly one goldenPower
       fact each, so the chase pays real match work that a restore
       replays in insert-linear time — the regulator's "mostly no"
       screening workload *)
    let targets = 24 and tranches = 36 and stakes = 36 in
    List.concat
      (List.init targets (fun ti ->
           let t = Printf.sprintf "Target%02d" ti
           and b = Printf.sprintf "Buyer%02d" ti in
           (Golden_power.strategic t :: Golden_power.eu_entity b
          :: Golden_power.acquisition b t 0.2 :: Company_control.own b t 0.4
          :: List.init tranches (fun j ->
                 Golden_power.acquisition b t (0.001 *. float_of_int j)))
           @ List.init stakes (fun j ->
                 Company_control.own b t (0.002 *. float_of_int j))))
  | app -> failwith ("chase-smoke: no persistence workload for " ^ app)

let persistence_bench dir =
  let store =
    match Ekg_store.Store.open_dir dir with
    | Ok s -> s
    | Error e -> failwith ("chase-smoke: store: " ^ e)
  in
  let rng = Ekg_kernel.Prng.create 77 in
  List.map
    (fun app ->
      let { Ekg_apps.Apps_util.pipeline; edb = _ } =
        match Ekg_apps.Bundled.load app with
        | Ok l -> l
        | Error e -> failwith ("chase-smoke: " ^ app ^ ": " ^ e)
      in
      let edb = persist_edb rng app in
      let program = pipeline.Ekg_core.Pipeline.program in
      let chase () = Ekg_engine.Chase.run_exn ~domains:1 program edb in
      (* chase, snapshot and restore all take the best of the same
         number of samples so the comparison is symmetric *)
      let preps = 5 and batch = 3 in
      let cold = chase () (* warm-up + reference materialization *) in
      let snap =
        {
          Ekg_store.Codec.id = "bench-" ^ app;
          name = app;
          spec = Ekg_store.Codec.App app;
          program_hash = Ekg_core.Pipeline.identity pipeline;
          update_gen = 0;
          created_at = Unix.gettimeofday ();
          edb;
          mat = Some cold;
        }
      in
      let best_of n f =
        let sample () =
          let _, ms =
            Bench_util.time_ms (fun () ->
                for _ = 1 to batch do
                  f ()
                done)
          in
          ms /. float_of_int batch
        in
        let rec go n acc =
          if n = 0 then acc else go (n - 1) (Float.min acc (sample ()))
        in
        go (n - 1) (sample ())
      in
      let cold_ms = best_of preps (fun () -> ignore (chase ())) in
      let bytes =
        match Ekg_store.Store.save store snap with
        | Ok b -> b
        | Error e -> failwith ("chase-smoke: snapshot: " ^ e)
      in
      let snapshot_ms =
        best_of preps (fun () ->
            match Ekg_store.Store.save store snap with
            | Ok _ -> ()
            | Error e -> failwith ("chase-smoke: snapshot: " ^ e))
      in
      let restored = ref None in
      let restore_ms =
        best_of preps (fun () ->
            match Ekg_store.Store.load store snap.Ekg_store.Codec.id with
            | Ok s -> restored := s.Ekg_store.Codec.mat
            | Error e -> failwith ("chase-smoke: restore: " ^ e))
      in
      let identical =
        match !restored with
        | Some r ->
          Ekg_engine.Database.fingerprint r.Ekg_engine.Chase.db
          = Ekg_engine.Database.fingerprint cold.Ekg_engine.Chase.db
        | None -> false
      in
      Ekg_store.Store.delete store snap.Ekg_store.Codec.id;
      {
        p_app = app;
        p_facts = List.length edb;
        p_bytes = bytes;
        p_cold_ms = cold_ms;
        p_snapshot_ms = snapshot_ms;
        p_restore_ms = restore_ms;
        p_identical = identical;
      })
    Ekg_apps.Bundled.names

(* --- goal-directed query lane -----------------------------------------------

   The /query endpoint answers bound point queries by magic-sets
   specialization over the session EDB, never touching the served
   materialization.  The demo EDBs are too small to rank the two paths
   (one chain, so the scoped instance IS the full instance); the
   session-scale workload here is a forest of independent chains, and
   the query binds one chain's head — goal-direction should explore
   that chain and skip the rest, while full materialization derives
   every chain's closure.  Identity gate: the lane's answers must be
   exactly what [Query.ask] returns over the full materialization. *)

type qlane_out = {
  ql_app : string;
  ql_query : string;
  ql_mask : string;
  ql_mode : string;
  ql_edb_facts : int;
  ql_full_facts : int;
  ql_scoped_facts : int;
  ql_answers : int;
  ql_iters : int;
  ql_rewrite_ms : float;
  ql_p50_query_ms : float;
  ql_p50_full_ms : float;
  ql_speedup : float;
  ql_identity : bool;
}

let query_lane_bench () =
  let rng = Ekg_kernel.Prng.create 9090 in
  let control_insts = List.init 24 (fun _ -> Owners.chain rng ~hops:24) in
  let control_edb = List.concat_map (fun i -> i.Owners.edb) control_insts in
  let control_head = List.hd (List.hd control_insts).Owners.entities in
  let link_insts = List.init 24 (fun _ -> Participations.chain rng ~hops:30) in
  let link_edb = List.concat_map (fun i -> i.Participations.edb) link_insts in
  let link_head = List.hd (List.hd link_insts).Participations.entities in
  List.map
    (fun (app, edb, atom) ->
      let { Ekg_apps.Apps_util.pipeline; edb = _ } =
        match Ekg_apps.Bundled.load app with
        | Ok l -> l
        | Error e -> failwith ("chase-smoke: " ^ app ^ ": " ^ e)
      in
      let program = pipeline.Ekg_core.Pipeline.program in
      let pred = atom.Atom.pred in
      let mask = Ekg_engine.Magic.adornment atom in
      let t0 = Unix.gettimeofday () in
      let spec =
        match Ekg_core.Pipeline.specialize pipeline ~pred ~mask with
        | Ok s -> s
        | Error e -> failwith ("chase-smoke: query-lane specialize: " ^ e)
      in
      let rewrite_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let run_query () =
        match Ekg_core.Pipeline.query pipeline spec edb atom with
        | Ok r -> r
        | Error e ->
          failwith
            ("chase-smoke: query-lane: " ^ Ekg_engine.Chase.error_to_string e)
      in
      let run_full () = Ekg_engine.Chase.run_exn ~domains:1 program edb in
      let qr = run_query () in
      let full = run_full () in
      (* identity gate: lane answers == filtering the full materialization *)
      let lane_answers =
        List.map
          (fun a -> Ekg_engine.Fact.to_string a.Ekg_core.Pipeline.qa_fact)
          qr.Ekg_core.Pipeline.q_answers
      in
      let full_answers =
        List.sort String.compare
          (List.map
             (fun (f, _) -> Ekg_engine.Fact.to_string f)
             (Ekg_engine.Query.ask full.Ekg_engine.Chase.db atom))
      in
      let identity = lane_answers = full_answers && lane_answers <> [] in
      let iters_q = 40 and iters_f = 12 in
      let q_lat =
        measure_latencies ~iters:iters_q (fun () -> ignore (run_query ()))
      in
      let f_lat =
        measure_latencies ~iters:iters_f (fun () -> ignore (run_full ()))
      in
      let p50_q = percentile q_lat 0.50 in
      let p50_f = percentile f_lat 0.50 in
      {
        ql_app = app;
        ql_query = Atom.to_string atom;
        ql_mask = mask;
        ql_mode =
          (match qr.Ekg_core.Pipeline.q_mode with
          | `Magic -> "magic"
          | `Full -> "full"
          | `Edb -> "edb");
        ql_edb_facts = List.length edb;
        ql_full_facts = full.Ekg_engine.Chase.derived_count;
        ql_scoped_facts = qr.Ekg_core.Pipeline.q_derived;
        ql_answers = List.length qr.Ekg_core.Pipeline.q_answers;
        ql_iters = iters_q;
        ql_rewrite_ms = rewrite_ms;
        ql_p50_query_ms = p50_q;
        ql_p50_full_ms = p50_f;
        ql_speedup = (if p50_q > 0. then p50_f /. p50_q else 0.);
        ql_identity = identity;
      })
    [
      ( "company-control",
        control_edb,
        Atom.make "control" [ Term.str control_head; Term.var "X" ] );
      ( "close-link",
        link_edb,
        Atom.make "closeLink" [ Term.str link_head; Term.var "X" ] );
    ]

(* --- join core --------------------------------------------------------------

   The columnar hash-join engine (PR 8) against the nested-loop
   baseline it replaced, single-threaded — the speedup is pure
   engine-core improvement, no parallelism involved.  Gated on the two
   engines producing byte-identical output (facts, ids, provenance,
   chase graph), and accompanied by a build/probe microbenchmark over
   the columnar storage itself. *)

type join_section = {
  jw_name : string;
  j_derived : int;
  j_nested_s : float;
  j_hash_s : float;
  j_identical : bool;
}

(* "fanout-joins" wall at domains=1 recorded in BENCH_chase.json by the
   posting-list engine before this release (PR 7, commit 075b8f3) — the
   fixed reference the join-core acceptance gate compares against. *)
let pr7_baseline_wall_s = 1.337615

type join_micro = {
  jm_rows : int;
  jm_build_ms : float;   (* cold ensure_index over all rows *)
  jm_probes : int;
  jm_probe_ns : float;   (* per hash + probe + bucket-length read *)
}

let join_bench () =
  let open Ekg_engine in
  let xl_program, xl_edb =
    (* the larger instance: fewer rules, denser graph (fan-out 15), so
       the intermediate join is ~7x the headline workload's per rule *)
    fanout_workload ~preds:4 ~nodes:200 ~edges:3000 ()
  in
  let sections =
    List.map
      (fun (name, program, edb) ->
        (* best of [reps + 1] runs per engine, like the parallel
           sections: the identity check wants any run's output, the
           wall-clock wants the least load-noise *)
        let timed strategy =
          let once () =
            let t0 = Unix.gettimeofday () in
            let r = Chase.run_exn ~domains:1 ~join:strategy program edb in
            (r, Unix.gettimeofday () -. t0)
          in
          let rec go n ((_, best_s) as acc) =
            if n = 0 then acc
            else
              let (_, wall) as run = once () in
              go (n - 1) (if wall < best_s then run else acc)
          in
          go reps (once ())
        in
        let rn, nested_s = timed Matcher.Nested in
        let rh, hash_s = timed Matcher.Hash in
        {
          jw_name = name;
          j_derived = rh.Chase.derived_count;
          j_nested_s = nested_s;
          j_hash_s = hash_s;
          j_identical = fingerprint rn = fingerprint rh;
        })
      [
        (let p, e = fanout_workload ~preds:8 ~nodes:140 ~edges:1400 () in
         ("fanout-joins", p, e));
        ("fanout-joins-xl", xl_program, xl_edb);
      ]
  in
  (* microbenchmark: index build over a 2-column group, then point
     probes on the first column — the storage-layer costs every chase
     round pays *)
  let rows = 100_000 in
  let db = Database.create () in
  let rng = Ekg_kernel.Prng.create 4242 in
  let keys = Array.init rows (fun _ -> Ekg_kernel.Prng.int rng 5_000) in
  Array.iter
    (fun k ->
      ignore
        (Database.add db "edge"
           [|
             Ekg_kernel.Value.int k;
             Ekg_kernel.Value.int (Ekg_kernel.Prng.int rng 5_000);
           |]))
    keys;
  let sym = Option.get (Database.pred_sym db "edge") in
  let t0 = Unix.gettimeofday () in
  let built = Database.ensure_index db ~sym ~arity:2 ~mask:1 in
  let build_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  assert (built > 0);
  let g = Option.get (Database.Cols.find db ~sym ~arity:2) in
  let probes = 500_000 in
  let hits = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to probes - 1 do
    let vid = Database.value_id db (Ekg_kernel.Value.int keys.(i mod rows)) in
    let hash = Database.key_hash_add 0 vid in
    match Database.probe g ~mask:1 ~hash with
    | Some bucket -> hits := !hits + Intvec.length bucket
    | None -> assert false
  done;
  let probe_ns =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int probes
  in
  assert (!hits > 0);
  ( sections,
    { jm_rows = rows; jm_build_ms = build_ms; jm_probes = probes; jm_probe_ns = probe_ns } )

let json_out ~overhead ~obs ~incr ~persist ~joins ~qlane sections =
  let join_sections, micro = joins in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"domains_compared\": [1, %d],\n" domains_n);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  let headline =
    List.fold_left
      (fun acc s -> max acc (s.wall_1 /. s.wall_n))
      0. sections
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"headline_speedup\": %.3f,\n" headline);
  Buffer.add_string buf
    (Printf.sprintf "  \"deterministic\": %b,\n"
       (List.for_all (fun s -> s.identical) sections));
  Buffer.add_string buf "  \"sections\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"derived_facts\": %d, \"rounds\": %d, \
            \"wall_s_domains1\": %.6f, \"wall_s_domains%d\": %.6f, \
            \"speedup\": %.3f, \"facts_per_sec_domains%d\": %.0f, \
            \"identical_output\": %b}%s\n"
           s.s_name s.derived s.rounds s.wall_1 domains_n s.wall_n
           (s.wall_1 /. s.wall_n) domains_n
           (float_of_int s.derived /. s.wall_n)
           s.identical
           (if i = List.length sections - 1 then "" else ",")))
    sections;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"admission_overhead\": {\"workload\": \"control-chain-40\", \
        \"iterations\": %d, \"p50_ms_no_budget\": %.3f, \
        \"p99_ms_no_budget\": %.3f, \"p50_ms_with_budget\": %.3f, \
        \"p99_ms_with_budget\": %.3f, \"p99_overhead_pct\": %.1f},\n"
       overhead.o_iters overhead.p50_plain overhead.p99_plain
       overhead.p50_budget overhead.p99_budget
       (if overhead.p99_plain > 0. then
          100. *. (overhead.p99_budget -. overhead.p99_plain)
          /. overhead.p99_plain
        else 0.));
  let chase_overhead_pct =
    if obs.ob_p50_plain > 0. then
      100. *. (obs.ob_p50_stats -. obs.ob_p50_plain) /. obs.ob_p50_plain
    else 0.
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"observability_overhead\": {\"workload\": \"control-chain-40\", \
        \"log_iterations\": %d, \"wide_event_ns_sink_on\": %.0f, \
        \"wide_event_ns_noop\": %.0f, \"lock_iterations\": %d, \
        \"lock_pair_ns_plain_mutex\": %.1f, \"lock_pair_ns_noop_obs\": %.1f, \
        \"lock_pair_ns_live_obs\": %.1f, \"chase_iterations\": %d, \
        \"chase_p50_ms_stats_off\": %.3f, \"chase_p50_ms_stats_on\": %.3f, \
        \"chase_p50_overhead_pct\": %.1f, \"chase_overhead_within_3pct\": %b},\n"
       obs.ob_log_iters obs.ob_log_on_ns obs.ob_log_off_ns obs.ob_lock_iters
       obs.ob_lock_plain_ns obs.ob_lock_noop_ns obs.ob_lock_on_ns
       obs.ob_chase_iters obs.ob_p50_plain obs.ob_p50_stats chase_overhead_pct
       (chase_overhead_pct < 3.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"incremental_maintenance\": {\"workload\": %S, \
        \"batch_facts\": %d, \"cold_chase_ms\": %.3f, \"add_ms\": %.3f, \
        \"retract_ms\": %.3f, \"add_speedup_vs_cold\": %.1f, \
        \"retract_speedup_vs_cold\": %.1f, \"identical_to_cold\": %b},\n"
       incr.i_workload incr.i_batch incr.i_cold_ms incr.i_add_ms
       incr.i_retract_ms
       (if incr.i_add_ms > 0. then incr.i_cold_ms /. incr.i_add_ms else 0.)
       (if incr.i_retract_ms > 0. then incr.i_cold_ms /. incr.i_retract_ms
        else 0.)
       incr.i_identical);
  let headline_join =
    try List.find (fun j -> j.jw_name = "fanout-joins") join_sections
    with Not_found -> List.hd join_sections
  in
  Buffer.add_string buf "  \"join_core\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"engines_identical\": %b,\n"
       (List.for_all (fun j -> j.j_identical) join_sections));
  Buffer.add_string buf
    (Printf.sprintf "    \"headline_speedup_vs_nested\": %.2f,\n"
       (headline_join.j_nested_s /. headline_join.j_hash_s));
  (* fanout-joins wall at domains=1 as committed by the previous
     release's BENCH_chase.json — the baseline the acceptance gate
     compares against.  The nested engine in this binary is already
     faster than that baseline (its insert path shares this PR's
     provenance and head-instantiation optimisations), so the
     vs-nested ratio above understates the release-over-release win. *)
  Buffer.add_string buf
    (Printf.sprintf "    \"pr7_baseline_wall_s\": %.6f,\n" pr7_baseline_wall_s);
  Buffer.add_string buf
    (Printf.sprintf "    \"headline_speedup_vs_pr7_baseline\": %.2f,\n"
       (pr7_baseline_wall_s /. headline_join.j_hash_s));
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_at_least_5x\": %b,\n"
       (pr7_baseline_wall_s /. headline_join.j_hash_s >= 5.));
  Buffer.add_string buf "    \"workloads\": [\n";
  List.iteri
    (fun i j ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"name\": %S, \"derived_facts\": %d, \
            \"wall_s_nested\": %.6f, \"wall_s_hash\": %.6f, \
            \"speedup\": %.2f, \"facts_per_sec_nested\": %.0f, \
            \"facts_per_sec_hash\": %.0f, \"identical_output\": %b}%s\n"
           j.jw_name j.j_derived j.j_nested_s j.j_hash_s
           (j.j_nested_s /. j.j_hash_s)
           (float_of_int j.j_derived /. j.j_nested_s)
           (float_of_int j.j_derived /. j.j_hash_s)
           j.j_identical
           (if i = List.length join_sections - 1 then "" else ",")))
    join_sections;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"micro\": {\"rows\": %d, \"index_build_ms\": %.3f, \
        \"probes\": %d, \"probe_ns\": %.1f}\n"
       micro.jm_rows micro.jm_build_ms micro.jm_probes micro.jm_probe_ns);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"query_lane\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"identity\": %b,\n"
       (List.for_all (fun q -> q.ql_identity) qlane));
  Buffer.add_string buf
    (Printf.sprintf "    \"p50_speedup_at_least_5x_on_2_apps\": %b,\n"
       (List.length (List.filter (fun q -> q.ql_speedup >= 5.) qlane) >= 2));
  Buffer.add_string buf "    \"apps\": [\n";
  List.iteri
    (fun i q ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"app\": %S, \"query\": %S, \"mask\": %S, \"mode\": %S, \
            \"edb_facts\": %d, \"full_derived_facts\": %d, \
            \"scoped_derived_facts\": %d, \"answers\": %d, \
            \"iterations\": %d, \"rewrite_ms\": %.3f, \
            \"p50_query_ms\": %.3f, \"p50_full_chase_ms\": %.3f, \
            \"p50_speedup\": %.1f, \"answers_identical_to_materialization\": %b}%s\n"
           q.ql_app q.ql_query q.ql_mask q.ql_mode q.ql_edb_facts
           q.ql_full_facts q.ql_scoped_facts q.ql_answers q.ql_iters
           q.ql_rewrite_ms q.ql_p50_query_ms q.ql_p50_full_ms q.ql_speedup
           q.ql_identity
           (if i = List.length qlane - 1 then "" else ",")))
    qlane;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"persistence\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"warm_restore_beats_cold_chase\": %b,\n"
       (List.for_all (fun p -> p.p_restore_ms < p.p_cold_ms) persist));
  Buffer.add_string buf
    (Printf.sprintf "    \"fingerprint_identical\": %b,\n"
       (List.for_all (fun p -> p.p_identical) persist));
  Buffer.add_string buf "    \"apps\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"app\": %S, \"edb_facts\": %d, \"snapshot_bytes\": %d, \
            \"cold_chase_ms\": %.3f, \"snapshot_ms\": %.3f, \
            \"restore_ms\": %.3f, \"restore_speedup_vs_cold\": %.1f, \
            \"fingerprint_identical\": %b}%s\n"
           p.p_app p.p_facts p.p_bytes p.p_cold_ms p.p_snapshot_ms p.p_restore_ms
           (if p.p_restore_ms > 0. then p.p_cold_ms /. p.p_restore_ms else 0.)
           p.p_identical
           (if i = List.length persist - 1 then "" else ",")))
    persist;
  Buffer.add_string buf "    ]\n  }\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run () =
  Bench_util.section "chase-smoke"
    "Parallel chase: domains=1 vs domains=N wall-clock + determinism";
  let sections =
    List.map
      (fun w ->
        let r1, wall_1 = best ~domains:1 w in
        let rn, wall_n = best ~domains:domains_n w in
        let identical = fingerprint r1 = fingerprint rn in
        Printf.printf
          "  %-20s d=1 %8.3f ms   d=%d %8.3f ms   speedup %5.2fx   %s\n"
          w.w_name (wall_1 *. 1000.) domains_n (wall_n *. 1000.)
          (wall_1 /. wall_n)
          (if identical then "bit-identical" else "OUTPUT DIVERGED");
        {
          s_name = w.w_name;
          derived = r1.Ekg_engine.Chase.derived_count;
          rounds = r1.Ekg_engine.Chase.rounds;
          wall_1;
          wall_n;
          identical;
        })
      (workloads ())
  in
  let overhead =
    let w =
      List.find (fun w -> w.w_name = "control-chain-40") (workloads ())
    in
    let o = admission_overhead w in
    Printf.printf
      "  %-20s p50 %7.3f -> %7.3f ms   p99 %7.3f -> %7.3f ms (budget polling)\n"
      "admission-overhead" o.p50_plain o.p50_budget o.p99_plain o.p99_budget;
    o
  in
  let obs =
    let w =
      List.find (fun w -> w.w_name = "control-chain-40") (workloads ())
    in
    let o = observability_overhead w in
    Printf.printf
      "  %-20s wide event %6.0f ns (noop %3.0f ns)   lock pair %5.1f ns \
       (plain %5.1f, noop %5.1f)\n"
      "observability" o.ob_log_on_ns o.ob_log_off_ns o.ob_lock_on_ns
      o.ob_lock_plain_ns o.ob_lock_noop_ns;
    Printf.printf
      "  %-20s chase p50 %7.3f -> %7.3f ms with stats sink (%+.1f%%)\n" ""
      o.ob_p50_plain o.ob_p50_stats
      (if o.ob_p50_plain > 0. then
         100. *. (o.ob_p50_stats -. o.ob_p50_plain) /. o.ob_p50_plain
       else 0.);
    o
  in
  let incr =
    let w = List.find (fun w -> w.w_name = "fanout-joins") (workloads ()) in
    let i = incremental_maintenance w in
    Printf.printf
      "  %-20s cold %8.3f ms   add[%d] %8.3f ms   retract[%d] %8.3f ms   %s\n"
      "incremental" i.i_cold_ms i.i_batch i.i_add_ms i.i_batch i.i_retract_ms
      (if i.i_identical then "matches cold chase" else "STATE DIVERGED");
    i
  in
  let joins =
    let js, micro = join_bench () in
    List.iter
      (fun j ->
        Printf.printf
          "  %-20s nested %8.3f ms   hash %8.3f ms   speedup %5.2fx   %s\n"
          j.jw_name (j.j_nested_s *. 1000.) (j.j_hash_s *. 1000.)
          (j.j_nested_s /. j.j_hash_s)
          (if j.j_identical then "byte-identical" else "OUTPUT DIVERGED"))
      js;
    Printf.printf
      "  %-20s build %8.3f ms / %d rows   probe %6.1f ns (%d probes)\n"
      "join-micro" micro.jm_build_ms micro.jm_rows micro.jm_probe_ns
      micro.jm_probes;
    (try
       let h = List.find (fun j -> j.jw_name = "fanout-joins") js in
       Printf.printf
         "  %-20s hash %8.3f ms vs PR-7 baseline %8.3f ms   speedup %5.2fx\n"
         "join-vs-baseline" (h.j_hash_s *. 1000.) (pr7_baseline_wall_s *. 1000.)
         (pr7_baseline_wall_s /. h.j_hash_s)
     with Not_found -> ());
    (js, micro)
  in
  let qlane =
    let qs = query_lane_bench () in
    List.iter
      (fun q ->
        Printf.printf
          "  %-20s %s   query %8.3f ms   full %8.3f ms   speedup %5.1fx   %s\n"
          ("query-" ^ q.ql_app) q.ql_mode q.ql_p50_query_ms q.ql_p50_full_ms
          q.ql_speedup
          (if q.ql_identity then "answers match materialization"
           else "ANSWERS DIVERGED"))
      qs;
    qs
  in
  let persist =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ekg_bench_store_%d" (Unix.getpid ()))
    in
    let ps = persistence_bench dir in
    List.iter
      (fun p ->
        Printf.printf
          "  %-20s %5d facts   cold %8.3f ms   snapshot %8.3f ms (%d B)   \
           restore %8.3f ms   %s\n"
          p.p_app p.p_facts p.p_cold_ms p.p_snapshot_ms p.p_bytes p.p_restore_ms
          (if p.p_identical then "fingerprint-identical" else "RESTORE DIVERGED"))
      ps;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    ps
  in
  let path = "BENCH_chase.json" in
  Bench_util.write_file_atomic path
    (json_out ~overhead ~obs ~incr ~persist ~joins ~qlane sections);
  Printf.printf "  wrote %s (machine reports %d recommended domains)\n" path
    (Domain.recommended_domain_count ());
  if not (List.for_all (fun s -> s.identical) sections) then
    failwith "chase-smoke: parallel output diverged from sequential";
  if not (List.for_all (fun j -> j.j_identical) (fst joins)) then
    failwith "chase-smoke: hash-join output diverged from nested-loop";
  if not incr.i_identical then
    failwith "chase-smoke: incremental maintenance diverged from cold chase";
  if not (List.for_all (fun p -> p.p_identical) persist) then
    failwith "chase-smoke: warm restore diverged from the persisted instance";
  if not (List.for_all (fun q -> q.ql_identity) qlane) then
    failwith "chase-smoke: query-lane answers diverged from materialization"
