(* Experiment and benchmark harness: regenerates every table and figure
   of the paper's evaluation (§5-§6) and runs the micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig17   # one section

   Sections: structural templates fig14 fig15 fig16 fig17 fig18
             ablations extension chase-smoke bechamel *)

let sections =
  [
    ("structural", Fig_structural.run);
    ("templates", Fig_templates.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("fig17", Fig17.run);
    ("fig18", Fig18.run);
    ("ablations", Ablations.run);
    ("extension", Extension.run);
    ("chase-smoke", Chase_smoke.run);
    ("bechamel", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  print_endline
    "Template-based Explainable Inference over High-Stakes Financial Knowledge Graphs";
  print_endline "EDBT 2025 reproduction: experiment harness";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run ->
        run ();
        (* per-stage self-time totals for the spans the section produced *)
        Bench_util.span_summary ()
      | None ->
        Printf.eprintf "unknown section %s (known: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 1)
    requested;
  print_newline ()
