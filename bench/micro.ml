(* [bechamel] — micro-benchmarks: one Bechamel test per reproduced
   table/figure, timing the computational kernel behind it, plus the
   semi-naive/naive chase ablation. *)

open Bechamel
open Toolkit
open Ekg_kernel
open Ekg_core
open Ekg_apps
open Ekg_datagen

let fixtures () =
  let rng = Prng.create 190 in
  let cc_pipeline = Company_control.pipeline () in
  let st_pipeline = Stress_test.pipeline () in
  let chain21 = Owners.chain rng ~hops:21 in
  let cc_result =
    match Pipeline.reason cc_pipeline chain21.edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  let cc_fact =
    match Ekg_engine.Query.ask cc_result.db chain21.goal with
    | (f, _) :: _ -> f
    | [] -> failwith "no goal"
  in
  let cascade7 = Debts.dual_cascade rng ~depth:7 in
  let st_result =
    match Pipeline.reason st_pipeline cascade7.edb with
    | Ok r -> r
    | Error e -> failwith e
  in
  let st_fact =
    match Ekg_engine.Query.ask st_result.db cascade7.goal with
    | (f, _) :: _ -> f
    | [] -> failwith "no goal"
  in
  let sample_explanation =
    match Pipeline.explain cc_pipeline cc_result cc_fact with
    | Ok e -> e
    | Error e -> failwith e
  in
  let deterministic =
    Verbalizer.verbalize_proof Company_control.glossary Company_control.program
      sample_explanation.proof
  in
  let constants =
    Verbalizer.constant_strings Company_control.glossary sample_explanation.proof
  in
  let chain20 = Owners.chain rng ~hops:20 in
  ( cc_pipeline,
    st_pipeline,
    cc_result,
    cc_fact,
    st_result,
    st_fact,
    sample_explanation,
    deterministic,
    constants,
    chain20 )

let tests () =
  let ( cc_pipeline,
        st_pipeline,
        cc_result,
        cc_fact,
        st_result,
        st_fact,
        sample_explanation,
        deterministic,
        constants,
        chain20 ) =
    fixtures ()
  in
  [
    (* Figures 3/9/10: the structural analysis itself *)
    Test.make ~name:"fig10.structural-analysis.company-control"
      (Staged.stage (fun () -> Reasoning_path.analyze Company_control.program));
    Test.make ~name:"fig10.structural-analysis.stress-test"
      (Staged.stage (fun () -> Reasoning_path.analyze Stress_test.program));
    (* Figure 6: template generation + enhancement *)
    Test.make ~name:"fig6.templates.build-and-enhance"
      (Staged.stage (fun () -> Stress_test.simple_pipeline ()));
    (* Figure 14: visualization scoring behind the comprehension study *)
    Test.make ~name:"fig14.readability-and-matching"
      (Staged.stage (fun () ->
           Ekg_stats.Readability.analyze sample_explanation.Pipeline.text));
    (* Figure 16: one simulated expert grade *)
    Test.make ~name:"fig16.fluency-grade"
      (Staged.stage (fun () ->
           Ekg_stats.Readability.fluency_score sample_explanation.Pipeline.text));
    (* Figure 17: one simulated-LLM rewrite + omission measurement *)
    Test.make ~name:"fig17.llm-summary-and-omission"
      (Staged.stage (fun () ->
           let out =
             Ekg_llm.Mock_llm.rewrite Ekg_llm.Mock_llm.Summarize ~proof_length:21
               ~constants deterministic
           in
           Ekg_llm.Omission.omitted_ratio ~constants out));
    (* Figure 18: the explanation step on long proofs, both apps *)
    Test.make ~name:"fig18.explain.company-control-21-steps"
      (Staged.stage (fun () -> Pipeline.explain cc_pipeline cc_result cc_fact));
    Test.make ~name:"fig18.explain.stress-test-22-steps"
      (Staged.stage (fun () -> Pipeline.explain st_pipeline st_result st_fact));
    (* ablation: chase evaluation strategies *)
    Test.make ~name:"ablation.chase.semi-naive-20-hops"
      (Staged.stage (fun () ->
           Ekg_engine.Chase.run_exn Company_control.program chain20.Owners.edb));
    Test.make ~name:"ablation.chase.naive-20-hops"
      (Staged.stage (fun () ->
           Ekg_engine.Chase.run_exn ~naive:true Company_control.program
             chain20.Owners.edb));
    (* ablation: parallel match fan-out — the same independent-join
       workload the chase-smoke section uses, at one domain and at
       four (pool spawn/join included, the honest per-run cost) *)
    Test.make ~name:"ablation.chase.fanout-domains-1"
      (Staged.stage
         (let program, edb =
            Chase_smoke.fanout_workload ~preds:4 ~nodes:80 ~edges:500 ()
          in
          fun () -> Ekg_engine.Chase.run_exn ~domains:1 program edb));
    Test.make ~name:"ablation.chase.fanout-domains-4"
      (Staged.stage
         (let program, edb =
            Chase_smoke.fanout_workload ~preds:4 ~nodes:80 ~edges:500 ()
          in
          fun () -> Ekg_engine.Chase.run_exn ~domains:4 program edb));
    (* ablation: profiling overhead — same chase with stats collection
       into a disabled sink; compare against semi-naive-20-hops to see
       what instrumentation costs when nobody is scraping *)
    Test.make ~name:"ablation.obs.chase-20-hops-noop-sink"
      (Staged.stage
         (let sink = Ekg_obs.Metrics.noop () in
          fun () ->
            Ekg_engine.Chase.run_exn ~stats:sink Company_control.program
              chain20.Owners.edb));
    (* ablation: full observability — stats into a live registry *)
    Test.make ~name:"ablation.obs.chase-20-hops-live-sink"
      (Staged.stage
         (let sink = Ekg_obs.Metrics.create () in
          fun () ->
            Ekg_engine.Chase.run_exn ~stats:sink Company_control.program
              chain20.Owners.edb));
  ]

let run () =
  Bench_util.section "bechamel" "Micro-benchmarks (one per reproduced table/figure)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"repro" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ ns ] -> (name, ns) :: acc
        | Some _ | None -> (name, Float.nan) :: acc)
      clock []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "\n  %-50s %s\n" "benchmark" "time per run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.1f ns" ns
      in
      Printf.printf "  %-50s %s\n" name human)
    rows
