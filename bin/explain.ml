(* ekg-explain: the automated pipeline of §4.4 as a command-line tool.

   Load a Vadalog program (rules + facts + @goal) and a domain
   glossary, run the chase, and answer explanation queries; or run one
   of the bundled financial applications on its paper scenario. *)

open Cmdliner
open Ekg_core
open Ekg_apps

let run app program_file glossary_file facts_dir query style show_analysis show_templates
    show_proof deterministic report json_out why =
  let loaded =
    match app, program_file with
    | Some a, _ -> Bundled.load a
    | None, Some pf ->
      Apps_util.load_program_files ~style ~program_file:pf ~glossary_file ()
    | None, None -> Error "provide --app or --program (see --help)"
  in
  let loaded =
    (* facts from a CSV directory replace the bundled/inline ones *)
    match loaded, facts_dir with
    | Ok l, Some dir -> Apps_util.with_facts_dir l dir
    | _, _ -> loaded
  in
  match loaded with
  | Error e ->
    Fmt.epr "error: %s@." e;
    1
  | Ok { Apps_util.pipeline; edb } -> (
    if show_analysis then begin
      Fmt.pr "== structural analysis ==@.%s@.@."
        (Reasoning_path.analysis_to_string pipeline.analysis);
      Fmt.pr "== termination analysis ==@.%s@.@."
        (Termination.to_string (Termination.analyze pipeline.program))
    end;
    if show_templates then begin
      Fmt.pr "== explanation templates ==@.";
      List.iter
        (fun (name, tpl) -> Fmt.pr "%s:@.  %s@." name (Template.skeleton tpl))
        pipeline.deterministic;
      Fmt.pr "== enhanced templates ==@.";
      List.iter
        (fun (name, tpl) -> Fmt.pr "%s:@.  %s@." name (Template.skeleton tpl))
        pipeline.enhanced;
      Fmt.pr "@."
    end;
    match Pipeline.reason pipeline edb with
    | Error e ->
      Fmt.epr "reasoning error: %s@." e;
      1
    | Ok result -> (
      Fmt.pr "reasoning complete: %d facts derived in %d rounds@."
        result.derived_count result.rounds;
      if json_out then begin
        print_endline (Ekg_engine.Io.result_to_json result)
      end;
      match query with
      | None ->
        Fmt.pr "derived facts for goal %s:@." pipeline.program.goal;
        List.iter
          (fun f -> Fmt.pr "  %s@." (Ekg_engine.Fact.to_string f))
          (Ekg_engine.Database.active result.db pipeline.program.goal);
        0
      | Some q -> (
        match Pipeline.explain_query pipeline result q with
        | Error e ->
          Fmt.epr "explanation error: %s@." e;
          1
        | Ok explanations ->
          List.iter
            (fun (e : Pipeline.explanation) ->
              if report then
                Fmt.pr "@.%s@." (Report.render (Report.of_explanation pipeline e))
              else begin
                Fmt.pr "@.== explanation of %s ==@."
                  (Ekg_engine.Fact.to_string e.fact);
                if show_proof then
                  Fmt.pr "-- proof (%d chase steps) --@.%s@.-- reasoning paths: %s --@."
                    (Ekg_engine.Proof.length e.proof)
                    (Ekg_engine.Proof.to_string e.proof)
                    (String.concat ", " e.paths_used);
                if why then
                  Fmt.pr "-- why-provenance --@.%s@."
                    (Ekg_engine.Why.polynomial result.db result.prov e.fact);
                Fmt.pr "%s@." (if deterministic then e.deterministic_text else e.text)
              end)
            explanations;
          0)))

let app_t =
  let doc = "Bundled application to run (company-control, stress-test, close-link, golden-power)." in
  Arg.(value & opt (some string) None & info [ "app"; "a" ] ~docv:"APP" ~doc)

let program_t =
  let doc = "Vadalog program file (rules, facts, @goal directive)." in
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE" ~doc)

let glossary_t =
  let doc = "Domain glossary file (pred(args) :: pattern lines)." in
  Arg.(value & opt (some file) None & info [ "glossary"; "g" ] ~docv:"FILE" ~doc)

let query_t =
  let doc = "Explanation query, e.g. 'control(\"B\", \"D\")'." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"ATOM" ~doc)

let style_t =
  let doc = "Enhancement style (different interchangeable phrasings)." in
  Arg.(value & opt int 0 & info [ "style" ] ~docv:"N" ~doc)

let show_analysis_t =
  Arg.(value & flag & info [ "show-analysis" ] ~doc:"Print the structural analysis.")

let show_templates_t =
  Arg.(value & flag & info [ "show-templates" ] ~doc:"Print the explanation templates.")

let show_proof_t =
  Arg.(value & flag & info [ "show-proof" ] ~doc:"Print the chase-step proof.")

let deterministic_t =
  Arg.(
    value & flag
    & info [ "deterministic" ]
        ~doc:"Use deterministic (non-enhanced) templates for the output text.")

let report_t =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:"Render each explanation as a full business report with appendix.")

let facts_dir_t =
  let doc = "Directory of <pred>.csv files to load as extensional facts." in
  Arg.(value & opt (some dir) None & info [ "facts-dir"; "d" ] ~docv:"DIR" ~doc)

let json_t =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Dump the materialized instance (with provenance) as JSON.")

let why_t =
  Arg.(
    value & flag
    & info [ "why" ]
        ~doc:"Print the why-provenance polynomial (extensional witnesses) of each fact.")

let cmd =
  let doc = "template-based explanations for rule-based knowledge graph applications" in
  let info = Cmd.info "ekg-explain" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ app_t $ program_t $ glossary_t $ facts_dir_t $ query_t $ style_t
      $ show_analysis_t $ show_templates_t $ show_proof_t $ deterministic_t $ report_t
      $ json_t $ why_t)

let () = exit (Cmd.eval' cmd)
