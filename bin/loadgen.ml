(* ekg-loadgen: the million-entity scenario harness.

   [generate] grows a seeded synthetic financial KG (Ekg_datagen.Kg)
   plus an ordered CDC batch log (Ekg_datagen.Cdc) into a directory
   that doubles as a server root: company.csv/own.csv in the facts_dir
   layout, program.vada, cdc.log and a manifest.json.

   [replay] streams the CDC log through POST|DELETE
   /v1/sessions/:id/facts over loopback HTTP — against an embedded
   server by default, or an external ekg-serve via --url — while
   reader domains hit /query and /explain under the write load.  It
   records sustained updates/sec, read/write latency percentiles,
   error/shed counts and the GC high-water mark (via
   /v1/debug/runtime) into BENCH_scale.json, then enforces the
   identity gate: the server's post-replay fingerprint must equal a
   local cold chase over the final EDB.  See SCALING.md. *)

open Cmdliner
open Ekg_server
module Kg = Ekg_datagen.Kg
module Cdc = Ekg_datagen.Cdc
module Prng = Ekg_kernel.Prng

(* --- loadgen's own metric registry ------------------------------------------

   Declared before any traffic flows (the PR-7 declaration-audit
   pattern): a --print-metrics scrape after a dry run renders every
   series at zero instead of omitting it. *)

let obs = Ekg_obs.Metrics.create ()
let batches_metric = "ekg_loadgen_batches_total"
let updates_metric = "ekg_loadgen_update_requests_total"
let facts_metric = "ekg_loadgen_facts_streamed_total"
let reads_metric = "ekg_loadgen_read_requests_total"
let errors_metric = "ekg_loadgen_errors_total"
let sheds_metric = "ekg_loadgen_shed_responses_total"
let retries_metric = "ekg_loadgen_retries_total"

let () =
  Ekg_obs.Metrics.declare_counter obs
    ~help:"CDC batches replayed against the server" batches_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"POST/DELETE /facts requests issued" updates_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Facts streamed through the update lane (adds + retracts)"
    facts_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Reader-worker /query and /explain requests issued" reads_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Non-2xx responses (503 sheds counted separately)" errors_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"503 shed responses observed" sheds_metric;
  Ekg_obs.Metrics.declare_counter obs
    ~help:"Update requests retried after a shed" retries_metric

(* --- a minimal loopback HTTP/1.1 client -------------------------------------

   The server answers one request per connection (Connection: close),
   so the client is connect → send → read-to-EOF → parse; no pooling
   to get wrong. *)

module Client = struct
  type response = { status : int; body : string }

  let send_all sock data =
    let len = String.length data in
    let rec go off =
      if off < len then go (off + Unix.write_substring sock data off (len - off))
    in
    go 0

  let read_all sock =
    let acc = Buffer.create 4096 in
    let chunk = Bytes.create 65536 in
    let rec go () =
      let n = Unix.read sock chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes acc chunk 0 n;
        go ()
      end
    in
    go ();
    Buffer.contents acc

  let parse_response raw =
    match String.index_opt raw ' ' with
    | None -> Error "malformed status line"
    | Some sp -> (
      let status =
        match String.index_from_opt raw (sp + 1) ' ' with
        | Some sp2 -> int_of_string_opt (String.sub raw (sp + 1) (sp2 - sp - 1))
        | None -> None
      in
      match status with
      | None -> Error "malformed status code"
      | Some status -> (
        (* headers end at the first blank line; the rest is the body *)
        let rec find_body i =
          if i + 3 >= String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else find_body (i + 1)
        in
        match find_body 0 with
        | None -> Error "missing header terminator"
        | Some body_at ->
          Ok { status; body = String.sub raw body_at (String.length raw - body_at) }))

  let request ~host ~port ?(headers = []) meth path body =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        let buf = Buffer.create 512 in
        Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
        Buffer.add_string buf (Printf.sprintf "Host: %s:%d\r\n" host port);
        Buffer.add_string buf "Connection: close\r\n";
        List.iter
          (fun (k, v) -> Buffer.add_string buf (k ^ ": " ^ v ^ "\r\n"))
          headers;
        if meth <> "GET" then
          Buffer.add_string buf
            (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
        Buffer.add_string buf "\r\n";
        Buffer.add_string buf body;
        send_all sock (Buffer.contents buf);
        parse_response (read_all sock))
end

(* --- shared helpers --------------------------------------------------------- *)

let read_file path =
  match Ekg_apps.Apps_util.read_file path with
  | Ok text -> text
  | Error e -> failwith e

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1))))

let latency_json samples =
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  Json.Obj
    [
      "count", Json.int n;
      "p50_ms", Json.num (percentile sorted 0.50);
      "p90_ms", Json.num (percentile sorted 0.90);
      "p99_ms", Json.num (percentile sorted 0.99);
      "max_ms", Json.num (if n = 0 then 0.0 else sorted.(n - 1));
    ]

let urlencode s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
        Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

(* --- generate --------------------------------------------------------------- *)

let generate_run seed entities avg_degree exponent max_degree chains chain_hops
    cycles cycle_len diamonds diamond_fanout close_links close_link_size
    batches batch_size retract_fraction new_entity_fraction out =
  let cfg =
    {
      (Kg.default ~entities) with
      Kg.seed;
      avg_out_degree = avg_degree;
      exponent;
      max_out_degree = max_degree;
      chains;
      chain_hops;
      cycles;
      cycle_len;
      diamonds;
      diamond_fanout;
      close_links;
      close_link_size;
    }
  in
  let t0 = Unix.gettimeofday () in
  let kg = Kg.to_csv_dir cfg ~dir:out in
  (* an independent stream for the CDC log: reseeding with an offset
     keeps it decoupled from the streams Kg splits off internally *)
  let rng = Prng.create (seed + 7919) in
  let cdc_cfg =
    { Cdc.batches; batch_size; retract_fraction; new_entity_fraction }
  in
  let log = Cdc.generate rng ~kg cdc_cfg in
  (match Cdc.validate log with
  | Ok () -> ()
  | Error e -> failwith ("generated CDC log violates its invariants: " ^ e));
  Bench_util.write_file_atomic
    (Filename.concat out "cdc.log")
    (Cdc.to_string log);
  let adds, retracts = Cdc.stats log in
  let manifest =
    Json.Obj
      [
        "seed", Json.int seed;
        "entities", Json.int entities;
        "total_entities", Json.int kg.Kg.total_entities;
        "companies", Json.int kg.Kg.companies;
        "own_edges", Json.int kg.Kg.own_edges;
        "base_facts", Json.int (kg.Kg.companies + kg.Kg.own_edges);
        ( "cdc",
          Json.Obj
            [
              "batches", Json.int batches;
              "adds", Json.int adds;
              "retracts", Json.int retracts;
            ] );
        "probe_query", Json.str kg.Kg.probe_query;
        "probe_goal", Json.str kg.Kg.probe_goal;
      ]
  in
  Bench_util.write_file_atomic
    (Filename.concat out "manifest.json")
    (Json.to_string manifest ^ "\n");
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "ekg-loadgen: generated %d entities (%d companies, %d own edges) and %d \
     CDC batches (%d adds, %d retracts) into %s in %.1fs\n"
    kg.Kg.total_entities kg.Kg.companies kg.Kg.own_edges batches adds retracts
    out dt;
  0

(* --- replay ----------------------------------------------------------------- *)

type server_handle = {
  sh_host : string;
  sh_port : int;
  sh_shutdown : unit -> unit;
}

let parse_url url =
  let fail () =
    failwith ("--url must look like http://127.0.0.1:8080, got " ^ url)
  in
  let prefix = "http://" in
  if not (String.length url > String.length prefix) then fail ();
  if String.sub url 0 (String.length prefix) <> prefix then fail ();
  let rest =
    String.sub url (String.length prefix)
      (String.length url - String.length prefix)
  in
  let rest =
    match String.index_opt rest '/' with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  match String.rindex_opt rest ':' with
  | None -> fail ()
  | Some i -> (
    let host = String.sub rest 0 i in
    match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
    | Some port -> host, port
    | None -> fail ())

let start_embedded ~data ~chase_domains ~domains ~queue_high_water =
  let state = Router.make_state ~root:data ~chase_domains () in
  let config =
    {
      Server.default_config with
      host = "127.0.0.1";
      port = 0;
      domains;
      queue_high_water;
    }
  in
  let server = Server.start ~config state in
  Ekg_obs.Runtime.start (Router.runtime state);
  {
    sh_host = "127.0.0.1";
    sh_port = Server.port server;
    sh_shutdown =
      (fun () ->
        Ekg_obs.Runtime.stop (Router.runtime state);
        Server.stop server);
  }

(* one mutable bundle per traffic source, merged after the domains join *)
type tally = {
  mutable latencies : float list;
  mutable errors : int;
  mutable sheds : int;
}

let new_tally () = { latencies = []; errors = 0; sheds = 0 }

let record tally status latency_ms =
  tally.latencies <- latency_ms :: tally.latencies;
  if status = 503 then tally.sheds <- tally.sheds + 1
  else if status < 200 || status > 299 then tally.errors <- tally.errors + 1

let replay_run data url rate readers chase_domains domains queue_high_water
    write_deadline_ms read_deadline_ms sample_ms session_name out print_metrics =
  let manifest =
    match Json.parse (read_file (Filename.concat data "manifest.json")) with
    | Ok j -> j
    | Error e -> failwith ("manifest.json: " ^ e)
  in
  let log =
    match Cdc.of_string (read_file (Filename.concat data "cdc.log")) with
    | Ok log -> log
    | Error e -> failwith ("cdc.log: " ^ e)
  in
  let probe_query =
    Option.value ~default:"control(\"c0\", X)"
      (Json.mem_str "probe_query" manifest)
  in
  let probe_goal =
    Option.value ~default:"control(\"c0\", \"c0\")"
      (Json.mem_str "probe_goal" manifest)
  in
  let embedded = url = None in
  let handle =
    match url with
    | Some u ->
      let host, port = parse_url u in
      { sh_host = host; sh_port = port; sh_shutdown = (fun () -> ()) }
    | None -> start_embedded ~data ~chase_domains ~domains ~queue_high_water
  in
  let finally () = handle.sh_shutdown () in
  Fun.protect ~finally @@ fun () ->
  let req ?headers meth path body =
    match
      Client.request ~host:handle.sh_host ~port:handle.sh_port ?headers meth
        path body
    with
    | Ok r -> r
    | Error e -> failwith ("HTTP client: " ^ e)
  in
  let write_deadline = [ "X-Ekg-Deadline-Ms", string_of_int write_deadline_ms ] in
  let read_deadline = [ "X-Ekg-Deadline-Ms", string_of_int read_deadline_ms ] in
  (* session over the Files spec: the data dir is the server root *)
  let create_body =
    Json.to_string
      (Json.Obj
         [
           "name", Json.str session_name;
           "program_path", Json.str "program.vada";
           "facts_dir", Json.str ".";
         ])
  in
  let created = req "POST" "/v1/sessions" create_body ~headers:write_deadline in
  if created.Client.status <> 201 then
    failwith
      (Printf.sprintf "session creation failed (%d): %s" created.Client.status
         created.Client.body);
  let sid =
    match Result.bind (Json.parse created.Client.body) (fun j -> Option.to_result ~none:"no id" (Json.mem_str "id" j)) with
    | Ok id -> id
    | Error e -> failwith ("session creation response: " ^ e)
  in
  let base = "/v1/sessions/" ^ sid in
  (* cold chase + baseline fingerprint (also warms the materialization
     the incremental updates will maintain) *)
  let fingerprint () =
    let r = req "GET" (base ^ "/fingerprint") "" ~headers:write_deadline in
    if r.Client.status <> 200 then
      failwith
        (Printf.sprintf "fingerprint failed (%d): %s" r.Client.status
           r.Client.body);
    match Json.parse r.Client.body with
    | Error e -> failwith ("fingerprint response: " ^ e)
    | Ok j ->
      ( Option.value ~default:"?" (Json.mem_str "fingerprint" j),
        Option.value ~default:0 (Json.mem_int "facts" j),
        Option.value ~default:0 (Json.mem_int "rounds" j) )
  in
  let (_, cold_facts, cold_rounds), cold_ms =
    Bench_util.time_ms (fun () -> fingerprint ())
  in
  Printf.printf
    "ekg-loadgen: session %s materialized: %d facts in %d rounds (%.0f ms)\n%!"
    sid cold_facts cold_rounds cold_ms;
  (* readers: alternate point queries and explanations until stopped *)
  let stop = Atomic.make false in
  let query_path =
    Printf.sprintf "%s/query?query=%s&limit=5" base (urlencode probe_query)
  in
  let explain_path =
    Printf.sprintf "%s/explain?query=%s&limit=1" base (urlencode probe_goal)
  in
  let reader_domains =
    List.init readers (fun _ ->
        Domain.spawn (fun () ->
            let tally = new_tally () in
            let flip = ref false in
            while not (Atomic.get stop) do
              let path = if !flip then explain_path else query_path in
              flip := not !flip;
              let r, ms =
                Bench_util.time_ms (fun () ->
                    req "GET" path "" ~headers:read_deadline)
              in
              Ekg_obs.Metrics.incr obs reads_metric;
              record tally r.Client.status ms
            done;
            tally))
  in
  (* memory sampler: track the GC high-water gauge the runtime sampler
     publishes on /v1/debug/runtime *)
  let top_heap_words = Atomic.make 0.0 in
  let mem_samples = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (match
             Client.request ~host:handle.sh_host ~port:handle.sh_port "GET"
               "/v1/debug/runtime" ""
           with
          | Ok { Client.status = 200; body } -> (
            match Json.parse body with
            | Ok doc ->
              let gauges =
                Option.bind (Json.member "gauges" doc) Json.get_arr
                |> Option.value ~default:[]
              in
              List.iter
                (fun g ->
                  match Json.mem_str "name" g with
                  | Some "ekg_runtime_gc_top_heap_words" ->
                    let v =
                      Option.bind (Json.member "value" g) Json.get_num
                      |> Option.value ~default:0.0
                    in
                    if v > Atomic.get top_heap_words then
                      Atomic.set top_heap_words v;
                    Atomic.incr mem_samples
                  | _ -> ())
                gauges
            | Error _ -> ())
          | Ok _ | Error _ -> ());
          Unix.sleepf (float_of_int sample_ms /. 1000.0)
        done)
  in
  (* writer: stream the batches, pacing to --rate *)
  let writes = new_tally () in
  let retries = ref 0 in
  let facts_applied = ref 0 in
  let update meth atoms =
    let body =
      Json.to_string
        (Json.Obj
           [
             ( "facts",
               Json.Arr
                 (List.map
                    (fun a -> Json.str (Ekg_datalog.Atom.to_string a))
                    atoms) );
           ])
    in
    let rec attempt tries_left =
      let r, ms =
        Bench_util.time_ms (fun () ->
            req meth (base ^ "/facts") body ~headers:write_deadline)
      in
      Ekg_obs.Metrics.incr obs updates_metric;
      if r.Client.status = 503 && tries_left > 0 then begin
        incr retries;
        Ekg_obs.Metrics.incr obs retries_metric;
        Ekg_obs.Metrics.incr obs sheds_metric;
        Unix.sleepf 0.05;
        attempt (tries_left - 1)
      end
      else begin
        record writes r.Client.status ms;
        if r.Client.status >= 200 && r.Client.status <= 299 then
          facts_applied := !facts_applied + List.length atoms
        else
          Printf.eprintf "ekg-loadgen: %s /facts -> %d: %s\n%!" meth
            r.Client.status r.Client.body
      end
    in
    attempt 3
  in
  let t_write0 = Unix.gettimeofday () in
  List.iteri
    (fun i batch ->
      if rate > 0.0 then begin
        let due = t_write0 +. (float_of_int i /. rate) in
        let delay = due -. Unix.gettimeofday () in
        if delay > 0.0 then Unix.sleepf delay
      end;
      if batch.Cdc.retracts <> [] then update "DELETE" batch.Cdc.retracts;
      if batch.Cdc.adds <> [] then update "POST" batch.Cdc.adds;
      Ekg_obs.Metrics.incr obs batches_metric;
      Ekg_obs.Metrics.add obs facts_metric
        (float_of_int (List.length batch.Cdc.adds + List.length batch.Cdc.retracts)))
    log;
  let write_wall_s = Unix.gettimeofday () -. t_write0 in
  (* drain the concurrent load, then take the post-replay fingerprint *)
  Atomic.set stop true;
  let read_tallies = List.map Domain.join reader_domains in
  Domain.join sampler;
  let server_fp, final_facts, _ = fingerprint () in
  (* identity gate: cold chase over the final EDB, in this process *)
  let cold_fp, gate_ms =
    Bench_util.time_ms (fun () ->
        let loaded =
          match
            Result.bind
              (Ekg_apps.Apps_util.load_program_files
                 ~program_file:(Filename.concat data "program.vada")
                 ~glossary_file:None ())
              (fun l -> Ekg_apps.Apps_util.with_facts_dir l data)
          with
          | Ok l -> l
          | Error e -> failwith ("identity gate: " ^ e)
        in
        let final = Cdc.final_edb ~base:loaded.Ekg_apps.Apps_util.edb log in
        match
          Ekg_core.Pipeline.reason ~domains:chase_domains
            loaded.Ekg_apps.Apps_util.pipeline final
        with
        | Error e -> failwith ("identity gate chase: " ^ e)
        | Ok result ->
          Digest.to_hex
            (Digest.string (Ekg_engine.Database.fingerprint result.Ekg_engine.Chase.db)))
  in
  let identity_ok = String.equal server_fp cold_fp in
  let reads_all = List.concat_map (fun t -> t.latencies) read_tallies in
  let read_errors = List.fold_left (fun n t -> n + t.errors) 0 read_tallies in
  let read_sheds = List.fold_left (fun n t -> n + t.sheds) 0 read_tallies in
  List.iter
    (fun (t : tally) ->
      Ekg_obs.Metrics.add obs errors_metric (float_of_int t.errors);
      Ekg_obs.Metrics.add obs sheds_metric (float_of_int t.sheds))
    (writes :: read_tallies);
  let adds, retracts = Cdc.stats log in
  let updates_per_s =
    if write_wall_s > 0.0 then float_of_int !facts_applied /. write_wall_s
    else 0.0
  in
  let doc =
    Json.Obj
      [
        ( "scenario",
          Json.Obj
            [
              "data_dir", Json.str data;
              ( "entities",
                Json.int (Option.value ~default:0 (Json.mem_int "total_entities" manifest)) );
              ( "base_facts",
                Json.int (Option.value ~default:0 (Json.mem_int "base_facts" manifest)) );
              "cdc_batches", Json.int (List.length log);
              "cdc_adds", Json.int adds;
              "cdc_retracts", Json.int retracts;
              "rate_batches_per_s", Json.num rate;
              "readers", Json.int readers;
              "chase_domains", Json.int chase_domains;
              "embedded_server", Json.bool embedded;
              "probe_query", Json.str probe_query;
              "probe_goal", Json.str probe_goal;
            ] );
        ( "cold_chase",
          Json.Obj
            [
              "ms", Json.num cold_ms;
              "facts", Json.int cold_facts;
              "rounds", Json.int cold_rounds;
            ] );
        ( "writes",
          Json.Obj
            [
              "batches", Json.int (List.length log);
              "facts_applied", Json.int !facts_applied;
              "wall_s", Json.num write_wall_s;
              "sustained_updates_per_s", Json.num updates_per_s;
              "latency", latency_json writes.latencies;
              "errors", Json.int writes.errors;
              "sheds", Json.int writes.sheds;
              "retries", Json.int !retries;
            ] );
        ( "reads",
          Json.Obj
            [
              "latency", latency_json reads_all;
              "errors", Json.int read_errors;
              "sheds", Json.int read_sheds;
            ] );
        ( "memory",
          Json.Obj
            [
              "top_heap_words", Json.num (Atomic.get top_heap_words);
              ( "top_heap_mib",
                Json.num (Atomic.get top_heap_words *. 8.0 /. 1048576.0) );
              "samples", Json.int (Atomic.get mem_samples);
            ] );
        ( "identity",
          Json.Obj
            [
              "server_fingerprint", Json.str server_fp;
              "cold_chase_fingerprint", Json.str cold_fp;
              "final_facts", Json.int final_facts;
              "gate_ms", Json.num gate_ms;
              "match", Json.bool identity_ok;
            ] );
      ]
  in
  Bench_util.write_file_atomic out (Json.to_string doc ^ "\n");
  if print_metrics then print_string (Ekg_obs.Metrics.to_prometheus obs);
  Printf.printf
    "ekg-loadgen: replayed %d batches (%d facts) in %.1fs — %.0f updates/s, \
     %d read samples, top heap %.1f MiB -> %s\n"
    (List.length log) !facts_applied write_wall_s updates_per_s
    (List.length reads_all)
    (Atomic.get top_heap_words *. 8.0 /. 1048576.0)
    out;
  if not identity_ok then begin
    Printf.eprintf
      "ekg-loadgen: IDENTITY GATE FAILED: server %s vs cold chase %s\n" server_fp
      cold_fp;
    1
  end
  else if writes.errors > 0 || read_errors > 0 then begin
    Printf.eprintf "ekg-loadgen: %d write / %d read errors during replay\n"
      writes.errors read_errors;
    1
  end
  else begin
    Printf.printf "ekg-loadgen: identity gate ok (%s)\n" server_fp;
    0
  end

(* --- CLI -------------------------------------------------------------------- *)

let seed_t =
  let doc = "Master PRNG seed; a (seed, size) pair names one graph forever." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let entities_t =
  let doc = "Core entities in the random ownership layer." in
  Arg.(value & opt int 10_000 & info [ "entities" ] ~docv:"N" ~doc)

let avg_degree_t =
  let doc = "Mean ownership out-degree of the random layer." in
  Arg.(value & opt float 2.5 & info [ "avg-degree" ] ~docv:"D" ~doc)

let exponent_t =
  let doc = "Power-law exponent of the out-degree tail." in
  Arg.(value & opt float 2.2 & info [ "exponent" ] ~docv:"A" ~doc)

let max_degree_t =
  let doc = "Cap on a single entity's out-degree." in
  Arg.(value & opt int 500 & info [ "max-degree" ] ~docv:"N" ~doc)

let chains_t =
  let doc = "Majority-ownership chain motifs to plant." in
  Arg.(value & opt (some int) None & info [ "chains" ] ~docv:"N" ~doc)

let chain_hops_t =
  let doc = "Edges per chain motif." in
  Arg.(value & opt int 6 & info [ "chain-hops" ] ~docv:"N" ~doc)

let cycles_t =
  let doc = "Circular-ownership shell motifs to plant." in
  Arg.(value & opt (some int) None & info [ "cycles" ] ~docv:"N" ~doc)

let cycle_len_t =
  let doc = "Entities per cycle motif." in
  Arg.(value & opt int 4 & info [ "cycle-len" ] ~docv:"N" ~doc)

let diamonds_t =
  let doc = "Joint-control diamond motifs (σ3 sum aggregation)." in
  Arg.(value & opt (some int) None & info [ "diamonds" ] ~docv:"N" ~doc)

let diamond_fanout_t =
  let doc = "Intermediaries per diamond motif." in
  Arg.(value & opt int 4 & info [ "diamond-fanout" ] ~docv:"N" ~doc)

let close_links_t =
  let doc = "Dense sub-threshold cross-ownership clusters." in
  Arg.(value & opt (some int) None & info [ "close-links" ] ~docv:"N" ~doc)

let close_link_size_t =
  let doc = "Entities per close-link cluster." in
  Arg.(value & opt int 5 & info [ "close-link-size" ] ~docv:"N" ~doc)

let batches_t =
  let doc = "CDC batches to generate." in
  Arg.(value & opt int 50 & info [ "batches" ] ~docv:"N" ~doc)

let batch_size_t =
  let doc = "Operations (adds + retracts) per CDC batch." in
  Arg.(value & opt int 200 & info [ "batch-size" ] ~docv:"N" ~doc)

let retract_fraction_t =
  let doc = "Target fraction of CDC operations that are retractions." in
  Arg.(value & opt float 0.3 & info [ "retract-fraction" ] ~docv:"F" ~doc)

let new_entity_fraction_t =
  let doc = "Chance a CDC addition incorporates a fresh shell company." in
  Arg.(value & opt float 0.05 & info [ "new-entity-fraction" ] ~docv:"F" ~doc)

let out_dir_t =
  let doc = "Output directory (becomes the server root for replay)." in
  Arg.(value & opt string "scale-data" & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let generate_cmd =
  let run seed entities avg_degree exponent max_degree chains chain_hops cycles
      cycle_len diamonds diamond_fanout close_links close_link_size batches
      batch_size retract_fraction new_entity_fraction out =
    let per_motif = max 1 (entities / 100) in
    let d = Option.value ~default:per_motif in
    generate_run seed entities avg_degree exponent max_degree (d chains)
      chain_hops (d cycles) cycle_len (d diamonds) diamond_fanout
      (d close_links) close_link_size batches batch_size retract_fraction
      new_entity_fraction out
  in
  let doc = "generate a seeded synthetic financial KG plus a CDC batch log" in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ seed_t $ entities_t $ avg_degree_t $ exponent_t $ max_degree_t
      $ chains_t $ chain_hops_t $ cycles_t $ cycle_len_t $ diamonds_t
      $ diamond_fanout_t $ close_links_t $ close_link_size_t $ batches_t
      $ batch_size_t $ retract_fraction_t $ new_entity_fraction_t $ out_dir_t)

let data_t =
  let doc = "Data directory produced by $(b,generate)." in
  Arg.(value & opt dir "scale-data" & info [ "data" ] ~docv:"DIR" ~doc)

let url_t =
  let doc =
    "Replay against an external ekg-serve at this base URL (its --root \
     must be the data directory).  Default: an embedded server."
  in
  Arg.(value & opt (some string) None & info [ "url" ] ~docv:"URL" ~doc)

let rate_t =
  let doc = "CDC batches per second to stream (0 = as fast as possible)." in
  Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"R" ~doc)

let readers_t =
  let doc = "Concurrent reader workers issuing /query and /explain." in
  Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc)

let chase_domains_t =
  let doc = "Chase match-phase parallelism (embedded server and gate)." in
  Arg.(value & opt int 1 & info [ "chase-domains" ] ~docv:"N" ~doc)

let domains_t =
  let doc = "Worker domains of the embedded server." in
  Arg.(value & opt int 4 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let queue_high_water_t =
  let doc = "Admission-queue shed threshold of the embedded server." in
  Arg.(
    value
    & opt int Server.default_config.Server.queue_high_water
    & info [ "queue-high-water" ] ~docv:"N" ~doc)

let write_deadline_ms_t =
  let doc = "Deadline for session creation, fingerprints and updates." in
  Arg.(value & opt int 300_000 & info [ "write-deadline-ms" ] ~docv:"MS" ~doc)

let read_deadline_ms_t =
  let doc = "Deadline for reader-worker requests." in
  Arg.(value & opt int 30_000 & info [ "read-deadline-ms" ] ~docv:"MS" ~doc)

let sample_ms_t =
  let doc = "Period of the /v1/debug/runtime memory sampler." in
  Arg.(value & opt int 250 & info [ "sample-ms" ] ~docv:"MS" ~doc)

let session_name_t =
  let doc = "Name of the session the replay creates." in
  Arg.(value & opt string "scale-replay" & info [ "session" ] ~docv:"NAME" ~doc)

let out_file_t =
  let doc = "Result artifact path." in
  Arg.(
    value & opt string "BENCH_scale.json" & info [ "out"; "o" ] ~docv:"PATH" ~doc)

let print_metrics_t =
  let doc = "Print the ekg_loadgen_* series in Prometheus text format." in
  Arg.(value & flag & info [ "print-metrics" ] ~doc)

let replay_cmd =
  let doc =
    "stream the CDC log against a server under concurrent reads and write \
     BENCH_scale.json (identity-gated)"
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const replay_run $ data_t $ url_t $ rate_t $ readers_t $ chase_domains_t
      $ domains_t $ queue_high_water_t $ write_deadline_ms_t
      $ read_deadline_ms_t $ sample_ms_t $ session_name_t $ out_file_t
      $ print_metrics_t)

let cmd =
  let doc = "synthetic financial-KG generation and CDC replay benchmarking" in
  Cmd.group (Cmd.info "ekg-loadgen" ~version:"1.0.0" ~doc) [ generate_cmd; replay_cmd ]

let () = exit (Cmd.eval' cmd)
