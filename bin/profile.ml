(* ekg-profile: run a bundled application under full instrumentation
   and print where the time goes — per pipeline stage (from the span
   tree) and per rule (from the chase profiler).

     dune exec bin/profile.exe -- company-control
     dune exec bin/profile.exe -- stress-test --rounds --prometheus *)

open Cmdliner
open Ekg_core
open Ekg_apps

let print_stages ~wall_ms roots =
  Printf.printf "\n== stage breakdown ==\n";
  Printf.printf "  %-40s %10s %10s %7s\n" "stage" "total ms" "self ms" "% wall";
  List.iter
    (fun root ->
      List.iter
        (fun (depth, (sp : Ekg_obs.Trace.span)) ->
          let total = Ekg_obs.Trace.duration_ms sp in
          Printf.printf "  %-40s %10.3f %10.3f %6.1f%%\n"
            (String.make (2 * depth) ' ' ^ sp.name)
            total
            (Ekg_obs.Trace.self_ms sp)
            (if wall_ms > 0. then 100. *. total /. wall_ms else 0.))
        (Ekg_obs.Trace.flatten root))
    roots

let print_rules (stats : Ekg_engine.Chase.stats) =
  Printf.printf "\n== per-rule chase profile ==\n";
  Printf.printf "  %-32s %7s %6s %7s %10s %7s\n" "rule" "stratum" "evals"
    "facts" "ms" "% chase";
  let by_time =
    List.sort
      (fun (a : Ekg_engine.Chase.rule_stat) b -> compare b.time_s a.time_s)
      stats.per_rule
  in
  List.iter
    (fun (r : Ekg_engine.Chase.rule_stat) ->
      Printf.printf "  %-32s %7d %6d %7d %10.3f %6.1f%%\n" r.rule_id r.stratum
        r.evals r.facts (r.time_s *. 1000.)
        (if stats.wall_s > 0. then 100. *. r.time_s /. stats.wall_s else 0.))
    by_time;
  Printf.printf "  rounds per stratum: %s;  aggregate facts superseded: %d\n"
    (String.concat ", "
       (List.mapi
          (fun i n -> Printf.sprintf "#%d=%d" (i + 1) n)
          stats.rounds_per_stratum))
    stats.agg_superseded;
  Printf.printf "  domains: %d;  join plans reordered: %d\n" stats.domains
    stats.plan_reorders

let print_join_stats (stats : Ekg_engine.Chase.stats) =
  Printf.printf "\n== join engine (%s) ==\n" stats.join_strategy;
  Printf.printf "  index builds: %d;  probe hits: %d\n" stats.join_builds
    stats.join_probe_hits;
  Printf.printf "  %-32s %10s %10s %10s %10s\n" "rule" "build ms" "probe ms"
    "insert ms" "total ms";
  let by_time =
    List.sort
      (fun (a : Ekg_engine.Chase.rule_stat) b -> compare b.time_s a.time_s)
      stats.per_rule
  in
  List.iter
    (fun (r : Ekg_engine.Chase.rule_stat) ->
      Printf.printf "  %-32s %10.3f %10.3f %10.3f %10.3f\n" r.rule_id
        (r.build_s *. 1000.) (r.probe_s *. 1000.) (r.insert_s *. 1000.)
        (r.time_s *. 1000.))
    by_time

let print_rounds (stats : Ekg_engine.Chase.stats) =
  Printf.printf "\n== per-round deltas ==\n";
  Printf.printf "  %-8s %-6s %10s %10s %10s\n" "stratum" "round" "delta"
    "new facts" "ms";
  List.iter
    (fun (r : Ekg_engine.Chase.round_stat) ->
      Printf.printf "  %-8d %-6d %10d %10d %10.3f\n" r.stratum r.round
        r.delta_size r.new_facts (r.time_s *. 1000.))
    stats.per_round

(* --magic: the goal-directed query lane's breakdown — where a point
   query's time goes (magic-sets rewrite, scoped chase, answer
   explanation) and what the pruning bought vs. the full chase *)
let run_magic ~budget ~domains pipeline edb qtext =
  match Ekg_datalog.Parser.parse_atom qtext with
  | Error e ->
    Fmt.epr "query: %s@." e;
    1
  | Ok atom -> (
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let pred = atom.Ekg_datalog.Atom.pred in
    let mask = Ekg_engine.Magic.adornment atom in
    let spec, rewrite_ms =
      time (fun () -> Pipeline.specialize pipeline ~pred ~mask)
    in
    match spec with
    | Error e ->
      Fmt.epr "query: %s@." e;
      1
    | Ok spec -> (
      let outcome, chase_ms =
        time (fun () -> Pipeline.query ~domains ~budget pipeline spec edb atom)
      in
      match outcome with
      | Error err ->
        Fmt.epr "query error: %s@." (Ekg_engine.Chase.error_to_string err);
        1
      | Ok qr ->
        let answers = qr.Pipeline.q_answers in
        let explained, answer_ms =
          time (fun () ->
              match answers with
              | [] -> None
              | qa :: _ -> (
                match Pipeline.explain_answer pipeline qr qa with
                | Ok e -> Some e
                | Error _ -> None))
        in
        Printf.printf "query: %s  (shape %s/%s, mode %s%s)\n" qtext pred mask
          (match qr.Pipeline.q_mode with
          | `Magic -> "magic"
          | `Full -> "full"
          | `Edb -> "edb")
          (match qr.Pipeline.q_fallback with
          | None -> ""
          | Some r -> ", fallback: " ^ r);
        Printf.printf "%d answer%s; %d facts derived in %d rounds\n"
          (List.length answers)
          (if List.length answers = 1 then "" else "s")
          qr.Pipeline.q_derived qr.Pipeline.q_rounds;
        Printf.printf "\n== query-lane breakdown ==\n";
        Printf.printf "  %-24s %10.3f ms\n" "magic-sets rewrite" rewrite_ms;
        Printf.printf "  %-24s %10.3f ms\n" "scoped chase + answers" chase_ms;
        Printf.printf "  %-24s %10.3f ms%s\n" "first-answer explanation"
          answer_ms
          (match explained with
          | Some _ -> ""
          | None -> "  (no intensional answer to explain)");
        let full, full_ms =
          time (fun () ->
              Ekg_engine.Chase.run ~domains pipeline.Pipeline.program edb)
        in
        (match full with
        | Ok full ->
          Printf.printf "\n== vs. full materialization ==\n";
          Printf.printf "  full chase: %d facts in %d rounds, %.3f ms\n"
            full.Ekg_engine.Chase.derived_count full.Ekg_engine.Chase.rounds
            full_ms;
          Printf.printf "  scoped instance: %.1f%% of the facts, %.1fx faster\n"
            (if full.Ekg_engine.Chase.derived_count > 0 then
               100.
               *. float_of_int qr.Pipeline.q_derived
               /. float_of_int full.Ekg_engine.Chase.derived_count
             else 0.)
            (if chase_ms > 0. then full_ms /. chase_ms else 0.)
        | Error e -> Fmt.epr "full chase failed: %s@." e);
        List.iteri
          (fun i (qa : Pipeline.query_answer) ->
            if i < 10 then
              Printf.printf "%s%s\n"
                (if i = 0 then "\n== answers (first 10) ==\n" else "")
                (Ekg_engine.Fact.to_string qa.Pipeline.qa_fact))
          answers;
        0))

let run app query domains deadline_ms rounds dump_trace prometheus join
    join_stats fingerprint magic =
  let tracer = Ekg_obs.Trace.create () in
  let sink = Ekg_obs.Metrics.create () in
  let wall0 = Unix.gettimeofday () in
  let budget =
    match deadline_ms with
    | None -> Ekg_engine.Chase.unlimited
    | Some ms -> Ekg_engine.Chase.within_ms (float_of_int ms)
  in
  match Bundled.load ~obs:tracer app with
  | Error e ->
    Fmt.epr "error: %s@." e;
    1
  | Ok _ when magic && query = None ->
    Fmt.epr "error: --magic needs --query ATOM@.";
    1
  | Ok { Apps_util.pipeline; edb } when magic ->
    run_magic ~budget ~domains pipeline edb (Option.get query)
  | Ok { Apps_util.pipeline; edb } -> (
    match
      Ekg_obs.Trace.with_span tracer "chase" (fun span ->
          Ekg_engine.Chase.run_checked ~stats:sink ~domains ~budget ~obs:tracer
            ?join ~parent:span pipeline.Pipeline.program edb)
    with
    | Error err ->
      Fmt.epr "reasoning error: %s@." (Ekg_engine.Chase.error_to_string err);
      1
    | Ok result -> (
      let goal = pipeline.Pipeline.program.goal in
      let explained =
        match query with
        | Some q ->
          Result.map List.length
            (Pipeline.explain_query ~obs:tracer pipeline result q)
        | None -> (
          (* no query: explain the first derived goal fact *)
          match Ekg_engine.Database.active result.db goal with
          | [] -> Error ("no derived facts for goal " ^ goal)
          | fact :: _ ->
            Result.map
              (fun (_ : Pipeline.explanation) -> 1)
              (Pipeline.explain ~obs:tracer pipeline result fact))
      in
      let wall_ms = (Unix.gettimeofday () -. wall0) *. 1000. in
      match explained with
      | Error e ->
        Fmt.epr "explanation error: %s@." e;
        1
      | Ok explained ->
        Printf.printf
          "app: %s  goal: %s\nderived %d facts in %d rounds; %d explanation%s\n"
          app goal result.derived_count result.rounds explained
          (if explained = 1 then "" else "s");
        let roots = List.rev (Ekg_obs.Trace.recent tracer) in
        print_stages ~wall_ms roots;
        let accounted =
          List.fold_left
            (fun acc r -> acc +. Ekg_obs.Trace.duration_ms r)
            0. roots
        in
        Printf.printf "\n  accounted %.3f ms of %.3f ms wall-clock (%.1f%%)\n"
          accounted wall_ms
          (if wall_ms > 0. then 100. *. accounted /. wall_ms else 0.);
        Option.iter
          (fun stats ->
            print_rules stats;
            if join_stats then print_join_stats stats;
            if rounds then print_rounds stats)
          result.stats;
        if fingerprint then
          Printf.printf "\nfingerprint: %s\n"
            (Digest.to_hex
               (Digest.string
                  (Ekg_engine.Io.result_to_json result
                  ^ Ekg_engine.Export.chase_graph_dot result)));
        if dump_trace then begin
          Printf.printf "\n== trace (JSONL) ==\n";
          print_string (Ekg_obs.Trace.jsonl tracer)
        end;
        if prometheus then begin
          Printf.printf "\n== metrics (Prometheus) ==\n";
          print_string (Ekg_obs.Metrics.to_prometheus sink)
        end;
        0))

let app_t =
  let doc =
    "Bundled application to profile (company-control, stress-test, \
     close-link, golden-power)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let query_t =
  let doc = "Explanation query to profile instead of the first goal fact." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"ATOM" ~doc)

let domains_t =
  let doc =
    "Domains the chase fans its per-round match phase over (1 = \
     sequential; results are identical for every value)."
  in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let deadline_ms_t =
  let doc =
    "Abort the chase after this many milliseconds (exercises the \
     cooperative-cancellation path; partial progress is reported)."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let rounds_t =
  Arg.(value & flag & info [ "rounds" ] ~doc:"Also print the per-round deltas.")

let trace_t =
  Arg.(value & flag & info [ "trace" ] ~doc:"Also dump the span trees as JSONL.")

let prometheus_t =
  Arg.(
    value & flag
    & info [ "prometheus" ]
        ~doc:"Also dump the chase metrics in Prometheus text format.")

let join_t =
  let strategy =
    Arg.enum
      [
        ("hash", Ekg_engine.Matcher.Hash); ("nested", Ekg_engine.Matcher.Nested);
      ]
  in
  let doc =
    "Join engine for the chase: $(b,hash) (columnar build/probe, the \
     default) or $(b,nested) (posting-list nested loops).  Overrides \
     $(b,EKG_JOIN).  Output is byte-identical either way."
  in
  Arg.(
    value
    & opt (some strategy) None
    & info [ "join" ] ~docv:"ENGINE" ~doc)

let join_stats_t =
  Arg.(
    value & flag
    & info [ "join-stats" ]
        ~doc:
          "Also print the per-rule join breakdown: index build, probe and \
           sequential-insert time.")

let fingerprint_t =
  Arg.(
    value & flag
    & info [ "fingerprint" ]
        ~doc:
          "Also print a digest of the full chase output (result JSON + \
           provenance dot) — CI diffs it across join engines.")

let magic_t =
  Arg.(
    value & flag
    & info [ "magic" ]
        ~doc:
          "Answer $(b,--query) through the goal-directed lane instead of \
           explaining it over the full chase: print the magic-sets \
           rewrite / scoped chase / answer-explanation time breakdown \
           and the pruning vs. a full materialization.")

let cmd =
  let doc = "profile a bundled application: per-stage and per-rule breakdown" in
  let info = Cmd.info "ekg-profile" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ app_t $ query_t $ domains_t $ deadline_ms_t $ rounds_t
      $ trace_t $ prometheus_t $ join_t $ join_stats_t $ fingerprint_t
      $ magic_t)

let () = exit (Cmd.eval' cmd)
