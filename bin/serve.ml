(* ekg-serve: the long-lived explanation service.

   Loads (program, glossary, EDB) triples into sessions once, caches
   the compiled pipeline and chase materialization, and answers
   repeated explanation queries over HTTP — the reasoning-as-a-service
   shape of the Vadalog system, applied to the paper's template
   pipeline.  See README "Running the explanation server". *)

open Cmdliner
open Ekg_server

let run host port domains chase_domains root preload fault queue_high_water
    default_deadline_ms max_deadline_ms store_dir snapshot_mode
    max_hot_sessions log_level log_file slowlog_threshold_ms =
  (* the --fault flag wins over the EKG_FAULT environment variable *)
  let fault =
    match fault with Some spec -> Fault.parse spec | None -> Fault.of_env ()
  in
  let store =
    match store_dir with
    | None -> Ok None
    | Some dir -> Result.map Option.some (Ekg_store.Store.open_dir dir)
  in
  let snapshot_mode = Ekg_store.Snapshotter.mode_of_string snapshot_mode in
  let log_level = Ekg_obs.Log.level_of_string log_level in
  match fault, store, snapshot_mode, log_level with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
    Fmt.epr "error: %s@." e;
    1
  | Ok fault, Ok store, Ok snapshot_mode, Ok log_level ->
  let slow_threshold_ms = float_of_int slowlog_threshold_ms in
  let log =
    match log_file with
    | None -> Ok (Ekg_obs.Log.create ~level:log_level ~slow_threshold_ms ())
    | Some path -> Ekg_obs.Log.open_file ~level:log_level ~slow_threshold_ms path
  in
  match log with
  | Error e ->
    Fmt.epr "error: cannot open log file: %s@." e;
    1
  | Ok log ->
  let state =
    Router.make_state ~root ~chase_domains ~fault
      ~default_deadline_ms:(float_of_int default_deadline_ms)
      ~max_deadline_ms:(float_of_int max_deadline_ms) ?store ~snapshot_mode
      ~max_hot_sessions ~log ()
  in
  (* crash recovery: re-register every snapshotted session dormant, so
     the restarted daemon serves explanations without recomputing
     fixpoints — the first request per session warm-restores from disk *)
  (match store with
  | None -> ()
  | Some s ->
    let recovered, failed = Registry.recover (Router.registry state) in
    List.iter
      (fun (sess : Registry.session) ->
        Fmt.pr "recovered session %s (%s) from %s@." sess.Registry.id
          sess.Registry.name
          (Ekg_store.Store.path s sess.Registry.id))
      recovered;
    List.iter
      (fun (id, reason) ->
        Fmt.epr "warning: could not recover session %s: %s@." id reason)
      failed;
    if recovered <> [] then
      Fmt.pr "ekg-serve: recovered %d session(s) from %s@."
        (List.length recovered) (Ekg_store.Store.dir s));
  (* optionally pre-register bundled applications so the daemon is
     immediately queryable, e.g. --preload company-control *)
  let preload_errors =
    List.filter_map
      (fun app ->
        match Registry.add (Router.registry state) ~name:app (Registry.App app) with
        | Ok session ->
          Fmt.pr "preloaded %s as session %s@." app session.Registry.id;
          None
        | Error e -> Some e)
      preload
  in
  match preload_errors with
  | e :: _ ->
    Fmt.epr "error: %s@." e;
    1
  | [] ->
    let config =
      { Server.default_config with host; port; domains; queue_high_water }
    in
    (match Server.start ~config state with
    | exception Unix.Unix_error (err, _, _) ->
      Fmt.epr "error: cannot bind %s:%d: %s@." host port (Unix.error_message err);
      1
    | server ->
      let stop _ = Server.request_stop server in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (* background sampler: GC gauges, chase/server pool utilization,
         snapshotter queue depth — the live side of /v1/debug/runtime *)
      Ekg_obs.Runtime.start (Router.runtime state);
      Fmt.pr "ekg-serve: listening on http://%s:%d (%d worker domains, root %s)@."
        host (Server.port server) domains root;
      (match log_file with
      | Some path ->
        Fmt.pr "ekg-serve: wide-event log -> %s (level %s, slowlog > %dms)@."
          path
          (Ekg_obs.Log.level_to_string log_level)
          slowlog_threshold_ms
      | None -> ());
      if fault <> Fault.Off then
        Fmt.pr "ekg-serve: fault injection active: %s@." (Fault.to_string fault);
      (match store with
      | None -> ()
      | Some s ->
        Fmt.pr "ekg-serve: persisting sessions under %s (snapshot mode %s%s)@."
          (Ekg_store.Store.dir s)
          (Ekg_store.Snapshotter.mode_to_string snapshot_mode)
          (if max_hot_sessions > 0 then
             Printf.sprintf ", max %d hot" max_hot_sessions
           else ""));
      Server.wait server;
      Ekg_obs.Runtime.stop (Router.runtime state);
      (* drain pending write-behind snapshots before exiting, so the
         store holds every committed update *)
      Registry.stop_persistence (Router.registry state);
      Ekg_obs.Log.close log;
      Fmt.pr "ekg-serve: drained, bye@.";
      0)

let host_t =
  let doc = "Address to bind." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port_t =
  let doc = "Port to listen on (0 picks an ephemeral port)." in
  Arg.(value & opt int 8080 & info [ "port"; "p" ] ~docv:"PORT" ~doc)

let domains_t =
  let doc = "Worker domains serving requests concurrently." in
  let default = min 4 (max 1 (Domain.recommended_domain_count () - 1)) in
  Arg.(value & opt int default & info [ "domains"; "j" ] ~docv:"N" ~doc)

let chase_domains_t =
  let doc =
    "Domains the chase fans its per-round match phase over during \
     session materialization (1 = sequential; results are identical \
     for every value)."
  in
  Arg.(value & opt int 1 & info [ "chase-domains" ] ~docv:"N" ~doc)

let root_t =
  let doc = "Root directory for program_path/facts_dir session specs." in
  Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR" ~doc)

let preload_t =
  let doc = "Bundled application to preload as a session (repeatable)." in
  Arg.(value & opt_all string [] & info [ "preload" ] ~docv:"APP" ~doc)

let fault_t =
  let doc =
    "Inject a fault for robustness drills: off, delay[:ms], \
     refuse-accept, or slow-chase[:ms].  Overrides the EKG_FAULT \
     environment variable."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let queue_high_water_t =
  let doc =
    "Admission-queue depth at which new requests are shed with 503 \
     (0 sheds every non-probe request)."
  in
  Arg.(
    value
    & opt int Server.default_config.Server.queue_high_water
    & info [ "queue-high-water" ] ~docv:"N" ~doc)

let default_deadline_ms_t =
  let doc =
    "Deadline applied to requests that carry no X-Ekg-Deadline-Ms header."
  in
  Arg.(value & opt int 30_000 & info [ "default-deadline-ms" ] ~docv:"MS" ~doc)

let max_deadline_ms_t =
  let doc = "Cap on the deadline a client may request." in
  Arg.(value & opt int 300_000 & info [ "max-deadline-ms" ] ~docv:"MS" ~doc)

let store_dir_t =
  let doc =
    "Directory for persistent session snapshots.  Sessions found there \
     at startup are recovered dormant (explanations warm-restore from \
     disk instead of re-chasing); omitting the flag disables \
     persistence entirely."
  in
  Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)

let snapshot_mode_t =
  let doc =
    "When snapshots are written: 'behind' (default; off the request \
     path on a dedicated domain, bursts coalesced), 'sync' (inline at \
     commit), or 'off' (only at eviction).  Ignored without --store-dir."
  in
  Arg.(value & opt string "behind" & info [ "snapshot" ] ~docv:"MODE" ~doc)

let max_hot_sessions_t =
  let doc =
    "Most sessions allowed to hold an in-memory materialization; \
     beyond it the least-recently-used are demoted to their snapshot \
     (0 = unbounded).  Requires --store-dir."
  in
  Arg.(value & opt int 0 & info [ "max-hot-sessions" ] ~docv:"N" ~doc)

let log_level_t =
  let doc =
    "Severity floor of the wide-event log: debug, info, warn, or \
     error.  The slow-request ring captures over-threshold requests \
     regardless of the level."
  in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_file_t =
  let doc =
    "Append one JSON object per request (the wide event: trace id, \
     endpoint, status, queue wait, chase cost, GC deltas) to this \
     file.  Without the flag nothing is written, but the in-memory \
     slow-request ring behind /v1/debug/slowlog still fills."
  in
  Arg.(value & opt (some string) None & info [ "log-file" ] ~docv:"PATH" ~doc)

let slowlog_threshold_ms_t =
  let doc =
    "Requests slower than this are captured in the slow-request ring \
     served by GET /v1/debug/slowlog."
  in
  Arg.(
    value & opt int 500 & info [ "slowlog-threshold-ms" ] ~docv:"MS" ~doc)

let cmd =
  let doc = "explanation service over the template pipeline" in
  let info = Cmd.info "ekg-serve" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ host_t $ port_t $ domains_t $ chase_domains_t $ root_t
      $ preload_t $ fault_t $ queue_high_water_t $ default_deadline_ms_t
      $ max_deadline_ms_t $ store_dir_t $ snapshot_mode_t
      $ max_hot_sessions_t $ log_level_t $ log_file_t
      $ slowlog_threshold_ms_t)

let () = exit (Cmd.eval' cmd)
