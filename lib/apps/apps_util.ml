open Ekg_datalog
open Ekg_core

let parse_program_exn src =
  match Parser.parse src with
  | Ok { program; _ } -> program
  | Error e -> failwith ("Apps_util.parse_program_exn: " ^ e)

let parse_facts_exn src =
  (* a fact block has no rules; piggy-back on the parser with a dummy
     goal directive satisfied by a throwaway rule *)
  match Parser.parse (src ^ "\n_dummy_: edb_marker(X) -> edb_marker_copy(X).") with
  | Ok { facts; _ } -> facts
  | Error e -> failwith ("Apps_util.parse_facts_exn: " ^ e)

type loaded = {
  pipeline : Pipeline.t;
  edb : Atom.t list;
}

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

let load_program_text ?(style = 0) ?obs ?glossary source =
  match Parser.parse source with
  | Error e -> Error ("program: " ^ e)
  | Ok { program; facts } -> (
    let glossary =
      match glossary with
      | None -> Ok (Glossary.make_exn [])
      | Some spec -> (
        match Glossary.parse_spec spec with
        | Ok g -> Ok g
        | Error e -> Error ("glossary: " ^ e))
    in
    match glossary with
    | Error e -> Error e
    | Ok glossary ->
      Ok { pipeline = Pipeline.build ~style ?obs program glossary; edb = facts })

let load_program_files ?style ?obs ~program_file ~glossary_file () =
  match read_file program_file with
  | Error e -> Error ("program: " ^ e)
  | Ok source -> (
    match glossary_file with
    | None -> load_program_text ?style ?obs source
    | Some gf -> (
      match read_file gf with
      | Error e -> Error ("glossary: " ^ e)
      | Ok glossary -> load_program_text ?style ?obs ~glossary source))

let with_facts_dir loaded dir =
  match Ekg_engine.Io.load_directory dir with
  | Ok facts -> Ok { loaded with edb = facts }
  | Error e -> Error ("facts: " ^ e)
