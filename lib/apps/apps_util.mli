(** Shared helpers for the bundled KG applications, and the one
    program/facts loader used by every front-end ([bin/explain.ml],
    [bin/serve.ml]) so path handling and error messages exist once. *)

open Ekg_datalog
open Ekg_core

val parse_program_exn : string -> Program.t
(** Parse an application source, raising [Failure] on errors — the
    bundled sources are static and covered by tests. *)

val parse_facts_exn : string -> Atom.t list
(** Parse a fact-only source block. *)

(** {1 Loading deployable applications} *)

type loaded = {
  pipeline : Pipeline.t;  (** compiled analysis + both template families *)
  edb : Atom.t list;      (** extensional facts to reason over *)
}

val read_file : string -> (string, string) result
(** Whole-file read; the error is the system message. *)

val load_program_text :
  ?style:int ->
  ?obs:Ekg_obs.Trace.t ->
  ?glossary:string ->
  string ->
  (loaded, string) result
(** Compile a Vadalog program source (with optional inline facts) and
    an optional glossary spec into a ready pipeline.  Errors are
    prefixed ["program: "] / ["glossary: "].  [obs] records the
    pipeline-build stage spans (see {!Pipeline.build}). *)

val load_program_files :
  ?style:int ->
  ?obs:Ekg_obs.Trace.t ->
  program_file:string ->
  glossary_file:string option ->
  unit ->
  (loaded, string) result
(** File-based variant of {!load_program_text}. *)

val with_facts_dir : loaded -> string -> (loaded, string) result
(** Replace the EDB with the facts of a [<pred>.csv] directory. *)
