let names = [ "company-control"; "stress-test"; "close-link"; "golden-power" ]

let load ?obs = function
  | "company-control" ->
    Ok
      {
        Apps_util.pipeline = Company_control.pipeline ?obs ();
        edb = Company_control.scenario_edb;
      }
  | "stress-test" ->
    Ok { Apps_util.pipeline = Stress_test.pipeline ?obs (); edb = Stress_test.scenario_edb }
  | "close-link" ->
    Ok { Apps_util.pipeline = Close_link.pipeline ?obs (); edb = Close_link.scenario_edb }
  | "golden-power" ->
    Ok { Apps_util.pipeline = Golden_power.pipeline ?obs (); edb = Golden_power.scenario_edb }
  | other ->
    Error
      ("unknown application: " ^ other ^ " (try " ^ String.concat ", " names ^ ")")
