(** Catalog of the bundled paper applications, each paired with its
    scenario EDB, behind the same [Apps_util.loaded] interface the
    file loader produces.  (Lives outside [Apps_util] because the app
    modules themselves depend on [Apps_util].) *)

val names : string list

val load : ?obs:Ekg_obs.Trace.t -> string -> (Apps_util.loaded, string) result
(** [load "company-control"] etc.; the error lists the valid names. *)
