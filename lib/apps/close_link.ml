open Ekg_datalog
open Ekg_core

let source = {|
cl1: own(X, Y, W) -> pathOwn(X, Y, W).
cl2: pathOwn(X, Z, W1), own(Z, Y, W2), W = W1 * W2, W >= 0.01 -> pathOwn(X, Y, W).
cl3: pathOwn(X, Y, W), W >= 0.2 -> closeLink(X, Y).
@goal(closeLink).
|}

let program = Apps_util.parse_program_exn source

let glossary =
  Glossary.make_exn
    [
      Glossary.entry ~pred:"own"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain); ("w", Glossary.Percent) ]
        ~pattern:"<x> owns <w> of the shares of <y>";
      Glossary.entry ~pred:"pathOwn"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain); ("w", Glossary.Percent) ]
        ~pattern:"<x> holds an integrated participation of <w> in <y>";
      Glossary.entry ~pred:"closeLink"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain) ]
        ~pattern:"<x> is closely linked to <y>";
    ]

let pipeline ?style ?obs () = Pipeline.build ?style ?obs program glossary

let own x y w = Atom.make "own" [ Term.str x; Term.str y; Term.num w ]

let scenario_edb =
  [
    own "HoldCo" "MidCo" 0.50;
    own "MidCo" "OpCo" 0.60;     (* chained: 30% ≥ 20% *)
    own "HoldCo" "SideCo" 0.25;  (* direct link *)
    own "SideCo" "OpCo" 0.10;    (* chained 2.5%: below threshold *)
    own "OpCo" "TinyCo" 0.15;    (* no link: 15% < 20% *)
  ]
