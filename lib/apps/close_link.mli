(** The close links KG application (§6.2): detection of "close link"
    relationships between financial entities through integrated
    ownership, the third application graded in the paper's expert
    study.  The paper does not spell out its rules; we encode the
    standard supervisory definition (an entity is closely linked to
    another when it holds, directly or through chains of participation
    computed as products of shares, at least 20% of it):

    {v
    cl1: own(X, Y, W) -> pathOwn(X, Y, W).
    cl2: pathOwn(X, Z, W1), own(Z, Y, W2), W = W1 * W2, W >= 0.01
           -> pathOwn(X, Y, W).
    cl3: pathOwn(X, Y, W), W >= 0.2 -> closeLink(X, Y).
    v}

    The 1% floor on chained participations bounds the recursion, as in
    the supervisory practice of ignoring negligible holdings. *)

open Ekg_datalog

val program : Program.t
val glossary : Ekg_core.Glossary.t
val pipeline : ?style:int -> ?obs:Ekg_obs.Trace.t -> unit -> Ekg_core.Pipeline.t

val scenario_edb : Atom.t list
(** A participation network with direct, chained, and sub-threshold
    links. *)

val own : string -> string -> float -> Atom.t
