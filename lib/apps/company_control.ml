open Ekg_datalog
open Ekg_core

let source = {|
sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).
sigma2: company(X) -> control(X, X).
sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
@goal(control).
|}

let program = Apps_util.parse_program_exn source

let glossary =
  Glossary.make_exn
    [
      Glossary.entry ~pred:"own"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain); ("s", Glossary.Percent) ]
        ~pattern:"<x> owns <s> of the shares of <y>";
      Glossary.entry ~pred:"control"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain) ]
        ~pattern:"<x> exercises control over <y>";
      Glossary.entry ~pred:"company" ~args:[ ("x", Glossary.Plain) ]
        ~pattern:"<x> is a business corporation";
    ]

let pipeline ?style ?obs () = Pipeline.build ?style ?obs program glossary

let own x y s =
  Atom.make "own" [ Term.str x; Term.str y; Term.num s ]

let company x = Atom.make "company" [ Term.str x ]

(* Figure 12's cluster A–F plus the Irish Bank group used in the
   running example of Figure 15 (Irish Bank owns 83% of Fondo Italiano
   and 54% of French PLC; those own 36% and 21% of Madrid Credit). *)
let scenario_edb =
  List.map company [ "A"; "B"; "C"; "D"; "E"; "F" ]
  @ [
      own "A" "B" 0.60;
      own "B" "E" 0.55;
      own "B" "D" 0.30;
      own "E" "D" 0.25;
      own "C" "F" 0.51;
      own "F" "A" 0.20;
      own "D" "F" 0.10;
    ]
  @ List.map company [ "IrishBank"; "FondoItaliano"; "FrenchPLC"; "MadridCredit" ]
  @ [
      own "IrishBank" "FondoItaliano" 0.83;
      own "IrishBank" "FrenchPLC" 0.54;
      own "FrenchPLC" "MadridCredit" 0.21;
      own "FondoItaliano" "MadridCredit" 0.36;
    ]
