(** The company control KG application (§5): derivation of control
    relationships in a "one-share one-vote" ownership network, after
    the official definition encoded by rules σ1–σ3:

    {v
    σ1: own(X, Y, S), S > 0.5 -> control(X, Y).
    σ2: company(X) -> control(X, X).
    σ3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, Y).
    v} *)

open Ekg_datalog

val program : Program.t
val glossary : Ekg_core.Glossary.t
(** From the internal data dictionary (Figure 11). *)

val pipeline : ?style:int -> ?obs:Ekg_obs.Trace.t -> unit -> Ekg_core.Pipeline.t

val scenario_edb : Atom.t list
(** The representative scenario of Figure 12 (ownership edges and
    company registrations for entities A–F plus the Irish Bank group
    of Figure 15). *)

val own : string -> string -> float -> Atom.t
(** [own x y s] — x owns the fraction s of y's shares. *)

val company : string -> Atom.t
