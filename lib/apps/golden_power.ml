open Ekg_datalog
open Ekg_core

let source = {|
g1: acquisition(B, T, S), own(B, T, W), strategic(T), NS = S + W, NS > 0.5 -> goldenPower(B, T).
g2: acquisition(B, T, S), strategic(T), S > 0.1, not euEntity(B) -> goldenPower(B, T).
g3: goldenPower(B, T), not vetted(B, T) -> blockedDeal(B, T).
c1: vetted(B, T), not goldenPower(B, T) -> false.
@goal(blockedDeal).
|}

let program = Apps_util.parse_program_exn source

let glossary =
  Glossary.make_exn
    [
      Glossary.entry ~pred:"acquisition"
        ~args:[ ("b", Glossary.Plain); ("t", Glossary.Plain); ("s", Glossary.Percent) ]
        ~pattern:"<b> seeks to acquire <s> of <t>";
      Glossary.entry ~pred:"own"
        ~args:[ ("x", Glossary.Plain); ("y", Glossary.Plain); ("w", Glossary.Percent) ]
        ~pattern:"<x> owns <w> of the shares of <y>";
      Glossary.entry ~pred:"strategic" ~args:[ ("t", Glossary.Plain) ]
        ~pattern:"<t> operates in a strategic sector";
      Glossary.entry ~pred:"euEntity" ~args:[ ("b", Glossary.Plain) ]
        ~pattern:"<b> is incorporated in the European Union";
      Glossary.entry ~pred:"vetted"
        ~args:[ ("b", Glossary.Plain); ("t", Glossary.Plain) ]
        ~pattern:"the acquisition of <t> by <b> has been vetted by the government";
      Glossary.entry ~pred:"goldenPower"
        ~args:[ ("b", Glossary.Plain); ("t", Glossary.Plain) ]
        ~pattern:"the acquisition of <t> by <b> is subject to golden power";
      Glossary.entry ~pred:"blockedDeal"
        ~args:[ ("b", Glossary.Plain); ("t", Glossary.Plain) ]
        ~pattern:"the acquisition of <t> by <b> is blocked pending government review";
    ]

let pipeline ?style ?obs () = Pipeline.build ?style ?obs program glossary

let acquisition b t s =
  Atom.make "acquisition" [ Term.str b; Term.str t; Term.num s ]

let strategic t = Atom.make "strategic" [ Term.str t ]
let eu_entity b = Atom.make "euEntity" [ Term.str b ]
let vetted b t = Atom.make "vetted" [ Term.str b; Term.str t ]

let own = Company_control.own

let scenario_edb =
  [
    (* domestic fund creeping over 50% of a strategic utility *)
    acquisition "DomesticFund" "PowerGridCo" 0.15;
    own "DomesticFund" "PowerGridCo" 0.40;
    strategic "PowerGridCo";
    eu_entity "DomesticFund";
    (* non-EU buyer crossing 10% of a defence supplier *)
    acquisition "OverseasHolding" "DefenseTechCo" 0.12;
    strategic "DefenseTechCo";
    (* a vetted deal proceeds *)
    acquisition "ForeignBank" "TelecomCo" 0.30;
    strategic "TelecomCo";
    vetted "ForeignBank" "TelecomCo";
    (* an innocuous trade in a non-strategic company *)
    acquisition "RetailFund" "BakeryChain" 0.60;
    eu_entity "RetailFund";
  ]

let inconsistent_edb =
  scenario_edb
  @ [
      (* a recorded vetting for a deal that never triggered the power *)
      vetted "RetailFund" "BakeryChain";
    ]
