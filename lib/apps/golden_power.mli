(** Golden-power screening — a fourth KG application over the same
    financial EKG, modelled after the golden-power assessments the
    Bank of Italy's graph has been used for (Bellomarini et al. 2020,
    the paper's reference [9]): flagging acquisitions of strategic
    companies that trigger the government's special vetting powers.

    {v
    g1: acquisition(B, T, S), own(B, T, W), strategic(T),
          NS = S + W, NS > 0.5                  -> goldenPower(B, T).
    g2: acquisition(B, T, S), strategic(T),
          S > 0.1, not euEntity(B)              -> goldenPower(B, T).
    g3: goldenPower(B, T), not vetted(B, T)     -> blockedDeal(B, T).
    c1: vetted(B, T), not goldenPower(B, T)     -> false.
    v}

    g1: an acquisition that would push the buyer's stake in a strategic
    company above 50% is subject to golden power; g2: any non-EU buyer
    crossing 10% of a strategic company is too; g3: a deal under golden
    power that has not been vetted is blocked.  The negative constraint
    c1 rejects instances recording a vetting for a deal that never
    triggered the power — a data-quality guard (§3's negative
    constraints).

    Exercises stratified negation, arithmetic assignments and
    constraints in one application. *)

open Ekg_datalog

val program : Program.t
val glossary : Ekg_core.Glossary.t
val pipeline : ?style:int -> ?obs:Ekg_obs.Trace.t -> unit -> Ekg_core.Pipeline.t

val scenario_edb : Atom.t list
(** A screening scenario: one over-threshold domestic takeover, one
    foreign acquisition, one vetted deal, one innocuous trade. *)

val inconsistent_edb : Atom.t list
(** {!scenario_edb} plus a spurious vetting: reasoning over it must
    fail on constraint [c1]. *)

val acquisition : string -> string -> float -> Atom.t
val strategic : string -> Atom.t
val eu_entity : string -> Atom.t
val vetted : string -> string -> Atom.t
