open Ekg_kernel
open Ekg_datalog
open Ekg_core

let source = {|
sigma4: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
sigma5: default(D), longTermDebts(D, C, V), E = sum(V) -> risk(C, E, "long").
sigma6: default(D), shortTermDebts(D, C, V), E = sum(V) -> risk(C, E, "short").
sigma7: risk(C, E, T), hasCapital(C, P2), L = sum(E), L > P2 -> default(C).
@goal(default).
|}

let simple_source = {|
alpha: shock(F, S), hasCapital(F, P1), S > P1 -> default(F).
beta:  default(D), debts(D, C, V), E = sum(V) -> risk(C, E).
gamma: hasCapital(C, P2), risk(C, E), P2 < E -> default(C).
@goal(default).
|}

let program = Apps_util.parse_program_exn source
let simple_program = Apps_util.parse_program_exn simple_source

let base_entries =
  [
    Glossary.entry ~pred:"hasCapital"
      ~args:[ ("f", Glossary.Plain); ("p", Glossary.Euros) ]
      ~pattern:"<f> is a company with capital of <p>";
    Glossary.entry ~pred:"shock"
      ~args:[ ("f", Glossary.Plain); ("s", Glossary.Euros) ]
      ~pattern:"a shock amounting to <s> hits <f>";
    Glossary.entry ~pred:"default" ~args:[ ("f", Glossary.Plain) ]
      ~pattern:"<f> is in default";
  ]

let glossary =
  Glossary.make_exn
    (base_entries
    @ [
        Glossary.entry ~pred:"longTermDebts"
          ~args:[ ("d", Glossary.Plain); ("c", Glossary.Plain); ("v", Glossary.Euros) ]
          ~pattern:"<d> has an amount <v> of long-term debts with <c>";
        Glossary.entry ~pred:"shortTermDebts"
          ~args:[ ("d", Glossary.Plain); ("c", Glossary.Plain); ("v", Glossary.Euros) ]
          ~pattern:"<d> has an amount <v> of short-term debts with <c>";
        Glossary.entry ~pred:"risk"
          ~args:
            [ ("c", Glossary.Plain); ("e", Glossary.Euros); ("t", Glossary.Plain) ]
          ~pattern:
            "<c> is at risk of defaulting given its <t>-term loans of <e> of exposures \
             to a defaulted debtor";
      ])

let simple_glossary =
  Glossary.make_exn
    (base_entries
    @ [
        Glossary.entry ~pred:"debts"
          ~args:[ ("d", Glossary.Plain); ("c", Glossary.Plain); ("v", Glossary.Euros) ]
          ~pattern:"<d> has an amount <v> of debts with <c>";
        Glossary.entry ~pred:"risk"
          ~args:[ ("c", Glossary.Plain); ("e", Glossary.Euros) ]
          ~pattern:
            "<c> is at risk of defaulting given its loan of <e> of exposures to a \
             defaulted debtor";
      ])

let pipeline ?style ?obs () = Pipeline.build ?style ?obs program glossary
let simple_pipeline ?style ?obs () = Pipeline.build ?style ?obs simple_program simple_glossary

let shock f s = Atom.make "shock" [ Term.str f; Term.num s ]
let has_capital f p = Atom.make "hasCapital" [ Term.str f; Term.num p ]

let long_term_debts d c v =
  Atom.make "longTermDebts" [ Term.str d; Term.str c; Term.num v ]

let short_term_debts d c v =
  Atom.make "shortTermDebts" [ Term.str d; Term.str c; Term.num v ]

let debts d c v = Atom.make "debts" [ Term.str d; Term.str c; Term.num v ]

let m = Money.of_millions

(* §5's narrative: the 14M shock on A cascades A → B → C and finally F,
   through B's long-term and short-term exposures.  The paper reports
   F's total exposure as 11M while quoting 2M + 8M contributions; we
   keep the contributions (total 10M, still above F's 9M capital) and
   record the discrepancy in EXPERIMENTS.md. *)
let scenario_edb =
  [
    shock "A" (m 14.);
    has_capital "A" (m 5.);
    has_capital "B" (m 4.);
    has_capital "C" (m 8.);
    has_capital "D" (m 6.);
    has_capital "E" (m 3.);
    has_capital "F" (m 9.);
    long_term_debts "A" "B" (m 7.);
    long_term_debts "A" "E" (m 1.);
    short_term_debts "B" "C" (m 9.);
    long_term_debts "C" "F" (m 2.);
    short_term_debts "B" "F" (m 8.);
  ]
