(** The two-channel stress test KG application (§5): propagation of a
    default shock over short- and long-term debt exposures, rules
    σ4–σ7.  The one-channel simplification used as the paper's running
    example (Example 4.3, rules α–γ) is exposed as
    {!simple_program}. *)

open Ekg_datalog

val program : Program.t
val glossary : Ekg_core.Glossary.t
val pipeline : ?style:int -> ?obs:Ekg_obs.Trace.t -> unit -> Ekg_core.Pipeline.t

val simple_program : Program.t
(** Example 4.3's α, β, γ over a single [debts] channel. *)

val simple_glossary : Ekg_core.Glossary.t
(** Figure 7. *)

val simple_pipeline : ?style:int -> ?obs:Ekg_obs.Trace.t -> unit -> Ekg_core.Pipeline.t

val scenario_edb : Atom.t list
(** Figure 12's exposures, capitals, and the 14-million-euro shock on
    entity A discussed in §5. *)

val shock : string -> float -> Atom.t
val has_capital : string -> float -> Atom.t
val long_term_debts : string -> string -> float -> Atom.t
val short_term_debts : string -> string -> float -> Atom.t
val debts : string -> string -> float -> Atom.t
(** Single-channel debts for {!simple_program}. *)
