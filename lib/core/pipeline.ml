open Ekg_datalog
open Ekg_engine

type t = {
  program : Program.t;
  glossary : Glossary.t;
  analysis : Reasoning_path.analysis;
  deterministic : (string * Template.t) list;
  enhanced : (string * Template.t) list;
}

let build ?(style = 0) ?obs ?parent program glossary =
  Ekg_obs.Trace.with_span_opt obs ?parent "pipeline-build" @@ fun parent ->
  let span name f = Ekg_obs.Trace.with_span_opt obs ?parent name (fun _ -> f ()) in
  let analysis = Reasoning_path.analyze ?obs ?parent program in
  let paths = analysis.simple_paths @ analysis.cycles in
  let deterministic =
    span "verbalization" @@ fun () ->
    List.map
      (fun p -> (p.Reasoning_path.name, Template.of_path glossary p))
      paths
  in
  let enhanced =
    span "enhancement" @@ fun () ->
    List.map
      (fun (name, det) -> (name, (Enhancer.enhance ~style glossary det).template))
      deterministic
  in
  { program; glossary; analysis; deterministic; enhanced }

let template_for t ~enhanced (path : Reasoning_path.t) =
  let table = if enhanced then t.enhanced else t.deterministic in
  match List.assoc_opt path.name table with
  | Some tpl -> tpl
  | None ->
    (* ad-hoc path synthesized by the mapper *)
    let det = Template.of_path t.glossary path in
    if enhanced then (Enhancer.enhance t.glossary det).template else det

type explanation = {
  fact : Fact.t;
  proof : Proof.t;
  mapping : Proof_mapper.mapping;
  text : string;
  deterministic_text : string;
  paths_used : string list;
}

let reason ?stats ?domains ?budget ?obs ?parent t edb =
  Chase.run ?stats ?domains ?budget ?obs ?parent t.program edb

let incrementable t = Chase.incrementable t.program

let add_facts ?domains ?budget t result atoms =
  Chase.add_facts ?domains ?budget t.program result atoms

let retract_facts ?domains ?budget t result atoms =
  Chase.retract_facts ?domains ?budget t.program result atoms

let extractor = function
  | `Primary -> Proof.of_fact
  | `Shortest -> Proof.shortest_of_fact

(* stage-span scoper, polymorphic in the stage's result *)
type spanner = { span : 'a. string -> (unit -> 'a) -> 'a }

let spanner obs parent =
  { span = (fun name f -> Ekg_obs.Trace.with_span_opt obs ?parent name (fun _ -> f ())) }

(* the shared tail of every explanation: map the (already extracted,
   possibly truncated or un-adorned) proof onto the reasoning paths and
   instantiate the templates.  [span] scopes the stage spans under the
   caller's "explain" span. *)
let finish_explanation ~span:{ span } ~degraded t fact (proof, assumed) =
  let mapping =
      span "proof-mapping" (fun () -> Proof_mapper.map_proof t.analysis proof)
    in
    let preamble =
      if assumed = [] then ""
      else begin
        let verbalized =
          List.map
            (fun (f : Fact.t) ->
              Verbalizer.chunks_to_text
                ~resolve:(fun sl -> "<" ^ sl.Verbalizer.var ^ ">")
                (Verbalizer.verbalize_atom t.glossary (Fact.atom f)))
            assumed
        in
        "Taking as already established that "
        ^ Ekg_kernel.Textutil.join_and verbalized
        ^ ". "
      end
    in
    let render enhanced =
      preamble
      ^ Instantiate.render_mapping ~template_for:(template_for t ~enhanced) mapping
      |> Instantiate.cleanup
    in
    let paths_used = Proof_mapper.paths_used mapping in
    let text, deterministic_text =
      if degraded then begin
        (* Verbalization budget exhausted: fall back to the pre-computed
           template skeletons of the paths the proof mapped onto.  No
           instantiation work, but the caller still learns which
           reasoning steps fired and in what shape. *)
        let skeletons =
          List.filter_map
            (fun name ->
              Option.map Template.skeleton (List.assoc_opt name t.deterministic))
            paths_used
        in
        let sk = preamble ^ String.concat " " skeletons in
        (sk, sk)
      end
      else span "instantiation" (fun () -> (render true, render false))
    in
    Ok { fact; proof; mapping; text; deterministic_text; paths_used }

let explain ?(strategy = `Primary) ?horizon ?(degraded = false) ?obs ?parent t
    (result : Chase.result) fact =
  Ekg_obs.Trace.with_span_opt obs ?parent "explain" @@ fun parent ->
  let span = spanner obs parent in
  match
    span.span "proof-extraction" (fun () ->
        extractor strategy result.db result.prov fact)
  with
  | None -> Error (Fact.to_string fact ^ " is an extensional fact: nothing to explain")
  | Some full_proof ->
    let pair =
      match horizon with
      | None -> (full_proof, [])
      | Some h -> Proof.truncate full_proof ~horizon:h
    in
    finish_explanation ~span ~degraded t fact pair

let explain_atom_budgeted ?strategy ?(degrade = fun () -> false) ?obs ?parent t
    (result : Chase.result) atom =
  let matches = Query.ask result.db atom in
  if matches = [] then Error ("no derived fact matches " ^ Atom.to_string atom)
  else begin
    let degraded_any = ref false in
    let explanations =
      List.filter_map
        (fun (f, _) ->
          let degraded = degrade () in
          if degraded then degraded_any := true;
          match explain ?strategy ~degraded ?obs ?parent t result f with
          | Ok e -> Some e
          | Error _ -> None (* extensional matches are skipped *))
        matches
    in
    if explanations = [] then
      Error ("all facts matching " ^ Atom.to_string atom ^ " are extensional")
    else Ok (explanations, !degraded_any)
  end

let explain_atom ?strategy ?obs ?parent t (result : Chase.result) atom =
  Result.map fst (explain_atom_budgeted ?strategy ?obs ?parent t result atom)

let explain_query ?strategy ?obs ?parent t result source =
  match Parser.parse_atom source with
  | Error e -> Error e
  | Ok atom -> explain_atom ?strategy ?obs ?parent t result atom

(* --- the goal-directed query lane ------------------------------------------- *)

type specialization =
  | Sp_magic of Magic.specialized
  | Sp_full of string
  | Sp_edb

let specialize t ~pred ~mask =
  if not (List.mem pred (Program.preds t.program)) then
    Error ("unknown predicate: " ^ pred)
  else if not (Program.is_intensional t.program pred) then Ok Sp_edb
  else
    match Magic.specialize t.program ~pred ~mask with
    | Ok sp -> Ok (Sp_magic sp)
    | Error reason -> Ok (Sp_full reason)

type query_answer = {
  qa_fact : Fact.t;
  qa_internal : Fact.t;
  qa_binding : Subst.t;
}

type query_result = {
  q_answers : query_answer list;
  q_mode : [ `Magic | `Full | `Edb ];
  q_fallback : string option;
  q_scoped : Chase.result option;
  q_sp : Magic.specialized option;
  q_rounds : int;
  q_derived : int;
}

(* answers ordered by their rendering: canonical for paging, and equal
   between the magic and full paths by construction *)
let sort_answers answers =
  List.sort
    (fun a b -> String.compare (Fact.to_string a.qa_fact) (Fact.to_string b.qa_fact))
    answers

let edb_scan edb (atom : Atom.t) =
  let answers =
    List.filteri (fun _ (a : Atom.t) -> a.Atom.pred = atom.Atom.pred) edb
    |> List.mapi (fun i (a : Atom.t) ->
           let args =
             Array.of_list
               (List.map
                  (function
                    | Term.Cst v -> v
                    | Term.Var v ->
                      (* the EDB mirror holds ground atoms only *)
                      invalid_arg ("non-ground extensional atom: " ^ v))
                  a.Atom.args)
           in
           (i, args))
    |> List.filter_map (fun (i, args) ->
           match Subst.match_atom Subst.empty ~pattern:atom args with
           | None -> None
           | Some binding ->
             let fact = { Fact.id = i; pred = atom.Atom.pred; args } in
             Some { qa_fact = fact; qa_internal = fact; qa_binding = binding })
  in
  {
    q_answers = sort_answers answers;
    q_mode = `Edb;
    q_fallback = None;
    q_scoped = None;
    q_sp = None;
    q_rounds = 0;
    q_derived = 0;
  }

let query ?stats ?domains ?budget ?obs ?parent t spec edb (atom : Atom.t) =
  let scoped_full reason =
    match Chase.run_checked ?stats ?domains ?budget ?obs ?parent t.program edb with
    | Error _ as e -> e
    | Ok res ->
      let answers =
        Query.ask res.db atom
        |> List.map (fun (f, binding) ->
               { qa_fact = f; qa_internal = f; qa_binding = binding })
      in
      Ok
        {
          q_answers = sort_answers answers;
          q_mode = `Full;
          q_fallback = Some reason;
          q_scoped = Some res;
          q_sp = None;
          q_rounds = res.Chase.rounds;
          q_derived = res.Chase.derived_count;
        }
  in
  match spec with
  | Sp_edb -> Ok (edb_scan edb atom)
  | Sp_full reason -> scoped_full reason
  | Sp_magic sp -> (
    match
      Chase.run_checked ?stats ?domains ?budget ?obs ?parent sp.Magic.sp_program
        (edb @ Magic.seeds sp atom)
    with
    | Error (Chase.Unstratifiable _) ->
      (* the rewrite broke the stratification the source program had *)
      scoped_full "rewritten program does not stratify"
    | Error _ as e -> e
    | Ok res ->
      let answers =
        Query.ask res.db (Magic.goal_atom sp atom)
        |> List.map (fun (f, binding) ->
               {
                 qa_fact = Magic.original_fact sp f;
                 qa_internal = f;
                 qa_binding = binding;
               })
      in
      Ok
        {
          q_answers = sort_answers answers;
          q_mode = `Magic;
          q_fallback = None;
          q_scoped = Some res;
          q_sp = Some sp;
          q_rounds = res.Chase.rounds;
          q_derived = res.Chase.derived_count;
        })

let explain_answer ?(strategy = `Primary) ?(degraded = false) ?obs ?parent t
    (qr : query_result) (qa : query_answer) =
  match qr.q_scoped with
  | None ->
    Error
      (Fact.to_string qa.qa_fact ^ " is an extensional fact: nothing to explain")
  | Some result -> (
    Ekg_obs.Trace.with_span_opt obs ?parent "explain" @@ fun parent ->
    let span = spanner obs parent in
    match
      span.span "proof-extraction" (fun () ->
          extractor strategy result.Chase.db result.Chase.prov qa.qa_internal)
    with
    | None ->
      Error
        (Fact.to_string qa.qa_fact ^ " is an extensional fact: nothing to explain")
    | Some proof ->
      let proof =
        match qr.q_sp with
        | Some sp -> Magic.unadorn_proof sp proof
        | None -> proof
      in
      finish_explanation ~span ~degraded t qa.qa_fact (proof, []))

let identity t =
  (* stable across processes: the program's canonical rendering plus
     the glossary spec are everything that shapes a materialization and
     its explanations; compilation artifacts (analysis, templates) are
     derived from these deterministically *)
  Digest.to_hex
    (Digest.string (Program.to_string t.program ^ "\x00" ^ Glossary.to_string t.glossary))
