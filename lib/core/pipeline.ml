open Ekg_datalog
open Ekg_engine

type t = {
  program : Program.t;
  glossary : Glossary.t;
  analysis : Reasoning_path.analysis;
  deterministic : (string * Template.t) list;
  enhanced : (string * Template.t) list;
}

let build ?(style = 0) ?obs ?parent program glossary =
  Ekg_obs.Trace.with_span_opt obs ?parent "pipeline-build" @@ fun parent ->
  let span name f = Ekg_obs.Trace.with_span_opt obs ?parent name (fun _ -> f ()) in
  let analysis = Reasoning_path.analyze ?obs ?parent program in
  let paths = analysis.simple_paths @ analysis.cycles in
  let deterministic =
    span "verbalization" @@ fun () ->
    List.map
      (fun p -> (p.Reasoning_path.name, Template.of_path glossary p))
      paths
  in
  let enhanced =
    span "enhancement" @@ fun () ->
    List.map
      (fun (name, det) -> (name, (Enhancer.enhance ~style glossary det).template))
      deterministic
  in
  { program; glossary; analysis; deterministic; enhanced }

let template_for t ~enhanced (path : Reasoning_path.t) =
  let table = if enhanced then t.enhanced else t.deterministic in
  match List.assoc_opt path.name table with
  | Some tpl -> tpl
  | None ->
    (* ad-hoc path synthesized by the mapper *)
    let det = Template.of_path t.glossary path in
    if enhanced then (Enhancer.enhance t.glossary det).template else det

type explanation = {
  fact : Fact.t;
  proof : Proof.t;
  mapping : Proof_mapper.mapping;
  text : string;
  deterministic_text : string;
  paths_used : string list;
}

let reason ?stats ?domains ?budget ?obs ?parent t edb =
  Chase.run ?stats ?domains ?budget ?obs ?parent t.program edb

let incrementable t = Chase.incrementable t.program

let add_facts ?domains ?budget t result atoms =
  Chase.add_facts ?domains ?budget t.program result atoms

let retract_facts ?domains ?budget t result atoms =
  Chase.retract_facts ?domains ?budget t.program result atoms

let explain ?(strategy = `Primary) ?horizon ?(degraded = false) ?obs ?parent t
    (result : Chase.result) fact =
  Ekg_obs.Trace.with_span_opt obs ?parent "explain" @@ fun parent ->
  let span name f = Ekg_obs.Trace.with_span_opt obs ?parent name (fun _ -> f ()) in
  let extract =
    match strategy with
    | `Primary -> Proof.of_fact
    | `Shortest -> Proof.shortest_of_fact
  in
  match span "proof-extraction" (fun () -> extract result.db result.prov fact) with
  | None -> Error (Fact.to_string fact ^ " is an extensional fact: nothing to explain")
  | Some full_proof ->
    let proof, assumed =
      match horizon with
      | None -> (full_proof, [])
      | Some h -> Proof.truncate full_proof ~horizon:h
    in
    let mapping =
      span "proof-mapping" (fun () -> Proof_mapper.map_proof t.analysis proof)
    in
    let preamble =
      if assumed = [] then ""
      else begin
        let verbalized =
          List.map
            (fun (f : Fact.t) ->
              Verbalizer.chunks_to_text
                ~resolve:(fun sl -> "<" ^ sl.Verbalizer.var ^ ">")
                (Verbalizer.verbalize_atom t.glossary (Fact.atom f)))
            assumed
        in
        "Taking as already established that "
        ^ Ekg_kernel.Textutil.join_and verbalized
        ^ ". "
      end
    in
    let render enhanced =
      preamble
      ^ Instantiate.render_mapping ~template_for:(template_for t ~enhanced) mapping
      |> Instantiate.cleanup
    in
    let paths_used = Proof_mapper.paths_used mapping in
    let text, deterministic_text =
      if degraded then begin
        (* Verbalization budget exhausted: fall back to the pre-computed
           template skeletons of the paths the proof mapped onto.  No
           instantiation work, but the caller still learns which
           reasoning steps fired and in what shape. *)
        let skeletons =
          List.filter_map
            (fun name ->
              Option.map Template.skeleton (List.assoc_opt name t.deterministic))
            paths_used
        in
        let sk = preamble ^ String.concat " " skeletons in
        (sk, sk)
      end
      else span "instantiation" (fun () -> (render true, render false))
    in
    Ok { fact; proof; mapping; text; deterministic_text; paths_used }

let explain_atom_budgeted ?strategy ?(degrade = fun () -> false) ?obs ?parent t
    (result : Chase.result) atom =
  let matches = Query.ask result.db atom in
  if matches = [] then Error ("no derived fact matches " ^ Atom.to_string atom)
  else begin
    let degraded_any = ref false in
    let explanations =
      List.filter_map
        (fun (f, _) ->
          let degraded = degrade () in
          if degraded then degraded_any := true;
          match explain ?strategy ~degraded ?obs ?parent t result f with
          | Ok e -> Some e
          | Error _ -> None (* extensional matches are skipped *))
        matches
    in
    if explanations = [] then
      Error ("all facts matching " ^ Atom.to_string atom ^ " are extensional")
    else Ok (explanations, !degraded_any)
  end

let explain_atom ?strategy ?obs ?parent t (result : Chase.result) atom =
  Result.map fst (explain_atom_budgeted ?strategy ?obs ?parent t result atom)

let explain_query ?strategy ?obs ?parent t result source =
  match Parser.parse_atom source with
  | Error e -> Error e
  | Ok atom -> explain_atom ?strategy ?obs ?parent t result atom

let identity t =
  (* stable across processes: the program's canonical rendering plus
     the glossary spec are everything that shapes a materialization and
     its explanations; compilation artifacts (analysis, templates) are
     derived from these deterministically *)
  Digest.to_hex
    (Digest.string (Program.to_string t.program ^ "\x00" ^ Glossary.to_string t.glossary))
