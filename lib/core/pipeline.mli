(** The automated pipeline (§4.4): structural analysis, template
    generation and enhancement run once per deployed KG application;
    explanation queries are then answered by mapping the queried fact's
    proof onto the pre-computed templates — no instance data ever
    leaves the system. *)

open Ekg_datalog
open Ekg_engine

type t = {
  program : Program.t;
  glossary : Glossary.t;
  analysis : Reasoning_path.analysis;
  deterministic : (string * Template.t) list;  (** per path name *)
  enhanced : (string * Template.t) list;       (** per path name *)
}

val build :
  ?style:int ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  Program.t ->
  Glossary.t ->
  t
(** Pre-compute the reasoning paths and both template families.  The
    enhancement guard guarantees enhanced templates are token-complete;
    paths whose enhancement fails keep their deterministic template.

    With [obs], the work is recorded as a ["pipeline-build"] span with
    ["structural-analysis"] (itself split into ["depgraph"],
    ["critical-nodes"], ["path-extraction"]), ["verbalization"] and
    ["enhancement"] children — the stage map of §4.2–§4.3. *)

val template_for : t -> enhanced:bool -> Reasoning_path.t -> Template.t
(** Lookup with on-the-fly fallback for ad-hoc (mapper-synthesized)
    paths. *)

type explanation = {
  fact : Fact.t;
  proof : Proof.t;
  mapping : Proof_mapper.mapping;
  text : string;                (** enhanced-template explanation *)
  deterministic_text : string;  (** deterministic-template explanation *)
  paths_used : string list;
}

val reason :
  ?stats:Ekg_obs.Metrics.t ->
  ?domains:int ->
  ?budget:Chase.budget ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  Atom.t list ->
  (Chase.result, string) result
(** Run the reasoning task over extensional facts; [stats], [domains]
    (match-phase parallelism), [budget] (deadline / cancellation) and
    the tracing arguments are passed through to {!Chase.run}. *)

val incrementable : t -> bool
(** Whether {!add_facts} / {!retract_facts} can maintain a
    materialization of this pipeline's program in place rather than
    re-chasing from scratch ({!Chase.incrementable}). *)

val add_facts :
  ?domains:int ->
  ?budget:Chase.budget ->
  t ->
  Chase.result ->
  Atom.t list ->
  (Chase.result * Chase.update, Chase.error) result
(** Live maintenance of a completed reasoning run: assert new
    extensional facts and warm-start the semi-naive chase from them
    ({!Chase.add_facts}).  The returned {!Chase.update} reports what
    moved — the service layer uses [upd_changed_preds] to invalidate
    only the cached explanations the update could have touched. *)

val retract_facts :
  ?domains:int ->
  ?budget:Chase.budget ->
  t ->
  Chase.result ->
  Atom.t list ->
  (Chase.result * Chase.update, Chase.error) result
(** Withdraw extensional facts with DRed-style over-deletion and
    re-derivation over the provenance DAG ({!Chase.retract_facts}). *)

val explain :
  ?strategy:[ `Primary | `Shortest ] ->
  ?horizon:int ->
  ?degraded:bool ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  Chase.result ->
  Fact.t ->
  (explanation, string) result
(** Answer the explanation query Q_e = \{fact\}.  [`Primary] (default)
    explains the proof the chase found first; [`Shortest] picks, for
    every sub-fact, the most compact recorded derivation.  [horizon]
    truncates very long cascades to the last n derivation hops; the
    facts whose derivations fell outside open the report as
    assumptions ("Taking as already established that …").

    [degraded] (default [false]) skips template instantiation entirely:
    both text fields carry the pre-computed template {e skeletons} of
    the proof's reasoning paths instead of fully verbalized prose — the
    cheap fallback a service uses when the request's verbalization
    budget is exhausted but proof extraction already succeeded.

    With [obs], the query is recorded as an ["explain"] span with
    ["proof-extraction"], ["proof-mapping"] and ["instantiation"]
    children (nested under [parent] when given). *)

val explain_atom_budgeted :
  ?strategy:[ `Primary | `Shortest ] ->
  ?degrade:(unit -> bool) ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  Chase.result ->
  Atom.t ->
  (explanation list * bool, string) result
(** Like {!explain_atom}, but polls [degrade] before verbalizing each
    match; once it answers [true] (e.g. the request deadline passed),
    remaining explanations are rendered in degraded (skeleton) form.
    The returned flag is [true] iff any explanation was degraded. *)

val explain_atom :
  ?strategy:[ `Primary | `Shortest ] ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  Chase.result ->
  Atom.t ->
  (explanation list, string) result
(** Explain every derived fact the (possibly non-ground) atom matches. *)

val explain_query :
  ?strategy:[ `Primary | `Shortest ] ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  Chase.result ->
  string ->
  (explanation list, string) result
(** Parse an atom (e.g. ["control(\"B\", \"D\")"]) and explain it. *)

(** {1 The goal-directed query lane}

    Point queries are answered without the session's full
    materialization: the program is magic-sets-specialized for the
    query's bound/free pattern ({!Magic.specialize}), the scoped chase
    runs over the extensional facts plus the demand seeds, and answers
    plus proofs are projected back onto the source vocabulary. *)

type specialization =
  | Sp_magic of Magic.specialized
      (** goal-directed rewrite applies — the common case *)
  | Sp_full of string
      (** the program shape escapes the magic fragment (reason given):
          the query is answered from a private full chase *)
  | Sp_edb  (** extensional predicate: a simple scan over the EDB *)

val specialize : t -> pred:string -> mask:string -> (specialization, string) result
(** Plan how queries of the given shape will be answered.  Depends only
    on the (immutable) program and the pattern, so serving layers cache
    the result per session.  [Error] means the predicate does not exist
    in the program at all. *)

type query_answer = {
  qa_fact : Fact.t;      (** the answer, in the program's vocabulary *)
  qa_internal : Fact.t;  (** the same fact as stored in the scoped instance *)
  qa_binding : Subst.t;  (** the query variables' binding *)
}

type query_result = {
  q_answers : query_answer list;  (** sorted by rendered fact — stable paging *)
  q_mode : [ `Magic | `Full | `Edb ];
  q_fallback : string option;     (** why goal-direction was unavailable *)
  q_scoped : Chase.result option; (** the instance answers were read from *)
  q_sp : Magic.specialized option;
  q_rounds : int;
  q_derived : int;
}

val query :
  ?stats:Ekg_obs.Metrics.t ->
  ?domains:int ->
  ?budget:Chase.budget ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  specialization ->
  Atom.t list ->
  Atom.t ->
  (query_result, Chase.error) result
(** Answer one concrete query atom over the given extensional facts,
    per the pre-computed [specialization].  Never touches a served
    materialization: the magic and full modes each run a private chase
    (budget/deadline and parallelism arguments pass straight through),
    and the EDB mode only scans.  A rewritten program that fails to
    stratify falls back to the full mode transparently, recorded in
    [q_fallback]. *)

val explain_answer :
  ?strategy:[ `Primary | `Shortest ] ->
  ?degraded:bool ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  query_result ->
  query_answer ->
  (explanation, string) result
(** Template-backed explanation of one query answer, extracted from the
    scoped instance's provenance and — for magic-mode results —
    projected back onto the source program ({!Magic.unadorn_proof})
    before the proof mapper runs, so the explanation reads exactly as
    it would against the full materialization.  [degraded] renders
    skeletons, as in {!explain}. *)

val identity : t -> string
(** Stable hex digest of the pipeline's {e semantic} inputs — the
    program's canonical rendering and the glossary spec.  Two pipelines
    with equal identity materialize identical instances and verbalize
    identical explanations, so the persistent session store stamps
    every snapshot with this digest and refuses to warm-restore a
    materialization under a program that no longer matches
    (falling back to a cold re-chase instead). *)
