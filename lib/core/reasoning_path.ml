open Ekg_datalog

type kind =
  | Simple
  | Cycle

type t = {
  name : string;
  kind : kind;
  rules : Rule.t list;
  multi_flags : (string * bool) list;
  terminals : string list;
}

type analysis = {
  program : Program.t;
  leaf : string;
  criticals : string list;
  simple_paths : t list;
  cycles : t list;
}

module SSet = Set.Make (String)

let rule_ids t = List.map (fun (r : Rule.t) -> r.id) t.rules
let is_base t = List.for_all (fun (_, m) -> not m) t.multi_flags
let is_multi t id = match List.assoc_opt id t.multi_flags with Some m -> m | None -> false

(* ---- rule-set enumeration --------------------------------------------- *)

(* Non-empty subsets of [xs], singletons first, in input order. *)
let nonempty_subsets xs =
  let rec all = function
    | [] -> [ [] ]
    | x :: rest ->
      let sub = all rest in
      List.map (fun s -> x :: s) sub @ sub
  in
  let subs = List.filter (fun s -> s <> []) (all xs) in
  List.stable_sort (fun a b -> Int.compare (List.length a) (List.length b)) subs

(* Saturate a rule set so that every non-terminal intensional body
   predicate of its members is derived within the set.  [queue] holds
   (consumer, predicate) obligations.  Each rule is used at most once
   per set — Definition 4.2's "one visit per edge". *)
let rec saturate (p : Program.t) ~terminal (set : Rule.t list) queue =
  match queue with
  | [] -> [ set ]
  | (consumer, pred) :: rest ->
    if terminal pred then saturate p ~terminal set rest
    else begin
      let deriving = Program.rules_deriving p pred in
      if deriving = [] then [] (* intensional predicate no rule derives *)
      else begin
        let consumer_rule = List.find_opt (fun (r : Rule.t) -> r.id = consumer) set in
        let multi_ok =
          match consumer_rule with
          | Some r -> Rule.has_agg r
          | None -> false
        in
        (* A choice may pick rules already in the set (sharing a
           sub-derivation, visiting no new edge) or fresh ones; only
           fresh rules contribute new obligations. *)
        let choices =
          if multi_ok then nonempty_subsets deriving
          else List.map (fun r -> [ r ]) deriving
        in
        List.concat_map
          (fun chosen ->
            let in_set (r : Rule.t) = List.exists (fun (r' : Rule.t) -> r'.id = r.id) set in
            let fresh = List.filter (fun r -> not (in_set r)) chosen in
            let set' = set @ fresh in
            let new_obligations =
              List.concat_map
                (fun (r : Rule.t) ->
                  List.filter_map
                    (fun q ->
                      if Program.is_intensional p q then Some (r.id, q) else None)
                    (Rule.positive_body_preds r))
                fresh
            in
            saturate p ~terminal set' (rest @ new_obligations))
          choices
      end
    end

(* Well-foundedness: every rule must be derivable bottom-up from
   extensional predicates and terminals; rejects circular mutual
   satisfaction.  Returns the grounding order on success. *)
let grounding_order (p : Program.t) ~terminal (set : Rule.t list) =
  let grounded = ref [] in
  let remaining = ref set in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    let ready, blocked =
      List.partition
        (fun (r : Rule.t) ->
          List.for_all
            (fun q ->
              (not (Program.is_intensional p q))
              || terminal q
              || List.exists (fun (g : Rule.t) -> Rule.head_pred g = q) !grounded)
            (Rule.positive_body_preds r))
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      (* within a round, producers precede consumers (ignoring cycles):
         repeatedly pick a rule no other pending rule feeds into *)
      let rec order pending acc =
        match pending with
        | [] -> List.rev acc
        | _ ->
          let feeds (r' : Rule.t) (r : Rule.t) =
            r'.id <> r.id && List.mem (Rule.head_pred r') (Rule.positive_body_preds r)
          in
          let pick =
            match
              List.find_opt
                (fun r -> not (List.exists (fun r' -> feeds r' r) pending))
                pending
            with
            | Some r -> r
            | None -> List.hd pending (* cyclic tie: keep set order *)
          in
          order (List.filter (fun (r : Rule.t) -> r.id <> pick.id) pending) (pick :: acc)
      in
      grounded := !grounded @ order ready [];
      remaining := blocked
    end
  done;
  if !remaining = [] then Some !grounded else None

let dedup_sets sets =
  let key set = String.concat "," (List.sort String.compare (List.map (fun (r : Rule.t) -> r.id) set)) in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun set ->
      let k = key set in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    sets

(* Boolean assignments over the aggregating rules of a set; the
   all-[false] base first, then by number of raised flags. *)
let flag_variants (set : Rule.t list) =
  let agg_ids = List.filter_map (fun (r : Rule.t) -> if Rule.has_agg r then Some r.id else None) set in
  let rec assignments = function
    | [] -> [ [] ]
    | id :: rest ->
      let sub = assignments rest in
      List.map (fun a -> (id, false) :: a) sub @ List.map (fun a -> (id, true) :: a) sub
  in
  assignments agg_ids
  |> List.stable_sort
       (fun a b ->
         let count l = List.length (List.filter snd l) in
         Int.compare (count a) (count b))

let star_suffix flags =
  match List.filter snd flags with
  | [] -> ""
  | [ _ ] when List.length flags = 1 -> "*"
  | raised -> "*{" ^ String.concat "," (List.map fst raised) ^ "}"

let analyze ?obs ?parent (p : Program.t) =
  Ekg_obs.Trace.with_span_opt obs ?parent "structural-analysis" @@ fun parent ->
  let span name f = Ekg_obs.Trace.with_span_opt obs ?parent name (fun _ -> f ()) in
  let leaf = span "depgraph" (fun () -> Depgraph.leaf p) in
  let criticals = span "critical-nodes" (fun () -> Critical.critical_nodes p) in
  span "path-extraction" @@ fun () ->
  let is_critical q = List.mem q criticals in
  let not_terminal _ = false in
  (* simple reasoning paths: expand every intensional predicate down to
     the roots *)
  let simple_sets =
    Program.rules_deriving p leaf
    |> List.concat_map (fun (r : Rule.t) ->
           let obligations =
             List.filter_map
               (fun q -> if Program.is_intensional p q then Some (r.id, q) else None)
               (Rule.positive_body_preds r)
           in
           saturate p ~terminal:not_terminal [ r ] obligations)
    |> dedup_sets
    |> List.filter_map (fun set -> grounding_order p ~terminal:not_terminal set)
  in
  (* reasoning cycles: critical predicates are terminals; a valid cycle
     ends at a critical head and hangs from at least one critical
     terminal in a body *)
  let cycle_sets =
    p.rules
    |> List.filter (fun (r : Rule.t) -> is_critical (Rule.head_pred r))
    |> List.concat_map (fun (r : Rule.t) ->
           let obligations =
             List.filter_map
               (fun q -> if Program.is_intensional p q then Some (r.id, q) else None)
               (Rule.positive_body_preds r)
           in
           saturate p ~terminal:is_critical [ r ] obligations)
    |> dedup_sets
    |> List.filter (fun set ->
           List.exists
             (fun (r : Rule.t) -> List.exists is_critical (Rule.positive_body_preds r))
             set)
    |> List.filter_map (fun set -> grounding_order p ~terminal:is_critical set)
  in
  let terminals_of set =
    List.concat_map
      (fun (r : Rule.t) -> List.filter is_critical (Rule.positive_body_preds r))
      set
    |> List.sort_uniq String.compare
  in
  let build kind prefix sets =
    List.concat
      (List.mapi
         (fun i set ->
           let base_name = Printf.sprintf "%s%d" prefix (i + 1) in
           List.map
             (fun flags ->
               {
                 name = base_name ^ star_suffix flags;
                 kind;
                 rules = set;
                 multi_flags = flags;
                 terminals = (match kind with Cycle -> terminals_of set | Simple -> []);
               })
             (flag_variants set))
         sets)
  in
  {
    program = p;
    leaf;
    criticals;
    simple_paths = build Simple "Π" simple_sets;
    cycles = build Cycle "Γ" cycle_sets;
  }

let variants_of analysis t =
  let same_set t' =
    List.sort String.compare (rule_ids t') = List.sort String.compare (rule_ids t)
    && t'.kind = t.kind
  in
  List.filter same_set (analysis.simple_paths @ analysis.cycles)

let to_string t =
  let rule_str (r : Rule.t) = if is_multi t r.id then r.id ^ "*" else r.id in
  Printf.sprintf "%s = {%s}" t.name (String.concat ", " (List.map rule_str t.rules))

let analysis_to_string a =
  let section title paths =
    title ^ ":\n" ^ String.concat "\n" (List.map (fun t -> "  " ^ to_string t) paths)
  in
  Printf.sprintf "leaf: %s\ncritical nodes: %s\n%s\n%s" a.leaf
    (String.concat ", " a.criticals)
    (section "simple reasoning paths" a.simple_paths)
    (section "reasoning cycles" a.cycles)
