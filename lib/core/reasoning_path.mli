(** Reasoning paths (Definition 4.2) and their aggregation variants
    (§4.1): the database-independent "reasoning stories" distilled from
    the dependency graph, from which explanation templates are built.

    A {e simple reasoning path} conducts from root (extensional)
    predicates to the leaf; a {e reasoning cycle} connects a critical
    node with itself or another critical node.  Both are represented
    compactly as sets of rules (the labels of the traversed edges),
    ordered so that premises precede consumers.  Every path carries a
    {e multi flag} per aggregating rule: the [false] (solid) variant
    captures single-contributor aggregations, the [true] (dashed)
    variant captures genuine multi-contributor aggregations, mirroring
    the paper's Figure 5. *)

open Ekg_datalog

type kind =
  | Simple
  | Cycle

type t = {
  name : string;                        (** e.g. ["Π1"], ["Γ2*"] *)
  kind : kind;
  rules : Rule.t list;                  (** grounded (topological) order *)
  multi_flags : (string * bool) list;   (** per aggregating rule id *)
  terminals : string list;              (** critical predicates a cycle hangs from; [] for simple paths *)
}

type analysis = {
  program : Program.t;
  leaf : string;
  criticals : string list;
  simple_paths : t list;                (** base variants first, then dashed *)
  cycles : t list;
}

val analyze :
  ?obs:Ekg_obs.Trace.t -> ?parent:Ekg_obs.Trace.span -> Program.t -> analysis
(** Full structural analysis.  Finite by construction: each rule is
    traversed at most once per path (one visit per edge).  With [obs],
    the work is recorded as a ["structural-analysis"] span with
    ["depgraph"], ["critical-nodes"] and ["path-extraction"]
    children. *)

val rule_ids : t -> string list
val is_base : t -> bool
(** True when every multi flag is [false]. *)

val is_multi : t -> string -> bool
(** Multi flag of the given rule id ([false] when absent). *)

val variants_of : analysis -> t -> t list
(** All flag-variants sharing this path's rule set, itself included. *)

val to_string : t -> string
(** E.g. ["Π2 = {alpha, beta, gamma}"] with ["*"]-marked multi rules. *)

val analysis_to_string : analysis -> string
(** Table of all simple reasoning paths and reasoning cycles — the
    shape of Figure 10. *)
