open Ekg_kernel
open Ekg_datalog

type batch = { seq : int; adds : Atom.t list; retracts : Atom.t list }
type log = batch list

type config = {
  batches : int;
  batch_size : int;
  retract_fraction : float;
  new_entity_fraction : float;
}

let default_config =
  {
    batches = 50;
    batch_size = 200;
    retract_fraction = 0.3;
    new_entity_fraction = 0.05;
  }

let validate_config cfg =
  if cfg.batches < 0 then invalid_arg "Cdc.generate: batches must be >= 0";
  if cfg.batch_size < 1 then invalid_arg "Cdc.generate: batch_size must be >= 1";
  if cfg.retract_fraction < 0.0 || cfg.retract_fraction > 1.0 then
    invalid_arg "Cdc.generate: retract_fraction must be in [0, 1]";
  if cfg.new_entity_fraction < 0.0 || cfg.new_entity_fraction > 1.0 then
    invalid_arg "Cdc.generate: new_entity_fraction must be in [0, 1]"

let name i = "c" ^ string_of_int i

(* Stream shares: m/10⁵ with the 5th decimal pinned to 3, so they are
   disjoint from Kg's 4-decimal base grid — see the .mli. *)
let stream_share rng = float_of_int ((10 * (100 + Prng.int rng 4_890)) + 3) /. 100_000.0

(* A growable pool of still-live streamed facts, sampled and
   swap-removed in O(1); [seen] guards global add uniqueness. *)
type pool = { mutable items : Atom.t array; mutable len : int }

let pool_add p atom =
  if p.len = Array.length p.items then begin
    let bigger = Array.make (max 16 (2 * p.len)) atom in
    Array.blit p.items 0 bigger 0 p.len;
    p.items <- bigger
  end;
  p.items.(p.len) <- atom;
  p.len <- p.len + 1

let pool_take p rng =
  let i = Prng.int rng p.len in
  let atom = p.items.(i) in
  p.items.(i) <- p.items.(p.len - 1);
  p.len <- p.len - 1;
  atom

let generate rng ~(kg : Kg.t) cfg =
  validate_config cfg;
  let seen = Hashtbl.create 1024 in
  let pool = { items = [||]; len = 0 } in
  let next_entity = ref kg.Kg.total_entities in
  let entity rng =
    (* existing = base population plus shells already incorporated *)
    name (Prng.int rng !next_entity)
  in
  let fresh_stake rng =
    let rec go attempts =
      if attempts = 0 then None
      else
        let x = entity rng in
        let y = entity rng in
        if x = y then go (attempts - 1)
        else
          let atom = Ekg_apps.Company_control.own x y (stream_share rng) in
          if Hashtbl.mem seen (Atom.to_string atom) then go (attempts - 1)
          else Some atom
    in
    go 8
  in
  let make_batch seq =
    (* batch 0 has nothing to retract; later batches draw from the pool *)
    let want_retracts =
      if seq = 0 then 0
      else
        min pool.len
          (int_of_float
             (Float.round (cfg.retract_fraction *. float_of_int cfg.batch_size)))
    in
    let retracts = List.init want_retracts (fun _ -> pool_take pool rng) in
    let n_adds = cfg.batch_size - want_retracts in
    let adds = ref [] in
    for _ = 1 to n_adds do
      let batch_atoms =
        if Prng.bernoulli rng cfg.new_entity_fraction then begin
          (* incorporate a shell: a company fact plus a stake held by an
             existing entity *)
          let shell = name !next_entity in
          let holder = entity rng in
          incr next_entity;
          [
            Ekg_apps.Company_control.company shell;
            Ekg_apps.Company_control.own holder shell (stream_share rng);
          ]
        end
        else match fresh_stake rng with Some a -> [ a ] | None -> []
      in
      List.iter
        (fun atom ->
          Hashtbl.replace seen (Atom.to_string atom) ();
          pool_add pool atom;
          adds := atom :: !adds)
        batch_atoms
    done;
    { seq; adds = List.rev !adds; retracts }
  in
  List.init cfg.batches make_batch

let validate log =
  let seen_adds = Hashtbl.create 1024 in
  let live = Hashtbl.create 1024 in
  let check_batch batch =
    let add_ok atom =
      let key = Atom.to_string atom in
      if Hashtbl.mem seen_adds key then
        Error
          (Printf.sprintf "batch %d re-adds %s" batch.seq key)
      else begin
        Hashtbl.replace seen_adds key ();
        Hashtbl.replace live key ();
        Ok ()
      end
    in
    let retract_ok atom =
      let key = Atom.to_string atom in
      if not (Hashtbl.mem live key) then
        Error
          (Printf.sprintf
             "batch %d retracts %s, which no earlier batch added (or it was \
              already retracted)"
             batch.seq key)
      else begin
        Hashtbl.remove live key;
        Ok ()
      end
    in
    (* retracts are checked against the pre-batch state, then adds land *)
    let rec all f = function
      | [] -> Ok ()
      | x :: rest -> ( match f x with Ok () -> all f rest | Error _ as e -> e)
    in
    match all retract_ok batch.retracts with
    | Error _ as e -> e
    | Ok () -> all add_ok batch.adds
  in
  let rec go = function
    | [] -> Ok ()
    | b :: rest -> ( match check_batch b with Ok () -> go rest | Error _ as e -> e)
  in
  go log

let stats log =
  List.fold_left
    (fun (a, r) b -> a + List.length b.adds, r + List.length b.retracts)
    (0, 0) log

let final_edb ~base log =
  let table = Hashtbl.create (4096 + List.length base) in
  let added = Hashtbl.create 1024 in
  List.iter (fun atom -> Hashtbl.replace table (Atom.to_string atom) atom) base;
  List.iter
    (fun batch ->
      List.iter
        (fun atom ->
          let key = Atom.to_string atom in
          if not (Hashtbl.mem added key) then
            invalid_arg ("Cdc.final_edb: retract of a never-added fact: " ^ key);
          Hashtbl.remove table key)
        batch.retracts;
      List.iter
        (fun atom ->
          let key = Atom.to_string atom in
          Hashtbl.replace added key ();
          Hashtbl.replace table key atom)
        batch.adds)
    log;
  Hashtbl.fold (fun _ atom acc -> atom :: acc) table []
  |> List.sort Atom.compare

let to_string log =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# ekg cdc log v1\n";
  List.iter
    (fun batch ->
      Buffer.add_string buf (Printf.sprintf "batch %d\n" batch.seq);
      List.iter
        (fun a -> Buffer.add_string buf ("+ " ^ Atom.to_string a ^ "\n"))
        batch.adds;
      List.iter
        (fun a -> Buffer.add_string buf ("- " ^ Atom.to_string a ^ "\n"))
        batch.retracts)
    log;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse_atom lineno text k =
    match Parser.parse_atom text with
    | Ok atom -> k atom
    | Error e -> Error (Printf.sprintf "line %d: %s: %s" lineno text e)
  in
  let flush current acc =
    match current with
    | None -> acc
    | Some (seq, adds, retracts) ->
      { seq; adds = List.rev adds; retracts = List.rev retracts } :: acc
  in
  let rec go lineno current acc = function
    | [] -> Ok (List.rev (flush current acc))
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) current acc rest
      else if String.length line > 6 && String.sub line 0 6 = "batch " then
        match int_of_string_opt (String.sub line 6 (String.length line - 6)) with
        | Some seq -> go (lineno + 1) (Some (seq, [], [])) (flush current acc) rest
        | None -> Error (Printf.sprintf "line %d: bad batch header: %s" lineno line)
      else
        match current, line.[0] with
        | None, _ ->
          Error (Printf.sprintf "line %d: operation before any batch header" lineno)
        | Some (seq, adds, retracts), '+' ->
          parse_atom lineno (String.trim (String.sub line 1 (String.length line - 1)))
            (fun atom -> go (lineno + 1) (Some (seq, atom :: adds, retracts)) acc rest)
        | Some (seq, adds, retracts), '-' ->
          parse_atom lineno (String.trim (String.sub line 1 (String.length line - 1)))
            (fun atom -> go (lineno + 1) (Some (seq, adds, atom :: retracts)) acc rest)
        | Some _, _ ->
          Error (Printf.sprintf "line %d: expected '+ atom' or '- atom': %s" lineno line))
  in
  go 1 None [] lines
