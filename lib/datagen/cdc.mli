(** Ordered change-data-capture streams over a generated {!Kg} graph.

    A CDC log is the temporal half of the million-entity scenario: a
    sequence of batches, each a block of fact additions (new ownership
    stakes, freshly incorporated shells) and retractions (divestments),
    replayed against a live server through
    [POST|DELETE /v1/sessions/:id/facts] by [bin/loadgen.ml].

    Two invariants make a log replayable and checkable:

    - {b retract validity} — every retraction targets a fact added by
      an {e earlier} batch of the same log (never a base-EDB fact, never
      one from the same batch), and no fact is added twice or re-added
      after retraction; the server therefore never sees an unknown
      retraction and {!final_edb} is order-insensitive within a batch.
    - {b share disjointness} — stream shares live on the 5-decimal grid
      with a non-zero 5th digit, while {!Kg} base shares use the
      4-decimal grid, so a streamed [own/3] atom can never collide with
      a base fact.

    Generation is deterministic in the supplied {!Ekg_kernel.Prng}
    state, and {!to_string}/{!of_string} round-trip the log through the
    fact-atom grammar — the same grammar the server's /facts endpoints
    parse. *)

open Ekg_kernel
open Ekg_datalog

type batch = {
  seq : int;  (** position in the log, starting at 0 *)
  adds : Atom.t list;
  retracts : Atom.t list;
}

type log = batch list

type config = {
  batches : int;
  batch_size : int;  (** operations (adds + retracts) per batch *)
  retract_fraction : float;
      (** target share of operations that are retractions, capped by
          the pool of still-live previously-added facts *)
  new_entity_fraction : float;
      (** chance an addition incorporates a fresh shell company —
          a [company/1] fact plus an ownership stake from an existing
          entity — instead of a stake between existing entities *)
}

val default_config : config
(** 50 batches × 200 ops, 30% retractions, 5% fresh entities. *)

val generate : Prng.t -> kg:Kg.t -> config -> log
(** A log over the entity population of [kg] (stakes reference entities
    [c0 .. c(total_entities-1)] plus any shells the stream itself
    incorporates).  Batch 0 carries no retractions — nothing has been
    added yet. *)

val validate : log -> (unit, string) result
(** Check both log invariants (retract validity, no duplicate adds);
    [Error] pinpoints the first offending batch and atom. *)

val final_edb : base:Atom.t list -> log -> Atom.t list
(** The EDB after applying every batch in order to [base] — the input
    to the replay identity gate's cold chase.  Retractions of facts the
    log never added raise [Invalid_argument] (they would mask a
    generator bug). *)

val stats : log -> int * int
(** [(adds, retracts)] totals across the log. *)

val to_string : log -> string
(** Serialize as a line-oriented text format: [batch N] headers, then
    one [+ atom] / [- atom] line per operation in program syntax. *)

val of_string : string -> (log, string) result
(** Parse {!to_string} output; [Error] carries the offending line. *)
