open Ekg_kernel
open Ekg_datalog

type config = {
  seed : int;
  entities : int;
  avg_out_degree : float;
  exponent : float;
  max_out_degree : int;
  chains : int;
  chain_hops : int;
  cycles : int;
  cycle_len : int;
  diamonds : int;
  diamond_fanout : int;
  close_links : int;
  close_link_size : int;
}

let default ~entities =
  let per_motif = max 1 (entities / 100) in
  {
    seed = 1;
    entities;
    avg_out_degree = 2.5;
    exponent = 2.2;
    max_out_degree = 500;
    chains = per_motif;
    chain_hops = 6;
    cycles = per_motif;
    cycle_len = 4;
    diamonds = per_motif;
    diamond_fanout = 4;
    close_links = per_motif;
    close_link_size = 5;
  }

type t = {
  config : config;
  total_entities : int;
  companies : int;
  own_edges : int;
  core_out_degree : int array;
  probe_query : string;
  probe_goal : string;
}

let program_source =
  "% Company control (EDBT 2025, Section 5): who controls whom under the\n\
   % one-share one-vote assumption.\n\
   sigma1: own(X, Y, S), S > 0.5 -> control(X, Y).\n\
   sigma2: company(X) -> control(X, X).\n\
   sigma3: control(X, Z), own(Z, Y, S), TS = sum(S), TS > 0.5 -> control(X, \
   Y).\n\
   @goal(control).\n"

let validate cfg =
  if cfg.entities < 2 then invalid_arg "Kg.generate: entities must be >= 2";
  if cfg.exponent <= 1.0 then invalid_arg "Kg.generate: exponent must be > 1";
  if cfg.avg_out_degree < 0.0 then
    invalid_arg "Kg.generate: avg_out_degree must be >= 0";
  if cfg.max_out_degree < 1 then
    invalid_arg "Kg.generate: max_out_degree must be >= 1";
  if cfg.chains > 0 && cfg.chain_hops < 1 then
    invalid_arg "Kg.generate: chain_hops must be >= 1";
  if cfg.cycles > 0 && cfg.cycle_len < 2 then
    invalid_arg "Kg.generate: cycle_len must be >= 2";
  if cfg.diamonds > 0 && cfg.diamond_fanout < 2 then
    invalid_arg "Kg.generate: diamond_fanout must be >= 2";
  if cfg.close_links > 0 && cfg.close_link_size < 2 then
    invalid_arg "Kg.generate: close_link_size must be >= 2";
  List.iter
    (fun (what, n) ->
      if n < 0 then invalid_arg ("Kg.generate: " ^ what ^ " must be >= 0"))
    [
      "chains", cfg.chains;
      "cycles", cfg.cycles;
      "diamonds", cfg.diamonds;
      "close_links", cfg.close_links;
    ]

(* Shares live on the 4-decimal grid k/10⁴ so [Value.to_string] renders
   them exactly ("0.1234") and the CSV loader / atom parser return the
   identical double — see the round-trip note in the .mli.  Cdc uses the
   5th decimal, so the two populations can never collide. *)
let grid k = float_of_int k /. 10_000.0
let minority_share rng = grid (100 + Prng.int rng 4_850) (* 0.0100 .. 0.4949 *)
let majority_share rng = grid (5_100 + Prng.int rng 4_400) (* 0.51 .. 0.95 *)
let close_link_share rng = grid (1_500 + Prng.int rng 901) (* 0.15 .. 0.24 *)

(* E[min(D, cap)] for the discrete Pareto tail P(D ≥ d) = d^(1-α),
   via E[min(D, c)] = Σ_{d=1..c} P(D ≥ d). *)
let expected_capped_degree alpha cap =
  let acc = ref 0.0 in
  for d = 1 to cap do
    acc := !acc +. (float_of_int d ** (1.0 -. alpha))
  done;
  !acc

let pareto_degree rng ~alpha ~cap =
  (* u ∈ (0, 1]; floor(u^(-1/(α-1))) has the d^(1-α) survival tail *)
  let u = 1.0 -. Prng.float rng 1.0 in
  min cap (max 1 (int_of_float (u ** (-1.0 /. (alpha -. 1.0)))))

let name i = "c" ^ string_of_int i

let motif_entity_count cfg =
  (cfg.chains * (cfg.chain_hops + 1))
  + (cfg.cycles * cfg.cycle_len)
  + (cfg.diamonds * (cfg.diamond_fanout + 2))
  + (cfg.close_links * cfg.close_link_size)

let generate cfg ~emit =
  validate cfg;
  let total = cfg.entities + motif_entity_count cfg in
  let companies = ref 0 and edges = ref 0 in
  let emit_company i =
    incr companies;
    emit (Ekg_apps.Company_control.company (name i))
  in
  let emit_own x y s =
    incr edges;
    emit (Ekg_apps.Company_control.own (name x) (name y) s)
  in
  for i = 0 to total - 1 do
    emit_company i
  done;
  (* independent streams per layer: adding motifs must not reshuffle
     the random layer of an otherwise-identical config *)
  let master = Prng.create cfg.seed in
  let rng_degree = Prng.split master in
  let rng_edge = Prng.split master in
  let rng_motif = Prng.split master in
  (* random ownership layer: power-law out-degrees, minority shares *)
  let expected = expected_capped_degree cfg.exponent cfg.max_out_degree in
  let p_active = Float.min 1.0 (cfg.avg_out_degree /. expected) in
  let degrees = Array.make cfg.entities 0 in
  for i = 0 to cfg.entities - 1 do
    if Prng.bernoulli rng_degree p_active then
      degrees.(i) <-
        pareto_degree rng_degree ~alpha:cfg.exponent ~cap:cfg.max_out_degree
  done;
  Array.iteri
    (fun i d ->
      for _ = 1 to d do
        let j = Prng.int rng_edge cfg.entities in
        let j = if j = i then (j + 1) mod cfg.entities else j in
        emit_own i j (minority_share rng_edge)
      done)
    degrees;
  (* planted motifs on fresh entities, each attached to the core by one
     sub-threshold edge so the graph stays connected-ish *)
  let next = ref cfg.entities in
  let fresh k =
    let base = !next in
    next := base + k;
    base
  in
  let attach head =
    emit_own (Prng.int rng_motif cfg.entities) head (minority_share rng_motif)
  in
  let first_chain_head = ref None in
  for _ = 1 to cfg.chains do
    let base = fresh (cfg.chain_hops + 1) in
    if !first_chain_head = None then first_chain_head := Some base;
    attach base;
    for h = 0 to cfg.chain_hops - 1 do
      emit_own (base + h) (base + h + 1) (majority_share rng_motif)
    done
  done;
  for _ = 1 to cfg.cycles do
    let base = fresh cfg.cycle_len in
    attach base;
    for k = 0 to cfg.cycle_len - 1 do
      emit_own (base + k)
        (base + ((k + 1) mod cfg.cycle_len))
        (majority_share rng_motif)
    done
  done;
  for _ = 1 to cfg.diamonds do
    let base = fresh (cfg.diamond_fanout + 2) in
    let head = base and target = base + 1 in
    attach head;
    (* each stake is minority, their sum clears 0.51: control(head,
       target) exists only through σ3's sum over the intermediaries *)
    let stake = grid (((5_100 + cfg.diamond_fanout - 1) / cfg.diamond_fanout) + 1) in
    for k = 0 to cfg.diamond_fanout - 1 do
      let mid = base + 2 + k in
      emit_own head mid (majority_share rng_motif);
      emit_own mid target stake
    done
  done;
  for _ = 1 to cfg.close_links do
    let base = fresh cfg.close_link_size in
    attach base;
    for p = 0 to cfg.close_link_size - 1 do
      for q = 0 to cfg.close_link_size - 1 do
        if p <> q && Prng.bernoulli rng_motif 0.8 then
          emit_own (base + p) (base + q) (close_link_share rng_motif)
      done
    done
  done;
  let probe_query, probe_goal =
    match !first_chain_head with
    | Some base ->
      ( Printf.sprintf "control(%S, X)" (name base),
        Printf.sprintf "control(%S, %S)" (name base)
          (name (base + cfg.chain_hops)) )
    | None ->
      (* σ2 guarantees self-control even on a motif-free graph *)
      Printf.sprintf "control(%S, X)" (name 0),
        Printf.sprintf "control(%S, %S)" (name 0) (name 0)
  in
  {
    config = cfg;
    total_entities = total;
    companies = !companies;
    own_edges = !edges;
    core_out_degree = degrees;
    probe_query;
    probe_goal;
  }

let atoms cfg =
  let acc = ref [] in
  let t = generate cfg ~emit:(fun a -> acc := a :: !acc) in
  t, List.rev !acc

let csv_row_of_atom (atom : Atom.t) =
  let field = function
    | Term.Cst (Value.Str s) -> "\"" ^ String.escaped s ^ "\""
    | Term.Cst v -> Value.to_string v
    | Term.Var _ -> invalid_arg "Kg.to_csv_dir: non-ground atom"
  in
  String.concat "," (List.map field atom.Atom.args)

let to_csv_dir cfg ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let company = open_out (Filename.concat dir "company.csv") in
  let own = open_out (Filename.concat dir "own.csv") in
  let finally () =
    close_out_noerr company;
    close_out_noerr own
  in
  Fun.protect ~finally (fun () ->
      let t =
        generate cfg ~emit:(fun atom ->
            let oc =
              match atom.Atom.pred with
              | "company" -> company
              | "own" -> own
              | p -> invalid_arg ("Kg.to_csv_dir: unexpected predicate " ^ p)
            in
            output_string oc (csv_row_of_atom atom);
            output_char oc '\n')
      in
      let oc = open_out (Filename.concat dir "program.vada") in
      output_string oc program_source;
      close_out oc;
      t)
