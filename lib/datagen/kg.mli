(** Seeded synthetic financial knowledge graphs at registry scale.

    Where {!Owners}/{!Debts}/{!Participations} build paper-sized,
    proof-length-targeted instances, this module grows a national-registry
    shaped ownership network to millions of entities: a power-law random
    ownership layer (sub-majority shares, so its control consequences
    stay linear in the edge count) with planted shell-company motifs —
    majority chains, ownership cycles, joint-control diamonds that
    exercise the recursive-sum rule σ3 — plus dense close-link clusters
    feeding multi-contributor aggregation groups.  All randomness flows
    through {!Ekg_kernel.Prng}, so a [(seed, config)] pair names one
    graph forever: generation is bit-for-bit reproducible and the test
    suite pins [Database.fingerprint] equality across runs.

    Shares are quantized to 4 decimal places so every generated float
    round-trips exactly through the CSV loader and the fact-atom
    grammar ([0.1234] renders as ["0.1234"] and parses back to the same
    double) — the property the replay identity gate in
    [bin/loadgen.ml] relies on.  {!Cdc} reserves the 5th decimal place
    for update-stream shares, keeping the two fact populations
    disjoint. *)

open Ekg_datalog

type config = {
  seed : int;  (** master seed; every stream is split from it *)
  entities : int;  (** core entities in the random ownership layer *)
  avg_out_degree : float;
      (** mean ownership edges per core entity (power-law distributed) *)
  exponent : float;
      (** power-law exponent α of the out-degree tail, P(d) ∝ d^-α;
          typical registry graphs sit near 2.0–2.5 *)
  max_out_degree : int;  (** hard cap on a single entity's out-degree *)
  chains : int;  (** majority-ownership chain motifs *)
  chain_hops : int;  (** edges per chain (control closure is O(hops²)) *)
  cycles : int;  (** circular-ownership shell motifs *)
  cycle_len : int;  (** entities per cycle (closure is the full k×k) *)
  diamonds : int;
      (** joint-control diamonds: a head majority-owns [diamond_fanout]
          intermediaries whose minority stakes in one target sum past
          50% — derivable only through σ3's sum aggregation *)
  diamond_fanout : int;
  close_links : int;  (** dense sub-threshold cross-ownership clusters *)
  close_link_size : int;  (** entities per close-link cluster *)
}

val default : entities:int -> config
(** A balanced config at the given core size: α = 2.2, mean out-degree
    ≈ 2.5, motif counts scaled to ~1% of [entities] (at least one of
    each kind), so derived-fact volume stays linear in the EDB. *)

type t = {
  config : config;
  total_entities : int;
      (** core + motif entities; entity [i] is named ["c<i>"] *)
  companies : int;  (** [company/1] atoms emitted *)
  own_edges : int;  (** [own/3] atoms emitted *)
  core_out_degree : int array;
      (** realized random-layer out-degree per core entity, for
          shape assertions on the power-law tail *)
  probe_query : string;
      (** a point query (one free variable) guaranteed non-trivial
          answers — aimed at the first chain motif's head *)
  probe_goal : string;
      (** a ground derived fact for /explain probes — the first chain's
          head-to-tail control consequence *)
}
(** Generation summary: sizes for manifests, degrees for tests, probe
    atoms for replay reader workers. *)

val generate : config -> emit:(Atom.t -> unit) -> t
(** Stream the graph's EDB — [company/1] then [own/3] atoms — through
    [emit] without materializing a list, so multi-million-fact graphs
    generate in O(entities) memory.  Deterministic in [config]. *)

val atoms : config -> t * Atom.t list
(** Convenience wrapper collecting the emitted atoms in order; intended
    for tests and small instances. *)

val to_csv_dir : config -> dir:string -> t
(** Write the EDB under [dir] as the server's [facts_dir] layout —
    [company.csv] and [own.csv] in {!Ekg_engine.Io} CSV syntax — plus
    [program.vada] ({!program_source}), creating [dir] if needed.
    Facts stream straight to disk. *)

val program_source : string
(** The company-control program (σ1–σ3 with the recursive sum), written
    alongside generated data so a data directory is a self-contained
    server root. *)
