open Ekg_kernel
open Ekg_datalog

type rule_stat = {
  rule_id : string;
  stratum : int;
  time_s : float;
  evals : int;
  facts : int;
  build_s : float;
  probe_s : float;
  insert_s : float;
}

type round_stat = {
  stratum : int;
  round : int;
  delta_size : int;
  new_facts : int;
  time_s : float;
}

type stats = {
  per_rule : rule_stat list;
  per_round : round_stat list;
  rounds_per_stratum : int list;
  agg_superseded : int;
  wall_s : float;
  domains : int;
  plan_reorders : int;
  join_strategy : string;
  join_builds : int;
  join_probe_hits : int;
}

type result = {
  db : Database.t;
  prov : Provenance.t;
  rounds : int;
  derived_count : int;
  stats : stats option;
}

let falsum = "false"

type state = {
  db : Database.t;
  prov : Provenance.t;
  (* current materialized aggregate fact per (rule id, group key) *)
  agg_current : (string * Value.t list, int) Hashtbl.t;
  mutable derived : int;
  mutable superseded : int;  (* stale aggregate facts deactivated *)
}

(* [existentials] is [Rule.existential_vars r], hoisted by callers so
   per-match insertion does not recompute it (it walks the whole body). *)
let instantiate_head st ~existentials (r : Rule.t) binding =
  let nulls = if existentials = [] then None else Some (Hashtbl.create 4) in
  let resolve (t : Term.t) =
    match t with
    | Term.Cst c -> Some c
    | Term.Var v -> (
      match Subst.find binding v with
      | Some x -> Some x
      | None -> (
        match nulls with
        | Some nulls when List.mem v existentials -> (
          match Hashtbl.find_opt nulls v with
          | Some n -> Some n
          | None ->
            let n = Database.fresh_null st.db in
            Hashtbl.add nulls v n;
            Some n)
        | _ -> None))
  in
  let args = List.map resolve r.head.Atom.args in
  if List.exists Option.is_none args then None
  else Some (Array.of_list (List.map Option.get args))

(* Restricted-chase preemption (§5: "application of chase steps that
   generate facts isomorphic to facts already in the chase is
   pre-empted"): skip an existential head when the database already
   holds a fact the instantiated non-existential positions map onto
   homomorphically — constants must agree, labelled nulls may map to
   any value (consistently), existential positions are unconstrained.
   Treating nulls as mappable is what terminates recursive existential
   chains such as person → hasParent → person. *)
let isomorphic_exists st ~existentials (r : Rule.t) binding =
  if existentials = [] then false
  else begin
    (* per head position: [`Const c], [`Null n] or [`Free] *)
    let shape =
      List.map
        (fun (t : Term.t) ->
          match t with
          | Term.Cst (Value.Null _ as n) -> `Null n
          | Term.Cst c -> `Const c
          | Term.Var v -> (
            match Subst.find binding v with
            | Some (Value.Null _ as n) -> `Null n
            | Some c -> `Const c
            | None -> `Free))
        r.head.Atom.args
    in
    let homomorphic (f : Fact.t) =
      let mapping = Hashtbl.create 4 in
      let ok = ref true in
      List.iteri
        (fun i s ->
          if !ok then
            match s with
            | `Free -> ()
            | `Const c -> if not (Value.equal c f.args.(i)) then ok := false
            | `Null n -> (
              match Hashtbl.find_opt mapping n with
              | Some v -> if not (Value.equal v f.args.(i)) then ok := false
              | None -> Hashtbl.add mapping n f.args.(i)))
        shape;
      !ok
    in
    List.exists homomorphic (Database.active st.db (Rule.head_pred r))
  end

(* Phase 2 of a round: admit one plain rule's matches, in match order.
   Runs strictly sequentially — this is the only place fact ids,
   labelled nulls and provenance records are allocated, which is why
   the parallel match phase cannot perturb them. *)
(* [used_facts] is usually already strictly ascending (body atoms often
   match facts in insertion order); detect that without allocating
   before falling back to a sort *)
let rec strictly_ascending = function
  | (a : int) :: (b :: _ as tl) -> a < b && strictly_ascending tl
  | _ -> true

let insert_plain_matches st ~round (r : Rule.t) matches =
  let existentials = Rule.existential_vars r in
  List.filter_map
    (fun (m : Matcher.match_result) ->
      if isomorphic_exists st ~existentials r m.binding then None
      else
        match instantiate_head st ~existentials r m.binding with
        | None -> None
        | Some tuple -> (
          let derivation =
            {
              Provenance.rule_id = r.id;
              premises =
                (if strictly_ascending m.used_facts then m.used_facts
                 else List.sort_uniq Int.compare m.used_facts);
              binding = m.binding;
              contributors = [];
              round;
            }
          in
          match Database.add st.db (Rule.head_pred r) tuple with
          | `Existing f ->
            (* an alternative derivation of a known fact: keep it for
               shortest-proof selection, but it is not a new fact —
               provided it is not circular (premises must precede) *)
            if
              (not (Provenance.is_edb st.prov f.Fact.id))
              && List.for_all (fun p -> p < f.Fact.id) derivation.premises
            then Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            None
          | `Added f ->
            st.derived <- st.derived + 1;
            Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            Some f.Fact.id))
    matches

let apply_agg_rule st ~round ?interrupt ?plan (r : Rule.t) =
  let groups = Matcher.match_agg_rule ?interrupt ?plan st.db r in
  let existentials = Rule.existential_vars r in
  List.filter_map
    (fun (g : Matcher.agg_result) ->
      match instantiate_head st ~existentials r g.group_binding with
      | None -> None
      | Some tuple -> (
        let group_key =
          List.map
            (fun v ->
              match Subst.find g.group_binding v with
              | Some x -> x
              | None -> Value.str "?")
            (Rule.group_vars r)
        in
        let reg_key = (r.id, group_key) in
        let previous = Hashtbl.find_opt st.agg_current reg_key in
        match Database.add st.db (Rule.head_pred r) tuple with
        | `Existing f ->
          (* The group's tuple is unchanged (e.g. the aggregate does not
             appear in the head): nothing new this round. *)
          if previous = None then Hashtbl.replace st.agg_current reg_key f.Fact.id;
          None
        | `Added f ->
          st.derived <- st.derived + 1;
          let premises =
            List.concat_map (fun (c : Provenance.contributor) -> c.facts) g.contributors
            |> List.sort_uniq Int.compare
          in
          Provenance.record st.prov ~fact_id:f.Fact.id
            {
              Provenance.rule_id = r.id;
              premises;
              binding = g.group_binding;
              contributors = g.contributors;
              round;
            };
          (match previous with
          | Some old_id when old_id <> f.Fact.id ->
            (* stale monotonic aggregate: supersede it *)
            Database.deactivate st.db old_id;
            st.superseded <- st.superseded + 1;
            Provenance.record_superseded st.prov ~old_fact:old_id ~by:f.Fact.id
          | Some _ | None -> ());
          Hashtbl.replace st.agg_current reg_key f.Fact.id;
          Some f.Fact.id))
    groups

type divergence = {
  max_rounds : int;
  stratum_rounds : int list;
}

(* --- budgets ------------------------------------------------------------ *)

type budget = {
  deadline_s : float option;
  budget_rounds : int option;
  budget_facts : int option;
  cancel : (unit -> bool) option;
}

let unlimited =
  { deadline_s = None; budget_rounds = None; budget_facts = None; cancel = None }

let budget ?deadline_s ?rounds ?facts ?cancel () =
  { deadline_s; budget_rounds = rounds; budget_facts = facts; cancel }

let within_ms ms =
  { unlimited with deadline_s = Some (Ekg_obs.Clock.now_s () +. (ms /. 1000.)) }

type partial = {
  partial_rounds : int;
  partial_derived : int;
  partial_wall_s : float;
  partial_stratum_rounds : int list;
}

type exhausted = [ `Deadline | `Facts | `Rounds ]

type error =
  | Invalid_program of string list
  | Unstratifiable of string
  | Invalid_edb of string
  | Divergent of divergence
  | Inconsistent of string
  | Unknown_fact of string
  | Budget_exceeded of exhausted * partial
  | Cancelled of partial

let partial_to_string p =
  Printf.sprintf "%d rounds, %d facts derived, %.1f ms elapsed"
    p.partial_rounds p.partial_derived (p.partial_wall_s *. 1000.)

let error_to_string = function
  | Invalid_program es -> String.concat "; " es
  | Unstratifiable e -> e
  | Invalid_edb e -> e
  | Divergent { max_rounds; stratum_rounds } ->
    let detail =
      match stratum_rounds with
      | [] -> ""
      | rs ->
        Printf.sprintf " (rounds per stratum: %s)"
          (String.concat ", "
             (List.mapi (fun i n -> Printf.sprintf "#%d=%d" (i + 1) n) rs))
    in
    Printf.sprintf "chase did not terminate within %d rounds%s" max_rounds detail
  | Inconsistent detail -> detail
  | Unknown_fact detail -> detail
  | Budget_exceeded (resource, p) ->
    let what =
      match resource with
      | `Deadline -> "wall-clock deadline"
      | `Facts -> "derived-fact budget"
      | `Rounds -> "round budget"
    in
    Printf.sprintf "chase exceeded its %s (%s)" what (partial_to_string p)
  | Cancelled p -> Printf.sprintf "chase cancelled (%s)" (partial_to_string p)

let client_error = function
  | Invalid_program _ | Unstratifiable _ | Invalid_edb _ | Inconsistent _
  | Unknown_fact _ ->
    true
  | Divergent _ | Budget_exceeded _ | Cancelled _ -> false

(* per-rule profiling accumulator, live only when a stats sink is on *)
type rule_acc = {
  acc_rule : string;
  acc_stratum : int;
  mutable acc_time : float;
  mutable acc_evals : int;
  mutable acc_facts : int;
  mutable acc_build : float;   (* sequential index preparation *)
  mutable acc_probe : float;   (* match-phase thunk time, summed over tasks *)
  mutable acc_insert : float;  (* sequential insertion *)
}

let push_stats sink ~rounds ~derived (s : stats) =
  let open Ekg_obs in
  Metrics.incr sink ~help:"Chase materializations completed" "ekg_chase_runs_total";
  Metrics.add sink ~help:"Fixpoint rounds executed" "ekg_chase_rounds_total"
    (float_of_int rounds);
  Metrics.add sink ~help:"Facts derived beyond the EDB"
    "ekg_chase_facts_derived_total" (float_of_int derived);
  Metrics.add sink ~help:"Stale monotonic-aggregate facts superseded"
    "ekg_chase_agg_superseded_total" (float_of_int s.agg_superseded);
  Metrics.add sink ~help:"Chase wall-clock seconds" "ekg_chase_seconds_total"
    s.wall_s;
  Metrics.set sink ~help:"Domains used by the most recent chase"
    "ekg_chase_domains" (float_of_int s.domains);
  Metrics.add sink
    ~help:"Join plans that deviated from textual body order"
    "ekg_chase_plan_reorders_total" (float_of_int s.plan_reorders);
  Metrics.add sink
    ~help:"Hash-join indexes built or extended during round planning"
    "ekg_chase_join_builds_total" (float_of_int s.join_builds);
  Metrics.add sink
    ~help:"Matches emitted by the join probe phase"
    "ekg_chase_join_probe_hits_total" (float_of_int s.join_probe_hits);
  List.iter
    (fun (r : rule_stat) ->
      if r.build_s > 0. then
        Metrics.observe sink ~help:"Per-rule index build seconds per chase"
          "ekg_chase_join_build_seconds" r.build_s;
      Metrics.observe sink ~help:"Per-rule probe (match-phase) seconds per chase"
        "ekg_chase_join_probe_seconds" r.probe_s)
    s.per_rule;
  List.iter
    (fun (r : rule_stat) ->
      let labels =
        [ ("rule", r.rule_id); ("stratum", string_of_int r.stratum) ]
      in
      Metrics.add sink ~help:"Evaluation seconds per rule"
        ~labels "ekg_chase_rule_seconds_total" r.time_s;
      Metrics.add sink ~help:"Facts derived per rule" ~labels
        "ekg_chase_rule_facts_total" (float_of_int r.facts))
    s.per_rule

(* Round protocol (identical for domains = 1 and domains = n, which is
   what makes the parallel chase bit-identical to the sequential one):

   1. {e Plan}: recompile every rule's join plan from the live
      cardinalities — sequential, deterministic.
   2. {e Match}: evaluate every plain rule (every semi-naive seed pass)
      against the immutable pre-round database.  Tasks are pure reads
      and may execute on any domain in any order; results are
      recombined by task index.
   3. {e Insert}: admit the matches sequentially in rule order, then
      run aggregate rules sequentially.  All fact ids, nulls and
      provenance records are allocated here, in a schedule-independent
      order. *)
let run_checked ?(naive = false) ?(domains = 1) ?(max_rounds = 100_000)
    ?(budget = unlimited) ?join ?stats ?obs ?parent (program : Program.t) edb =
  let strategy =
    match join with Some s -> s | None -> Matcher.strategy_of_env ()
  in
  let partitions = max 1 domains in
  match Program.validate program with
  | Error es -> Error (Invalid_program es)
  | Ok () -> (
    match Stratify.strata program with
    | Error e -> Error (Unstratifiable e)
    | Ok strata -> (
      (* a disabled (noop) sink disables collection outright: the hot
         path pays one branch, no clock reads, no accumulators *)
      let collect =
        match stats with
        | Some sink -> Ekg_obs.Metrics.enabled sink
        | None -> false
      in
      let budget_active =
        Option.is_some budget.deadline_s
        || Option.is_some budget.budget_rounds
        || Option.is_some budget.budget_facts
        || Option.is_some budget.cancel
      in
      let t_start =
        if collect || budget_active then Ekg_obs.Clock.now_s () else 0.
      in
      let st =
        {
          db = Database.create ();
          prov = Provenance.create ();
          agg_current = Hashtbl.create 64;
          derived = 0;
          superseded = 0;
        }
      in
      let edb_error = ref None in
      List.iter
        (fun a ->
          match Database.add_atom st.db a with
          | Ok _ -> ()
          | Error e -> if !edb_error = None then edb_error := Some e)
        edb;
      match !edb_error with
      | Some e -> Error (Invalid_edb e)
      | None -> (
        let total_rounds = ref 0 in
        let overflow = ref false in
        let plan_reorders = ref 0 in
        let stratum_rounds = Array.make (max 1 (List.length strata)) 0 in
        (* Budget machinery.  [stop] is the one flag every domain
           agrees on: the first check that trips it wins, and both the
           round loop and the in-match interrupt hook observe it.  When
           no budget is set, the per-round check is four [None]
           matches and the matcher hook is absent — the unlimited run
           is instruction-identical to the pre-budget engine. *)
        let stop : [ `Cancelled | `Deadline | `Facts | `Rounds ] option Atomic.t
            =
          Atomic.make None
        in
        let trip r =
          ignore (Atomic.compare_and_set stop None (Some r));
          true
        in
        let poll_cancel () =
          match budget.cancel with Some f -> f () | None -> false
        in
        let past_deadline () =
          match budget.deadline_s with
          | Some d -> Ekg_obs.Clock.now_s () > d
          | None -> false
        in
        let check_budget () =
          Atomic.get stop <> None
          ||
          if poll_cancel () then trip `Cancelled
          else if past_deadline () then trip `Deadline
          else if
            match budget.budget_facts with
            | Some m -> st.derived >= m
            | None -> false
          then trip `Facts
          else if
            match budget.budget_rounds with
            | Some m -> !total_rounds >= m
            | None -> false
          then trip `Rounds
          else false
        in
        (* Polled once per join node; the clock and cancel hook are
           only consulted every 4096 nodes, so a hot join pays an
           atomic read (and a racy-but-benign counter bump) per node. *)
        let interrupt =
          if budget.deadline_s = None && Option.is_none budget.cancel then None
          else begin
            let tick = ref 0 in
            Some
              (fun () ->
                Atomic.get stop <> None
                || begin
                     incr tick;
                     !tick land 4095 = 0
                     &&
                     if poll_cancel () then trip `Cancelled
                     else if past_deadline () then trip `Deadline
                     else false
                   end)
          end
        in
        let accs = ref [] in       (* rule_acc, reverse creation order *)
        let round_log = ref [] in  (* round_stat, reverse execution order *)
        let join_builds = ref 0 in
        let join_probe_hits = ref 0 in
        let run_stratum pool si rules =
          let plain = List.filter (fun r -> not (Rule.has_agg r)) rules in
          let agg = List.filter Rule.has_agg rules in
          let with_acc rs =
            List.map
              (fun (r : Rule.t) ->
                if not collect then (r, None)
                else begin
                  let a =
                    {
                      acc_rule = r.id;
                      acc_stratum = si;
                      acc_time = 0.;
                      acc_evals = 0;
                      acc_facts = 0;
                      acc_build = 0.;
                      acc_probe = 0.;
                      acc_insert = 0.;
                    }
                  in
                  accs := a :: !accs;
                  (r, Some a)
                end)
              rs
          in
          let plain = with_acc plain in
          let agg = with_acc agg in
          let charge acc dt nfacts =
            match acc with
            | None -> ()
            | Some a ->
              a.acc_time <- a.acc_time +. dt;
              a.acc_evals <- a.acc_evals + 1;
              a.acc_facts <- a.acc_facts + nfacts
          in
          (* [None] means "first round": evaluate in full.  The delta
             carries its length, so per-round stats are O(1) instead of
             a [List.length] walk over the whole delta every round. *)
          let delta = ref None in
          let continue = ref true in
          while !continue && not !overflow && Atomic.get stop = None do
            if budget_active && check_budget () then ()
            else begin
              incr total_rounds;
              if !total_rounds > max_rounds then overflow := true
              else begin
                try
              stratum_rounds.(si) <- stratum_rounds.(si) + 1;
              let round = !total_rounds in
              let round_t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
              let delta_size =
                match !delta with None -> 0 | Some (_, n) -> n
              in
              let delta_filter =
                if naive then None
                else
                  match !delta with
                  | None -> None
                  | Some (ids, n) ->
                    let set = Hashtbl.create (max 8 n) in
                    let preds = Hashtbl.create 8 in
                    List.iter
                      (fun i ->
                        Hashtbl.replace set i ();
                        Hashtbl.replace preds (Database.pred_sym_of_fact st.db i) ())
                      ids;
                    Some { Matcher.mem = Hashtbl.mem set; has_pred = Hashtbl.mem preds }
              in
              let card = Database.pred_card st.db in
              let planned rs =
                List.map
                  (fun (r, acc) ->
                    let plan = Plan.compile ~card r in
                    if plan.Plan.reordered then incr plan_reorders;
                    (r, acc, plan))
                  rs
              in
              let plain = planned plain in
              let agg = planned agg in
              (* sequential index preparation: extend the hash indexes
                 the round's probes will use, before any task may run.
                 Still part of the plan phase — [ensure_index] mutates
                 the database, match tasks only read it. *)
              List.iter
                (fun (r, acc, plan) ->
                  let t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
                  let n = Matcher.prepare ~strategy st.db r plan in
                  if collect then begin
                    join_builds := !join_builds + n;
                    match acc with
                    | Some a ->
                      a.acc_build <- a.acc_build +. (Ekg_obs.Clock.now_s () -. t0)
                    | None -> ()
                  end)
                plain;
              (* phase 1: match all plain rules against the pre-round db *)
              let rule_tasks =
                List.map
                  (fun (r, acc, plan) ->
                    let thunks =
                      match delta_filter with
                      | None ->
                        Matcher.full_tasks ~strategy ?interrupt ~plan
                          ~partitions st.db r
                      | Some d ->
                        Matcher.delta_tasks ~strategy ?interrupt ~plan
                          ~partitions ~delta:d st.db r
                    in
                    let thunks =
                      if not collect then List.map (fun t () -> (0., t ())) thunks
                      else
                        List.map
                          (fun t () ->
                            let t0 = Ekg_obs.Clock.now_s () in
                            let out = t () in
                            (Ekg_obs.Clock.now_s () -. t0, out))
                          thunks
                    in
                    (r, acc, thunks))
                  plain
              in
              let flat =
                Array.of_list
                  (List.concat_map (fun (_, _, ts) -> ts) rule_tasks)
              in
              let results =
                match pool with
                | Some p when Array.length flat > 1 -> Par.map p flat
                | _ -> Array.map (fun t -> t ()) flat
              in
              (* phase 2: insert sequentially, in rule then task order *)
              let added = ref [] in
              let added_count = ref 0 in
              let cursor = ref 0 in
              List.iter
                (fun (r, acc, thunks) ->
                  let match_time = ref 0. in
                  let rev_matches = ref [] in
                  List.iter
                    (fun _ ->
                      let dt, out = results.(!cursor) in
                      incr cursor;
                      match_time := !match_time +. dt;
                      rev_matches := out :: !rev_matches)
                    thunks;
                  let matches = List.concat (List.rev !rev_matches) in
                  let t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
                  let out = insert_plain_matches st ~round r matches in
                  let dt =
                    if collect then Ekg_obs.Clock.now_s () -. t0 else 0.
                  in
                  let n = List.length out in
                  charge acc (!match_time +. dt) n;
                  if collect then begin
                    join_probe_hits := !join_probe_hits + List.length matches;
                    match acc with
                    | Some a ->
                      a.acc_probe <- a.acc_probe +. !match_time;
                      a.acc_insert <- a.acc_insert +. dt
                    | None -> ()
                  end;
                  added_count := !added_count + n;
                  added := List.rev_append out !added)
                rule_tasks;
              (* aggregate rules see the round's plain insertions, as
                 they always did *)
              List.iter
                (fun (r, acc, plan) ->
                  let t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
                  let out = apply_agg_rule st ~round ?interrupt ~plan r in
                  let dt =
                    if collect then Ekg_obs.Clock.now_s () -. t0 else 0.
                  in
                  let n = List.length out in
                  charge acc dt n;
                  added_count := !added_count + n;
                  added := List.rev_append out !added)
                agg;
              if collect then
                round_log :=
                  {
                    stratum = si;
                    round;
                    delta_size;
                    new_facts = !added_count;
                    time_s = Ekg_obs.Clock.now_s () -. round_t0;
                  }
                  :: !round_log;
              if !added_count = 0 then continue := false
              else delta := Some (!added, !added_count)
                with Matcher.Interrupted ->
                  (* tripped mid-match: [stop] is already set, the
                     round's partial matches are discarded (nothing was
                     inserted for them), and the loop exits above *)
                  ()
              end
            end
          done
        in
        let traced_stratum pool si rules =
          if Atomic.get stop = None then
            Ekg_obs.Trace.with_span_opt obs ?parent
              ~labels:[ ("stratum", string_of_int si) ]
              "chase.stratum"
              (fun span ->
                let busy0 =
                  match span, pool with
                  | Some _, Some p -> Some (Par.total_busy_seconds p, Ekg_obs.Clock.now_s ())
                  | _ -> None
                in
                run_stratum pool si rules;
                match span with
                | Some sp ->
                  Ekg_obs.Trace.label sp "rounds"
                    (string_of_int stratum_rounds.(si));
                  (match busy0, pool with
                  | Some (b0, t0), Some p ->
                    (* worker-utilization labels: busy time across the
                       pool over the stratum, normalized by elapsed
                       wall time x pool width — 1.0 means every domain
                       was matching the whole stratum *)
                    let busy = Par.total_busy_seconds p -. b0 in
                    let wall = Float.max 1e-9 (Ekg_obs.Clock.now_s () -. t0) in
                    let width = float_of_int (Par.domains p) in
                    Ekg_obs.Trace.label sp "workers"
                      (string_of_int (Par.domains p));
                    Ekg_obs.Trace.label sp "worker_busy_ms"
                      (Printf.sprintf "%.3f" (busy *. 1000.));
                    Ekg_obs.Trace.label sp "utilization"
                      (Printf.sprintf "%.3f"
                         (Float.min 1. (busy /. (wall *. width))))
                  | _ -> ())
                | None -> ())
        in
        Par.with_pool ~domains (fun pool ->
            List.iteri (traced_stratum pool) strata);
        let stratum_rounds_list =
          Array.to_list (Array.sub stratum_rounds 0 (List.length strata))
        in
        match Atomic.get stop with
        | Some reason ->
          (* the budget tripped: surface how far the run got so the
             caller can report partial progress (e.g. in a 504 body) *)
          let partial =
            {
              partial_rounds = !total_rounds;
              partial_derived = st.derived;
              partial_wall_s = Ekg_obs.Clock.now_s () -. t_start;
              partial_stratum_rounds = stratum_rounds_list;
            }
          in
          Error
            (match reason with
            | `Cancelled -> Cancelled partial
            | (`Deadline | `Facts | `Rounds) as r ->
              Budget_exceeded (r, partial))
        | None ->
        if !overflow then
          Error (Divergent { max_rounds; stratum_rounds = stratum_rounds_list })
        else begin
          (* negative constraints: a derived ⊥ aborts the task *)
          match Database.active st.db falsum with
          | violation :: _ ->
            let detail =
              match Provenance.derivation st.prov violation.Fact.id with
              | Some d ->
                Printf.sprintf "constraint %s violated by %s" d.rule_id
                  (String.concat ", "
                     (List.map
                        (fun id -> Fact.to_string (Database.fact st.db id))
                        d.premises))
              | None -> "constraint violated"
            in
            Error (Inconsistent detail)
          | [] ->
            let stats_record =
              if not collect then None
              else begin
                let per_rule =
                  List.rev_map
                    (fun a ->
                      {
                        rule_id = a.acc_rule;
                        stratum = a.acc_stratum;
                        time_s = a.acc_time;
                        evals = a.acc_evals;
                        facts = a.acc_facts;
                        build_s = a.acc_build;
                        probe_s = a.acc_probe;
                        insert_s = a.acc_insert;
                      })
                    !accs
                in
                Some
                  {
                    per_rule;
                    per_round = List.rev !round_log;
                    rounds_per_stratum = stratum_rounds_list;
                    agg_superseded = st.superseded;
                    wall_s = Ekg_obs.Clock.now_s () -. t_start;
                    domains = max 1 domains;
                    plan_reorders = !plan_reorders;
                    join_strategy = Matcher.strategy_name strategy;
                    join_builds = !join_builds;
                    join_probe_hits = !join_probe_hits;
                  }
              end
            in
            (match stats, stats_record with
            | Some sink, Some s ->
              push_stats sink ~rounds:!total_rounds ~derived:st.derived s
            | _ -> ());
            Ok
              {
                db = st.db;
                prov = st.prov;
                rounds = !total_rounds;
                derived_count = st.derived;
                stats = stats_record;
              }
        end)))

let run ?naive ?domains ?max_rounds ?budget ?join ?stats ?obs ?parent program edb =
  match
    run_checked ?naive ?domains ?max_rounds ?budget ?join ?stats ?obs ?parent
      program edb
  with
  | Ok r -> Ok r
  | Error e -> Error (error_to_string e)

let run_exn ?naive ?domains ?max_rounds ?budget ?join ?stats ?obs ?parent program
    edb =
  match
    run ?naive ?domains ?max_rounds ?budget ?join ?stats ?obs ?parent program edb
  with
  | Ok r -> r
  | Error e -> failwith ("Chase.run: " ^ e)

(* --- incremental maintenance ------------------------------------------------

   Additions warm-start the semi-naive loop (new facts are the delta);
   retractions run DRed over the provenance DAG: over-delete the cone
   of consequences reachable from a retracted fact, then re-derive
   whatever still has an alternative proof by fully re-evaluating the
   rules deriving the deleted predicates.  Stratified negation is
   handled per stratum: once a negated predicate has changed, the
   negating rule's previous conclusions are over-deleted and the rule
   re-evaluates in full, so deletions can enable later-stratum facts
   and additions can disable them.  Aggregation and existential heads
   fall back to a full re-chase (see chase.mli). *)

type update = {
  upd_incremental : bool;
  upd_rounds : int;
  upd_added : int;
  upd_retracted : int;
  upd_rederived : int;
  upd_changed_preds : string list;
}

let incrementable (program : Program.t) =
  (not (Program.uses_aggregation program))
  && List.for_all (fun r -> Rule.existential_vars r = []) program.Program.rules

let affected_preds (program : Program.t) seeds =
  let affected = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace affected p ()) seeds;
  let grew = ref true in
  while !grew do
    grew := false;
    List.iter
      (fun (r : Rule.t) ->
        if
          (not (Hashtbl.mem affected (Rule.head_pred r)))
          && List.exists (Hashtbl.mem affected) (Rule.body_preds r)
        then begin
          Hashtbl.replace affected (Rule.head_pred r) ();
          grew := true
        end)
      program.Program.rules
  done;
  Hashtbl.fold (fun p () acc -> p :: acc) affected [] |> List.sort String.compare

let atom_of_fact (f : Fact.t) =
  Atom.make f.Fact.pred
    (List.map (fun v -> Term.Cst v) (Array.to_list f.Fact.args))

let edb_atoms (res : result) =
  let acc = ref [] in
  for id = Database.size res.db - 1 downto 0 do
    if Database.is_active res.db id && Provenance.is_edb res.prov id then
      acc := atom_of_fact (Database.fact res.db id) :: !acc
  done;
  !acc

let copy_result (res : result) =
  { res with db = Database.copy res.db; prov = Provenance.copy res.prov }

let ground_tuple (a : Atom.t) =
  if not (Atom.is_ground a) then Error (Invalid_edb ("non-ground fact: " ^ Atom.to_string a))
  else
    Ok
      (Array.of_list
         (List.map
            (function Term.Cst c -> c | Term.Var _ -> assert false)
            a.Atom.args))

(* Resolve retraction requests to fact ids, before any mutation: every
   named fact must be active extensional data. *)
let resolve_retractions (res : result) atoms =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (a : Atom.t) :: rest -> (
      match ground_tuple a with
      | Error _ as e -> e
      | Ok tuple -> (
        match Database.find_exact res.db a.Atom.pred tuple with
        | Some f when Database.is_active res.db f.Fact.id ->
          if Provenance.is_edb res.prov f.Fact.id then go (f.Fact.id :: acc) rest
          else
            Error
              (Invalid_edb
                 ("cannot retract derived fact " ^ Atom.to_string a
                ^ "; only extensional facts may be retracted"))
        | Some _ | None ->
          Error (Unknown_fact ("fact not in the extensional database: " ^ Atom.to_string a))))
  in
  go [] atoms

(* Full-recompute fallback: rebuild the fact base and cold-chase it.
   Non-destructive — the input result is left untouched. *)
let rebuild ?domains ?max_rounds ?budget (program : Program.t) (res : result)
    ~adds ~retract_ids =
  let removed = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace removed id ()) retract_ids;
  let base = ref [] in
  for id = Database.size res.db - 1 downto 0 do
    if
      Database.is_active res.db id
      && Provenance.is_edb res.prov id
      && not (Hashtbl.mem removed id)
    then base := atom_of_fact (Database.fact res.db id) :: !base
  done;
  match run_checked ?domains ?max_rounds ?budget program (!base @ adds) with
  | Error _ as e -> e
  | Ok fresh ->
    (* observable diff for the update report: compare rendered active
       instances (both small relative to the chase itself) *)
    let dump (db : Database.t) =
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun (f : Fact.t) -> Hashtbl.replace tbl (Fact.to_string f) ())
        (Database.active_all db);
      tbl
    in
    let before = dump res.db and after = dump fresh.db in
    let count_missing a b =
      Hashtbl.fold (fun k () n -> if Hashtbl.mem b k then n else n + 1) a 0
    in
    let seeds =
      List.sort_uniq String.compare
        (List.map (fun (a : Atom.t) -> a.Atom.pred) adds
        @ List.map (fun id -> (Database.fact res.db id).Fact.pred) retract_ids)
    in
    Ok
      ( fresh,
        {
          upd_incremental = false;
          upd_rounds = fresh.rounds;
          upd_added = count_missing after before;
          upd_retracted = count_missing before after;
          upd_rederived = 0;
          upd_changed_preds = affected_preds program seeds;
        } )

(* The incremental pass proper (no aggregation, no existentials). *)
let apply_incremental ?(domains = 1) ?(max_rounds = 100_000)
    ?(budget = unlimited) (res : result) ~adds ~add_tuples ~retract_ids strata =
  let db = res.db and prov = res.prov in
  let strategy = Matcher.strategy_of_env () in
  let partitions = max 1 domains in
  let t_start = Ekg_obs.Clock.now_s () in
  let deleted = Hashtbl.create 32 in      (* over-deleted, not yet restored *)
  let deleted_preds = Hashtbl.create 8 in
  let changed_preds = Hashtbl.create 8 in
  let retracted_total = ref 0 in
  let rederived = ref 0 in
  let added = ref 0 in
  let derived_this_update = ref 0 in
  let total_new_rounds = ref 0 in
  let overflow = ref false in
  let stratum_rounds = Array.make (max 1 (List.length strata)) 0 in
  (* premise -> consumers, over every derivation recorded so far.  Facts
     inserted during this update never need the index: deletions only
     target facts that predate their stratum's evaluation. *)
  let consumers = Hashtbl.create 256 in
  Provenance.iter prov (fun id (d : Provenance.derivation) ->
      List.iter
        (fun p ->
          let prior = Option.value ~default:[] (Hashtbl.find_opt consumers p) in
          Hashtbl.replace consumers p (id :: prior))
        d.Provenance.premises);
  (* DRed over-deletion: everything reachable from the roots through
     any recorded derivation loses its support *)
  let delete_cone roots =
    let queue = Queue.create () in
    let mark id =
      if (not (Hashtbl.mem deleted id)) && Database.is_active db id then begin
        Hashtbl.replace deleted id ();
        Queue.push id queue
      end
    in
    List.iter mark roots;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      Database.deactivate db id;
      incr retracted_total;
      let f = Database.fact db id in
      Hashtbl.replace deleted_preds f.Fact.pred ();
      Hashtbl.replace changed_preds f.Fact.pred ();
      if not (Provenance.is_edb prov id) then Provenance.forget prov id;
      List.iter mark (Option.value ~default:[] (Hashtbl.find_opt consumers id))
    done
  in
  delete_cone retract_ids;
  (* retraction seeds are gone for good: even if a rule re-derives the
     same tuple, the tuple becomes a derived fact, not extensional *)
  List.iter (fun id -> Hashtbl.remove deleted id) retract_ids;
  let newly_active = ref [] in  (* delta seeds for strata not yet evaluated *)
  List.iter2
    (fun (a : Atom.t) tuple ->
      match Database.add db a.Atom.pred tuple with
      | `Added f ->
        incr added;
        Hashtbl.replace changed_preds f.Fact.pred ();
        newly_active := f.Fact.id :: !newly_active
      | `Existing f ->
        if not (Database.is_active db f.Fact.id) then begin
          (* resurrect a previously retracted or over-deleted tuple as
             extensional data, under its original id *)
          Provenance.forget prov f.Fact.id;
          Database.reactivate db f.Fact.id;
          incr added;
          Hashtbl.replace changed_preds f.Fact.pred ();
          newly_active := f.Fact.id :: !newly_active
        end
        else if not (Provenance.is_edb prov f.Fact.id) then begin
          (* an active derived fact asserted extensionally: a cold chase
             on the new base records no derivation for it *)
          Provenance.forget prov f.Fact.id;
          Hashtbl.replace changed_preds f.Fact.pred ()
        end)
    adds add_tuples;
  (* budget machinery, shared with the match-loop interrupt *)
  let stop : [ `Cancelled | `Deadline | `Facts | `Rounds ] option Atomic.t =
    Atomic.make None
  in
  let trip r =
    ignore (Atomic.compare_and_set stop None (Some r));
    true
  in
  let check_budget () =
    Atomic.get stop <> None
    ||
    if match budget.cancel with Some f -> f () | None -> false then
      trip `Cancelled
    else if
      match budget.deadline_s with
      | Some d -> Ekg_obs.Clock.now_s () > d
      | None -> false
    then trip `Deadline
    else if
      match budget.budget_facts with
      | Some m -> !derived_this_update >= m
      | None -> false
    then trip `Facts
    else if
      match budget.budget_rounds with
      | Some m -> !total_new_rounds >= m
      | None -> false
    then trip `Rounds
    else false
  in
  let interrupt =
    if budget.deadline_s = None && Option.is_none budget.cancel then None
    else begin
      let tick = ref 0 in
      Some
        (fun () ->
          Atomic.get stop <> None
          || begin
               incr tick;
               !tick land 4095 = 0 && check_budget ()
             end)
    end
  in
  let instantiate_head (r : Rule.t) binding =
    let resolve = function
      | Term.Cst c -> Some c
      | Term.Var v -> Subst.find binding v
    in
    let args = List.map resolve r.Rule.head.Atom.args in
    if List.exists Option.is_none args then None
    else Some (Array.of_list (List.map Option.get args))
  in
  let insert_matches ~round (r : Rule.t) matches round_delta =
    List.iter
      (fun (m : Matcher.match_result) ->
        match instantiate_head r m.binding with
        | None -> ()
        | Some tuple -> (
          let premises = List.sort_uniq Int.compare m.used_facts in
          let derivation =
            {
              Provenance.rule_id = r.id;
              premises;
              binding = m.binding;
              contributors = [];
              round;
            }
          in
          match Database.add db (Rule.head_pred r) tuple with
          | `Added f ->
            incr derived_this_update;
            incr added;
            Hashtbl.replace changed_preds f.Fact.pred ();
            Provenance.record prov ~fact_id:f.Fact.id derivation;
            round_delta := f.Fact.id :: !round_delta
          | `Existing f ->
            if not (Database.is_active db f.Fact.id) then begin
              Database.reactivate db f.Fact.id;
              Provenance.forget prov f.Fact.id;
              Provenance.record prov ~fact_id:f.Fact.id derivation;
              incr derived_this_update;
              Hashtbl.replace changed_preds f.Fact.pred ();
              if Hashtbl.mem deleted f.Fact.id then begin
                (* an over-deleted fact restored by a surviving proof *)
                Hashtbl.remove deleted f.Fact.id;
                incr rederived
              end
              else incr added;
              round_delta := f.Fact.id :: !round_delta
            end
            else if
              (not (Provenance.is_edb prov f.Fact.id))
              && List.for_all (fun p -> p < f.Fact.id) premises
            then begin
              (* alternative derivation of a known fact, as in the cold
                 chase; provenance changed even though the instance
                 did not — shortest-proof explanations may shift *)
              Provenance.record prov ~fact_id:f.Fact.id derivation;
              Hashtbl.replace changed_preds f.Fact.pred ()
            end))
      matches
  in
  let run_stratum pool si rules =
    (* rules whose negated premises changed: their old conclusions are
       unsupported until proven otherwise *)
    let neg_affected =
      List.filter
        (fun (r : Rule.t) ->
          List.exists
            (fun (a : Atom.t) -> Hashtbl.mem changed_preds a.Atom.pred)
            (Rule.negative_atoms r))
        rules
    in
    if neg_affected <> [] then begin
      let targets = List.map (fun (r : Rule.t) -> r.Rule.id) neg_affected in
      let roots = ref [] in
      Provenance.iter prov (fun id (d : Provenance.derivation) ->
          if List.mem d.Provenance.rule_id targets && Database.is_active db id
          then roots := id :: !roots);
      delete_cone !roots
    end;
    (* rules that must re-evaluate in full on the stratum's first
       round: negation-affected ones, and every rule that could supply
       an alternative proof for an over-deleted predicate *)
    let full_rules =
      List.filter
        (fun (r : Rule.t) ->
          Hashtbl.mem deleted_preds (Rule.head_pred r)
          || List.memq r neg_affected)
        rules
    in
    let pending = ref (List.filter (Database.is_active db) !newly_active) in
    let first = ref true in
    let continue = ref true in
    while !continue && (not !overflow) && Atomic.get stop = None do
      if check_budget () then ()
      else begin
        let full = if !first then full_rules else [] in
        let delta_ids = !pending in
        if full = [] && delta_ids = [] then continue := false
        else begin
          incr total_new_rounds;
          if !total_new_rounds > max_rounds then overflow := true
          else begin
            try
              stratum_rounds.(si) <- stratum_rounds.(si) + 1;
              let round = res.rounds + !total_new_rounds in
              let delta_filter =
                if delta_ids = [] then None
                else begin
                  let set = Hashtbl.create (max 8 (List.length delta_ids)) in
                  let preds = Hashtbl.create 8 in
                  List.iter
                    (fun i ->
                      Hashtbl.replace set i ();
                      Hashtbl.replace preds (Database.pred_sym_of_fact db i) ())
                    delta_ids;
                  Some
                    { Matcher.mem = Hashtbl.mem set; has_pred = Hashtbl.mem preds }
                end
              in
              let card = Database.pred_card db in
              (* one thunk list per rule, in stratum rule order, exactly
                 like a cold round: full evaluation for the re-derivation
                 rules, semi-naive seed passes for the rest *)
              let rule_tasks =
                List.filter_map
                  (fun (r : Rule.t) ->
                    let plan = Plan.compile ~card r in
                    let evaluated = (!first && List.memq r full)
                                    || Option.is_some delta_filter in
                    if evaluated then
                      ignore (Matcher.prepare ~strategy db r plan);
                    if !first && List.memq r full then
                      Some
                        (r, Matcher.full_tasks ~strategy ?interrupt ~plan
                              ~partitions db r)
                    else
                      match delta_filter with
                      | Some d ->
                        Some
                          (r, Matcher.delta_tasks ~strategy ?interrupt ~plan
                                ~partitions ~delta:d db r)
                      | None -> None)
                  rules
              in
              let flat =
                Array.of_list (List.concat_map (fun (_, ts) -> ts) rule_tasks)
              in
              let results =
                match pool with
                | Some p when Array.length flat > 1 -> Par.map p flat
                | _ -> Array.map (fun t -> t ()) flat
              in
              let round_delta = ref [] in
              let cursor = ref 0 in
              List.iter
                (fun (r, thunks) ->
                  let rev_matches = ref [] in
                  List.iter
                    (fun _ ->
                      rev_matches := results.(!cursor) :: !rev_matches;
                      incr cursor)
                    thunks;
                  insert_matches ~round r
                    (List.concat (List.rev !rev_matches))
                    round_delta)
                rule_tasks;
              first := false;
              if !round_delta = [] then continue := false
              else begin
                pending := !round_delta;
                newly_active := List.rev_append !round_delta !newly_active
              end
            with Matcher.Interrupted ->
              (* tripped mid-match: nothing was inserted for the
                 abandoned round; the loop exits via [stop] *)
              ()
          end
        end
      end
    done
  in
  Par.with_pool ~domains (fun pool ->
      List.iteri
        (fun si rules -> if Atomic.get stop = None then run_stratum pool si rules)
        strata);
  let partial () =
    {
      partial_rounds = !total_new_rounds;
      partial_derived = !derived_this_update;
      partial_wall_s = Ekg_obs.Clock.now_s () -. t_start;
      partial_stratum_rounds =
        Array.to_list (Array.sub stratum_rounds 0 (List.length strata));
    }
  in
  match Atomic.get stop with
  | Some `Cancelled -> Error (Cancelled (partial ()))
  | Some ((`Deadline | `Facts | `Rounds) as r) ->
    Error (Budget_exceeded (r, partial ()))
  | None ->
    if !overflow then
      Error
        (Divergent
           {
             max_rounds;
             stratum_rounds =
               Array.to_list (Array.sub stratum_rounds 0 (List.length strata));
           })
    else begin
      match Database.active db falsum with
      | violation :: _ ->
        let detail =
          match Provenance.derivation prov violation.Fact.id with
          | Some d ->
            Printf.sprintf "constraint %s violated by %s" d.rule_id
              (String.concat ", "
                 (List.map
                    (fun id -> Fact.to_string (Database.fact db id))
                    d.premises))
          | None -> "constraint violated"
        in
        Error (Inconsistent detail)
      | [] ->
        let active_derived = ref 0 in
        for id = 0 to Database.size db - 1 do
          if Database.is_active db id && not (Provenance.is_edb prov id) then
            incr active_derived
        done;
        let changed =
          Hashtbl.fold (fun p () acc -> p :: acc) changed_preds []
          |> List.sort String.compare
        in
        Ok
          ( {
              db;
              prov;
              rounds = res.rounds + !total_new_rounds;
              derived_count = !active_derived;
              stats = None;
            },
            {
              upd_incremental = true;
              upd_rounds = !total_new_rounds;
              upd_added = !added;
              upd_retracted = !retracted_total - !rederived;
              upd_rederived = !rederived;
              upd_changed_preds = changed;
            } )
    end

let apply_update ?domains ?max_rounds ?budget program res ~adds ~retracts =
  (* all validation happens before any mutation *)
  let rec tuples acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> (
      match ground_tuple a with
      | Error _ as e -> e
      | Ok t -> tuples (t :: acc) rest)
  in
  match tuples [] adds with
  | Error e -> Error e
  | Ok add_tuples -> (
    match resolve_retractions res retracts with
    | Error e -> Error e
    | Ok retract_ids -> (
      if not (incrementable program) then
        rebuild ?domains ?max_rounds ?budget program res ~adds ~retract_ids
      else
        match Stratify.strata program with
        | Error e -> Error (Unstratifiable e)
        | Ok strata ->
          apply_incremental ?domains ?max_rounds ?budget res ~adds ~add_tuples
            ~retract_ids strata))

let add_facts ?domains ?max_rounds ?budget program res atoms =
  apply_update ?domains ?max_rounds ?budget program res ~adds:atoms ~retracts:[]

let retract_facts ?domains ?max_rounds ?budget program res atoms =
  apply_update ?domains ?max_rounds ?budget program res ~adds:[] ~retracts:atoms
