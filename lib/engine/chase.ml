open Ekg_kernel
open Ekg_datalog

type rule_stat = {
  rule_id : string;
  stratum : int;
  time_s : float;
  evals : int;
  facts : int;
}

type round_stat = {
  stratum : int;
  round : int;
  delta_size : int;
  new_facts : int;
  time_s : float;
}

type stats = {
  per_rule : rule_stat list;
  per_round : round_stat list;
  rounds_per_stratum : int list;
  agg_superseded : int;
  wall_s : float;
  domains : int;
  plan_reorders : int;
}

type result = {
  db : Database.t;
  prov : Provenance.t;
  rounds : int;
  derived_count : int;
  stats : stats option;
}

let falsum = "false"

type state = {
  db : Database.t;
  prov : Provenance.t;
  (* current materialized aggregate fact per (rule id, group key) *)
  agg_current : (string * Value.t list, int) Hashtbl.t;
  mutable derived : int;
  mutable superseded : int;  (* stale aggregate facts deactivated *)
}

let instantiate_head st (r : Rule.t) binding =
  let existentials = Rule.existential_vars r in
  let nulls = Hashtbl.create 4 in
  let resolve (t : Term.t) =
    match t with
    | Term.Cst c -> Some c
    | Term.Var v -> (
      match Subst.find binding v with
      | Some x -> Some x
      | None ->
        if List.mem v existentials then begin
          match Hashtbl.find_opt nulls v with
          | Some n -> Some n
          | None ->
            let n = Database.fresh_null st.db in
            Hashtbl.add nulls v n;
            Some n
        end
        else None)
  in
  let args = List.map resolve r.head.Atom.args in
  if List.exists Option.is_none args then None
  else Some (Array.of_list (List.map Option.get args))

(* Restricted-chase preemption (§5: "application of chase steps that
   generate facts isomorphic to facts already in the chase is
   pre-empted"): skip an existential head when the database already
   holds a fact the instantiated non-existential positions map onto
   homomorphically — constants must agree, labelled nulls may map to
   any value (consistently), existential positions are unconstrained.
   Treating nulls as mappable is what terminates recursive existential
   chains such as person → hasParent → person. *)
let isomorphic_exists st (r : Rule.t) binding =
  let existentials = Rule.existential_vars r in
  if existentials = [] then false
  else begin
    (* per head position: [`Const c], [`Null n] or [`Free] *)
    let shape =
      List.map
        (fun (t : Term.t) ->
          match t with
          | Term.Cst (Value.Null _ as n) -> `Null n
          | Term.Cst c -> `Const c
          | Term.Var v -> (
            match Subst.find binding v with
            | Some (Value.Null _ as n) -> `Null n
            | Some c -> `Const c
            | None -> `Free))
        r.head.Atom.args
    in
    let homomorphic (f : Fact.t) =
      let mapping = Hashtbl.create 4 in
      let ok = ref true in
      List.iteri
        (fun i s ->
          if !ok then
            match s with
            | `Free -> ()
            | `Const c -> if not (Value.equal c f.args.(i)) then ok := false
            | `Null n -> (
              match Hashtbl.find_opt mapping n with
              | Some v -> if not (Value.equal v f.args.(i)) then ok := false
              | None -> Hashtbl.add mapping n f.args.(i)))
        shape;
      !ok
    in
    List.exists homomorphic (Database.active st.db (Rule.head_pred r))
  end

(* Phase 2 of a round: admit one plain rule's matches, in match order.
   Runs strictly sequentially — this is the only place fact ids,
   labelled nulls and provenance records are allocated, which is why
   the parallel match phase cannot perturb them. *)
let insert_plain_matches st ~round (r : Rule.t) matches =
  List.filter_map
    (fun (m : Matcher.match_result) ->
      if isomorphic_exists st r m.binding then None
      else
        match instantiate_head st r m.binding with
        | None -> None
        | Some tuple -> (
          let derivation =
            {
              Provenance.rule_id = r.id;
              premises = List.sort_uniq Int.compare m.used_facts;
              binding = m.binding;
              contributors = [];
              round;
            }
          in
          match Database.add st.db (Rule.head_pred r) tuple with
          | `Existing f ->
            (* an alternative derivation of a known fact: keep it for
               shortest-proof selection, but it is not a new fact —
               provided it is not circular (premises must precede) *)
            if
              (not (Provenance.is_edb st.prov f.Fact.id))
              && List.for_all (fun p -> p < f.Fact.id) derivation.premises
            then Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            None
          | `Added f ->
            st.derived <- st.derived + 1;
            Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            Some f.Fact.id))
    matches

let apply_agg_rule st ~round ?interrupt ?plan (r : Rule.t) =
  let groups = Matcher.match_agg_rule ?interrupt ?plan st.db r in
  List.filter_map
    (fun (g : Matcher.agg_result) ->
      match instantiate_head st r g.group_binding with
      | None -> None
      | Some tuple -> (
        let group_key =
          List.map
            (fun v ->
              match Subst.find g.group_binding v with
              | Some x -> x
              | None -> Value.str "?")
            (Rule.group_vars r)
        in
        let reg_key = (r.id, group_key) in
        let previous = Hashtbl.find_opt st.agg_current reg_key in
        match Database.add st.db (Rule.head_pred r) tuple with
        | `Existing f ->
          (* The group's tuple is unchanged (e.g. the aggregate does not
             appear in the head): nothing new this round. *)
          if previous = None then Hashtbl.replace st.agg_current reg_key f.Fact.id;
          None
        | `Added f ->
          st.derived <- st.derived + 1;
          let premises =
            List.concat_map (fun (c : Provenance.contributor) -> c.facts) g.contributors
            |> List.sort_uniq Int.compare
          in
          Provenance.record st.prov ~fact_id:f.Fact.id
            {
              Provenance.rule_id = r.id;
              premises;
              binding = g.group_binding;
              contributors = g.contributors;
              round;
            };
          (match previous with
          | Some old_id when old_id <> f.Fact.id ->
            (* stale monotonic aggregate: supersede it *)
            Database.deactivate st.db old_id;
            st.superseded <- st.superseded + 1;
            Provenance.record_superseded st.prov ~old_fact:old_id ~by:f.Fact.id
          | Some _ | None -> ());
          Hashtbl.replace st.agg_current reg_key f.Fact.id;
          Some f.Fact.id))
    groups

type divergence = {
  max_rounds : int;
  stratum_rounds : int list;
}

(* --- budgets ------------------------------------------------------------ *)

type budget = {
  deadline_s : float option;
  budget_rounds : int option;
  budget_facts : int option;
  cancel : (unit -> bool) option;
}

let unlimited =
  { deadline_s = None; budget_rounds = None; budget_facts = None; cancel = None }

let budget ?deadline_s ?rounds ?facts ?cancel () =
  { deadline_s; budget_rounds = rounds; budget_facts = facts; cancel }

let within_ms ms =
  { unlimited with deadline_s = Some (Ekg_obs.Clock.now_s () +. (ms /. 1000.)) }

type partial = {
  partial_rounds : int;
  partial_derived : int;
  partial_wall_s : float;
  partial_stratum_rounds : int list;
}

type exhausted = [ `Deadline | `Facts | `Rounds ]

type error =
  | Invalid_program of string list
  | Unstratifiable of string
  | Invalid_edb of string
  | Divergent of divergence
  | Inconsistent of string
  | Budget_exceeded of exhausted * partial
  | Cancelled of partial

let partial_to_string p =
  Printf.sprintf "%d rounds, %d facts derived, %.1f ms elapsed"
    p.partial_rounds p.partial_derived (p.partial_wall_s *. 1000.)

let error_to_string = function
  | Invalid_program es -> String.concat "; " es
  | Unstratifiable e -> e
  | Invalid_edb e -> e
  | Divergent { max_rounds; stratum_rounds } ->
    let detail =
      match stratum_rounds with
      | [] -> ""
      | rs ->
        Printf.sprintf " (rounds per stratum: %s)"
          (String.concat ", "
             (List.mapi (fun i n -> Printf.sprintf "#%d=%d" (i + 1) n) rs))
    in
    Printf.sprintf "chase did not terminate within %d rounds%s" max_rounds detail
  | Inconsistent detail -> detail
  | Budget_exceeded (resource, p) ->
    let what =
      match resource with
      | `Deadline -> "wall-clock deadline"
      | `Facts -> "derived-fact budget"
      | `Rounds -> "round budget"
    in
    Printf.sprintf "chase exceeded its %s (%s)" what (partial_to_string p)
  | Cancelled p -> Printf.sprintf "chase cancelled (%s)" (partial_to_string p)

let client_error = function
  | Invalid_program _ | Unstratifiable _ | Invalid_edb _ | Inconsistent _ -> true
  | Divergent _ | Budget_exceeded _ | Cancelled _ -> false

(* per-rule profiling accumulator, live only when a stats sink is on *)
type rule_acc = {
  acc_rule : string;
  acc_stratum : int;
  mutable acc_time : float;
  mutable acc_evals : int;
  mutable acc_facts : int;
}

let push_stats sink ~rounds ~derived (s : stats) =
  let open Ekg_obs in
  Metrics.incr sink ~help:"Chase materializations completed" "ekg_chase_runs_total";
  Metrics.add sink ~help:"Fixpoint rounds executed" "ekg_chase_rounds_total"
    (float_of_int rounds);
  Metrics.add sink ~help:"Facts derived beyond the EDB"
    "ekg_chase_facts_derived_total" (float_of_int derived);
  Metrics.add sink ~help:"Stale monotonic-aggregate facts superseded"
    "ekg_chase_agg_superseded_total" (float_of_int s.agg_superseded);
  Metrics.add sink ~help:"Chase wall-clock seconds" "ekg_chase_seconds_total"
    s.wall_s;
  Metrics.set sink ~help:"Domains used by the most recent chase"
    "ekg_chase_domains" (float_of_int s.domains);
  Metrics.add sink
    ~help:"Join plans that deviated from textual body order"
    "ekg_chase_plan_reorders_total" (float_of_int s.plan_reorders);
  List.iter
    (fun (r : rule_stat) ->
      let labels =
        [ ("rule", r.rule_id); ("stratum", string_of_int r.stratum) ]
      in
      Metrics.add sink ~help:"Evaluation seconds per rule"
        ~labels "ekg_chase_rule_seconds_total" r.time_s;
      Metrics.add sink ~help:"Facts derived per rule" ~labels
        "ekg_chase_rule_facts_total" (float_of_int r.facts))
    s.per_rule

(* Round protocol (identical for domains = 1 and domains = n, which is
   what makes the parallel chase bit-identical to the sequential one):

   1. {e Plan}: recompile every rule's join plan from the live
      cardinalities — sequential, deterministic.
   2. {e Match}: evaluate every plain rule (every semi-naive seed pass)
      against the immutable pre-round database.  Tasks are pure reads
      and may execute on any domain in any order; results are
      recombined by task index.
   3. {e Insert}: admit the matches sequentially in rule order, then
      run aggregate rules sequentially.  All fact ids, nulls and
      provenance records are allocated here, in a schedule-independent
      order. *)
let run_checked ?(naive = false) ?(domains = 1) ?(max_rounds = 100_000)
    ?(budget = unlimited) ?stats ?obs ?parent (program : Program.t) edb =
  match Program.validate program with
  | Error es -> Error (Invalid_program es)
  | Ok () -> (
    match Stratify.strata program with
    | Error e -> Error (Unstratifiable e)
    | Ok strata -> (
      (* a disabled (noop) sink disables collection outright: the hot
         path pays one branch, no clock reads, no accumulators *)
      let collect =
        match stats with
        | Some sink -> Ekg_obs.Metrics.enabled sink
        | None -> false
      in
      let budget_active =
        Option.is_some budget.deadline_s
        || Option.is_some budget.budget_rounds
        || Option.is_some budget.budget_facts
        || Option.is_some budget.cancel
      in
      let t_start =
        if collect || budget_active then Ekg_obs.Clock.now_s () else 0.
      in
      let st =
        {
          db = Database.create ();
          prov = Provenance.create ();
          agg_current = Hashtbl.create 64;
          derived = 0;
          superseded = 0;
        }
      in
      let edb_error = ref None in
      List.iter
        (fun a ->
          match Database.add_atom st.db a with
          | Ok _ -> ()
          | Error e -> if !edb_error = None then edb_error := Some e)
        edb;
      match !edb_error with
      | Some e -> Error (Invalid_edb e)
      | None -> (
        let total_rounds = ref 0 in
        let overflow = ref false in
        let plan_reorders = ref 0 in
        let stratum_rounds = Array.make (max 1 (List.length strata)) 0 in
        (* Budget machinery.  [stop] is the one flag every domain
           agrees on: the first check that trips it wins, and both the
           round loop and the in-match interrupt hook observe it.  When
           no budget is set, the per-round check is four [None]
           matches and the matcher hook is absent — the unlimited run
           is instruction-identical to the pre-budget engine. *)
        let stop : [ `Cancelled | `Deadline | `Facts | `Rounds ] option Atomic.t
            =
          Atomic.make None
        in
        let trip r =
          ignore (Atomic.compare_and_set stop None (Some r));
          true
        in
        let poll_cancel () =
          match budget.cancel with Some f -> f () | None -> false
        in
        let past_deadline () =
          match budget.deadline_s with
          | Some d -> Ekg_obs.Clock.now_s () > d
          | None -> false
        in
        let check_budget () =
          Atomic.get stop <> None
          ||
          if poll_cancel () then trip `Cancelled
          else if past_deadline () then trip `Deadline
          else if
            match budget.budget_facts with
            | Some m -> st.derived >= m
            | None -> false
          then trip `Facts
          else if
            match budget.budget_rounds with
            | Some m -> !total_rounds >= m
            | None -> false
          then trip `Rounds
          else false
        in
        (* Polled once per join node; the clock and cancel hook are
           only consulted every 4096 nodes, so a hot join pays an
           atomic read (and a racy-but-benign counter bump) per node. *)
        let interrupt =
          if budget.deadline_s = None && Option.is_none budget.cancel then None
          else begin
            let tick = ref 0 in
            Some
              (fun () ->
                Atomic.get stop <> None
                || begin
                     incr tick;
                     !tick land 4095 = 0
                     &&
                     if poll_cancel () then trip `Cancelled
                     else if past_deadline () then trip `Deadline
                     else false
                   end)
          end
        in
        let accs = ref [] in       (* rule_acc, reverse creation order *)
        let round_log = ref [] in  (* round_stat, reverse execution order *)
        let run_stratum pool si rules =
          let plain = List.filter (fun r -> not (Rule.has_agg r)) rules in
          let agg = List.filter Rule.has_agg rules in
          let with_acc rs =
            List.map
              (fun (r : Rule.t) ->
                if not collect then (r, None)
                else begin
                  let a =
                    {
                      acc_rule = r.id;
                      acc_stratum = si;
                      acc_time = 0.;
                      acc_evals = 0;
                      acc_facts = 0;
                    }
                  in
                  accs := a :: !accs;
                  (r, Some a)
                end)
              rs
          in
          let plain = with_acc plain in
          let agg = with_acc agg in
          let charge acc dt nfacts =
            match acc with
            | None -> ()
            | Some a ->
              a.acc_time <- a.acc_time +. dt;
              a.acc_evals <- a.acc_evals + 1;
              a.acc_facts <- a.acc_facts + nfacts
          in
          (* [None] means "first round": evaluate in full.  The delta
             carries its length, so per-round stats are O(1) instead of
             a [List.length] walk over the whole delta every round. *)
          let delta = ref None in
          let continue = ref true in
          while !continue && not !overflow && Atomic.get stop = None do
            if budget_active && check_budget () then ()
            else begin
              incr total_rounds;
              if !total_rounds > max_rounds then overflow := true
              else begin
                try
              stratum_rounds.(si) <- stratum_rounds.(si) + 1;
              let round = !total_rounds in
              let round_t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
              let delta_size =
                match !delta with None -> 0 | Some (_, n) -> n
              in
              let delta_filter =
                if naive then None
                else
                  match !delta with
                  | None -> None
                  | Some (ids, n) ->
                    let set = Hashtbl.create (max 8 n) in
                    let preds = Hashtbl.create 8 in
                    List.iter
                      (fun i ->
                        Hashtbl.replace set i ();
                        Hashtbl.replace preds (Database.pred_sym_of_fact st.db i) ())
                      ids;
                    Some { Matcher.mem = Hashtbl.mem set; has_pred = Hashtbl.mem preds }
              in
              let card = Database.pred_card st.db in
              let planned rs =
                List.map
                  (fun (r, acc) ->
                    let plan = Plan.compile ~card r in
                    if plan.Plan.reordered then incr plan_reorders;
                    (r, acc, plan))
                  rs
              in
              let plain = planned plain in
              let agg = planned agg in
              (* phase 1: match all plain rules against the pre-round db *)
              let rule_tasks =
                List.map
                  (fun (r, acc, plan) ->
                    let thunks =
                      match delta_filter with
                      | None ->
                        [ (fun () -> Matcher.match_rule ?interrupt ~plan st.db r) ]
                      | Some d ->
                        Matcher.delta_tasks ?interrupt ~plan ~delta:d st.db r
                    in
                    let thunks =
                      if not collect then List.map (fun t () -> (0., t ())) thunks
                      else
                        List.map
                          (fun t () ->
                            let t0 = Ekg_obs.Clock.now_s () in
                            let out = t () in
                            (Ekg_obs.Clock.now_s () -. t0, out))
                          thunks
                    in
                    (r, acc, thunks))
                  plain
              in
              let flat =
                Array.of_list
                  (List.concat_map (fun (_, _, ts) -> ts) rule_tasks)
              in
              let results =
                match pool with
                | Some p when Array.length flat > 1 -> Par.map p flat
                | _ -> Array.map (fun t -> t ()) flat
              in
              (* phase 2: insert sequentially, in rule then task order *)
              let added = ref [] in
              let added_count = ref 0 in
              let cursor = ref 0 in
              List.iter
                (fun (r, acc, thunks) ->
                  let match_time = ref 0. in
                  let rev_matches = ref [] in
                  List.iter
                    (fun _ ->
                      let dt, out = results.(!cursor) in
                      incr cursor;
                      match_time := !match_time +. dt;
                      rev_matches := out :: !rev_matches)
                    thunks;
                  let matches = List.concat (List.rev !rev_matches) in
                  let t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
                  let out = insert_plain_matches st ~round r matches in
                  let dt =
                    if collect then Ekg_obs.Clock.now_s () -. t0 else 0.
                  in
                  let n = List.length out in
                  charge acc (!match_time +. dt) n;
                  added_count := !added_count + n;
                  added := List.rev_append out !added)
                rule_tasks;
              (* aggregate rules see the round's plain insertions, as
                 they always did *)
              List.iter
                (fun (r, acc, plan) ->
                  let t0 = if collect then Ekg_obs.Clock.now_s () else 0. in
                  let out = apply_agg_rule st ~round ?interrupt ~plan r in
                  let dt =
                    if collect then Ekg_obs.Clock.now_s () -. t0 else 0.
                  in
                  let n = List.length out in
                  charge acc dt n;
                  added_count := !added_count + n;
                  added := List.rev_append out !added)
                agg;
              if collect then
                round_log :=
                  {
                    stratum = si;
                    round;
                    delta_size;
                    new_facts = !added_count;
                    time_s = Ekg_obs.Clock.now_s () -. round_t0;
                  }
                  :: !round_log;
              if !added_count = 0 then continue := false
              else delta := Some (!added, !added_count)
                with Matcher.Interrupted ->
                  (* tripped mid-match: [stop] is already set, the
                     round's partial matches are discarded (nothing was
                     inserted for them), and the loop exits above *)
                  ()
              end
            end
          done
        in
        let traced_stratum pool si rules =
          if Atomic.get stop = None then
            Ekg_obs.Trace.with_span_opt obs ?parent
              ~labels:[ ("stratum", string_of_int si) ]
              "chase.stratum"
              (fun span ->
                run_stratum pool si rules;
                match span with
                | Some sp ->
                  Ekg_obs.Trace.label sp "rounds"
                    (string_of_int stratum_rounds.(si))
                | None -> ())
        in
        Par.with_pool ~domains (fun pool ->
            List.iteri (traced_stratum pool) strata);
        let stratum_rounds_list =
          Array.to_list (Array.sub stratum_rounds 0 (List.length strata))
        in
        match Atomic.get stop with
        | Some reason ->
          (* the budget tripped: surface how far the run got so the
             caller can report partial progress (e.g. in a 504 body) *)
          let partial =
            {
              partial_rounds = !total_rounds;
              partial_derived = st.derived;
              partial_wall_s = Ekg_obs.Clock.now_s () -. t_start;
              partial_stratum_rounds = stratum_rounds_list;
            }
          in
          Error
            (match reason with
            | `Cancelled -> Cancelled partial
            | (`Deadline | `Facts | `Rounds) as r ->
              Budget_exceeded (r, partial))
        | None ->
        if !overflow then
          Error (Divergent { max_rounds; stratum_rounds = stratum_rounds_list })
        else begin
          (* negative constraints: a derived ⊥ aborts the task *)
          match Database.active st.db falsum with
          | violation :: _ ->
            let detail =
              match Provenance.derivation st.prov violation.Fact.id with
              | Some d ->
                Printf.sprintf "constraint %s violated by %s" d.rule_id
                  (String.concat ", "
                     (List.map
                        (fun id -> Fact.to_string (Database.fact st.db id))
                        d.premises))
              | None -> "constraint violated"
            in
            Error (Inconsistent detail)
          | [] ->
            let stats_record =
              if not collect then None
              else begin
                let per_rule =
                  List.rev_map
                    (fun a ->
                      {
                        rule_id = a.acc_rule;
                        stratum = a.acc_stratum;
                        time_s = a.acc_time;
                        evals = a.acc_evals;
                        facts = a.acc_facts;
                      })
                    !accs
                in
                Some
                  {
                    per_rule;
                    per_round = List.rev !round_log;
                    rounds_per_stratum = stratum_rounds_list;
                    agg_superseded = st.superseded;
                    wall_s = Ekg_obs.Clock.now_s () -. t_start;
                    domains = max 1 domains;
                    plan_reorders = !plan_reorders;
                  }
              end
            in
            (match stats, stats_record with
            | Some sink, Some s ->
              push_stats sink ~rounds:!total_rounds ~derived:st.derived s
            | _ -> ());
            Ok
              {
                db = st.db;
                prov = st.prov;
                rounds = !total_rounds;
                derived_count = st.derived;
                stats = stats_record;
              }
        end)))

let run ?naive ?domains ?max_rounds ?budget ?stats ?obs ?parent program edb =
  match
    run_checked ?naive ?domains ?max_rounds ?budget ?stats ?obs ?parent program
      edb
  with
  | Ok r -> Ok r
  | Error e -> Error (error_to_string e)

let run_exn ?naive ?domains ?max_rounds ?budget ?stats ?obs ?parent program edb =
  match run ?naive ?domains ?max_rounds ?budget ?stats ?obs ?parent program edb with
  | Ok r -> r
  | Error e -> failwith ("Chase.run: " ^ e)
