open Ekg_kernel
open Ekg_datalog

type result = {
  db : Database.t;
  prov : Provenance.t;
  rounds : int;
  derived_count : int;
}

let falsum = "false"

type state = {
  db : Database.t;
  prov : Provenance.t;
  (* current materialized aggregate fact per (rule id, group key) *)
  agg_current : (string * Value.t list, int) Hashtbl.t;
  mutable derived : int;
}

let instantiate_head st (r : Rule.t) binding =
  let existentials = Rule.existential_vars r in
  let nulls = Hashtbl.create 4 in
  let resolve (t : Term.t) =
    match t with
    | Term.Cst c -> Some c
    | Term.Var v -> (
      match Subst.find binding v with
      | Some x -> Some x
      | None ->
        if List.mem v existentials then begin
          match Hashtbl.find_opt nulls v with
          | Some n -> Some n
          | None ->
            let n = Database.fresh_null st.db in
            Hashtbl.add nulls v n;
            Some n
        end
        else None)
  in
  let args = List.map resolve r.head.Atom.args in
  if List.exists Option.is_none args then None
  else Some (Array.of_list (List.map Option.get args))

(* Restricted-chase preemption (§5: "application of chase steps that
   generate facts isomorphic to facts already in the chase is
   pre-empted"): skip an existential head when the database already
   holds a fact the instantiated non-existential positions map onto
   homomorphically — constants must agree, labelled nulls may map to
   any value (consistently), existential positions are unconstrained.
   Treating nulls as mappable is what terminates recursive existential
   chains such as person → hasParent → person. *)
let isomorphic_exists st (r : Rule.t) binding =
  let existentials = Rule.existential_vars r in
  if existentials = [] then false
  else begin
    (* per head position: [`Const c], [`Null n] or [`Free] *)
    let shape =
      List.map
        (fun (t : Term.t) ->
          match t with
          | Term.Cst (Value.Null _ as n) -> `Null n
          | Term.Cst c -> `Const c
          | Term.Var v -> (
            match Subst.find binding v with
            | Some (Value.Null _ as n) -> `Null n
            | Some c -> `Const c
            | None -> `Free))
        r.head.Atom.args
    in
    let homomorphic (f : Fact.t) =
      let mapping = Hashtbl.create 4 in
      let ok = ref true in
      List.iteri
        (fun i s ->
          if !ok then
            match s with
            | `Free -> ()
            | `Const c -> if not (Value.equal c f.args.(i)) then ok := false
            | `Null n -> (
              match Hashtbl.find_opt mapping n with
              | Some v -> if not (Value.equal v f.args.(i)) then ok := false
              | None -> Hashtbl.add mapping n f.args.(i)))
        shape;
      !ok
    in
    List.exists homomorphic (Database.active st.db (Rule.head_pred r))
  end

let apply_plain_rule st ~round ~delta (r : Rule.t) =
  let matches =
    match delta with
    | None -> Matcher.match_rule st.db r
    | Some in_delta -> Matcher.match_rule ~delta:in_delta st.db r
  in
  List.filter_map
    (fun (m : Matcher.match_result) ->
      if isomorphic_exists st r m.binding then None
      else
        match instantiate_head st r m.binding with
        | None -> None
        | Some tuple -> (
          let derivation =
            {
              Provenance.rule_id = r.id;
              premises = List.sort_uniq Int.compare m.used_facts;
              binding = m.binding;
              contributors = [];
              round;
            }
          in
          match Database.add st.db (Rule.head_pred r) tuple with
          | `Existing f ->
            (* an alternative derivation of a known fact: keep it for
               shortest-proof selection, but it is not a new fact —
               provided it is not circular (premises must precede) *)
            if
              (not (Provenance.is_edb st.prov f.Fact.id))
              && List.for_all (fun p -> p < f.Fact.id) derivation.premises
            then Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            None
          | `Added f ->
            st.derived <- st.derived + 1;
            Provenance.record st.prov ~fact_id:f.Fact.id derivation;
            Some f.Fact.id))
    matches

let apply_agg_rule st ~round (r : Rule.t) =
  let groups = Matcher.match_agg_rule st.db r in
  List.filter_map
    (fun (g : Matcher.agg_result) ->
      match instantiate_head st r g.group_binding with
      | None -> None
      | Some tuple -> (
        let group_key =
          List.map
            (fun v ->
              match Subst.find g.group_binding v with
              | Some x -> x
              | None -> Value.str "?")
            (Rule.group_vars r)
        in
        let reg_key = (r.id, group_key) in
        let previous = Hashtbl.find_opt st.agg_current reg_key in
        match Database.add st.db (Rule.head_pred r) tuple with
        | `Existing f ->
          (* The group's tuple is unchanged (e.g. the aggregate does not
             appear in the head): nothing new this round. *)
          if previous = None then Hashtbl.replace st.agg_current reg_key f.Fact.id;
          None
        | `Added f ->
          st.derived <- st.derived + 1;
          let premises =
            List.concat_map (fun (c : Provenance.contributor) -> c.facts) g.contributors
            |> List.sort_uniq Int.compare
          in
          Provenance.record st.prov ~fact_id:f.Fact.id
            {
              Provenance.rule_id = r.id;
              premises;
              binding = g.group_binding;
              contributors = g.contributors;
              round;
            };
          (match previous with
          | Some old_id when old_id <> f.Fact.id ->
            (* stale monotonic aggregate: supersede it *)
            Database.deactivate st.db old_id;
            Provenance.record_superseded st.prov ~old_fact:old_id ~by:f.Fact.id
          | Some _ | None -> ());
          Hashtbl.replace st.agg_current reg_key f.Fact.id;
          Some f.Fact.id))
    groups

type error =
  | Invalid_program of string list
  | Unstratifiable of string
  | Invalid_edb of string
  | Divergent of int
  | Inconsistent of string

let error_to_string = function
  | Invalid_program es -> String.concat "; " es
  | Unstratifiable e -> e
  | Invalid_edb e -> e
  | Divergent max_rounds ->
    Printf.sprintf "chase did not terminate within %d rounds" max_rounds
  | Inconsistent detail -> detail

let client_error = function
  | Invalid_program _ | Unstratifiable _ | Invalid_edb _ | Inconsistent _ -> true
  | Divergent _ -> false

let run_checked ?(naive = false) ?(max_rounds = 100_000) (program : Program.t) edb =
  match Program.validate program with
  | Error es -> Error (Invalid_program es)
  | Ok () -> (
    match Stratify.strata program with
    | Error e -> Error (Unstratifiable e)
    | Ok strata -> (
      let st =
        {
          db = Database.create ();
          prov = Provenance.create ();
          agg_current = Hashtbl.create 64;
          derived = 0;
        }
      in
      let edb_error = ref None in
      List.iter
        (fun a ->
          match Database.add_atom st.db a with
          | Ok _ -> ()
          | Error e -> if !edb_error = None then edb_error := Some e)
        edb;
      match !edb_error with
      | Some e -> Error (Invalid_edb e)
      | None -> (
        let total_rounds = ref 0 in
        let overflow = ref false in
        let run_stratum rules =
          let plain = List.filter (fun r -> not (Rule.has_agg r)) rules in
          let agg = List.filter Rule.has_agg rules in
          let delta = ref None in
          (* [None] means "first round": evaluate in full *)
          let continue = ref true in
          while !continue && not !overflow do
            incr total_rounds;
            if !total_rounds > max_rounds then overflow := true
            else begin
              let added = ref [] in
              let delta_filter =
                if naive then None
                else
                  match !delta with
                  | None -> None
                  | Some ids ->
                    let set = Hashtbl.create (List.length ids) in
                    let preds = Hashtbl.create 8 in
                    List.iter
                      (fun i ->
                        Hashtbl.replace set i ();
                        Hashtbl.replace preds (Database.fact st.db i).Fact.pred ())
                      ids;
                    Some { Matcher.mem = Hashtbl.mem set; has_pred = Hashtbl.mem preds }
              in
              List.iter
                (fun r ->
                  added := apply_plain_rule st ~round:!total_rounds ~delta:delta_filter r @ !added)
                plain;
              List.iter
                (fun r -> added := apply_agg_rule st ~round:!total_rounds r @ !added)
                agg;
              if !added = [] then continue := false else delta := Some !added
            end
          done
        in
        List.iter run_stratum strata;
        if !overflow then Error (Divergent max_rounds)
        else begin
          (* negative constraints: a derived ⊥ aborts the task *)
          match Database.active st.db falsum with
          | violation :: _ ->
            let detail =
              match Provenance.derivation st.prov violation.Fact.id with
              | Some d ->
                Printf.sprintf "constraint %s violated by %s" d.rule_id
                  (String.concat ", "
                     (List.map
                        (fun id -> Fact.to_string (Database.fact st.db id))
                        d.premises))
              | None -> "constraint violated"
            in
            Error (Inconsistent detail)
          | [] ->
            Ok
              {
                db = st.db;
                prov = st.prov;
                rounds = !total_rounds;
                derived_count = st.derived;
              }
        end)))

let run ?naive ?max_rounds program edb =
  match run_checked ?naive ?max_rounds program edb with
  | Ok r -> Ok r
  | Error e -> Error (error_to_string e)

let run_exn ?naive ?max_rounds program edb =
  match run ?naive ?max_rounds program edb with
  | Ok r -> r
  | Error e -> failwith ("Chase.run: " ^ e)
