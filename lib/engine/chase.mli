(** The chase procedure (§3): semi-naive fixpoint evaluation with
    monotonic aggregation, stratified negation, existential heads with
    isomorphism preemption, and full provenance recording.

    Monotonic aggregates are materialized per group; when a group's
    aggregate changes in a later round, the stale fact is deactivated
    (it remains in the chase graph) and the fresh value takes its
    place, so downstream rules always see the current total — the
    Vadalog [msum]/[mprod] behaviour the paper relies on.

    {2 Parallel evaluation}

    Each round runs a fixed two-phase protocol: every plain rule (every
    semi-naive seed pass) is {e matched} against the immutable
    pre-round database, then the matches are {e inserted} sequentially
    in rule order (aggregate rules follow, sequentially, as always).
    The match phase is pure reads, so with [?domains > 1] it fans out
    across a reusable {!Par} pool; all fact ids, labelled nulls,
    provenance records and the chase graph are allocated in the
    sequential insert phase and are therefore {e bit-identical} for
    every domain count, including [1].  Join orders come from per-round
    cost-based plans ({!Plan}), recompiled from live predicate
    cardinalities; ties keep textual order, so plans are deterministic
    too. *)

open Ekg_datalog

(** {1 Engine statistics}

    Collected when a [?stats] sink is supplied to {!run}: per-rule and
    per-stratum timings, per-round delta sizes, and aggregate-group
    churn — the engine-level monitoring a production reasoner needs
    before any targeted optimization (see ROADMAP). *)

type rule_stat = {
  rule_id : string;
  stratum : int;       (** 0-based stratum index the rule evaluated in *)
  time_s : float;      (** total matcher + insertion time across rounds *)
  evals : int;         (** rounds the rule was evaluated in *)
  facts : int;         (** facts this rule derived *)
  build_s : float;     (** sequential hash-index preparation seconds
                           (always [0.] under the nested engine and for
                           aggregate rules) *)
  probe_s : float;     (** match-phase seconds, summed over the rule's
                           parallel tasks — probe time under the hash
                           engine, scan time under the nested one *)
  insert_s : float;    (** sequential insertion seconds *)
}

type round_stat = {
  stratum : int;
  round : int;         (** global round number, 1-based *)
  delta_size : int;    (** facts in the incoming delta; [0] on a full round *)
  new_facts : int;     (** facts the round derived *)
  time_s : float;
}

type stats = {
  per_rule : rule_stat list;       (** program order *)
  per_round : round_stat list;     (** execution order *)
  rounds_per_stratum : int list;   (** by ascending stratum *)
  agg_superseded : int;            (** stale aggregate facts deactivated *)
  wall_s : float;                  (** chase wall-clock, EDB load included *)
  domains : int;                   (** domains the run fanned out over *)
  plan_reorders : int;             (** compiled plans deviating from
                                       textual body order, summed over
                                       rules × rounds *)
  join_strategy : string;          (** ["hash"] or ["nested"] — see
                                       {!Matcher.strategy} *)
  join_builds : int;               (** hash indexes built or extended
                                       during round planning, summed *)
  join_probe_hits : int;           (** matches emitted by plain-rule
                                       match phases, summed *)
}

type result = {
  db : Database.t;
  prov : Provenance.t;
  rounds : int;            (** fixpoint rounds executed *)
  derived_count : int;     (** facts added beyond the EDB *)
  stats : stats option;    (** populated when {!run} was given [?stats] *)
}

val falsum : string
(** The reserved 0-ary predicate ["false"]: a rule with head [false]
    is a negative constraint φ(x̄,ȳ) → ⊥ (§3, Vadalog Extensions).
    Deriving it makes the reasoning task fail with a diagnostic naming
    the violated constraint and the facts that triggered it. *)

type divergence = {
  max_rounds : int;                (** the bound that was hit *)
  stratum_rounds : int list;       (** rounds each stratum ran, ascending —
                                       the last entry names the culprit *)
}

(** {1 Budgets and cooperative cancellation}

    Production admission control (ROADMAP: bounded resource use as a
    precondition for serving reasoning): a {!budget} bounds a single
    materialization by wall-clock deadline, round count, derived-fact
    count, or an external cancel hook.  Budgets are checked at every
    round boundary and — for the deadline and the cancel hook — inside
    the per-rule match loops (every few thousand join nodes), so even a
    single pathological join cannot overshoot the deadline by much.
    {!unlimited} disables every check; results under it are
    bit-identical to a run without a budget. *)

type budget = {
  deadline_s : float option;
      (** absolute wall-clock instant ({!Ekg_obs.Clock.now_s} scale)
          past which the run stops *)
  budget_rounds : int option;   (** max fixpoint rounds *)
  budget_facts : int option;    (** max facts derived beyond the EDB *)
  cancel : (unit -> bool) option;
      (** external cancellation hook, polled with the deadline; must be
          cheap and domain-safe *)
}

val unlimited : budget

val budget :
  ?deadline_s:float -> ?rounds:int -> ?facts:int -> ?cancel:(unit -> bool) ->
  unit -> budget

val within_ms : float -> budget
(** [within_ms ms] is a budget whose deadline is [ms] milliseconds from
    now — the shape a per-request [X-Ekg-Deadline-Ms] header maps to. *)

type partial = {
  partial_rounds : int;          (** rounds completed (or started) *)
  partial_derived : int;         (** facts derived before the stop *)
  partial_wall_s : float;        (** elapsed wall-clock *)
  partial_stratum_rounds : int list;  (** rounds per stratum, ascending *)
}
(** How far a budgeted run got before it was stopped — the partial
    stats a service reports in its timeout responses. *)

type exhausted = [ `Deadline | `Facts | `Rounds ]

type error =
  | Invalid_program of string list
      (** Validation failures (unsafe rules, arity clashes, …). *)
  | Unstratifiable of string
      (** Recursion through negation. *)
  | Invalid_edb of string
      (** Non-ground or otherwise ill-formed extensional facts; also a
          {!retract_facts} request naming a {e derived} fact, which only
          the rules — not a client — may remove. *)
  | Divergent of divergence
      (** [max_rounds] exceeded; carries per-stratum round counts so
          the diagnostic can name the stratum that failed to
          converge. *)
  | Inconsistent of string
      (** A negative constraint φ → ⊥ fired; carries the diagnostic. *)
  | Unknown_fact of string
      (** A {!retract_facts} request named a fact that is not in the
          active extensional database. *)
  | Budget_exceeded of exhausted * partial
      (** The {!budget} tripped; names the exhausted resource and
          preserves partial progress. *)
  | Cancelled of partial
      (** The budget's [cancel] hook answered [true]. *)

val error_to_string : error -> string
(** Human-readable messages; {!Divergent} includes the per-stratum
    round counts, e.g.
    ["chase did not terminate within 50 rounds (rounds per stratum: #1=2, #2=48)"]. *)

val client_error : error -> bool
(** [true] for errors caused by the submitted program or data (a
    service should answer 4xx), [false] for resource exhaustion
    ({!Divergent}, {!Budget_exceeded}, {!Cancelled} — 5xx family). *)

val partial_to_string : partial -> string
(** ["12 rounds, 4096 facts derived, 51.2 ms elapsed"]. *)

val run_checked :
  ?naive:bool ->
  ?domains:int ->
  ?max_rounds:int ->
  ?budget:budget ->
  ?join:Matcher.strategy ->
  ?stats:Ekg_obs.Metrics.t ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  Program.t ->
  Atom.t list ->
  (result, error) Stdlib.result
(** Like {!run} but with a structured error, so callers (notably the
    explanation server) can distinguish bad input from engine limits
    without string matching. *)

val run :
  ?naive:bool ->
  ?domains:int ->
  ?max_rounds:int ->
  ?budget:budget ->
  ?join:Matcher.strategy ->
  ?stats:Ekg_obs.Metrics.t ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  Program.t ->
  Atom.t list ->
  (result, string) Stdlib.result
(** [run program edb] materializes the reasoning task over the
    extensional facts [edb].  Fails on unstratifiable programs,
    non-ground EDB facts, or when [max_rounds] (default [100_000]) is
    exceeded — the termination guard for programs outside the
    guaranteed-terminating fragment.  [budget] (default {!unlimited})
    additionally bounds the run by deadline / rounds / facts / cancel
    hook, failing with {!Budget_exceeded} or {!Cancelled} and partial
    stats.  [naive] disables semi-naive
    delta filtering (every rule re-evaluated in full each round);
    results are identical, only performance differs — kept for the
    ablation benchmarks.

    [domains] (default [1]) fans the per-round match phase out over
    that many domains (one reusable pool per run).  The result —
    facts, ids, nulls, provenance, chase graph — is bit-identical for
    every value; only wall-clock changes.

    [obs] opens one ["chase.stratum"] span per stratum (under
    [parent] when given), labelled with the stratum index and its
    round count.

    [stats] turns on engine profiling: the result carries a {!stats}
    record, and the run's totals are pushed into the sink registry as
    [ekg_chase_*] series ([ekg_chase_rounds_total],
    [ekg_chase_facts_derived_total],
    [ekg_chase_rule_seconds_total\{rule,stratum\}],
    [ekg_chase_domains], [ekg_chase_plan_reorders_total], …).  A
    disabled sink ({!Ekg_obs.Metrics.noop}) disables collection
    outright — [result.stats] stays [None] and the hot path pays a
    single branch, so instrumented call sites can leave observability
    off for free.  Without [stats] the hot path is likewise untouched
    — no clock reads per rule. *)

val run_exn :
  ?naive:bool ->
  ?domains:int ->
  ?max_rounds:int ->
  ?budget:budget ->
  ?join:Matcher.strategy ->
  ?stats:Ekg_obs.Metrics.t ->
  ?obs:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  Program.t ->
  Atom.t list ->
  result
(** Like {!run} but raising [Failure]. *)

(** {1 Incremental maintenance}

    Live updates to a completed materialization — the workload of a
    reasoner over a continuously changing financial KG (Vadalog over
    the Banca d'Italia ownership graph): absorb a stream of fact
    additions and retractions without a cold re-chase.

    {b Additions} warm-start the existing semi-naive loop: the new
    facts are the incoming delta, and each stratum re-runs to fixpoint
    with the usual per-round join planning and optional {!Par} domain
    fan-out.  {b Retractions} run DRed-style deletion propagation over
    the stored provenance DAG: first {e over-delete} the cone of
    consequences reachable from a retracted fact through any recorded
    derivation, then {e re-derive} every over-deleted fact that still
    has a surviving alternative proof by fully re-evaluating the rules
    deriving the deleted predicates.  Stratified negation is handled
    stratum-by-stratum: when a predicate that some rule negates has
    changed, that rule's previous conclusions are over-deleted and the
    rule is fully re-evaluated, so a deletion can {e enable} facts in a
    later stratum (and an addition can disable them).

    The contract, checked by property tests: after any sequence of
    updates, the active instance is {e content-identical}
    ({!Database.fingerprint}) to a cold chase over the updated fact
    base, and every active fact carries a valid provenance grounding in
    the current extensional database.

    Programs outside the incrementalizable fragment — monotonic
    aggregation (a retracted contributor invalidates materialized group
    totals) or existential heads (labelled-null identity is
    chase-order-dependent) — transparently fall back to a full
    re-chase over the updated extensional base; {!update} reports which
    path ran.  The input [result] is mutated in place on the
    incremental path and untouched by the fallback.

    {b Error contract.}  Validation errors ({!Invalid_edb},
    {!Unknown_fact}) are raised before any mutation, so on those the
    input is untouched.  {!Inconsistent} — a negative constraint fired
    by the update — and budget trips are only detected {e after} the
    incremental pass has mutated the database, so on those the mutated
    state is unspecified and the caller must discard it.  Callers that
    publish results to concurrent readers should therefore apply
    updates to a {!copy_result} copy and swap the pointer on success,
    which is what the server's registry does: its served snapshot is
    never mutated, so lock-free readers stay safe and every failed
    update leaves the pre-update state servable. *)

type update = {
  upd_incremental : bool;
      (** [true] when the delta algorithms ran; [false] when the
          program required the full-recompute fallback *)
  upd_rounds : int;        (** incremental (or fallback) rounds executed *)
  upd_added : int;         (** facts that became active, re-derivations excluded *)
  upd_retracted : int;     (** facts deactivated and not restored — retraction
                               seeds plus their unsupported consequences *)
  upd_rederived : int;     (** over-deleted facts restored by a surviving
                               alternative derivation *)
  upd_changed_preds : string list;
      (** predicates whose active content (or recorded provenance) may
          have changed — the cache-invalidation key, sorted *)
}

val incrementable : Program.t -> bool
(** Whether the program is in the fragment maintained by the delta
    algorithms (no monotonic aggregation, no existential heads). *)

val affected_preds : Program.t -> string list -> string list
(** Downstream closure of the seed predicates over the program's
    dependency graph: every predicate whose content could change when
    facts of a seed predicate change.  Sorted; includes the seeds. *)

val edb_atoms : result -> Atom.t list
(** The active extensional facts as ground atoms, in insertion order —
    the fact base a cold re-chase of this result would start from. *)

val copy_result : result -> result
(** Deep copy of a materialization — database, indexes, provenance —
    sharing only immutable values.  {!add_facts} / {!retract_facts}
    applied to the copy leave the original (and any reader holding it)
    untouched, enabling copy-on-write publication under concurrency.
    O(facts + index entries), well below a re-chase. *)

val add_facts :
  ?domains:int ->
  ?max_rounds:int ->
  ?budget:budget ->
  Program.t ->
  result ->
  Atom.t list ->
  (result * update, error) Stdlib.result
(** [add_facts program res facts] inserts the ground [facts] into the
    extensional database of the completed materialization [res] and
    restores the fixpoint.  Atoms already present are idempotent
    no-ops; an atom matching a previously derived fact makes that fact
    extensional (as a cold chase on the new base would).  [budget] and
    [max_rounds] bound the propagation exactly as in {!run};
    [domains] fans the match phases out over a {!Par} pool.  An
    addition that fires a negative constraint fails with
    {!Inconsistent} only after the fixpoint was restored — [res] is
    then mutated and must be discarded (see the error contract
    above). *)

val retract_facts :
  ?domains:int ->
  ?max_rounds:int ->
  ?budget:budget ->
  Program.t ->
  result ->
  Atom.t list ->
  (result * update, error) Stdlib.result
(** [retract_facts program res facts] removes the ground extensional
    [facts] and every consequence that no longer has a derivation.
    Fails with {!Unknown_fact} when a named fact is not active
    extensional data, and with {!Invalid_edb} when it is a derived
    fact; validation completes before any mutation, so a request
    failing validation leaves [res] untouched.  A retraction can still
    fail {e after} mutation: under stratified negation a deletion may
    enable a later-stratum negative constraint, surfacing as
    {!Inconsistent} with [res] mutated (see the error contract
    above). *)
