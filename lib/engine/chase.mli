(** The chase procedure (§3): semi-naive fixpoint evaluation with
    monotonic aggregation, stratified negation, existential heads with
    isomorphism preemption, and full provenance recording.

    Monotonic aggregates are materialized per group; when a group's
    aggregate changes in a later round, the stale fact is deactivated
    (it remains in the chase graph) and the fresh value takes its
    place, so downstream rules always see the current total — the
    Vadalog [msum]/[mprod] behaviour the paper relies on. *)

open Ekg_datalog

type result = {
  db : Database.t;
  prov : Provenance.t;
  rounds : int;            (** fixpoint rounds executed *)
  derived_count : int;     (** facts added beyond the EDB *)
}

val falsum : string
(** The reserved 0-ary predicate ["false"]: a rule with head [false]
    is a negative constraint φ(x̄,ȳ) → ⊥ (§3, Vadalog Extensions).
    Deriving it makes the reasoning task fail with a diagnostic naming
    the violated constraint and the facts that triggered it. *)

type error =
  | Invalid_program of string list
      (** Validation failures (unsafe rules, arity clashes, …). *)
  | Unstratifiable of string
      (** Recursion through negation. *)
  | Invalid_edb of string
      (** Non-ground or otherwise ill-formed extensional facts. *)
  | Divergent of int
      (** [max_rounds] exceeded; carries the bound that was hit. *)
  | Inconsistent of string
      (** A negative constraint φ → ⊥ fired; carries the diagnostic. *)

val error_to_string : error -> string
(** The exact human-readable messages {!run} has always produced. *)

val client_error : error -> bool
(** [true] for errors caused by the submitted program or data (a
    service should answer 4xx), [false] for resource exhaustion
    ({!Divergent} — a 5xx). *)

val run_checked :
  ?naive:bool ->
  ?max_rounds:int ->
  Program.t ->
  Atom.t list ->
  (result, error) Stdlib.result
(** Like {!run} but with a structured error, so callers (notably the
    explanation server) can distinguish bad input from engine limits
    without string matching. *)

val run :
  ?naive:bool ->
  ?max_rounds:int ->
  Program.t ->
  Atom.t list ->
  (result, string) Stdlib.result
(** [run program edb] materializes the reasoning task over the
    extensional facts [edb].  Fails on unstratifiable programs,
    non-ground EDB facts, or when [max_rounds] (default [100_000]) is
    exceeded — the termination guard for programs outside the
    guaranteed-terminating fragment.  [naive] disables semi-naive
    delta filtering (every rule re-evaluated in full each round);
    results are identical, only performance differs — kept for the
    ablation benchmarks. *)

val run_exn : ?naive:bool -> ?max_rounds:int -> Program.t -> Atom.t list -> result
(** Like {!run} but raising [Failure]. *)
