open Ekg_kernel
open Ekg_datalog

(* primary key: interned predicate symbol + ground tuple *)
module Key = struct
  type t = int * Value.t array

  let equal (p1, a1) (p2, a2) =
    p1 = p2
    && Array.length a1 = Array.length a2
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if not (Value.equal v a2.(i)) then ok := false) a1;
    !ok

  let hash (p, a) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) p a
end

module KeyTbl = Hashtbl.Make (Key)

(* secondary index: facts by (predicate symbol, argument position, value) *)
module ArgKey = struct
  type t = int * int * Value.t

  let equal (p1, i1, v1) (p2, i2, v2) = p1 = p2 && i1 = i2 && Value.equal v1 v2
  let hash (p, i, v) = (p * 31) + (i * 7) + Value.hash v
end

module ArgTbl = Hashtbl.Make (ArgKey)

let no_fact = { Fact.id = -1; pred = ""; args = [||] }

(* read-only: the "no posting" result of index probes *)
let empty_posting = Intvec.create ~capacity:1 ()

type t = {
  syms : Symtab.t;
  (* fact ids are dense from 0: both stores are flat growable arrays *)
  mutable facts : Fact.t array;            (* fact by id *)
  fact_syms : Intvec.t;                    (* pred symbol by fact id *)
  by_key : int KeyTbl.t;
  mutable by_pred : Intvec.t array;        (* posting list by pred symbol *)
  by_arg : Intvec.t ArgTbl.t;
  inactive : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable null_counter : int;
}

let create () =
  {
    syms = Symtab.create ();
    facts = Array.make 256 no_fact;
    fact_syms = Intvec.create ~capacity:256 ();
    by_key = KeyTbl.create 256;
    by_pred = Array.make 16 (Intvec.create ~capacity:0 ());
    by_arg = ArgTbl.create 1024;
    inactive = Hashtbl.create 16;
    next_id = 0;
    null_counter = 0;
  }

let copy t =
  (* facts and their tuples are immutable once inserted, so sharing the
     Fact.t values is safe; every mutable container is copied.  Unused
     by_pred slots alias one shared empty vector, exactly as in
     [create] — [intern] installs a fresh posting before any push. *)
  let by_pred =
    Array.make (Array.length t.by_pred) (Intvec.create ~capacity:0 ())
  in
  for sym = 0 to Symtab.size t.syms - 1 do
    by_pred.(sym) <- Intvec.copy t.by_pred.(sym)
  done;
  let by_arg = ArgTbl.create (max 1024 (ArgTbl.length t.by_arg)) in
  ArgTbl.iter (fun k vec -> ArgTbl.add by_arg k (Intvec.copy vec)) t.by_arg;
  {
    syms = Symtab.copy t.syms;
    facts = Array.copy t.facts;
    fact_syms = Intvec.copy t.fact_syms;
    by_key = KeyTbl.copy t.by_key;
    by_pred;
    by_arg;
    inactive = Hashtbl.copy t.inactive;
    next_id = t.next_id;
    null_counter = t.null_counter;
  }

let intern t pred =
  let before = Symtab.size t.syms in
  let sym = Symtab.intern t.syms pred in
  if Symtab.size t.syms > before then begin
    (* fresh symbol: make room and install its own posting list (the
       initial array slots alias one shared empty vector) *)
    if sym >= Array.length t.by_pred then begin
      let grown =
        Array.make (max (2 * Array.length t.by_pred) (sym + 1)) t.by_pred.(0)
      in
      Array.blit t.by_pred 0 grown 0 (Array.length t.by_pred);
      t.by_pred <- grown
    end;
    t.by_pred.(sym) <- Intvec.create ()
  end;
  sym

let pred_sym t pred = Symtab.find t.syms pred

let posting t sym =
  if sym >= 0 && sym < Array.length t.by_pred then t.by_pred.(sym)
  else invalid_arg "Database.posting"

let add t pred args =
  let sym = intern t pred in
  let key = (sym, args) in
  match KeyTbl.find_opt t.by_key key with
  | Some id -> `Existing t.facts.(id)
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    let f = { Fact.id; pred; args } in
    if id = Array.length t.facts then begin
      let grown = Array.make (2 * id) no_fact in
      Array.blit t.facts 0 grown 0 id;
      t.facts <- grown
    end;
    t.facts.(id) <- f;
    Intvec.push t.fact_syms sym;
    KeyTbl.add t.by_key key id;
    Intvec.push t.by_pred.(sym) id;
    Array.iteri
      (fun i v ->
        let k = (sym, i, v) in
        match ArgTbl.find_opt t.by_arg k with
        | Some vec -> Intvec.push vec id
        | None ->
          let vec = Intvec.create () in
          Intvec.push vec id;
          ArgTbl.add t.by_arg k vec)
      args;
    `Added f

let add_atom t (a : Atom.t) =
  if not (Atom.is_ground a) then Error ("non-ground fact: " ^ Atom.to_string a)
  else begin
    let args =
      Array.of_list
        (List.map (function Term.Cst c -> c | Term.Var _ -> assert false) a.args)
    in
    Ok (add t a.pred args)
  end

let deactivate t id = Hashtbl.replace t.inactive id ()
let reactivate t id = Hashtbl.remove t.inactive id

let is_active t id =
  id >= 0 && id < t.next_id && not (Hashtbl.mem t.inactive id)

let fact t id =
  if id < 0 || id >= t.next_id then raise Not_found;
  t.facts.(id)

let pred_sym_of_fact t id =
  if id < 0 || id >= t.next_id then raise Not_found;
  Intvec.get t.fact_syms id

let find_exact t pred args =
  match Symtab.find t.syms pred with
  | None -> None
  | Some sym ->
    Option.map (fun id -> t.facts.(id)) (KeyTbl.find_opt t.by_key (sym, args))

let ids_of_pred t pred =
  match Symtab.find t.syms pred with
  | None -> []
  | Some sym -> Intvec.to_list (posting t sym)

let all_of_pred t pred = List.map (fact t) (ids_of_pred t pred)

let active t pred =
  match Symtab.find t.syms pred with
  | None -> []
  | Some sym ->
    Intvec.fold_left
      (fun acc id -> if is_active t id then t.facts.(id) :: acc else acc)
      [] (posting t sym)
    |> List.rev

let pred_card t pred =
  match Symtab.find t.syms pred with
  | None -> 0
  | Some sym -> Intvec.length (posting t sym)

let preds t =
  let acc = ref [] in
  Symtab.iter (fun _ name -> acc := name :: !acc) t.syms;
  List.sort String.compare !acc

let active_all t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    if is_active t id then acc := t.facts.(id) :: !acc
  done;
  !acc

let size t = t.next_id
let active_size t = size t - Hashtbl.length t.inactive

let fingerprint t =
  let lines = ref [] in
  for id = t.next_id - 1 downto 0 do
    if is_active t id then lines := Fact.to_string t.facts.(id) :: !lines
  done;
  String.concat "\n" (List.sort String.compare !lines)

let fresh_null t =
  let i = t.null_counter in
  t.null_counter <- i + 1;
  Value.null i

(* The narrowest candidate posting for a pattern under a substitution:
   the shortest argument index over the bound positions, else the full
   predicate posting.  Lengths are O(1), so probing every bound
   position costs a few hash lookups, not list walks. *)
let candidates t sym (pattern : Atom.t) subst =
  let best = ref None in
  List.iteri
    (fun i (term : Term.t) ->
      let bound =
        match term with
        | Term.Cst c -> Some c
        | Term.Var v -> Subst.find subst v
      in
      match bound with
      | None -> ()
      | Some v ->
        let vec =
          match ArgTbl.find_opt t.by_arg (sym, i, v) with
          | Some vec -> vec
          | None -> empty_posting
        in
        (match !best with
        | Some shorter when Intvec.length shorter <= Intvec.length vec -> ()
        | Some _ | None -> best := Some vec))
    pattern.args;
  match !best with Some vec -> vec | None -> posting t sym

let matching t (pattern : Atom.t) subst =
  match Symtab.find t.syms pattern.pred with
  | None -> []
  | Some sym ->
    let arity = List.length pattern.args in
    Intvec.fold_left
      (fun acc id ->
        if not (is_active t id) then acc
        else begin
          let f = t.facts.(id) in
          if Array.length f.Fact.args <> arity then acc
          else
            match Subst.match_atom subst ~pattern f.Fact.args with
            | Some s -> (f, s) :: acc
            | None -> acc
        end)
      []
      (candidates t sym pattern subst)
    |> List.rev

let exists_matching t (pattern : Atom.t) subst =
  match Symtab.find t.syms pattern.pred with
  | None -> false
  | Some sym ->
    let arity = List.length pattern.args in
    Intvec.exists
      (fun id ->
        is_active t id
        &&
        let f = t.facts.(id) in
        Array.length f.Fact.args = arity
        && Subst.match_atom subst ~pattern f.Fact.args <> None)
      (candidates t sym pattern subst)

(* --- snapshot codec ----------------------------------------------------------

   The encoding stores the insertion sequence, not the index
   structures: [decode] replays every fact through [add] in id order,
   which rebuilds [by_key]/[by_pred]/[by_arg] and re-interns predicates
   in exactly the original order (symbols are assigned at first
   insertion).  The symbol table is still written explicitly so decode
   can verify the replay reproduced it bit-for-bit. *)

let encode b t =
  Symtab.encode b t.syms;
  Wire.w_int b t.next_id;
  for id = 0 to t.next_id - 1 do
    let f = t.facts.(id) in
    Wire.w_int b (Intvec.get t.fact_syms id);
    Wire.w_int b (Array.length f.Fact.args);
    Array.iter (Wire.w_value b) f.Fact.args
  done;
  Wire.w_int b (Hashtbl.length t.inactive);
  List.iter (Wire.w_int b)
    (List.sort Int.compare
       (Hashtbl.fold (fun id () acc -> id :: acc) t.inactive []));
  Wire.w_int b t.null_counter

let decode r =
  let syms = Symtab.decode r in
  let t = create () in
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "Database: negative fact count");
  for id = 0 to n - 1 do
    let sym = Wire.r_int r in
    if sym < 0 || sym >= Symtab.size syms then
      raise (Wire.Corrupt "Database: fact symbol out of range");
    let arity = Wire.r_int r in
    if arity < 0 then raise (Wire.Corrupt "Database: negative arity");
    let args = Array.make arity (Ekg_kernel.Value.Int 0) in
    for i = 0 to arity - 1 do
      args.(i) <- Wire.r_value r
    done;
    match add t (Symtab.name syms sym) args with
    | `Added f when f.Fact.id = id -> ()
    | `Added _ | `Existing _ ->
      raise (Wire.Corrupt "Database: replay did not reproduce fact ids")
  done;
  if Symtab.size t.syms <> Symtab.size syms then
    raise (Wire.Corrupt "Database: replay did not reproduce the symbol table");
  Symtab.iter
    (fun id name ->
      if Symtab.find t.syms name <> Some id then
        raise (Wire.Corrupt "Database: replay did not reproduce the symbol table"))
    syms;
  let inactive = Wire.r_int r in
  if inactive < 0 then raise (Wire.Corrupt "Database: negative inactive count");
  for _ = 1 to inactive do
    let id = Wire.r_int r in
    if id < 0 || id >= t.next_id then
      raise (Wire.Corrupt "Database: inactive id out of range");
    deactivate t id
  done;
  let null_counter = Wire.r_int r in
  if null_counter < 0 then
    raise (Wire.Corrupt "Database: negative null counter");
  t.null_counter <- null_counter;
  t
