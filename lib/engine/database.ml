open Ekg_kernel
open Ekg_datalog

(* primary key: interned predicate symbol + ground tuple *)
module Key = struct
  type t = int * Value.t array

  let equal (p1, a1) (p2, a2) =
    p1 = p2
    && Array.length a1 = Array.length a2
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if not (Value.equal v a2.(i)) then ok := false) a1;
    !ok

  let hash (p, a) = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) p a
end

module KeyTbl = Hashtbl.Make (Key)

(* secondary index: facts by (predicate symbol, argument position, value) *)
module ArgKey = struct
  type t = int * int * Value.t

  let equal (p1, i1, v1) (p2, i2, v2) = p1 = p2 && i1 = i2 && Value.equal v1 v2
  let hash (p, i, v) = (p * 31) + (i * 7) + Value.hash v
end

module ArgTbl = Hashtbl.Make (ArgKey)

(* value interning: one dense id per [Value.equal]-class.  The matcher's
   hash-join core compares and hashes interned ids instead of values —
   [Value.equal] identifies numerically equal [Int]/[Num] values, so the
   interning must too, or the columnar probe would miss matches the
   tuple-level [Subst.match_atom] finds. *)
module ValTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let no_fact = { Fact.id = -1; pred = ""; args = [||] }

(* read-only: the "no posting" result of index probes *)
let empty_posting = Intvec.create ~capacity:1 ()

(* A multi-column hash index over a column group, keyed by a bitmask of
   key columns.  Buckets hold row numbers in ascending order (rows are
   only ever appended), and [ix_rows] is the watermark of rows already
   indexed: extending the index after a round's insertions only scans
   the new rows.  Collisions are benign — the matcher re-checks every
   column of a candidate row against its interned ids.

   The bucket table is open-addressing with linear probing rather than
   a stdlib [Hashtbl]: the join core issues one probe per candidate
   partial match (millions per round on dense joins) and a probe here
   is a multiply, a mask and an array walk — no seeded rehash of the
   key, no option or bucket-list allocation.  A slot is empty iff its
   bucket is physically [empty_posting]; live buckets are always
   freshly allocated, so the sentinel is unambiguous. *)
type colindex = {
  mutable ix_keys : int array;      (* full key hash per slot *)
  mutable ix_buckets : Intvec.t array;  (* rows, ascending; empty_posting = free *)
  mutable ix_used : int;            (* live slots; capacity kept > 2x *)
  mutable ix_cap_mask : int;        (* capacity - 1, capacity a power of 2 *)
  mutable ix_rows : int;            (* rows [0, ix_rows) are indexed *)
}

let ix_create () =
  {
    ix_keys = Array.make 16 0;
    ix_buckets = Array.make 16 empty_posting;
    ix_used = 0;
    ix_cap_mask = 15;
    ix_rows = 0;
  }

(* multiplicative spread of the (possibly negative) key hash into a
   slot; linear probing resolves residual clustering *)
let ix_slot cap_mask h = (h * 0x9E3779B1) land max_int land cap_mask

(* slot holding key [h], or the first free slot of its probe chain *)
let ix_find ix h =
  let cap_mask = ix.ix_cap_mask in
  let i = ref (ix_slot cap_mask h) in
  while
    ix.ix_buckets.(!i) != empty_posting && ix.ix_keys.(!i) <> h
  do
    i := (!i + 1) land cap_mask
  done;
  !i

let ix_grow ix =
  let old_keys = ix.ix_keys and old_buckets = ix.ix_buckets in
  let cap = 2 * (ix.ix_cap_mask + 1) in
  ix.ix_keys <- Array.make cap 0;
  ix.ix_buckets <- Array.make cap empty_posting;
  ix.ix_cap_mask <- cap - 1;
  Array.iteri
    (fun i bucket ->
      if bucket != empty_posting then begin
        let s = ix_find ix old_keys.(i) in
        ix.ix_keys.(s) <- old_keys.(i);
        ix.ix_buckets.(s) <- bucket
      end)
    old_buckets

let ix_add ix h row =
  if 2 * (ix.ix_used + 1) > ix.ix_cap_mask + 1 then ix_grow ix;
  let s = ix_find ix h in
  if ix.ix_buckets.(s) != empty_posting then Intvec.push ix.ix_buckets.(s) row
  else begin
    let vec = Intvec.create ~capacity:4 () in
    Intvec.push vec row;
    ix.ix_keys.(s) <- h;
    ix.ix_buckets.(s) <- vec;
    ix.ix_used <- ix.ix_used + 1
  end

(* Struct-of-arrays storage for one (predicate symbol, arity): each
   argument position is a flat column of interned value ids, and
   [cg_rows] maps row number back to fact id.  Row order is insertion
   order, i.e. ascending fact id — the property that lets the hash-join
   matcher reproduce the nested-loop matcher's enumeration order
   exactly. *)
type colgroup = {
  cg_arity : int;
  cg_cols : Intvec.t array;            (* per argument position: vids *)
  cg_rows : Intvec.t;                  (* row -> fact id *)
  cg_indexes : (int, colindex) Hashtbl.t;  (* key-column mask -> index *)
}

type t = {
  syms : Symtab.t;
  (* fact ids are dense from 0: both stores are flat growable arrays *)
  mutable facts : Fact.t array;            (* fact by id *)
  fact_syms : Intvec.t;                    (* pred symbol by fact id *)
  by_key : int KeyTbl.t;
  mutable by_pred : Intvec.t array;        (* posting list by pred symbol *)
  by_arg : Intvec.t ArgTbl.t;
  (* activation state: one bit per fact id, set = active *)
  mutable active_bits : Bytes.t;
  mutable inactive_count : int;
  (* columnar representation *)
  cols : (int * int, colgroup) Hashtbl.t;  (* (sym, arity) -> group *)
  val_ids : int ValTbl.t;                  (* value -> vid *)
  mutable val_arr : Value.t array;         (* vid -> first-interned value *)
  mutable val_count : int;
  mutable next_id : int;
  mutable null_counter : int;
}

let create () =
  {
    syms = Symtab.create ();
    facts = Array.make 256 no_fact;
    fact_syms = Intvec.create ~capacity:256 ();
    by_key = KeyTbl.create 256;
    by_pred = Array.make 16 (Intvec.create ~capacity:0 ());
    by_arg = ArgTbl.create 1024;
    active_bits = Bytes.make 32 '\000';
    inactive_count = 0;
    cols = Hashtbl.create 32;
    val_ids = ValTbl.create 1024;
    val_arr = Array.make 256 (Value.Int 0);
    val_count = 0;
    next_id = 0;
    null_counter = 0;
  }

let copy t =
  (* facts and their tuples are immutable once inserted, so sharing the
     Fact.t values is safe; every mutable container is copied.  Unused
     by_pred slots alias one shared empty vector, exactly as in
     [create] — [intern] installs a fresh posting before any push.
     Column-group hash indexes are {e not} copied: they are pure caches
     that [ensure_index] rebuilds on demand. *)
  let by_pred =
    Array.make (Array.length t.by_pred) (Intvec.create ~capacity:0 ())
  in
  for sym = 0 to Symtab.size t.syms - 1 do
    by_pred.(sym) <- Intvec.copy t.by_pred.(sym)
  done;
  let by_arg = ArgTbl.create (max 1024 (ArgTbl.length t.by_arg)) in
  ArgTbl.iter (fun k vec -> ArgTbl.add by_arg k (Intvec.copy vec)) t.by_arg;
  let cols = Hashtbl.create (max 32 (Hashtbl.length t.cols)) in
  Hashtbl.iter
    (fun k (g : colgroup) ->
      Hashtbl.add cols k
        {
          cg_arity = g.cg_arity;
          cg_cols = Array.map Intvec.copy g.cg_cols;
          cg_rows = Intvec.copy g.cg_rows;
          cg_indexes = Hashtbl.create 4;
        })
    t.cols;
  {
    syms = Symtab.copy t.syms;
    facts = Array.copy t.facts;
    fact_syms = Intvec.copy t.fact_syms;
    by_key = KeyTbl.copy t.by_key;
    by_pred;
    by_arg;
    active_bits = Bytes.copy t.active_bits;
    inactive_count = t.inactive_count;
    cols;
    val_ids = ValTbl.copy t.val_ids;
    val_arr = Array.copy t.val_arr;
    val_count = t.val_count;
    next_id = t.next_id;
    null_counter = t.null_counter;
  }

let intern t pred =
  let before = Symtab.size t.syms in
  let sym = Symtab.intern t.syms pred in
  if Symtab.size t.syms > before then begin
    (* fresh symbol: make room and install its own posting list (the
       initial array slots alias one shared empty vector) *)
    if sym >= Array.length t.by_pred then begin
      let grown =
        Array.make (max (2 * Array.length t.by_pred) (sym + 1)) t.by_pred.(0)
      in
      Array.blit t.by_pred 0 grown 0 (Array.length t.by_pred);
      t.by_pred <- grown
    end;
    t.by_pred.(sym) <- Intvec.create ()
  end;
  sym

let pred_sym t pred = Symtab.find t.syms pred

let posting t sym =
  if sym >= 0 && sym < Array.length t.by_pred then t.by_pred.(sym)
  else invalid_arg "Database.posting"

(* --- activation bitmap ------------------------------------------------------ *)

let bit_set t id =
  let byte = id lsr 3 in
  if byte >= Bytes.length t.active_bits then begin
    let grown =
      Bytes.make (max (2 * Bytes.length t.active_bits) (byte + 1)) '\000'
    in
    Bytes.blit t.active_bits 0 grown 0 (Bytes.length t.active_bits);
    t.active_bits <- grown
  end;
  Bytes.unsafe_set t.active_bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.active_bits byte) lor (1 lsl (id land 7))))

let bit_clear t id =
  let byte = id lsr 3 in
  Bytes.unsafe_set t.active_bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.active_bits byte)
       land lnot (1 lsl (id land 7))))

let bit_get t id =
  Char.code (Bytes.unsafe_get t.active_bits (id lsr 3)) land (1 lsl (id land 7))
  <> 0

(* --- value interning and column groups -------------------------------------- *)

let intern_value t v =
  match ValTbl.find_opt t.val_ids v with
  | Some vid -> vid
  | None ->
    let vid = t.val_count in
    if vid = Array.length t.val_arr then begin
      let grown = Array.make (2 * vid) (Value.Int 0) in
      Array.blit t.val_arr 0 grown 0 vid;
      t.val_arr <- grown
    end;
    t.val_arr.(vid) <- v;
    t.val_count <- vid + 1;
    ValTbl.add t.val_ids v vid;
    vid

let colgroup_of t sym arity =
  match Hashtbl.find_opt t.cols (sym, arity) with
  | Some g -> g
  | None ->
    let g =
      {
        cg_arity = arity;
        cg_cols = Array.init arity (fun _ -> Intvec.create ~capacity:16 ());
        cg_rows = Intvec.create ~capacity:16 ();
        cg_indexes = Hashtbl.create 4;
      }
    in
    Hashtbl.add t.cols (sym, arity) g;
    g

let add t pred args =
  let sym = intern t pred in
  let key = (sym, args) in
  match KeyTbl.find_opt t.by_key key with
  | Some id -> `Existing t.facts.(id)
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    let f = { Fact.id; pred; args } in
    if id = Array.length t.facts then begin
      let grown = Array.make (2 * id) no_fact in
      Array.blit t.facts 0 grown 0 id;
      t.facts <- grown
    end;
    t.facts.(id) <- f;
    Intvec.push t.fact_syms sym;
    KeyTbl.add t.by_key key id;
    Intvec.push t.by_pred.(sym) id;
    bit_set t id;
    Array.iteri
      (fun i v ->
        let k = (sym, i, v) in
        match ArgTbl.find_opt t.by_arg k with
        | Some vec -> Intvec.push vec id
        | None ->
          let vec = Intvec.create () in
          Intvec.push vec id;
          ArgTbl.add t.by_arg k vec)
      args;
    (* columnar mirror: append one row of interned value ids *)
    let g = colgroup_of t sym (Array.length args) in
    Array.iteri (fun i v -> Intvec.push g.cg_cols.(i) (intern_value t v)) args;
    Intvec.push g.cg_rows id;
    `Added f

let add_atom t (a : Atom.t) =
  if not (Atom.is_ground a) then Error ("non-ground fact: " ^ Atom.to_string a)
  else begin
    let args =
      Array.of_list
        (List.map (function Term.Cst c -> c | Term.Var _ -> assert false) a.args)
    in
    Ok (add t a.pred args)
  end

let deactivate t id =
  if id >= 0 && id < t.next_id && bit_get t id then begin
    bit_clear t id;
    t.inactive_count <- t.inactive_count + 1
  end

let reactivate t id =
  if id >= 0 && id < t.next_id && not (bit_get t id) then begin
    bit_set t id;
    t.inactive_count <- t.inactive_count - 1
  end

let is_active t id = id >= 0 && id < t.next_id && bit_get t id
let all_active t = t.inactive_count = 0

let fact t id =
  if id < 0 || id >= t.next_id then raise Not_found;
  t.facts.(id)

let pred_sym_of_fact t id =
  if id < 0 || id >= t.next_id then raise Not_found;
  Intvec.get t.fact_syms id

let find_exact t pred args =
  match Symtab.find t.syms pred with
  | None -> None
  | Some sym ->
    Option.map (fun id -> t.facts.(id)) (KeyTbl.find_opt t.by_key (sym, args))

let ids_of_pred t pred =
  match Symtab.find t.syms pred with
  | None -> []
  | Some sym -> Intvec.to_list (posting t sym)

let all_of_pred t pred = List.map (fact t) (ids_of_pred t pred)

let active t pred =
  match Symtab.find t.syms pred with
  | None -> []
  | Some sym ->
    Intvec.fold_left
      (fun acc id -> if is_active t id then t.facts.(id) :: acc else acc)
      [] (posting t sym)
    |> List.rev

let pred_card t pred =
  match Symtab.find t.syms pred with
  | None -> 0
  | Some sym -> Intvec.length (posting t sym)

let preds t =
  let acc = ref [] in
  Symtab.iter (fun _ name -> acc := name :: !acc) t.syms;
  List.sort String.compare !acc

let active_all t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    if is_active t id then acc := t.facts.(id) :: !acc
  done;
  !acc

let size t = t.next_id
let active_size t = size t - t.inactive_count

let fingerprint t =
  let lines = ref [] in
  for id = t.next_id - 1 downto 0 do
    if is_active t id then lines := Fact.to_string t.facts.(id) :: !lines
  done;
  String.concat "\n" (List.sort String.compare !lines)

let fresh_null t =
  let i = t.null_counter in
  t.null_counter <- i + 1;
  Value.null i

(* The narrowest candidate posting for a pattern under a substitution:
   the shortest argument index over the bound positions, else the full
   predicate posting.  Lengths are O(1), so probing every bound
   position costs a few hash lookups, not list walks. *)
let candidates t sym (pattern : Atom.t) subst =
  let best = ref None in
  List.iteri
    (fun i (term : Term.t) ->
      let bound =
        match term with
        | Term.Cst c -> Some c
        | Term.Var v -> Subst.find subst v
      in
      match bound with
      | None -> ()
      | Some v ->
        let vec =
          match ArgTbl.find_opt t.by_arg (sym, i, v) with
          | Some vec -> vec
          | None -> empty_posting
        in
        (match !best with
        | Some shorter when Intvec.length shorter <= Intvec.length vec -> ()
        | Some _ | None -> best := Some vec))
    pattern.args;
  match !best with Some vec -> vec | None -> posting t sym

let matching t (pattern : Atom.t) subst =
  match Symtab.find t.syms pattern.pred with
  | None -> []
  | Some sym ->
    let arity = List.length pattern.args in
    Intvec.fold_left
      (fun acc id ->
        if not (is_active t id) then acc
        else begin
          let f = t.facts.(id) in
          if Array.length f.Fact.args <> arity then acc
          else
            match Subst.match_atom subst ~pattern f.Fact.args with
            | Some s -> (f, s) :: acc
            | None -> acc
        end)
      []
      (candidates t sym pattern subst)
    |> List.rev

(* --- columnar access and hash indexes ---------------------------------------

   The hash-join matcher works entirely in interned ids: it resolves a
   pattern's constants through [value_id], folds the ids of the
   planner-chosen key columns through [key_hash_add], and probes the
   colgroup's index for the bucket of candidate rows.  Buckets keep rows
   in ascending order, so the probe enumerates facts in exactly the
   ascending-id order the posting scans did. *)

module Cols = struct
  type group = colgroup

  let find t ~sym ~arity = Hashtbl.find_opt t.cols (sym, arity)
  let rows (g : group) = Intvec.length g.cg_rows
  let arity (g : group) = g.cg_arity
  let fact_id (g : group) row = Intvec.unsafe_get g.cg_rows row
  let col (g : group) i row = Intvec.unsafe_get g.cg_cols.(i) row
end

let value_id t v =
  match ValTbl.find_opt t.val_ids v with Some vid -> vid | None -> -1

let value_of_id t vid =
  if vid < 0 || vid >= t.val_count then invalid_arg "Database.value_of_id";
  t.val_arr.(vid)

(* Deterministic key mixing (pure 63-bit int arithmetic, no per-process
   seed): the stdlib hashes the resulting int key again on the way into
   the bucket table, and collisions are re-checked column-by-column at
   probe time, so the combiner only needs to spread, not avalanche. *)
let key_hash_add acc vid = (acc * 1000003) + vid

let ensure_index t ~sym ~arity ~mask =
  if mask = 0 then 0
  else
    match Hashtbl.find_opt t.cols (sym, arity) with
    | None -> 0
    | Some g ->
      let ix =
        match Hashtbl.find_opt g.cg_indexes mask with
        | Some ix -> ix
        | None ->
          let ix = ix_create () in
          Hashtbl.add g.cg_indexes mask ix;
          ix
      in
      let nrows = Intvec.length g.cg_rows in
      let fresh = nrows - ix.ix_rows in
      if fresh > 0 then begin
        let keycols = ref [] in
        for i = arity - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then keycols := i :: !keycols
        done;
        let keycols = Array.of_list !keycols in
        for row = ix.ix_rows to nrows - 1 do
          let h = ref 0 in
          Array.iter
            (fun c -> h := key_hash_add !h (Intvec.unsafe_get g.cg_cols.(c) row))
            keycols;
          ix_add ix !h row
        done;
        ix.ix_rows <- nrows
      end;
      max 0 fresh

type index_handle = colindex

let index_handle (g : Cols.group) ~mask =
  match Hashtbl.find_opt g.cg_indexes mask with
  | None -> None
  | Some ix -> if ix.ix_rows <> Intvec.length g.cg_rows then None else Some ix

let probe_handle (ix : index_handle) ~hash =
  let cap_mask = ix.ix_cap_mask in
  let keys = ix.ix_keys and buckets = ix.ix_buckets in
  let i = ref (ix_slot cap_mask hash) in
  let res = ref empty_posting in
  let searching = ref true in
  while !searching do
    let b = Array.unsafe_get buckets !i in
    if b == empty_posting then searching := false
    else if Array.unsafe_get keys !i = hash then begin
      res := b;
      searching := false
    end
    else i := (!i + 1) land cap_mask
  done;
  !res

let probe (g : Cols.group) ~mask ~hash =
  match Hashtbl.find_opt g.cg_indexes mask with
  | None -> None
  | Some ix ->
    if ix.ix_rows <> Intvec.length g.cg_rows then None (* stale: caller scans *)
    else Some (probe_handle ix ~hash)

let exists_matching t (pattern : Atom.t) subst =
  match Symtab.find t.syms pattern.pred with
  | None -> false
  | Some sym ->
    let arity = List.length pattern.args in
    Intvec.exists
      (fun id ->
        is_active t id
        &&
        let f = t.facts.(id) in
        Array.length f.Fact.args = arity
        && Subst.match_atom subst ~pattern f.Fact.args <> None)
      (candidates t sym pattern subst)

(* --- snapshot codec ----------------------------------------------------------

   The encoding stores the insertion sequence, not the index
   structures: [decode] replays every fact through [add] in id order,
   which rebuilds [by_key]/[by_pred]/[by_arg] {e and} the columnar
   representation (column groups, interned value ids, activation
   bitmap) and re-interns predicates in exactly the original order
   (symbols are assigned at first insertion).  The symbol table is
   still written explicitly so decode can verify the replay reproduced
   it bit-for-bit.  Hash-join indexes are caches and are not
   persisted — [ensure_index] rebuilds them on demand. *)

let encode b t =
  Symtab.encode b t.syms;
  Wire.w_int b t.next_id;
  for id = 0 to t.next_id - 1 do
    let f = t.facts.(id) in
    Wire.w_int b (Intvec.get t.fact_syms id);
    Wire.w_int b (Array.length f.Fact.args);
    Array.iter (Wire.w_value b) f.Fact.args
  done;
  Wire.w_int b t.inactive_count;
  (* ascending id order reproduces the sorted list the previous
     hash-set representation wrote: the wire format is unchanged *)
  for id = 0 to t.next_id - 1 do
    if not (bit_get t id) then Wire.w_int b id
  done;
  Wire.w_int b t.null_counter

let decode r =
  let syms = Symtab.decode r in
  let t = create () in
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "Database: negative fact count");
  for id = 0 to n - 1 do
    let sym = Wire.r_int r in
    if sym < 0 || sym >= Symtab.size syms then
      raise (Wire.Corrupt "Database: fact symbol out of range");
    let arity = Wire.r_int r in
    if arity < 0 then raise (Wire.Corrupt "Database: negative arity");
    let args = Array.make arity (Ekg_kernel.Value.Int 0) in
    for i = 0 to arity - 1 do
      args.(i) <- Wire.r_value r
    done;
    match add t (Symtab.name syms sym) args with
    | `Added f when f.Fact.id = id -> ()
    | `Added _ | `Existing _ ->
      raise (Wire.Corrupt "Database: replay did not reproduce fact ids")
  done;
  if Symtab.size t.syms <> Symtab.size syms then
    raise (Wire.Corrupt "Database: replay did not reproduce the symbol table");
  Symtab.iter
    (fun id name ->
      if Symtab.find t.syms name <> Some id then
        raise (Wire.Corrupt "Database: replay did not reproduce the symbol table"))
    syms;
  let inactive = Wire.r_int r in
  if inactive < 0 then raise (Wire.Corrupt "Database: negative inactive count");
  for _ = 1 to inactive do
    let id = Wire.r_int r in
    if id < 0 || id >= t.next_id then
      raise (Wire.Corrupt "Database: inactive id out of range");
    deactivate t id
  done;
  let null_counter = Wire.r_int r in
  if null_counter < 0 then
    raise (Wire.Corrupt "Database: negative null counter");
  t.null_counter <- null_counter;
  t
