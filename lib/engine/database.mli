(** Indexed fact store with set semantics.

    Facts are deduplicated on their (predicate, tuple); each inserted
    fact receives a stable id.  Facts can be {e deactivated}: a
    deactivated fact stays addressable by id (the chase graph may
    reference it) but no longer participates in rule matching.  The
    chase uses deactivation to supersede stale monotonic-aggregation
    results. *)

open Ekg_kernel
open Ekg_datalog

type t

val create : unit -> t

val copy : t -> t
(** Independent copy of the full store — facts, ids, indexes,
    activation state, null counter.  Mutations to either database never
    show through the other, so a reader can keep using the original
    while an incremental update runs against the copy
    ({!Chase.copy_result}).  O(facts + index entries). *)

val add : t -> string -> Value.t array -> [ `Added of Fact.t | `Existing of Fact.t ]
(** Insert or retrieve. A previously deactivated identical tuple is
    treated as existing (it is not resurrected). *)

val add_atom : t -> Atom.t -> ([ `Added of Fact.t | `Existing of Fact.t ], string) result
(** Convenience for ground atoms; [Error] on non-ground input. *)

val deactivate : t -> int -> unit
val is_active : t -> int -> bool

val all_active : t -> bool
(** True when no fact is deactivated — lets read loops skip the
    per-fact activation check.  Only stable while no deactivations
    happen (e.g. within one pure-read match pass). *)

val reactivate : t -> int -> unit
(** Resurrect a deactivated fact: it participates in matching again
    under its original id.  The incremental chase uses this when a
    retracted or over-deleted fact is re-added or re-derived, so fact
    identity (and with it the provenance graph) survives an
    add-then-retract round trip. *)

val fingerprint : t -> string
(** Canonical content fingerprint of the {e active} instance: every
    active fact rendered and sorted, one per line.  Two databases with
    the same fingerprint hold the same facts regardless of insertion
    order, fact ids, or deactivated garbage — the equality the
    incremental chase's "byte-identical to a cold chase" invariant is
    stated over. *)

val fact : t -> int -> Fact.t
(** Raises [Not_found] for unknown ids. *)

val find_exact : t -> string -> Value.t array -> Fact.t option
(** Lookup by tuple regardless of activity. *)

val active : t -> string -> Fact.t list
(** Active facts of a predicate, in insertion order. *)

val all_of_pred : t -> string -> Fact.t list
(** Active and inactive, in insertion order. *)

val active_all : t -> Fact.t list
(** All active facts, insertion order. *)

val preds : t -> string list
(** Predicates with at least one fact, sorted. *)

val size : t -> int
(** Number of facts ever inserted (active + inactive). *)

val active_size : t -> int

val fresh_null : t -> Value.t
(** Next labelled null ν_i; the counter is per-database. *)

val matching : t -> Atom.t -> Subst.t -> (Fact.t * Subst.t) list
(** Active facts of the pattern's predicate that the pattern maps onto
    under an extension of the given substitution, with the extended
    substitution. *)

val exists_matching : t -> Atom.t -> Subst.t -> bool
(** Whether {!matching} would be non-empty, without materializing the
    matches — the negation check of the matcher early-exits through
    this. *)

(** {1 Interned symbols and statistics}

    Predicate names are interned to dense ints on first insertion;
    the matcher and the chase key their hot-path lookups (delta
    membership, posting lengths) on these symbols instead of hashing
    strings. *)

val pred_sym : t -> string -> int option
(** The symbol of a predicate, if any fact of it was ever inserted. *)

val pred_sym_of_fact : t -> int -> int
(** The predicate symbol of a fact id; raises [Not_found] for unknown
    ids. *)

val pred_card : t -> string -> int
(** Number of facts ever inserted for the predicate (active +
    inactive), in O(1) — the join planner's cardinality estimate. *)

(** {1 Columnar storage and hash-join indexes}

    Alongside the tuple store, facts are mirrored into a
    struct-of-arrays representation: one {e column group} per
    (predicate symbol, arity), holding a flat column of interned value
    ids per argument position plus a row → fact-id map.  Rows are in
    insertion order (ascending fact id), and activation is a bitmap
    checked per candidate row — deactivated facts stay in the columns
    forever, exactly like the posting lists.

    The hash-join matcher builds {e multi-column hash indexes} over a
    group on demand: [ensure_index] indexes the key columns named by a
    bitmask, incrementally from a row watermark, so per-round index
    maintenance costs O(new rows).  [ensure_index] mutates the
    database and must be called from the sequential planning step of a
    chase round, never from the parallel match phase; {!probe} is a
    pure read and falls back to [None] whenever the index is missing
    or stale, so correctness never depends on index preparation. *)

module Cols : sig
  type group
  (** A (predicate symbol, arity) column group — a read-only view for
      the matcher; only {!Database.add} appends rows. *)

  val find : t -> sym:int -> arity:int -> group option
  val rows : group -> int
  val arity : group -> int

  val fact_id : group -> int -> int
  (** [fact_id g row] — the fact id stored at a row.  No bounds check;
      callers iterate [0 .. rows g - 1]. *)

  val col : group -> int -> int -> int
  (** [col g i row] — the interned value id of argument position [i]
      at [row].  No bounds check. *)
end

val value_id : t -> Value.t -> int
(** The interned id of a value, or [-1] if no stored fact contains it
    (in which case no probe can match it).  Interning follows
    {!Value.equal}, so numerically equal [Int]/[Num] values share an
    id. *)

val value_of_id : t -> int -> Value.t
(** Inverse of {!value_id} (the first-interned representative);
    raises [Invalid_argument] on ids never returned by interning. *)

val key_hash_add : int -> int -> int
(** Fold a key column's value id into a probe hash (seed [0], columns
    in ascending position order) — deterministic pure-int mixing, the
    exact combiner {!ensure_index} uses to bucket rows. *)

val ensure_index : t -> sym:int -> arity:int -> mask:int -> int
(** Build or extend the hash index of the column group on the key
    columns set in [mask] (bit [i] = argument position [i]).  Returns
    the number of rows newly indexed (0 when the index was already
    fresh or the group does not exist).  Sequential-phase only. *)

val probe : Cols.group -> mask:int -> hash:int -> Intvec.t option
(** The candidate rows whose key columns hash to [hash] under the
    [mask] index: [Some rows] (ascending, possibly empty) when the
    index exists and covers every row, [None] when the caller must
    scan.  The returned vector is shared index state — read-only.
    Collisions are possible; callers re-check every column. *)

type index_handle
(** A resolved, fresh index over a column group — the per-probe mask
    lookup and staleness check of {!probe}, paid once.  Valid only
    while no rows are appended to the group: resolve at the start of a
    pure-read match pass, drop before any insertion. *)

val index_handle : Cols.group -> mask:int -> index_handle option
(** [Some h] when the [mask] index exists and covers every row of the
    group (same condition under which {!probe} returns [Some]),
    [None] when the caller must scan. *)

val probe_handle : index_handle -> hash:int -> Intvec.t
(** The candidate rows bucketed at [hash] (ascending, possibly empty;
    shared index state — read-only).  Equivalent to the [Some] arm of
    {!probe} on the handle's group and mask. *)

val encode : Buffer.t -> t -> unit
(** Snapshot codec hook: the full store — facts in id order, activation
    state, null counter, symbol table — in the engine's binary wire
    form.  {!decode} replays the insertion sequence, so the restored
    database carries identical fact ids, symbols, indexes and
    {!fingerprint}. *)

val decode : Wire.reader -> t
(** Raises {!Wire.Truncated} / {!Wire.Corrupt} on malformed input,
    including replays that fail to reproduce the recorded ids or
    symbol table. *)
