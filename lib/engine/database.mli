(** Indexed fact store with set semantics.

    Facts are deduplicated on their (predicate, tuple); each inserted
    fact receives a stable id.  Facts can be {e deactivated}: a
    deactivated fact stays addressable by id (the chase graph may
    reference it) but no longer participates in rule matching.  The
    chase uses deactivation to supersede stale monotonic-aggregation
    results. *)

open Ekg_kernel
open Ekg_datalog

type t

val create : unit -> t

val copy : t -> t
(** Independent copy of the full store — facts, ids, indexes,
    activation state, null counter.  Mutations to either database never
    show through the other, so a reader can keep using the original
    while an incremental update runs against the copy
    ({!Chase.copy_result}).  O(facts + index entries). *)

val add : t -> string -> Value.t array -> [ `Added of Fact.t | `Existing of Fact.t ]
(** Insert or retrieve. A previously deactivated identical tuple is
    treated as existing (it is not resurrected). *)

val add_atom : t -> Atom.t -> ([ `Added of Fact.t | `Existing of Fact.t ], string) result
(** Convenience for ground atoms; [Error] on non-ground input. *)

val deactivate : t -> int -> unit
val is_active : t -> int -> bool

val reactivate : t -> int -> unit
(** Resurrect a deactivated fact: it participates in matching again
    under its original id.  The incremental chase uses this when a
    retracted or over-deleted fact is re-added or re-derived, so fact
    identity (and with it the provenance graph) survives an
    add-then-retract round trip. *)

val fingerprint : t -> string
(** Canonical content fingerprint of the {e active} instance: every
    active fact rendered and sorted, one per line.  Two databases with
    the same fingerprint hold the same facts regardless of insertion
    order, fact ids, or deactivated garbage — the equality the
    incremental chase's "byte-identical to a cold chase" invariant is
    stated over. *)

val fact : t -> int -> Fact.t
(** Raises [Not_found] for unknown ids. *)

val find_exact : t -> string -> Value.t array -> Fact.t option
(** Lookup by tuple regardless of activity. *)

val active : t -> string -> Fact.t list
(** Active facts of a predicate, in insertion order. *)

val all_of_pred : t -> string -> Fact.t list
(** Active and inactive, in insertion order. *)

val active_all : t -> Fact.t list
(** All active facts, insertion order. *)

val preds : t -> string list
(** Predicates with at least one fact, sorted. *)

val size : t -> int
(** Number of facts ever inserted (active + inactive). *)

val active_size : t -> int

val fresh_null : t -> Value.t
(** Next labelled null ν_i; the counter is per-database. *)

val matching : t -> Atom.t -> Subst.t -> (Fact.t * Subst.t) list
(** Active facts of the pattern's predicate that the pattern maps onto
    under an extension of the given substitution, with the extended
    substitution. *)

val exists_matching : t -> Atom.t -> Subst.t -> bool
(** Whether {!matching} would be non-empty, without materializing the
    matches — the negation check of the matcher early-exits through
    this. *)

(** {1 Interned symbols and statistics}

    Predicate names are interned to dense ints on first insertion;
    the matcher and the chase key their hot-path lookups (delta
    membership, posting lengths) on these symbols instead of hashing
    strings. *)

val pred_sym : t -> string -> int option
(** The symbol of a predicate, if any fact of it was ever inserted. *)

val pred_sym_of_fact : t -> int -> int
(** The predicate symbol of a fact id; raises [Not_found] for unknown
    ids. *)

val pred_card : t -> string -> int
(** Number of facts ever inserted for the predicate (active +
    inactive), in O(1) — the join planner's cardinality estimate. *)

val encode : Buffer.t -> t -> unit
(** Snapshot codec hook: the full store — facts in id order, activation
    state, null counter, symbol table — in the engine's binary wire
    form.  {!decode} replays the insertion sequence, so the restored
    database carries identical fact ids, symbols, indexes and
    {!fingerprint}. *)

val decode : Wire.reader -> t
(** Raises {!Wire.Truncated} / {!Wire.Corrupt} on malformed input,
    including replays that fail to reproduce the recorded ids or
    symbol table. *)
