type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let copy t = { data = Array.copy t.data; len = t.len }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get";
  Array.unsafe_get t.data i

let unsafe_get t i = Array.unsafe_get t.data i

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (Array.unsafe_get t.data i :: acc) in
  go (t.len - 1) []

let encode b t =
  Wire.w_int b t.len;
  for i = 0 to t.len - 1 do
    Wire.w_int b (Array.unsafe_get t.data i)
  done

let decode r =
  let len = Wire.r_int r in
  if len < 0 then raise (Wire.Corrupt "Intvec: negative length");
  let t = create ~capacity:(max 1 len) () in
  for _ = 1 to len do
    push t (Wire.r_int r)
  done;
  t
