(** Growable int arrays — the posting-list representation behind the
    database indexes.  Append-only: the chase never removes a fact from
    an index (deactivation is a side table), so postings only ever
    [push].  Compared to the previous [int list ref] postings, an
    [Intvec] keeps elements in insertion order without a reversal on
    every read, answers {!length} in O(1) (the join planner's
    cardinality probe), and stores ids unboxed in a flat [int array]. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty vector; [capacity] (default [8]) pre-sizes the backing
    array. *)

val copy : t -> t
(** Independent copy: pushes to either vector leave the other
    untouched. *)

val length : t -> int

val get : t -> int -> int
(** Raises [Invalid_argument] outside [0..length-1]. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check — for loops that already iterate
    [0..length-1], such as the hash-join probe over columnar storage.
    Out-of-range access is undefined behaviour. *)

val push : t -> int -> unit
(** Append, amortized O(1). *)

val iter : (int -> unit) -> t -> unit
(** In insertion order. *)

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists : (int -> bool) -> t -> bool
(** Early-exits on the first hit, in insertion order. *)

val to_list : t -> int list
(** In insertion order. *)

val encode : Buffer.t -> t -> unit
(** Snapshot codec hook: varint length followed by the elements —
    {!decode} restores an equal vector ({!Ekg_store} composes these
    into session snapshot files). *)

val decode : Wire.reader -> t
(** Raises {!Wire.Truncated} / {!Wire.Corrupt} on malformed input. *)
