open Ekg_datalog

type answer = {
  facts : Fact.t list;
  derived_count : int;
  pruned : bool;
}

type specialized = {
  sp_pred : string;
  sp_mask : string;
  sp_goal : string;
  sp_seed_pred : string;
  sp_program : Program.t;
  sp_extra_seeds : Atom.t list;
  sp_renames : (string * string) list;
  sp_rule_origin : (string * string) list;
  sp_magic_preds : string list;
}

let adornment (a : Atom.t) =
  String.concat ""
    (List.map (function Term.Cst _ -> "b" | Term.Var _ -> "f") a.args)

let adorned_name pred ad = pred ^ "__" ^ ad
let magic_name pred ad = "m__" ^ pred ^ "__" ^ ad

(* binding pattern of an atom under a set of bound variables *)
let adornment_under bound (a : Atom.t) =
  String.concat ""
    (List.map
       (function
         | Term.Cst _ -> "b"
         | Term.Var v -> if List.mem v bound then "b" else "f")
       a.args)

let bound_args ad (a : Atom.t) =
  List.filteri (fun i _ -> ad.[i] = 'b') a.args

exception Unsupported of string

(* The magic fragment: everything but existential heads.  Negation is
   rewritten (the result may fail to stratify — the chase reports that
   and callers fall back); aggregates are demand-complete because the
   group variables of a demanded head are fixed by the magic join, so
   the restricted program still derives every contributor of every
   demanded group; constraints are demanded unconditionally so the
   scoped chase detects exactly the inconsistencies the full chase
   would. *)
let specialize (p : Program.t) ~pred ~mask =
  if pred = Chase.falsum then Error "cannot query the falsum predicate"
  else if not (List.mem pred (Program.preds p)) then
    Error ("unknown predicate in query: " ^ pred)
  else if not (Program.is_intensional p pred) then
    Error ("query predicate is extensional: " ^ pred)
  else begin
    let arity =
      match
        List.find_opt (fun (r : Rule.t) -> Rule.head_pred r = pred) p.rules
      with
      | Some r -> Atom.arity r.Rule.head
      | None -> 0
    in
    if String.length mask <> arity then
      Error
        (Printf.sprintf "mask %S does not match the arity of %s/%d" mask pred
           arity)
    else if String.exists (fun c -> c <> 'b' && c <> 'f') mask then
      Error ("mask must be over {b,f}: " ^ mask)
    else begin
      let idb = Program.idb_preds p in
      let is_idb q = List.mem q idb in
      let counter = ref 0 in
      let rule_origin = ref [] in
      let fresh_id base =
        incr counter;
        let id = Printf.sprintf "%s#m%d" base !counter in
        rule_origin := (id, base) :: !rule_origin;
        id
      in
      let out_rules = ref [] in
      let extra_seeds = ref [] in
      let renames = ref [] in
      let magic_preds = ref [] in
      let visited = Hashtbl.create 16 in
      let note_rename ad_name orig =
        if not (List.mem_assoc ad_name !renames) then
          renames := (ad_name, orig) :: !renames
      in
      let note_magic m =
        if not (List.mem m !magic_preds) then magic_preds := m :: !magic_preds
      in
      let rec demand dpred ad =
        if not (Hashtbl.mem visited (dpred, ad)) then begin
          Hashtbl.add visited (dpred, ad) ();
          note_rename (adorned_name dpred ad) dpred;
          note_magic (magic_name dpred ad);
          List.iter (fun r -> adorn_rule r ad) (Program.rules_deriving p dpred)
        end
      (* emit the demand for a subgoal: a magic rule over the body
         prefix evaluated so far, or a ground seed when the demand is
         unconditional (a constraint rule whose first literal is
         intensional) *)
      and emit_demand ~prefix ~base_id (a : Atom.t) ad' =
        demand a.Atom.pred ad';
        let head = Atom.make (magic_name a.Atom.pred ad') (bound_args ad' a) in
        match List.rev prefix with
        | [] ->
          if Atom.is_ground head then begin
            if not (List.exists (Atom.equal head) !extra_seeds) then
              extra_seeds := head :: !extra_seeds
          end
          else
            raise
              (Unsupported
                 ("unconditional demand for " ^ a.Atom.pred
                ^ " binds variables without a supporting prefix"))
        | body ->
          out_rules := Rule.make ~id:(fresh_id base_id) ~body ~head () :: !out_rules
      and adorn_rule (r : Rule.t) ad =
        if Rule.existential_vars r <> [] then
          raise
            (Unsupported ("rule " ^ r.id ^ " has an existential head — the \
                           null's identity depends on chase order, so the \
                           scoped instance is not comparable"));
        let is_constraint = Rule.head_pred r = Chase.falsum in
        let computed =
          List.map fst r.assignments
          @ (match r.agg with Some a -> [ a.result ] | None -> [])
        in
        (* a bound head position backed by a computed variable would make
           the magic join constrain an aggregate/assignment output before
           the rule computes it *)
        if not is_constraint then
          List.iteri
            (fun i t ->
              match t with
              | Term.Var v when ad.[i] = 'b' && List.mem v computed ->
                raise
                  (Unsupported
                     ("rule " ^ r.id ^ " computes " ^ v
                    ^ ", which the query binds"))
              | Term.Var _ | Term.Cst _ -> ())
            r.head.Atom.args;
        (* variables bound on entry: the head's 'b' positions, excluding
           variables the rule itself computes *)
        let head_bound =
          List.concat
            (List.mapi
               (fun i t ->
                 match t with
                 | Term.Var v when ad.[i] = 'b' && not (List.mem v computed) ->
                   [ v ]
                 | Term.Var _ | Term.Cst _ -> [])
               r.head.Atom.args)
        in
        let magic_head_atom =
          if is_constraint then None
          else
            Some (Atom.make (magic_name (Rule.head_pred r) ad) (bound_args ad r.head))
        in
        let bound = ref head_bound in
        let prefix =
          ref (match magic_head_atom with Some m -> [ Rule.Pos m ] | None -> [])
        in
        let all_bound vs = List.for_all (fun v -> List.mem v !bound) vs in
        (* walk the body left to right, adorning intensional subgoals and
           emitting their demand; the running prefix is the
           sideways-information-passing context of each subgoal *)
        let new_body =
          List.map
            (fun lit ->
              match lit with
              | Rule.Pos a ->
                let lit' =
                  if is_idb a.Atom.pred then begin
                    let ad' = adornment_under !bound a in
                    emit_demand ~prefix:!prefix ~base_id:r.id a ad';
                    Rule.Pos (Atom.make (adorned_name a.Atom.pred ad') a.Atom.args)
                  end
                  else Rule.Pos a
                in
                bound := List.sort_uniq String.compare (Atom.vars a @ !bound);
                prefix := lit' :: !prefix;
                lit'
              | Rule.Not a ->
                let lit' =
                  if is_idb a.Atom.pred then begin
                    let ad' = adornment_under !bound a in
                    emit_demand ~prefix:!prefix ~base_id:r.id a ad';
                    Rule.Not (Atom.make (adorned_name a.Atom.pred ad') a.Atom.args)
                  end
                  else Rule.Not a
                in
                (* a negative literal narrows later demand only when its
                   variables are already bound (magic-rule safety) *)
                if all_bound (Atom.vars a) then prefix := lit' :: !prefix;
                lit')
            r.body
        in
        let new_head =
          if is_constraint then r.head
          else Atom.make (adorned_name (Rule.head_pred r) ad) r.head.Atom.args
        in
        let modified =
          {
            r with
            Rule.id = fresh_id r.id;
            head = new_head;
            body =
              (match magic_head_atom with
              | Some m -> Rule.Pos m :: new_body
              | None -> new_body);
          }
        in
        out_rules := modified :: !out_rules
      in
      try
        demand pred mask;
        (* constraints fire on the full instance, not the demanded
           slice: rewrite every falsum rule too, keeping its head, so
           the scoped chase rejects exactly the bases the full chase
           rejects *)
        List.iter
          (fun (r : Rule.t) ->
            if Rule.head_pred r = Chase.falsum then adorn_rule r "")
          p.rules;
        let program =
          Program.make ~goal:(adorned_name pred mask) (List.rev !out_rules)
        in
        match Program.validate program with
        | Ok () ->
          Ok
            {
              sp_pred = pred;
              sp_mask = mask;
              sp_goal = adorned_name pred mask;
              sp_seed_pred = magic_name pred mask;
              sp_program = program;
              sp_extra_seeds = List.rev !extra_seeds;
              sp_renames = !renames;
              sp_rule_origin = !rule_origin;
              sp_magic_preds = !magic_preds;
            }
        | Error es ->
          Error
            ("magic rewriting produced an invalid program: "
            ^ String.concat "; " es)
      with Unsupported msg -> Error msg
    end
  end

let seeds sp (query : Atom.t) =
  Atom.make sp.sp_seed_pred (bound_args sp.sp_mask query) :: sp.sp_extra_seeds

let goal_atom sp (query : Atom.t) = Atom.make sp.sp_goal query.Atom.args

let original_pred sp pred =
  match List.assoc_opt pred sp.sp_renames with Some orig -> orig | None -> pred

let original_fact sp (f : Fact.t) = { f with Fact.pred = original_pred sp f.Fact.pred }

let unadorn_proof sp (proof : Proof.t) =
  let is_magic p = List.mem p sp.sp_magic_preds in
  let orig_rule id =
    match List.assoc_opt id sp.sp_rule_origin with Some o -> o | None -> id
  in
  let steps =
    List.filter
      (fun (s : Proof.step) -> not (is_magic s.Proof.fact.Fact.pred))
      proof.Proof.steps
  in
  let steps =
    List.mapi
      (fun i (s : Proof.step) ->
        {
          s with
          Proof.index = i;
          rule_id = orig_rule s.Proof.rule_id;
          fact = original_fact sp s.Proof.fact;
          premises =
            List.filter_map
              (fun (f : Fact.t) ->
                if is_magic f.Fact.pred then None else Some (original_fact sp f))
              s.Proof.premises;
        })
      steps
  in
  { Proof.goal = original_fact sp proof.Proof.goal; steps }

let rewrite (p : Program.t) (query : Atom.t) =
  match specialize p ~pred:query.Atom.pred ~mask:(adornment query) with
  | Error _ as e -> e
  | Ok sp -> Ok (sp.sp_program, seeds sp query)

let answer (p : Program.t) edb (query : Atom.t) =
  let full () =
    match Chase.run p edb with
    | Error e -> Error e
    | Ok res ->
      Ok
        {
          facts = List.map fst (Query.ask res.db query);
          derived_count = res.derived_count;
          pruned = false;
        }
  in
  match specialize p ~pred:query.Atom.pred ~mask:(adornment query) with
  | Error _ -> full ()
  | Ok sp -> (
    match Chase.run_checked sp.sp_program (edb @ seeds sp query) with
    | Error (Chase.Unstratifiable _) ->
      (* the rewrite broke the stratification the source program had;
         goal-direction is not available for this query shape *)
      full ()
    | Error err -> Error (Chase.error_to_string err)
    | Ok res ->
      let facts =
        Query.ask res.db (goal_atom sp query)
        |> List.map (fun ((f : Fact.t), _) -> original_fact sp f)
      in
      Ok { facts; derived_count = res.derived_count; pruned = true })
