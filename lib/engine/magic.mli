(** Goal-directed query answering via the magic-sets transformation —
    the classic top-down/bottom-up bridge of the Datalog literature the
    paper builds on (§1's "top-down logical inference methods typically
    adopted in KRR", §2's recursive-query references).

    Answering a point query does not need the full materialization:
    {!specialize} rewrites the program with respect to the query's
    binding pattern (adornment), adds magic predicates that propagate
    the query constants, and the ordinary chase on the rewritten
    program derives only the facts relevant to the query — often
    dramatically smaller than the full fixpoint.  The specialization
    depends on the {e pattern} (predicate + bound/free mask) alone, so
    serving layers cache it and re-seed it per concrete query.

    Supported fragment: Datalog with comparisons, arithmetic
    assignments, monotonic aggregations (demand fixes the group
    variables, so every contributor of a demanded group is still
    derived), and stratified negation (intensional negated atoms are
    adorned and demanded; when the rewritten program no longer
    stratifies the chase reports it and callers fall back).
    Constraint (falsum) rules are rewritten with their head kept and
    their demand unconditional, so the scoped chase rejects exactly the
    inconsistent bases the full chase rejects.  Existential heads stay
    outside the fragment: a labelled null's identity depends on chase
    order, so a scoped instance would not be comparable to the full
    one. *)

open Ekg_datalog

type answer = {
  facts : Fact.t list;           (** the facts matching the query *)
  derived_count : int;           (** facts materialized to answer it *)
  pruned : bool;                 (** true when the magic rewriting ran *)
}

type specialized = {
  sp_pred : string;              (** queried predicate *)
  sp_mask : string;              (** ["bf"]-style bound/free mask *)
  sp_goal : string;              (** adorned goal predicate of {!sp_program} *)
  sp_seed_pred : string;         (** magic predicate seeded per concrete query *)
  sp_program : Program.t;        (** the rewritten program *)
  sp_extra_seeds : Atom.t list;  (** unconditional demand (constraint rules) *)
  sp_renames : (string * string) list;
      (** adorned predicate → source predicate, for projecting scoped
          facts and proofs back onto the program's vocabulary *)
  sp_rule_origin : (string * string) list;
      (** rewritten rule id → source rule id *)
  sp_magic_preds : string list;  (** demand predicates (internal bookkeeping) *)
}

val adornment : Atom.t -> string
(** ["bf"]-style binding pattern: [b] for constant arguments, [f] for
    variables. *)

val specialize :
  Program.t -> pred:string -> mask:string -> (specialized, string) result
(** Rewrite the program for point queries of the given shape.  Pure in
    the program and the pattern — two queries with equal constants in
    equal positions share one specialization.  Errors (unknown or
    extensional predicate, bad mask, a fragment violation such as an
    existential head or a query binding an aggregate result) mean the
    caller should answer from the full materialization instead. *)

val seeds : specialized -> Atom.t -> Atom.t list
(** The extensional seed facts for one concrete query atom: the magic
    fact carrying the query's bound constants, plus the unconditional
    constraint demand. *)

val goal_atom : specialized -> Atom.t -> Atom.t
(** The query atom renamed into the rewritten program's vocabulary —
    what to {!Query.ask} the scoped chase result for. *)

val original_pred : specialized -> string -> string
val original_fact : specialized -> Fact.t -> Fact.t
(** Project a scoped fact back onto the source program's vocabulary
    (identity for facts that were never adorned). *)

val unadorn_proof : specialized -> Proof.t -> Proof.t
(** Project a proof extracted from the scoped chase back onto the
    source program: magic (demand) steps and premises are dropped,
    rewritten rule ids map back to their source labels, and adorned
    predicates are renamed — the result is a proof the template mapper
    accepts against the {e original} program's reasoning paths. *)

val rewrite : Program.t -> Atom.t -> (Program.t * Atom.t list, string) result
(** {!specialize} for the concrete atom's own adornment, returning the
    rewritten program and the seed facts; fails on queries over
    unknown predicates. *)

val answer : Program.t -> Atom.t list -> Atom.t -> (answer, string) result
(** Answer the query over the extensional facts, goal-directed when the
    program is in the supported fragment (falling back to the full
    chase otherwise, and when the rewritten program fails to
    stratify). *)
