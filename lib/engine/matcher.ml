open Ekg_kernel
open Ekg_datalog

type match_result = {
  binding : Subst.t;
  used_facts : int list;
}

type agg_result = {
  group_binding : Subst.t;
  value : Value.t;
  contributors : Provenance.contributor list;
}

exception Interrupted

(* Enumerate joins of the positive atoms in plan order (textual order
   when no plan is given); negation and fully-bound conditions are
   checked as soon as possible to prune the search.  [position_ok]
   restricts which facts may fill each {e join position} (plan order) —
   the hook for semi-naive delta seeding.  [used_facts] is restored to
   body order regardless of the plan, so provenance premises are
   plan-independent.  [interrupt] is polled once per join node; when it
   answers [true] the enumeration aborts with {!Interrupted} — the
   cooperative-cancellation point that keeps a pathological join from
   pinning a domain past its budget. *)
let raw_matches ?interrupt ?plan ?(position_ok = fun _ _ -> true) db (r : Rule.t) =
  let positives = Array.of_list (Rule.positive_atoms r) in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init (Array.length positives) Fun.id
  in
  let n = Array.length order in
  let negatives = Rule.negative_atoms r in
  let check_conditions subst =
    List.for_all
      (fun c -> Expr.eval_cmp (Subst.lookup subst) c <> Some false)
      r.conditions
  in
  (* [used] collects (body-atom index, fact id) pairs *)
  let restore_body_order used =
    List.sort (fun (i, _) (j, _) -> Int.compare i j) used |> List.map snd
  in
  let check =
    match interrupt with
    | None -> None
    | Some f -> Some (fun () -> if f () then raise Interrupted)
  in
  let rec join pos subst used =
    (match check with None -> () | Some c -> c ());
    if pos = n then begin
      (* all positive atoms matched: apply assignments in order *)
      let subst =
        List.fold_left
          (fun s (v, e) ->
            match Expr.eval (Subst.lookup s) e with
            | Some x -> Subst.bind s v x
            | None -> s)
          subst r.assignments
      in
      let all_hold =
        List.for_all (fun c -> Expr.eval_cmp (Subst.lookup subst) c = Some true) r.conditions
      in
      if not all_hold then []
      else if
        List.exists
          (fun (a : Atom.t) ->
            Database.exists_matching db (Subst.apply_atom subst a) subst)
          negatives
      then []
      else [ { binding = subst; used_facts = restore_body_order used } ]
    end
    else begin
      let body_idx = order.(pos) in
      let atom = positives.(body_idx) in
      if not (check_conditions subst) then []
      else
        List.concat_map
          (fun ((f : Fact.t), subst') ->
            if position_ok pos f then join (pos + 1) subst' ((body_idx, f.id) :: used)
            else [])
          (Database.matching db atom subst)
    end
  in
  join 0 Subst.empty []

type delta = {
  mem : int -> bool;      (** fact id in the previous round's delta *)
  has_pred : int -> bool; (** some delta fact has this predicate symbol *)
}

(* Semi-naive evaluation: the union over k of joins whose k-th join
   position is a delta fact while earlier positions are non-delta —
   each new match is produced exactly once, seeded from the delta.
   Positions follow the evaluation plan; the decomposition is valid
   over any fixed order.  Passes whose seed predicate has no delta fact
   are skipped outright, by interned symbol (no string hashing). *)
let nested_delta_tasks ?interrupt ?plan ~delta db (r : Rule.t) =
  let { mem; has_pred } = delta in
  let positives = Array.of_list (Rule.positive_atoms r) in
  let n = Array.length positives in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init n Fun.id
  in
  List.filter_map
    (fun k ->
      let seed = positives.(order.(k)) in
      let seed_has_delta =
        match Database.pred_sym db seed.Atom.pred with
        | None -> false (* no facts of this predicate at all *)
        | Some sym -> has_pred sym
      in
      if not seed_has_delta then None
      else
        Some
          (fun () ->
            let position_ok pos (f : Fact.t) =
              if pos = k then mem f.id
              else if pos < k then not (mem f.id)
              else true
            in
            raw_matches ?interrupt ?plan ~position_ok db r))
    (List.init n Fun.id)

(* --- hash-join evaluation ----------------------------------------------------

   Build/probe evaluation over the database's columnar storage: the
   planner's atom order is a left-deep pipelined join, and at each join
   position the matcher probes a multi-column hash index on the key
   columns bound so far ({!Plan.key_masks}) instead of scanning a
   posting list.  Bindings live in a dense int array of interned value
   ids; [Subst.t] is only materialized per {e emitted} match.

   The enumeration visits candidate rows in ascending row order (bucket
   rows are ascending, scans are ascending), which is ascending fact-id
   order — exactly the order the nested-loop matcher enumerates.  The
   two engines therefore produce the same match {e sequence}, so fact
   ids, labelled nulls, provenance and every byte of output are
   identical, not merely the fixpoint. *)

type strategy = Hash | Nested

let strategy_of_env () =
  match Sys.getenv_opt "EKG_JOIN" with
  | Some s when String.lowercase_ascii (String.trim s) = "nested" -> Nested
  | Some _ | None -> Hash

let strategy_name = function Hash -> "hash" | Nested -> "nested"

type arg_spec =
  | SConst of int  (* interned value id; -1 when the value is not in the db *)
  | SVar of int    (* dense binding slot *)

type node = {
  nd_atom : Atom.t;
  nd_sym : int;     (* -1 when the predicate has no facts *)
  nd_arity : int;
  nd_group : Database.Cols.group option;
  nd_specs : arg_spec array;
  nd_mask : int;         (* key columns: Plan.key_masks for this position *)
  nd_keycols : int array;
  nd_impossible : bool;  (* a constant argument's value is not in the db *)
}

let cols_of_mask arity mask =
  let cols = ref [] in
  for i = min 59 (arity - 1) downto 0 do
    if mask land (1 lsl i) <> 0 then cols := i :: !cols
  done;
  Array.of_list !cols

(* Compile the rule body to per-position probe specs.  [slots] maps
   variable names to dense binding slots; key masks come from the
   planner so build/probe columns and index preparation agree. *)
let compile_nodes db (r : Rule.t) order =
  let positives = Array.of_list (Rule.positive_atoms r) in
  let masks = Plan.key_masks r { Plan.order; reordered = false } in
  let slots = Hashtbl.create 16 in
  let slot v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None ->
      let s = Hashtbl.length slots in
      Hashtbl.add slots v s;
      s
  in
  let nodes =
    Array.mapi
      (fun pos body_idx ->
        let a = positives.(body_idx) in
        let specs =
          Array.of_list
            (List.map
               (function
                 | Term.Cst c -> SConst (Database.value_id db c)
                 | Term.Var v -> SVar (slot v))
               a.Atom.args)
        in
        let arity = Array.length specs in
        let sym =
          match Database.pred_sym db a.Atom.pred with Some s -> s | None -> -1
        in
        let group =
          if sym < 0 then None else Database.Cols.find db ~sym ~arity
        in
        {
          nd_atom = a;
          nd_sym = sym;
          nd_arity = arity;
          nd_group = group;
          nd_specs = specs;
          nd_mask = masks.(pos);
          nd_keycols = cols_of_mask arity masks.(pos);
          nd_impossible =
            Array.exists (function SConst -1 -> true | _ -> false) specs;
        })
      order
  in
  (nodes, Hashtbl.length slots, slots)

(* One semi-naive pass of the hash engine.  [delta_seed = Some (d, k)]
   restricts position k to delta facts and earlier positions to
   non-delta facts, exactly like [position_ok] in the nested engine;
   [range = Some (lo, hi)] restricts position 0's candidate rows to
   [lo, hi) — the share-nothing partitioning unit of parallel probe
   tasks (contiguous ranges recombined in order preserve the
   enumeration order, which join-key hash partitioning would not). *)
let hash_matches ?interrupt ?plan ?delta_seed ?range db (r : Rule.t) =
  let positives = Array.of_list (Rule.positive_atoms r) in
  let n = Array.length positives in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init n Fun.id
  in
  let nodes, nslots, slots = compile_nodes db r order in
  (* resolve each node's index handle once — rows cannot be appended
     during a match pass, so freshness checked here holds throughout *)
  let handles =
    Array.map
      (fun nd ->
        match nd.nd_group with
        | Some g when nd.nd_mask <> 0 -> Database.index_handle g ~mask:nd.nd_mask
        | _ -> None)
      nodes
  in
  let negatives = Rule.negative_atoms r in
  (* no deactivations can happen during a pure-read match pass *)
  let live_all = Database.all_active db in
  let pos_of_body = Array.make (max 1 n) 0 in
  Array.iteri (fun pos b -> pos_of_body.(b) <- pos) order;
  let mem, seed_pos =
    match delta_seed with
    | Some (d, k) -> (d.mem, k)
    | None -> ((fun _ -> false), -1)
  in
  let vals = Array.make (max 1 nslots) (-1) in
  let facts = Array.make (max 1 n) (-1) in
  (* condition lookup over the dense binding: verdicts only — values
     compare through [Value.compare], which identifies every member of
     an interning class, so the class representative is sufficient *)
  let lookup name =
    match Hashtbl.find_opt slots name with
    | Some s when vals.(s) >= 0 -> Some (Database.value_of_id db vals.(s))
    | Some _ | None -> None
  in
  let conditions_ok () =
    List.for_all (fun c -> Expr.eval_cmp lookup c <> Some false) r.conditions
  in
  let check =
    match interrupt with
    | None -> None
    | Some f -> Some (fun () -> if f () then raise Interrupted)
  in
  let out = ref [] in
  let has_conditions = r.conditions <> [] in
  (* Per position, the (variable, argument index) pairs first bound
     there in plan order — [emit] binds each variable exactly once,
     from the matched fact's own argument array. *)
  let binders =
    let seen = Hashtbl.create 16 in
    Array.map
      (fun (nd : node) ->
        List.rev
          (snd
             (List.fold_left
                (fun (i, acc) (t : Term.t) ->
                  match t with
                  | Term.Var v when not (Hashtbl.mem seen v) ->
                    Hashtbl.add seen v ();
                    (i + 1, (v, i) :: acc)
                  | Term.Var _ | Term.Cst _ -> (i + 1, acc))
                (0, []) nd.nd_atom.Atom.args)))
      nodes
  in
  let undos = Array.map (fun (nd : node) -> Array.make (max 1 nd.nd_arity) 0) nodes in
  let emit () =
    (* Reconstruct θ exactly as the nested engine does: each variable's
       value comes from the {e fact} that first bound it in plan order
       — the matched tuple's own representation, not the interning
       representative — so head instantiation and rendering are
       byte-identical across engines. *)
    let subst = ref Subst.empty in
    for pos = 0 to n - 1 do
      match binders.(pos) with
      | [] -> ()
      | bs ->
        let f = Database.fact db facts.(pos) in
        List.iter
          (fun (v, i) -> subst := Subst.bind !subst v f.Fact.args.(i))
          bs
    done;
    let subst =
      if r.assignments = [] then !subst
      else
        List.fold_left
          (fun s (v, e) ->
            match Expr.eval (Subst.lookup s) e with
            | Some x -> Subst.bind s v x
            | None -> s)
          !subst r.assignments
    in
    let all_hold =
      r.conditions = []
      || List.for_all
           (fun c -> Expr.eval_cmp (Subst.lookup subst) c = Some true)
           r.conditions
    in
    if
      all_hold
      && (negatives = []
         || not
              (List.exists
                 (fun (a : Atom.t) ->
                   Database.exists_matching db (Subst.apply_atom subst a) subst)
                 negatives))
    then begin
      let used = ref [] in
      for b = n - 1 downto 0 do
        used := facts.(pos_of_body.(b)) :: !used
      done;
      out := { binding = subst; used_facts = !used } :: !out
    end
  in
  (* The join loop proper.  Everything per-partial is preallocated —
     per-position undo arrays, binding slots, fact cursors — so
     descending a node costs zero allocations; only emitted matches
     allocate.  Intermediate condition pruning is an optimization only
     ([emit] re-checks every condition), so guarding it on the rule
     having conditions at all cannot change the match sequence. *)
  let rec node pos =
    (match check with None -> () | Some c -> c ());
    if pos = n then emit ()
    else begin
      let nd = nodes.(pos) in
      if has_conditions && not (conditions_ok ()) then ()
      else if nd.nd_impossible then ()
      else
        match nd.nd_group with
        | None -> ()
        | Some g ->
          let nrows = Database.Cols.rows g in
          let lo, hi =
            if pos = 0 then
              match range with
              | Some (a, b) -> (max 0 a, min b nrows)
              | None -> (0, nrows)
            else (0, nrows)
          in
          if nd.nd_mask = 0 then scan pos nd g lo hi
          else begin
            match handles.(pos) with
            | None -> scan pos nd g lo hi (* index missing/stale *)
            | Some ix ->
              (* fold the bound key columns into the probe hash *)
              let keycols = nd.nd_keycols in
              let specs = nd.nd_specs in
              let h = ref 0 in
              let valid = ref true in
              for j = 0 to Array.length keycols - 1 do
                let vid =
                  match specs.(keycols.(j)) with
                  | SConst v -> v
                  | SVar s -> vals.(s)
                in
                if vid < 0 then valid := false
                else h := Database.key_hash_add !h vid
              done;
              if not !valid then scan pos nd g lo hi
              else begin
                let bucket = Database.probe_handle ix ~hash:!h in
                let m = Intvec.length bucket in
                if lo = 0 && hi = nrows then
                  for bi = 0 to m - 1 do
                    try_row pos nd g (Intvec.unsafe_get bucket bi)
                  done
                else
                  for bi = 0 to m - 1 do
                    let row = Intvec.unsafe_get bucket bi in
                    if row >= lo && row < hi then try_row pos nd g row
                  done
              end
          end
    end
  and scan pos nd g lo hi =
    for row = lo to hi - 1 do
      try_row pos nd g row
    done
  and try_row pos (nd : node) g row =
    let fid = Database.Cols.fact_id g row in
    let kok =
      seed_pos < 0
      || (if pos = seed_pos then mem fid
          else if pos < seed_pos then not (mem fid)
          else true)
    in
    if kok && (live_all || Database.is_active db fid) then begin
      let specs = nd.nd_specs in
      let arity = nd.nd_arity in
      let undo = undos.(pos) in
      let nundo = ref 0 in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < arity do
        let vid = Database.Cols.col g !i row in
        (match specs.(!i) with
        | SConst c -> if c <> vid then ok := false
        | SVar s ->
          let cur = vals.(s) in
          if cur >= 0 then begin
            if cur <> vid then ok := false
          end
          else begin
            vals.(s) <- vid;
            undo.(!nundo) <- s;
            incr nundo
          end);
        incr i
      done;
      if !ok then begin
        facts.(pos) <- fid;
        node (pos + 1)
      end;
      for j = 0 to !nundo - 1 do
        vals.(undo.(j)) <- -1
      done
    end
  in
  node 0;
  List.rev !out

(* Contiguous position-0 row ranges for share-nothing probe
   partitioning.  [None] stands for the unrestricted range; ranges are
   returned in ascending order, so concatenating their results
   restores the unpartitioned enumeration order — the partition count
   may therefore vary (with pool width, with instance size) without
   perturbing a single output byte. *)
let seed_ranges ~partitions db (r : Rule.t) order =
  if partitions <= 1 || Array.length order = 0 then [ None ]
  else begin
    let positives = Array.of_list (Rule.positive_atoms r) in
    let a = positives.(order.(0)) in
    let nrows =
      match Database.pred_sym db a.Atom.pred with
      | None -> 0
      | Some sym -> (
        match
          Database.Cols.find db ~sym ~arity:(List.length a.Atom.args)
        with
        | None -> 0
        | Some g -> Database.Cols.rows g)
    in
    if nrows < 2 * partitions then [ None ]
    else
      List.init partitions (fun p ->
          Some (p * nrows / partitions, (p + 1) * nrows / partitions))
  end

let hash_delta_tasks ?interrupt ?plan ~partitions ~delta db (r : Rule.t) =
  let { mem = _; has_pred } = delta in
  let positives = Array.of_list (Rule.positive_atoms r) in
  let n = Array.length positives in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init n Fun.id
  in
  let ranges = seed_ranges ~partitions db r order in
  List.concat_map
    (fun k ->
      let seed = positives.(order.(k)) in
      let seed_has_delta =
        match Database.pred_sym db seed.Atom.pred with
        | None -> false
        | Some sym -> has_pred sym
      in
      if not seed_has_delta then []
      else
        List.map
          (fun range () ->
            hash_matches ?interrupt ?plan ~delta_seed:(delta, k) ?range db r)
          ranges)
    (List.init n Fun.id)

let delta_tasks ?(strategy = strategy_of_env ()) ?interrupt ?plan ?(partitions = 1) ~delta db
    (r : Rule.t) =
  match strategy with
  | Nested -> nested_delta_tasks ?interrupt ?plan ~delta db r
  | Hash -> hash_delta_tasks ?interrupt ?plan ~partitions ~delta db r

let full_tasks ?(strategy = strategy_of_env ()) ?interrupt ?plan ?(partitions = 1) db
    (r : Rule.t) =
  match strategy with
  | Nested -> [ (fun () -> raw_matches ?interrupt ?plan db r) ]
  | Hash ->
    let positives = Rule.positive_atoms r in
    let n = List.length positives in
    let order =
      match plan with
      | Some (p : Plan.t) -> p.Plan.order
      | None -> Array.init n Fun.id
    in
    List.map
      (fun range () -> hash_matches ?interrupt ?plan ?range db r)
      (seed_ranges ~partitions db r order)

(* Sequential-phase index preparation: ensure the hash indexes every
   join position will probe, so the (parallel, pure-read) match phase
   never builds.  Returns the number of indexes that did extension
   work — the chase's [join_builds] counter. *)
let prepare ?(strategy = strategy_of_env ()) db (r : Rule.t) (plan : Plan.t) =
  match strategy with
  | Nested -> 0
  | Hash ->
    if Rule.has_agg r then 0
    else begin
      let nodes, _, _ = compile_nodes db r plan.Plan.order in
      Array.fold_left
        (fun acc nd ->
          if nd.nd_mask <> 0 && nd.nd_sym >= 0 then
            acc
            + (if
                 Database.ensure_index db ~sym:nd.nd_sym ~arity:nd.nd_arity
                   ~mask:nd.nd_mask
                 > 0
               then 1
               else 0)
          else acc)
        0 nodes
    end

let match_rule ?(strategy = strategy_of_env ()) ?interrupt ?delta ?plan db (r : Rule.t) =
  if Rule.has_agg r then invalid_arg "Matcher.match_rule: aggregating rule";
  match strategy, delta with
  | Nested, None -> raw_matches ?interrupt ?plan db r
  | Hash, None -> hash_matches ?interrupt ?plan db r
  | _, Some delta ->
    List.concat_map
      (fun task -> task ())
      (delta_tasks ~strategy ?interrupt ?plan ~delta db r)

(* --- aggregation ------------------------------------------------------- *)

module GroupKey = struct
  type t = Value.t list

  let compare = List.compare Value.compare
end

module GroupMap = Map.Make (GroupKey)

let aggregate (func : Rule.agg_func) values =
  match values with
  | [] -> None
  | v :: rest ->
    Some
      (match func with
      | Rule.Sum -> List.fold_left Value.add v rest
      | Rule.Prod -> List.fold_left Value.mul v rest
      | Rule.Min -> List.fold_left Value.min_v v rest
      | Rule.Max -> List.fold_left Value.max_v v rest
      | Rule.Count -> Value.int (1 + List.length rest))

let match_agg_rule ?interrupt ?plan db (r : Rule.t) =
  match r.agg with
  | None -> invalid_arg "Matcher.match_agg_rule: non-aggregating rule"
  | Some agg ->
    (* Conditions over the aggregate result hold only after grouping;
       evaluate the body with those conditions deferred. *)
    let depends_on_result c = List.mem agg.result (Expr.cmp_vars c) in
    let body_rule = { r with conditions = List.filter (fun c -> not (depends_on_result c)) r.conditions; agg = None } in
    let matches = raw_matches ?interrupt ?plan db body_rule in
    let group_vars = Rule.group_vars r in
    (* Deduplicate contributors on their full binding: set semantics of
       monotonic aggregation over witness homomorphisms. *)
    let groups =
      List.fold_left
        (fun acc m ->
          let key =
            List.map
              (fun v ->
                match Subst.find m.binding v with
                | Some x -> x
                | None -> Value.str "?")
              group_vars
          in
          let existing = match GroupMap.find_opt key acc with Some l -> l | None -> [] in
          if List.exists (fun m' -> Subst.equal m'.binding m.binding) existing then acc
          else GroupMap.add key (m :: existing) acc)
        GroupMap.empty matches
    in
    let deferred = List.filter depends_on_result r.conditions in
    (* Variables bound to the same value by every contributor (such as
       the creditor's capital in the stress test's σ7) extend the group
       binding: deferred conditions and the head may mention them. *)
    let common_bindings members =
      match members with
      | [] -> Subst.empty
      | first :: rest ->
        List.fold_left
          (fun acc (v, x) ->
            if
              List.for_all
                (fun m ->
                  match Subst.find m.binding v with
                  | Some y -> Value.equal x y
                  | None -> false)
                rest
            then Subst.bind acc v x
            else acc)
          Subst.empty
          (Subst.to_list first.binding)
    in
    GroupMap.fold
      (fun key members acc ->
        let members = List.rev members in
        let inputs =
          List.filter_map (fun m -> Expr.eval (Subst.lookup m.binding) agg.input) members
        in
        match aggregate agg.func inputs with
        | None -> acc
        | Some value ->
          let group_binding =
            List.fold_left2
              (fun s v x -> Subst.bind s v x)
              (Subst.bind (common_bindings members) agg.result value)
              group_vars key
          in
          let ok =
            List.for_all
              (fun c -> Expr.eval_cmp (Subst.lookup group_binding) c = Some true)
              deferred
          in
          if not ok then acc
          else begin
            let contributors =
              List.map
                (fun m -> { Provenance.facts = m.used_facts; binding = m.binding })
                members
            in
            { group_binding; value; contributors } :: acc
          end)
      groups []
    |> List.rev
