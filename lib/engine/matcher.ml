open Ekg_kernel
open Ekg_datalog

type match_result = {
  binding : Subst.t;
  used_facts : int list;
}

type agg_result = {
  group_binding : Subst.t;
  value : Value.t;
  contributors : Provenance.contributor list;
}

exception Interrupted

(* Enumerate joins of the positive atoms in plan order (textual order
   when no plan is given); negation and fully-bound conditions are
   checked as soon as possible to prune the search.  [position_ok]
   restricts which facts may fill each {e join position} (plan order) —
   the hook for semi-naive delta seeding.  [used_facts] is restored to
   body order regardless of the plan, so provenance premises are
   plan-independent.  [interrupt] is polled once per join node; when it
   answers [true] the enumeration aborts with {!Interrupted} — the
   cooperative-cancellation point that keeps a pathological join from
   pinning a domain past its budget. *)
let raw_matches ?interrupt ?plan ?(position_ok = fun _ _ -> true) db (r : Rule.t) =
  let positives = Array.of_list (Rule.positive_atoms r) in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init (Array.length positives) Fun.id
  in
  let n = Array.length order in
  let negatives = Rule.negative_atoms r in
  let check_conditions subst =
    List.for_all
      (fun c -> Expr.eval_cmp (Subst.lookup subst) c <> Some false)
      r.conditions
  in
  (* [used] collects (body-atom index, fact id) pairs *)
  let restore_body_order used =
    List.sort (fun (i, _) (j, _) -> Int.compare i j) used |> List.map snd
  in
  let check =
    match interrupt with
    | None -> None
    | Some f -> Some (fun () -> if f () then raise Interrupted)
  in
  let rec join pos subst used =
    (match check with None -> () | Some c -> c ());
    if pos = n then begin
      (* all positive atoms matched: apply assignments in order *)
      let subst =
        List.fold_left
          (fun s (v, e) ->
            match Expr.eval (Subst.lookup s) e with
            | Some x -> Subst.bind s v x
            | None -> s)
          subst r.assignments
      in
      let all_hold =
        List.for_all (fun c -> Expr.eval_cmp (Subst.lookup subst) c = Some true) r.conditions
      in
      if not all_hold then []
      else if
        List.exists
          (fun (a : Atom.t) ->
            Database.exists_matching db (Subst.apply_atom subst a) subst)
          negatives
      then []
      else [ { binding = subst; used_facts = restore_body_order used } ]
    end
    else begin
      let body_idx = order.(pos) in
      let atom = positives.(body_idx) in
      if not (check_conditions subst) then []
      else
        List.concat_map
          (fun ((f : Fact.t), subst') ->
            if position_ok pos f then join (pos + 1) subst' ((body_idx, f.id) :: used)
            else [])
          (Database.matching db atom subst)
    end
  in
  join 0 Subst.empty []

type delta = {
  mem : int -> bool;      (** fact id in the previous round's delta *)
  has_pred : int -> bool; (** some delta fact has this predicate symbol *)
}

(* Semi-naive evaluation: the union over k of joins whose k-th join
   position is a delta fact while earlier positions are non-delta —
   each new match is produced exactly once, seeded from the delta.
   Positions follow the evaluation plan; the decomposition is valid
   over any fixed order.  Passes whose seed predicate has no delta fact
   are skipped outright, by interned symbol (no string hashing). *)
let delta_tasks ?interrupt ?plan ~delta db (r : Rule.t) =
  let { mem; has_pred } = delta in
  let positives = Array.of_list (Rule.positive_atoms r) in
  let n = Array.length positives in
  let order =
    match plan with
    | Some (p : Plan.t) -> p.Plan.order
    | None -> Array.init n Fun.id
  in
  List.filter_map
    (fun k ->
      let seed = positives.(order.(k)) in
      let seed_has_delta =
        match Database.pred_sym db seed.Atom.pred with
        | None -> false (* no facts of this predicate at all *)
        | Some sym -> has_pred sym
      in
      if not seed_has_delta then None
      else
        Some
          (fun () ->
            let position_ok pos (f : Fact.t) =
              if pos = k then mem f.id
              else if pos < k then not (mem f.id)
              else true
            in
            raw_matches ?interrupt ?plan ~position_ok db r))
    (List.init n Fun.id)

let match_rule ?interrupt ?delta ?plan db (r : Rule.t) =
  if Rule.has_agg r then invalid_arg "Matcher.match_rule: aggregating rule";
  match delta with
  | None -> raw_matches ?interrupt ?plan db r
  | Some delta ->
    List.concat_map (fun task -> task ()) (delta_tasks ?interrupt ?plan ~delta db r)

(* --- aggregation ------------------------------------------------------- *)

module GroupKey = struct
  type t = Value.t list

  let compare = List.compare Value.compare
end

module GroupMap = Map.Make (GroupKey)

let aggregate (func : Rule.agg_func) values =
  match values with
  | [] -> None
  | v :: rest ->
    Some
      (match func with
      | Rule.Sum -> List.fold_left Value.add v rest
      | Rule.Prod -> List.fold_left Value.mul v rest
      | Rule.Min -> List.fold_left Value.min_v v rest
      | Rule.Max -> List.fold_left Value.max_v v rest
      | Rule.Count -> Value.int (1 + List.length rest))

let match_agg_rule ?interrupt ?plan db (r : Rule.t) =
  match r.agg with
  | None -> invalid_arg "Matcher.match_agg_rule: non-aggregating rule"
  | Some agg ->
    (* Conditions over the aggregate result hold only after grouping;
       evaluate the body with those conditions deferred. *)
    let depends_on_result c = List.mem agg.result (Expr.cmp_vars c) in
    let body_rule = { r with conditions = List.filter (fun c -> not (depends_on_result c)) r.conditions; agg = None } in
    let matches = raw_matches ?interrupt ?plan db body_rule in
    let group_vars = Rule.group_vars r in
    (* Deduplicate contributors on their full binding: set semantics of
       monotonic aggregation over witness homomorphisms. *)
    let groups =
      List.fold_left
        (fun acc m ->
          let key =
            List.map
              (fun v ->
                match Subst.find m.binding v with
                | Some x -> x
                | None -> Value.str "?")
              group_vars
          in
          let existing = match GroupMap.find_opt key acc with Some l -> l | None -> [] in
          if List.exists (fun m' -> Subst.equal m'.binding m.binding) existing then acc
          else GroupMap.add key (m :: existing) acc)
        GroupMap.empty matches
    in
    let deferred = List.filter depends_on_result r.conditions in
    (* Variables bound to the same value by every contributor (such as
       the creditor's capital in the stress test's σ7) extend the group
       binding: deferred conditions and the head may mention them. *)
    let common_bindings members =
      match members with
      | [] -> Subst.empty
      | first :: rest ->
        List.fold_left
          (fun acc (v, x) ->
            if
              List.for_all
                (fun m ->
                  match Subst.find m.binding v with
                  | Some y -> Value.equal x y
                  | None -> false)
                rest
            then Subst.bind acc v x
            else acc)
          Subst.empty
          (Subst.to_list first.binding)
    in
    GroupMap.fold
      (fun key members acc ->
        let members = List.rev members in
        let inputs =
          List.filter_map (fun m -> Expr.eval (Subst.lookup m.binding) agg.input) members
        in
        match aggregate agg.func inputs with
        | None -> acc
        | Some value ->
          let group_binding =
            List.fold_left2
              (fun s v x -> Subst.bind s v x)
              (Subst.bind (common_bindings members) agg.result value)
              group_vars key
          in
          let ok =
            List.for_all
              (fun c -> Expr.eval_cmp (Subst.lookup group_binding) c = Some true)
              deferred
          in
          if not ok then acc
          else begin
            let contributors =
              List.map
                (fun m -> { Provenance.facts = m.used_facts; binding = m.binding })
                members
            in
            { group_binding; value; contributors } :: acc
          end)
      groups []
    |> List.rev
