(** Body evaluation: enumerating the homomorphisms θ that make a rule
    applicable to the current database (§3, Chase Procedure).

    Non-aggregating rules yield one {!match_result} per homomorphism;
    aggregating rules yield one {!agg_result} per SQL-like group, with
    the contributors that feed the monotonic aggregate.

    Joins follow an optional {!Plan.t} (cost-based atom order); the
    results are plan-independent — [used_facts] is always reported in
    body order — only the enumeration order of the matches may differ
    between plans.  All entry points only {e read} the database, so a
    round's match phase may fan out across domains against an immutable
    pre-round database. *)

open Ekg_kernel
open Ekg_datalog

type match_result = {
  binding : Subst.t;         (** θ extended with assignment results *)
  used_facts : int list;     (** premise fact ids, positive atoms in body order *)
}

type agg_result = {
  group_binding : Subst.t;   (** group variables + aggregation result *)
  value : Value.t;           (** the aggregate *)
  contributors : Provenance.contributor list;  (** one per distinct body match *)
}

type delta = {
  mem : int -> bool;      (** fact id in the previous round's delta *)
  has_pred : int -> bool; (** some delta fact has this predicate {e symbol}
                              ({!Database.pred_sym}) — interned, so the
                              per-pass skip test hashes no strings *)
}

exception Interrupted
(** Raised from inside a join enumeration when the [interrupt] hook
    answers [true] — the cooperative-cancellation signal of the
    budgeted chase ({!Chase.budget}).  The database is untouched (the
    matcher only reads), so the caller may safely abandon or retry. *)

(** {1 Join strategies}

    Two body-evaluation engines produce {e identical match sequences}
    (same matches, same enumeration order — so fact ids, labelled
    nulls, provenance and every output byte agree):

    - [Hash] (the default): build/probe hash joins over the database's
      columnar storage ({!Database.Cols}), probing multi-column hash
      indexes on the planner's key columns ({!Plan.key_masks}) with
      dense interned-int bindings.
    - [Nested]: the original nested-loop homomorphism matcher over
      posting lists — the escape hatch ([EKG_JOIN=nested]) and the
      equivalence oracle the hash engine is property-tested against. *)

type strategy = Hash | Nested

val strategy_of_env : unit -> strategy
(** [Nested] when the [EKG_JOIN] environment variable is set to
    ["nested"] (case-insensitive), [Hash] otherwise — the default of
    every entry point below. *)

val strategy_name : strategy -> string
(** ["hash"] or ["nested"] — the [join_strategy] wide-event/stats
    value. *)

val match_rule :
  ?strategy:strategy ->
  ?interrupt:(unit -> bool) ->
  ?delta:delta -> ?plan:Plan.t -> Database.t -> Rule.t -> match_result list
(** Matches of a non-aggregating rule.  With [delta], only matches
    using at least one delta fact are returned, and the join is seeded
    from the delta facts (semi-naive evaluation).  [interrupt] is
    polled once per join node; answering [true] aborts the enumeration
    with {!Interrupted}.  Raises [Invalid_argument] on aggregating
    rules. *)

val delta_tasks :
  ?strategy:strategy ->
  ?interrupt:(unit -> bool) ->
  ?plan:Plan.t -> ?partitions:int ->
  delta:delta -> Database.t -> Rule.t -> (unit -> match_result list) list
(** The independent seed passes of semi-naive evaluation, one closure
    per join position whose seed predicate has delta facts.  Running
    every task (in any order, e.g. across a {!Par} pool) and
    concatenating the results {e in task order} equals
    [match_rule ~delta] — the chase's unit of parallel work.  Tasks
    must run against the unchanged database.

    Under the [Hash] strategy, [partitions] (default 1) additionally
    splits each seed pass into share-nothing probe tasks over
    contiguous ranges of the first join position's rows; ranges
    recombine in task order, so the concatenation — and therefore the
    chase output — is identical for every partition count. *)

val full_tasks :
  ?strategy:strategy ->
  ?interrupt:(unit -> bool) ->
  ?plan:Plan.t -> ?partitions:int ->
  Database.t -> Rule.t -> (unit -> match_result list) list
(** Full (non-delta) evaluation as independent tasks — the first round
    of a stratum, partitioned like {!delta_tasks}; concatenating the
    results in task order equals [match_rule] without [delta]. *)

val prepare : ?strategy:strategy -> Database.t -> Rule.t -> Plan.t -> int
(** Ensure the hash indexes the rule's join positions will probe
    ({!Database.ensure_index} on each {!Plan.key_masks} mask).
    {e Mutates the database}: call from the sequential planning step
    of a round, never concurrently with match tasks.  Returns the
    number of indexes built or extended.  No-op (0) under [Nested]
    and for aggregating rules. *)

val match_agg_rule :
  ?interrupt:(unit -> bool) -> ?plan:Plan.t -> Database.t -> Rule.t -> agg_result list
(** Groups of an aggregating rule, conditions already enforced
    (including those over the aggregate result); [interrupt] as in
    {!match_rule}.  Raises [Invalid_argument] on non-aggregating
    rules. *)
