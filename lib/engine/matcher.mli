(** Body evaluation: enumerating the homomorphisms θ that make a rule
    applicable to the current database (§3, Chase Procedure).

    Non-aggregating rules yield one {!match_result} per homomorphism;
    aggregating rules yield one {!agg_result} per SQL-like group, with
    the contributors that feed the monotonic aggregate.

    Joins follow an optional {!Plan.t} (cost-based atom order); the
    results are plan-independent — [used_facts] is always reported in
    body order — only the enumeration order of the matches may differ
    between plans.  All entry points only {e read} the database, so a
    round's match phase may fan out across domains against an immutable
    pre-round database. *)

open Ekg_kernel
open Ekg_datalog

type match_result = {
  binding : Subst.t;         (** θ extended with assignment results *)
  used_facts : int list;     (** premise fact ids, positive atoms in body order *)
}

type agg_result = {
  group_binding : Subst.t;   (** group variables + aggregation result *)
  value : Value.t;           (** the aggregate *)
  contributors : Provenance.contributor list;  (** one per distinct body match *)
}

type delta = {
  mem : int -> bool;      (** fact id in the previous round's delta *)
  has_pred : int -> bool; (** some delta fact has this predicate {e symbol}
                              ({!Database.pred_sym}) — interned, so the
                              per-pass skip test hashes no strings *)
}

exception Interrupted
(** Raised from inside a join enumeration when the [interrupt] hook
    answers [true] — the cooperative-cancellation signal of the
    budgeted chase ({!Chase.budget}).  The database is untouched (the
    matcher only reads), so the caller may safely abandon or retry. *)

val match_rule :
  ?interrupt:(unit -> bool) ->
  ?delta:delta -> ?plan:Plan.t -> Database.t -> Rule.t -> match_result list
(** Matches of a non-aggregating rule.  With [delta], only matches
    using at least one delta fact are returned, and the join is seeded
    from the delta facts (semi-naive evaluation).  [interrupt] is
    polled once per join node; answering [true] aborts the enumeration
    with {!Interrupted}.  Raises [Invalid_argument] on aggregating
    rules. *)

val delta_tasks :
  ?interrupt:(unit -> bool) ->
  ?plan:Plan.t -> delta:delta -> Database.t -> Rule.t -> (unit -> match_result list) list
(** The independent seed passes of semi-naive evaluation, one closure
    per join position whose seed predicate has delta facts.  Running
    every task (in any order, e.g. across a {!Par} pool) and
    concatenating the results {e in task order} equals
    [match_rule ~delta] — the chase's unit of parallel work.  Tasks
    must run against the unchanged database. *)

val match_agg_rule :
  ?interrupt:(unit -> bool) -> ?plan:Plan.t -> Database.t -> Rule.t -> agg_result list
(** Groups of an aggregating rule, conditions already enforced
    (including those over the aggregate result); [interrupt] as in
    {!match_rule}.  Raises [Invalid_argument] on non-aggregating
    rules. *)
