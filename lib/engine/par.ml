(* A reusable fixed-size Domain work-pool, mirrored from the server's
   worker-pool design (lib/server/server.ml) but batch-shaped: instead
   of an open-ended connection queue, callers submit one indexed batch
   at a time and block until it drains.  Workers live for the pool's
   lifetime, so the per-round fan-out of the chase pays no Domain.spawn
   on the hot path; the submitting domain participates in every batch,
   so a pool of [domains] total domains spawns only [domains - 1]
   workers. *)

type batch = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;        (* next task index to claim *)
  finished : int Atomic.t;    (* tasks completed (or failed) *)
  first_error : exn option Atomic.t;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;         (* workers: a new batch is available *)
  drained : Condition.t;      (* submitter: the batch completed *)
  mutable generation : int;   (* bumped per batch; guarded by [lock] *)
  mutable current : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  domains : int;
  busy : float array;
      (* per-slot busy clocks: seconds spent draining batches.  Slot 0
         is the submitting domain, slots 1.. the workers.  Each slot is
         written only by its own domain; readers may see a value one
         batch stale, which is fine for utilization gauges. *)
}

let domains t = t.domains

let busy_seconds t = Array.copy t.busy
let total_busy_seconds t = Array.fold_left ( +. ) 0. t.busy

(* Claim-and-run loop shared by workers and the submitting domain.
   Exceptions are captured (first one wins) so a failing task cannot
   kill a pool domain; every task, failing or not, counts toward
   [finished]. *)
let drain_batch (b : batch) =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.n then begin
      (try b.run i
       with e ->
         ignore
           (Atomic.compare_and_set b.first_error None (Some e)));
      ignore (Atomic.fetch_and_add b.finished 1);
      go ()
    end
  in
  go ()

let timed_drain t ~slot b =
  let t0 = Ekg_obs.Clock.now_s () in
  Fun.protect
    ~finally:(fun () ->
      t.busy.(slot) <-
        t.busy.(slot) +. Float.max 0. (Ekg_obs.Clock.now_s () -. t0))
    (fun () -> drain_batch b)

let worker_loop t ~slot () =
  let last_seen = ref 0 in
  let rec next () =
    Mutex.lock t.lock;
    let rec await () =
      if t.stop then None
      else if t.generation <> !last_seen then begin
        last_seen := t.generation;
        match t.current with
        | Some _ as b -> b
        | None -> await () (* batch already drained by others; wait on *)
      end
      else begin
        Condition.wait t.work t.lock;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some b ->
      timed_drain t ~slot b;
      (* the last finisher wakes the submitter *)
      if Atomic.get b.finished = b.n then begin
        Mutex.lock t.lock;
        Condition.broadcast t.drained;
        Mutex.unlock t.lock
      end;
      next ()
  in
  next ()

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      drained = Condition.create ();
      generation = 0;
      current = None;
      stop = false;
      workers = [];
      domains;
      busy = Array.make domains 0.;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun i -> Domain.spawn (worker_loop t ~slot:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let run_batch t ~n run =
  if n > 0 then begin
    let b =
      {
        run;
        n;
        next = Atomic.make 0;
        finished = Atomic.make 0;
        first_error = Atomic.make None;
      }
    in
    Mutex.lock t.lock;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* the submitter is a full pool member *)
    timed_drain t ~slot:0 b;
    Mutex.lock t.lock;
    while Atomic.get b.finished < b.n do
      Condition.wait t.drained t.lock
    done;
    t.current <- None;
    Mutex.unlock t.lock;
    match Atomic.get b.first_error with Some e -> raise e | None -> ()
  end

let map t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_batch t ~n (fun i -> results.(i) <- Some (tasks.(i) ()));
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every slot was filled or we raised *))
      results
  end

let with_pool ~domains f =
  if domains <= 1 then f None
  else begin
    let pool = create ~domains in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
