(** A reusable fixed-size [Domain] work-pool for the chase's per-round
    fan-out (and any other batch-parallel engine work).

    The pool spawns its worker domains once ({!create}) and reuses them
    for every batch, so the per-round cost of going parallel is a
    mutex broadcast, not a [Domain.spawn].  The submitting domain
    participates in each batch: a pool created with [~domains:4] runs
    batches on 4 domains while having spawned only 3.

    Batches are synchronous: {!map} returns only when every task has
    run.  Tasks are claimed by atomic counter, so ordering of
    {e execution} is nondeterministic — callers that need determinism
    (the chase does) must make tasks independent and combine results by
    task {e index}, which {!map} preserves. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] total domains ([domains - 1] workers;
    values [<= 1] yield a pool that runs batches inline). *)

val domains : t -> int

val busy_seconds : t -> float array
(** Per-slot busy clocks: seconds each pool member has spent running
    batch tasks since {!create}.  Slot [0] is the submitting domain,
    slots [1..] the spawned workers.  Each slot is written only by its
    own domain; a concurrent read may be one batch stale.  Divided by
    pool wall time this is per-worker utilization — the signal that
    separates "the fan-out is idle-starved" from "one straggler task
    serializes the round". *)

val total_busy_seconds : t -> float
(** Sum over {!busy_seconds}. *)

val map : t -> (unit -> 'a) array -> 'a array
(** Run every task across the pool and return their results in task
    order.  If one or more tasks raise, the first exception observed is
    re-raised in the caller after the batch drains; result slots are
    then discarded. *)

val shutdown : t -> unit
(** Join the workers.  The pool must not be used afterwards. *)

val with_pool : domains:int -> (t option -> 'a) -> 'a
(** [with_pool ~domains f] calls [f (Some pool)] with a freshly spawned
    pool and guarantees shutdown, or [f None] when [domains <= 1] —
    the sequential path stays pool-free. *)
