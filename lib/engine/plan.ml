open Ekg_datalog

type t = {
  order : int array;
  reordered : bool;
}

let identity n = { order = Array.init n (fun i -> i); reordered = false }

module VarSet = Set.Make (String)

let atom_vars (a : Atom.t) =
  List.filter_map
    (function Term.Var v -> Some v | Term.Cst _ -> None)
    a.Atom.args

let bound_positions bound (a : Atom.t) =
  List.fold_left
    (fun n (t : Term.t) ->
      match t with
      | Term.Cst _ -> n + 1
      | Term.Var v -> if VarSet.mem v bound then n + 1 else n)
    0 a.Atom.args

let compile ~card (r : Rule.t) =
  let atoms = Array.of_list (Rule.positive_atoms r) in
  let n = Array.length atoms in
  if n <= 1 then identity n
  else begin
    let cards = Array.map (fun (a : Atom.t) -> card a.Atom.pred) atoms in
    let order = Array.make n 0 in
    let taken = Array.make n false in
    let bound = ref VarSet.empty in
    for k = 0 to n - 1 do
      let best = ref (-1) in
      let best_score = ref infinity in
      for i = 0 to n - 1 do
        if not taken.(i) then begin
          let score =
            float_of_int cards.(i)
            /. float_of_int (1 + bound_positions !bound atoms.(i))
          in
          (* strict [<] keeps ties in textual order: determinism *)
          if score < !best_score then begin
            best := i;
            best_score := score
          end
        end
      done;
      let i = !best in
      taken.(i) <- true;
      order.(k) <- i;
      bound := List.fold_left (fun s v -> VarSet.add v s) !bound (atom_vars atoms.(i))
    done;
    let reordered = ref false in
    Array.iteri (fun k i -> if k <> i then reordered := true) order;
    { order; reordered = !reordered }
  end

(* Key columns for the hash-join matcher: at each join position, the
   argument positions bound at probe time — constants, plus variables
   bound by an earlier atom in plan order.  A repeated variable's later
   occurrence within one atom is NOT a key column (it is unbound when
   the probe starts); the matcher checks it per candidate row instead.
   In the left-deep pipelined join these are the build-side key
   columns: the cardinality-greedy [order] already decided which atom
   is built (indexed) at each position, so the mask is the remaining
   planner choice. *)
let key_masks (r : Rule.t) t =
  let atoms = Array.of_list (Rule.positive_atoms r) in
  let bound = ref VarSet.empty in
  Array.map
    (fun i ->
      let a = atoms.(i) in
      let mask = ref 0 in
      List.iteri
        (fun j (trm : Term.t) ->
          (* int bitmask: positions beyond 60 are never key columns *)
          if j < 60 then
            match trm with
            | Term.Cst _ -> mask := !mask lor (1 lsl j)
            | Term.Var v -> if VarSet.mem v !bound then mask := !mask lor (1 lsl j))
        a.Atom.args;
      bound := List.fold_left (fun s v -> VarSet.add v s) !bound (atom_vars a);
      !mask)
    t.order

let to_string (r : Rule.t) t =
  let atoms = Array.of_list (Rule.positive_atoms r) in
  Printf.sprintf "%s: %s" r.Rule.id
    (String.concat ", "
       (Array.to_list
          (Array.map (fun i -> atoms.(i).Atom.pred) t.order)))
