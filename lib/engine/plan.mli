(** Cost-based join planning: per-rule evaluation orders for the
    matcher's positive body atoms.

    The matcher historically joined body atoms in textual order, which
    is catastrophic when an unselective atom comes first (the full
    predicate scan seeds the join).  A {!t} reorders the atoms
    greedily by estimated selectivity: at each step it picks the
    remaining atom with the lowest

    {v cardinality(pred) / (1 + number of bound argument positions) v}

    where a position is bound when it holds a constant or a variable
    already bound by an earlier (planned) atom — the textbook
    bound-is-easier heuristic driven by live predicate cardinalities
    from the database ({!Database.pred_card}), so plans are recompiled
    per chase round as the instance grows.  Ties break toward textual
    order, which keeps plans (and therefore the whole chase)
    deterministic. *)

open Ekg_datalog

type t = {
  order : int array;
      (** [order.(k)] is the index, in the rule's positive-atom list,
          of the atom evaluated at join position [k]. *)
  reordered : bool;  (** [order] differs from the identity *)
}

val identity : int -> t
(** Textual order over [n] atoms. *)

val compile : card:(string -> int) -> Rule.t -> t
(** Plan a rule's positive body against cardinality estimates.
    [card p] is the (active + inactive) fact count of predicate [p];
    unknown predicates estimate to [0] and therefore evaluate first,
    which short-circuits the join immediately. *)

val key_masks : Rule.t -> t -> int array
(** Per join position, the bitmask of argument positions bound at
    probe time — constants plus variables bound by earlier atoms in
    plan order.  These are the hash-join key columns the matcher
    builds and probes indexes on ({!Database.ensure_index}): the
    greedy cardinality order chooses the build side (the atom indexed
    at each position), the mask chooses its key columns.  A mask of
    [0] (nothing bound — typically the seed position) means the
    position scans instead of probing. *)

val to_string : Rule.t -> t -> string
(** Diagnostic rendering, e.g. ["sigma3: own, control -> control"]. *)
