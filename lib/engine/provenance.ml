open Ekg_datalog

type contributor = {
  facts : int list;
  binding : Subst.t;
}

type derivation = {
  rule_id : string;
  premises : int list;
  binding : Subst.t;
  contributors : contributor list;
  round : int;
}

(* Per-fact derivation store.  Heavily-derived facts (dense joins can
   reach a fact through thousands of alternative homomorphisms) made
   the old [list ref]+append representation quadratic: every [record]
   walked the list for duplicate detection and copied it to append.
   Derivations are now kept newest-first (O(1) cons) with the primary
   pinned and a hashed (rule, premises) set for O(1) dedup; readers
   reverse on access, so every observable order is unchanged. *)
type entry = {
  mutable rev_items : derivation list;  (* newest first *)
  primary : derivation;                 (* the first ever recorded *)
  seen : (string * int list, unit) Hashtbl.t;
}

type t = {
  derivations : (int, entry) Hashtbl.t;
  superseded : (int, int) Hashtbl.t;
}

let create () = { derivations = Hashtbl.create 256; superseded = Hashtbl.create 16 }

let copy t =
  (* derivation records and their lists are immutable; the entry
     records and dedup tables are not *)
  let derivations = Hashtbl.create (max 256 (Hashtbl.length t.derivations)) in
  Hashtbl.iter
    (fun id e ->
      Hashtbl.add derivations id
        { rev_items = e.rev_items; primary = e.primary; seen = Hashtbl.copy e.seen })
    t.derivations;
  { derivations; superseded = Hashtbl.copy t.superseded }

let record t ~fact_id d =
  let key = (d.rule_id, d.premises) in
  match Hashtbl.find_opt t.derivations fact_id with
  | None ->
    let seen = Hashtbl.create 4 in
    Hashtbl.add seen key ();
    Hashtbl.add t.derivations fact_id { rev_items = [ d ]; primary = d; seen }
  | Some e ->
    if not (Hashtbl.mem e.seen key) then begin
      Hashtbl.add e.seen key ();
      e.rev_items <- d :: e.rev_items
    end

let alternatives t id =
  match Hashtbl.find_opt t.derivations id with
  | Some e -> List.rev e.rev_items
  | None -> []

let forget t id = Hashtbl.remove t.derivations id

let iter t f =
  Hashtbl.iter
    (fun id e -> List.iter (fun d -> f id d) (List.rev e.rev_items))
    t.derivations

let record_superseded t ~old_fact ~by = Hashtbl.replace t.superseded old_fact by
let superseded_by t id = Hashtbl.find_opt t.superseded id

let derivation t id =
  match Hashtbl.find_opt t.derivations id with
  | Some e -> Some e.primary
  | None -> None

let is_edb t id = not (Hashtbl.mem t.derivations id)

let derived_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.derivations [] |> List.sort Int.compare

let to_digraph t db =
  let g = Ekg_graph.Digraph.create () in
  let name id = Fact.to_string (Database.fact db id) in
  Hashtbl.iter
    (fun id e ->
      let dst = name id in
      Ekg_graph.Digraph.add_node g dst;
      List.iter
        (fun d ->
          List.iter
            (fun p -> Ekg_graph.Digraph.add_edge g ~src:(name p) ~dst ~label:d.rule_id)
            d.premises)
        (List.rev e.rev_items))
    t.derivations;
  g

(* --- snapshot codec ---------------------------------------------------------- *)

let w_subst b s =
  let bindings = Subst.to_list s in
  Wire.w_int b (List.length bindings);
  List.iter
    (fun (v, value) ->
      Wire.w_string b v;
      Wire.w_value b value)
    bindings

let r_subst r =
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "Provenance: negative binding count");
  let rec go n acc =
    if n = 0 then Subst.of_list (List.rev acc)
    else begin
      let v = Wire.r_string r in
      let value = Wire.r_value r in
      go (n - 1) ((v, value) :: acc)
    end
  in
  go n []

let encode b t =
  Wire.w_int b (Hashtbl.length t.derivations);
  (* ascending fact id, so equal graphs encode to equal bytes *)
  List.iter
    (fun id ->
      let ds =
        match Hashtbl.find_opt t.derivations id with
        | Some e -> List.rev e.rev_items
        | None -> assert false
      in
      Wire.w_int b id;
      Wire.w_int b (List.length ds);
      List.iter
        (fun d ->
          Wire.w_string b d.rule_id;
          Wire.w_int_list b d.premises;
          w_subst b d.binding;
          Wire.w_int b (List.length d.contributors);
          List.iter
            (fun c ->
              Wire.w_int_list b c.facts;
              w_subst b c.binding)
            d.contributors;
          Wire.w_int b d.round)
        ds)
    (derived_ids t);
  Wire.w_int b (Hashtbl.length t.superseded);
  List.iter
    (fun (old_fact, by) ->
      Wire.w_int b old_fact;
      Wire.w_int b by)
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.superseded []))

let decode r =
  let t = create () in
  let n_facts = Wire.r_int r in
  if n_facts < 0 then raise (Wire.Corrupt "Provenance: negative fact count");
  for _ = 1 to n_facts do
    let fact_id = Wire.r_int r in
    let n_ds = Wire.r_int r in
    if n_ds < 0 then
      raise (Wire.Corrupt "Provenance: negative derivation count");
    for _ = 1 to n_ds do
      let rule_id = Wire.r_string r in
      let premises = Wire.r_int_list r in
      let binding = r_subst r in
      let n_cs = Wire.r_int r in
      if n_cs < 0 then
        raise (Wire.Corrupt "Provenance: negative contributor count");
      let contributors = ref [] in
      for _ = 1 to n_cs do
        let facts = Wire.r_int_list r in
        let binding = r_subst r in
        contributors := { facts; binding } :: !contributors
      done;
      let round = Wire.r_int r in
      record t ~fact_id
        {
          rule_id;
          premises;
          binding;
          contributors = List.rev !contributors;
          round;
        }
    done
  done;
  let n_sup = Wire.r_int r in
  if n_sup < 0 then raise (Wire.Corrupt "Provenance: negative superseded count");
  for _ = 1 to n_sup do
    let old_fact = Wire.r_int r in
    let by = Wire.r_int r in
    record_superseded t ~old_fact ~by
  done;
  t
