open Ekg_datalog

type contributor = {
  facts : int list;
  binding : Subst.t;
}

type derivation = {
  rule_id : string;
  premises : int list;
  binding : Subst.t;
  contributors : contributor list;
  round : int;
}

type t = {
  derivations : (int, derivation list ref) Hashtbl.t; (* primary first *)
  superseded : (int, int) Hashtbl.t;
}

let create () = { derivations = Hashtbl.create 256; superseded = Hashtbl.create 16 }

let copy t =
  (* derivation records are immutable; the per-fact list refs are not *)
  let derivations = Hashtbl.create (max 256 (Hashtbl.length t.derivations)) in
  Hashtbl.iter (fun id ds -> Hashtbl.add derivations id (ref !ds)) t.derivations;
  { derivations; superseded = Hashtbl.copy t.superseded }

let record t ~fact_id d =
  match Hashtbl.find_opt t.derivations fact_id with
  | None -> Hashtbl.add t.derivations fact_id (ref [ d ])
  | Some existing ->
    let duplicate =
      List.exists
        (fun d' -> d'.rule_id = d.rule_id && d'.premises = d.premises)
        !existing
    in
    if not duplicate then existing := !existing @ [ d ]

let alternatives t id =
  match Hashtbl.find_opt t.derivations id with
  | Some ds -> !ds
  | None -> []

let forget t id = Hashtbl.remove t.derivations id

let iter t f =
  Hashtbl.iter (fun id ds -> List.iter (fun d -> f id d) !ds) t.derivations

let record_superseded t ~old_fact ~by = Hashtbl.replace t.superseded old_fact by
let superseded_by t id = Hashtbl.find_opt t.superseded id

let derivation t id =
  match Hashtbl.find_opt t.derivations id with
  | Some { contents = d :: _ } -> Some d
  | Some { contents = [] } | None -> None

let is_edb t id = not (Hashtbl.mem t.derivations id)

let derived_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.derivations [] |> List.sort Int.compare

let to_digraph t db =
  let g = Ekg_graph.Digraph.create () in
  let name id = Fact.to_string (Database.fact db id) in
  Hashtbl.iter
    (fun id ds ->
      let dst = name id in
      Ekg_graph.Digraph.add_node g dst;
      List.iter
        (fun d ->
          List.iter
            (fun p -> Ekg_graph.Digraph.add_edge g ~src:(name p) ~dst ~label:d.rule_id)
            d.premises)
        !ds)
    t.derivations;
  g
