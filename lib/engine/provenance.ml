open Ekg_datalog

type contributor = {
  facts : int list;
  binding : Subst.t;
}

type derivation = {
  rule_id : string;
  premises : int list;
  binding : Subst.t;
  contributors : contributor list;
  round : int;
}

type t = {
  derivations : (int, derivation list ref) Hashtbl.t; (* primary first *)
  superseded : (int, int) Hashtbl.t;
}

let create () = { derivations = Hashtbl.create 256; superseded = Hashtbl.create 16 }

let copy t =
  (* derivation records are immutable; the per-fact list refs are not *)
  let derivations = Hashtbl.create (max 256 (Hashtbl.length t.derivations)) in
  Hashtbl.iter (fun id ds -> Hashtbl.add derivations id (ref !ds)) t.derivations;
  { derivations; superseded = Hashtbl.copy t.superseded }

let record t ~fact_id d =
  match Hashtbl.find_opt t.derivations fact_id with
  | None -> Hashtbl.add t.derivations fact_id (ref [ d ])
  | Some existing ->
    let duplicate =
      List.exists
        (fun d' -> d'.rule_id = d.rule_id && d'.premises = d.premises)
        !existing
    in
    if not duplicate then existing := !existing @ [ d ]

let alternatives t id =
  match Hashtbl.find_opt t.derivations id with
  | Some ds -> !ds
  | None -> []

let forget t id = Hashtbl.remove t.derivations id

let iter t f =
  Hashtbl.iter (fun id ds -> List.iter (fun d -> f id d) !ds) t.derivations

let record_superseded t ~old_fact ~by = Hashtbl.replace t.superseded old_fact by
let superseded_by t id = Hashtbl.find_opt t.superseded id

let derivation t id =
  match Hashtbl.find_opt t.derivations id with
  | Some { contents = d :: _ } -> Some d
  | Some { contents = [] } | None -> None

let is_edb t id = not (Hashtbl.mem t.derivations id)

let derived_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.derivations [] |> List.sort Int.compare

let to_digraph t db =
  let g = Ekg_graph.Digraph.create () in
  let name id = Fact.to_string (Database.fact db id) in
  Hashtbl.iter
    (fun id ds ->
      let dst = name id in
      Ekg_graph.Digraph.add_node g dst;
      List.iter
        (fun d ->
          List.iter
            (fun p -> Ekg_graph.Digraph.add_edge g ~src:(name p) ~dst ~label:d.rule_id)
            d.premises)
        !ds)
    t.derivations;
  g

(* --- snapshot codec ---------------------------------------------------------- *)

let w_subst b s =
  let bindings = Subst.to_list s in
  Wire.w_int b (List.length bindings);
  List.iter
    (fun (v, value) ->
      Wire.w_string b v;
      Wire.w_value b value)
    bindings

let r_subst r =
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "Provenance: negative binding count");
  let rec go n acc =
    if n = 0 then Subst.of_list (List.rev acc)
    else begin
      let v = Wire.r_string r in
      let value = Wire.r_value r in
      go (n - 1) ((v, value) :: acc)
    end
  in
  go n []

let encode b t =
  Wire.w_int b (Hashtbl.length t.derivations);
  (* ascending fact id, so equal graphs encode to equal bytes *)
  List.iter
    (fun id ->
      let ds =
        match Hashtbl.find_opt t.derivations id with
        | Some ds -> !ds
        | None -> assert false
      in
      Wire.w_int b id;
      Wire.w_int b (List.length ds);
      List.iter
        (fun d ->
          Wire.w_string b d.rule_id;
          Wire.w_int_list b d.premises;
          w_subst b d.binding;
          Wire.w_int b (List.length d.contributors);
          List.iter
            (fun c ->
              Wire.w_int_list b c.facts;
              w_subst b c.binding)
            d.contributors;
          Wire.w_int b d.round)
        ds)
    (derived_ids t);
  Wire.w_int b (Hashtbl.length t.superseded);
  List.iter
    (fun (old_fact, by) ->
      Wire.w_int b old_fact;
      Wire.w_int b by)
    (List.sort compare
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.superseded []))

let decode r =
  let t = create () in
  let n_facts = Wire.r_int r in
  if n_facts < 0 then raise (Wire.Corrupt "Provenance: negative fact count");
  for _ = 1 to n_facts do
    let fact_id = Wire.r_int r in
    let n_ds = Wire.r_int r in
    if n_ds < 0 then
      raise (Wire.Corrupt "Provenance: negative derivation count");
    for _ = 1 to n_ds do
      let rule_id = Wire.r_string r in
      let premises = Wire.r_int_list r in
      let binding = r_subst r in
      let n_cs = Wire.r_int r in
      if n_cs < 0 then
        raise (Wire.Corrupt "Provenance: negative contributor count");
      let contributors = ref [] in
      for _ = 1 to n_cs do
        let facts = Wire.r_int_list r in
        let binding = r_subst r in
        contributors := { facts; binding } :: !contributors
      done;
      let round = Wire.r_int r in
      record t ~fact_id
        {
          rule_id;
          premises;
          binding;
          contributors = List.rev !contributors;
          round;
        }
    done
  done;
  let n_sup = Wire.r_int r in
  if n_sup < 0 then raise (Wire.Corrupt "Provenance: negative superseded count");
  for _ = 1 to n_sup do
    let old_fact = Wire.r_int r in
    let by = Wire.r_int r in
    record_superseded t ~old_fact ~by
  done;
  t
