(** The chase graph G(D, Σ): provenance of every materialized fact
    (§3, Chase Procedure and Chase Graph).

    Every intensional fact records the chase step that first derived
    it: the activated rule, the homomorphism θ, the premise facts, and
    — for aggregation rules — the list of contributors that fed the
    monotonic aggregate.  Extensional facts have no derivation. *)

open Ekg_datalog

type contributor = {
  facts : int list;     (** premise fact ids of this contributor *)
  binding : Subst.t;    (** θ restricted to this contributor's body match *)
}

type derivation = {
  rule_id : string;
  premises : int list;             (** all premise fact ids, deduplicated *)
  binding : Subst.t;               (** representative θ incl. head/group/aggregate values *)
  contributors : contributor list; (** ≥ 1 entries iff the rule aggregates *)
  round : int;                     (** chase round that performed the step *)
}

type t

val create : unit -> t

val copy : t -> t
(** Independent copy: recording or forgetting derivations on either
    side never shows through the other (the companion of
    {!Database.copy} inside {!Chase.copy_result}). *)

val record : t -> fact_id:int -> derivation -> unit
(** The first derivation becomes the fact's primary one (the chase adds
    each fact once); later distinct derivations are kept as
    alternatives, enabling shortest-proof explanation. *)

val alternatives : t -> int -> derivation list
(** All recorded derivations, primary first; [] for EDB facts. *)

val forget : t -> int -> unit
(** Drop every recorded derivation of the fact — the DRed over-deletion
    step of the incremental chase ({!Chase.retract_facts}): a fact whose
    support was retracted loses its history before re-derivation gets a
    chance to record a fresh, still-valid proof. *)

val iter : t -> (int -> derivation -> unit) -> unit
(** Visit every (fact id, derivation) pair, alternatives included, in
    unspecified order — the incremental chase walks this once to build
    the premise → consumers reverse index its deletion cone follows. *)

val record_superseded : t -> old_fact:int -> by:int -> unit
(** Note that a stale aggregate fact was replaced by a newer one. *)

val superseded_by : t -> int -> int option

val derivation : t -> int -> derivation option
(** [None] for extensional facts. *)

val is_edb : t -> int -> bool

val derived_ids : t -> int list
(** Ids with a recorded derivation, ascending. *)

val to_digraph : t -> Database.t -> string Ekg_graph.Digraph.t
(** Chase graph as a digraph whose nodes are rendered facts and whose
    edge labels are rule ids — the shape of the paper's Figure 8. *)

val encode : Buffer.t -> t -> unit
(** Snapshot codec hook: every derivation (alternatives included, in
    recorded order) and the superseded table, in deterministic fact-id
    order — the companion of {!Database.encode} inside a session
    snapshot. *)

val decode : Wire.reader -> t
(** Raises {!Wire.Truncated} / {!Wire.Corrupt} on malformed input. *)
