type t = {
  index : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let create ?(capacity = 16) () =
  { index = Hashtbl.create capacity; names = Array.make (max 1 capacity) ""; n = 0 }

let copy t = { index = Hashtbl.copy t.index; names = Array.copy t.names; n = t.n }
let size t = t.n

let intern t s =
  match Hashtbl.find_opt t.index s with
  | Some id -> id
  | None ->
    let id = t.n in
    if id = Array.length t.names then begin
      let grown = Array.make (2 * id) "" in
      Array.blit t.names 0 grown 0 id;
      t.names <- grown
    end;
    t.names.(id) <- s;
    t.n <- id + 1;
    Hashtbl.add t.index s id;
    id

let find t s = Hashtbl.find_opt t.index s

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Symtab.name";
  t.names.(id)

let iter f t =
  for id = 0 to t.n - 1 do
    f id t.names.(id)
  done

let encode b t =
  Wire.w_int b t.n;
  for id = 0 to t.n - 1 do
    Wire.w_string b t.names.(id)
  done

let decode r =
  let n = Wire.r_int r in
  if n < 0 then raise (Wire.Corrupt "Symtab: negative size");
  let t = create ~capacity:(max 1 n) () in
  for expected = 0 to n - 1 do
    if intern t (Wire.r_string r) <> expected then
      raise (Wire.Corrupt "Symtab: duplicate name")
  done;
  t
