(** Predicate-symbol interning: a bijection between predicate names and
    dense small ints, so the engine's hot paths (index probes, delta
    membership, planner cardinality lookups) key on machine ints
    instead of hashing strings.  Symbols are per-database and assigned
    in first-intern order, which keeps them deterministic for a given
    insertion sequence. *)

type t

val create : ?capacity:int -> unit -> t

val copy : t -> t
(** Independent copy with the same name ↔ symbol assignment; later
    interns on either table leave the other untouched. *)

val intern : t -> string -> int
(** The symbol for a name, allocating the next dense id on first use. *)

val find : t -> string -> int option
(** Lookup without allocation; [None] for never-interned names. *)

val name : t -> int -> string
(** Inverse of {!intern}; raises [Invalid_argument] on unknown ids. *)

val size : t -> int
(** Number of interned symbols; valid ids are [0..size-1]. *)

val iter : (int -> string -> unit) -> t -> unit
(** In symbol order. *)

val encode : Buffer.t -> t -> unit
(** Snapshot codec hook: the interned names in symbol order, so
    {!decode} reproduces the exact name ↔ symbol assignment. *)

val decode : Wire.reader -> t
(** Raises {!Wire.Truncated} / {!Wire.Corrupt} on malformed input. *)
