open Ekg_kernel

exception Truncated
exception Corrupt of string

(* --- writing ---------------------------------------------------------------- *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

(* zigzag maps ..., -2, -1, 0, 1, 2, ... to 3, 1, 0, 2, 4, ... so the
   LEB128 varint of a small magnitude is short regardless of sign *)
let w_int b n =
  let u = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  let rec go u =
    if u land lnot 0x7f = 0 then w_u8 b u
    else begin
      w_u8 b (0x80 lor (u land 0x7f));
      go (u lsr 7)
    end
  in
  go u

let w_float b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_value b (v : Value.t) =
  match v with
  | Value.Int n ->
    w_u8 b 0;
    w_int b n
  | Value.Num f ->
    w_u8 b 1;
    w_float b f
  | Value.Str s ->
    w_u8 b 2;
    w_string b s
  | Value.Bool v ->
    w_u8 b 3;
    w_bool b v
  | Value.Null i ->
    w_u8 b 4;
    w_int b i

let w_int_list b xs =
  w_int b (List.length xs);
  List.iter (w_int b) xs

(* --- reading ---------------------------------------------------------------- *)

type reader = {
  data : string;
  mutable p : int;
}

let reader ?(pos = 0) data =
  if pos < 0 || pos > String.length data then raise Truncated;
  { data; p = pos }

let pos r = r.p
let remaining r = String.length r.data - r.p

let skip r n =
  if n < 0 || remaining r < n then raise Truncated;
  r.p <- r.p + n

let r_u8 r =
  if r.p >= String.length r.data then raise Truncated;
  let c = Char.code (String.unsafe_get r.data r.p) in
  r.p <- r.p + 1;
  c

let r_int r =
  let rec go shift acc =
    if shift > Sys.int_size then raise (Corrupt "varint overflow");
    let byte = r_u8 r in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let u = go 0 0 in
  (u lsr 1) lxor (-(u land 1))

let r_float r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "bool tag %d" n))

let r_bytes r n =
  if n < 0 then raise (Corrupt "negative byte count");
  if remaining r < n then raise Truncated;
  let s = String.sub r.data r.p n in
  r.p <- r.p + n;
  s

let r_string r =
  let n = r_int r in
  if n < 0 then raise (Corrupt "negative string length");
  r_bytes r n

let r_value r =
  match r_u8 r with
  | 0 -> Value.Int (r_int r)
  | 1 -> Value.Num (r_float r)
  | 2 -> Value.Str (r_string r)
  | 3 -> Value.Bool (r_bool r)
  | 4 -> Value.Null (r_int r)
  | n -> raise (Corrupt (Printf.sprintf "value tag %d" n))

let r_int_list r =
  let n = r_int r in
  if n < 0 then raise (Corrupt "negative list length");
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (r_int r :: acc) in
  go n []

let expect_magic r magic =
  let n = String.length magic in
  if remaining r < n then raise Truncated;
  let got = String.sub r.data r.p n in
  r.p <- r.p + n;
  String.equal got magic
