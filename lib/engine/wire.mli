(** Binary wire primitives shared by the engine's snapshot codecs.

    The persistent session store serializes materializations —
    {!Database}, {!Provenance}, {!Symtab}, {!Intvec} — into a compact
    little-endian binary form.  This module is the single place the
    byte-level encoding lives: each engine container exposes an
    [encode]/[decode] pair written against these primitives, and the
    store layer composes them into versioned snapshot files.

    Integers use LEB128 varints with zigzag mapping, so small
    magnitudes of either sign stay short; floats are IEEE-754 bits;
    strings and blobs are length-prefixed.  Decoding is strict: running
    off the end of the input raises {!Truncated}, a malformed field
    (bad tag, negative length) raises {!Corrupt} — callers translate
    both into their typed error channel. *)

open Ekg_kernel

exception Truncated
(** The reader ran past the end of its input. *)

exception Corrupt of string
(** A structurally invalid field (unknown tag, absurd length, …). *)

(** {1 Writing}

    Writers append to a [Buffer.t]; composing codecs is plain function
    application. *)

val w_u8 : Buffer.t -> int -> unit
(** Low 8 bits of the argument, one byte. *)

val w_int : Buffer.t -> int -> unit
(** Zigzag LEB128 varint — any OCaml [int], negative included. *)

val w_float : Buffer.t -> float -> unit
(** IEEE-754 double, 8 bytes little-endian. *)

val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
(** Varint length, then the raw bytes. *)

val w_value : Buffer.t -> Value.t -> unit
(** Tagged {!Ekg_kernel.Value.t}: carrier tag byte + payload. *)

val w_int_list : Buffer.t -> int list -> unit
(** Varint count, then each element as {!w_int}. *)

(** {1 Reading}

    A reader is a cursor over an immutable byte string; every [r_*]
    advances it.  All readers raise {!Truncated} / {!Corrupt} as
    described above. *)

type reader

val reader : ?pos:int -> string -> reader
(** A cursor over [s] starting at [pos] (default [0]). *)

val pos : reader -> int
(** Current offset — the store layer uses it to bound section reads. *)

val skip : reader -> int -> unit
(** Advance without decoding; {!Truncated} past the end. *)

val remaining : reader -> int

val r_bytes : reader -> int -> string
(** Exactly [n] raw bytes (no length prefix) — section extraction in
    the snapshot container format. *)

val r_u8 : reader -> int
val r_int : reader -> int
val r_float : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_value : reader -> Value.t
val r_int_list : reader -> int list

val expect_magic : reader -> string -> bool
(** Consume [String.length magic] bytes and report whether they equal
    [magic]; {!Truncated} when fewer remain. *)
