let now_s = Unix.gettimeofday

let since_ms t0 = Float.max 0. ((now_s () -. t0) *. 1000.)
