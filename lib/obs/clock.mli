(** The one clock every timer in the observability layer reads, so a
    better source (a monotonic syscall binding, a mocked clock in
    tests) can be swapped in at a single point.  The stdlib carries no
    monotonic clock, so the default source is [Unix.gettimeofday];
    span durations are differences of two nearby reads, for which wall
    time is an adequate monotonic proxy. *)

val now_s : unit -> float
(** Seconds, as a difference-friendly timestamp. *)

val since_ms : float -> float
(** [since_ms t0] is the elapsed time since the earlier {!now_s}
    reading [t0], in milliseconds, floored at [0.] so a stepped wall
    clock can never produce a negative duration. *)
