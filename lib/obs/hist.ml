(* Upper bounds of the latency buckets, in milliseconds; the final
   implicit bucket is (last, +inf), reported via the observed max. *)
let bounds =
  [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
     1000.; 2500.; 5000.; 10000. |]

type t = {
  counts : int array;        (* one per bound, plus overflow at the end *)
  mutable n : int;
  mutable sum : float;       (* ms *)
  mutable max : float;       (* ms *)
}

let create () =
  { counts = Array.make (Array.length bounds + 1) 0; n = 0; sum = 0.; max = 0. }

let bucket_of ms =
  let rec find i =
    if i >= Array.length bounds then Array.length bounds
    else if ms <= bounds.(i) then i
    else find (i + 1)
  in
  find 0

let observe_ms t ms =
  t.counts.(bucket_of ms) <- t.counts.(bucket_of ms) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. ms;
  if ms > t.max then t.max <- ms

let observe t seconds = observe_ms t (seconds *. 1000.)

let count t = t.n
let sum_ms t = t.sum
let max_ms t = t.max

let quantile t q =
  if t.n = 0 then 0.
  else begin
    (* the rank is clamped to [1, n]: q <= 0 asks for the smallest
       observation, q >= 1 for the largest *)
    let rank =
      Float.min (float_of_int t.n) (Float.max 1. (Float.round (q *. float_of_int t.n)))
    in
    let rec walk i acc =
      if i >= Array.length bounds then t.max
      else
        let acc = acc + t.counts.(i) in
        if float_of_int acc >= rank then bounds.(i) else walk (i + 1) acc
    in
    (* a bucket's upper bound can exceed every value it holds (e.g. a
       single 0.02 ms observation in the (0, 0.05] bucket): the
       observed maximum is always a tighter correct bound *)
    Float.min (walk 0 0) t.max
  end

let cumulative t =
  let acc = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i bound ->
         acc := !acc + t.counts.(i);
         (bound, !acc))
       bounds)
