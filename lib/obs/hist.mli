(** The one latency histogram shared by the service metrics and the
    tracer: log-spaced millisecond buckets with an overflow bucket,
    count/sum/max, and a Prometheus-style quantile estimator.

    Operations are not synchronized — embed a histogram behind the
    owner's lock (as {!Metrics} and the server's endpoint metrics
    do). *)

type t

val bounds : float array
(** Upper bounds of the buckets, in milliseconds, ascending; the final
    implicit bucket is [(last, +inf)]. *)

val create : unit -> t

val observe : t -> float -> unit
(** Record one latency, in seconds. *)

val observe_ms : t -> float -> unit
(** Record one latency, in milliseconds. *)

val count : t -> int
val sum_ms : t -> float
val max_ms : t -> float

val quantile : t -> float -> float
(** [quantile h q] estimates the q-quantile in milliseconds as the
    upper bound of the first bucket whose cumulative count reaches
    [q * count] (the estimator Prometheus uses), clamped to the
    observed maximum so a sparse histogram can never report a bound
    above any recorded value.  [q] itself is clamped to the
    one-observation … all-observations rank range, so [q <= 0.]
    estimates the smallest observation and [q >= 1.] the largest.
    [0.] when empty. *)

val cumulative : t -> (float * int) list
(** [(upper_bound_ms, cumulative_count)] per bucket, ascending,
    excluding the implicit [+inf] bucket (whose cumulative count is
    {!count}) — the Prometheus [_bucket] series. *)
