(* An instrumented mutex: same discipline as [Mutex], plus wait/hold
   histograms and contention counters into a [Metrics.t], labeled by
   the lock's name.  With a noop registry every operation is a plain
   mutex op behind one branch, so adopting the wrapper costs nothing
   when observability is off. *)

let wait_metric = "ekg_lock_wait_seconds"
let hold_metric = "ekg_lock_hold_seconds"
let acquisitions_metric = "ekg_lock_acquisitions_total"
let contended_metric = "ekg_lock_contended_total"

let wait_help = "Time spent waiting to acquire an instrumented lock."
let hold_help = "Time an instrumented lock was held per critical section."
let acquisitions_help = "Acquisitions of an instrumented lock."
let contended_help = "Acquisitions that found an instrumented lock already held."

type t = {
  name : string;
  mutex : Mutex.t;
  mutable obs : Metrics.t;
  labels : (string * string) list;
  mutable acquired_at : float;
      (* read and written only while holding [mutex], so the current
         holder sees its own acquisition time *)
}

let create ?obs name =
  let obs = match obs with Some o -> o | None -> Metrics.noop () in
  {
    name;
    mutex = Mutex.create ();
    obs;
    labels = [ ("lock", name) ];
    acquired_at = 0.;
  }

let name t = t.name
let mutex t = t.mutex
let set_obs t obs = t.obs <- obs

let declare obs name =
  let labels = [ ("lock", name) ] in
  Metrics.declare_histogram obs ~help:wait_help ~labels wait_metric;
  Metrics.declare_histogram obs ~help:hold_help ~labels hold_metric;
  Metrics.declare_counter obs ~help:acquisitions_help ~labels acquisitions_metric;
  Metrics.declare_counter obs ~help:contended_help ~labels contended_metric

let lock t =
  if Metrics.enabled t.obs then begin
    (if Mutex.try_lock t.mutex then
       Metrics.observe t.obs ~help:wait_help ~labels:t.labels wait_metric 0.
     else begin
       Metrics.incr t.obs ~help:contended_help ~labels:t.labels contended_metric;
       let t0 = Clock.now_s () in
       Mutex.lock t.mutex;
       Metrics.observe t.obs ~help:wait_help ~labels:t.labels wait_metric
         (Float.max 0. (Clock.now_s () -. t0))
     end);
    Metrics.incr t.obs ~help:acquisitions_help ~labels:t.labels
      acquisitions_metric;
    t.acquired_at <- Clock.now_s ()
  end
  else Mutex.lock t.mutex

let unlock t =
  if Metrics.enabled t.obs then begin
    let held = Float.max 0. (Clock.now_s () -. t.acquired_at) in
    Mutex.unlock t.mutex;
    (* observed after release so hold times never include the metrics
       registry's own lock *)
    Metrics.observe t.obs ~help:hold_help ~labels:t.labels hold_metric held
  end
  else Mutex.unlock t.mutex

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f
