(** An instrumented mutex for contention visibility: [Mutex]'s
    discipline plus per-lock wait/hold histograms and contention
    counters into a {!Metrics.t}, labeled [{lock="<name>"}].  The
    series:

    - [ekg_lock_wait_seconds] — time to acquire (0 on an uncontended
      fast path);
    - [ekg_lock_hold_seconds] — critical-section length, observed
      after release;
    - [ekg_lock_acquisitions_total], [ekg_lock_contended_total].

    With a {!Metrics.noop} registry every operation is a plain mutex
    op behind one branch, so hot paths can adopt the wrapper without
    an off-mode cost.  Name cardinality is the adopter's budget: use
    the wrapper for the handful of process-wide locks worth watching
    (registry, snapshotter, tracer), not per-entity locks. *)

type t

val create : ?obs:Metrics.t -> string -> t
(** [obs] defaults to a noop registry (uninstrumented until
    {!set_obs}). *)

val set_obs : t -> Metrics.t -> unit
val name : t -> string

val mutex : t -> Mutex.t
(** The raw mutex, for [Condition.wait].  A wait releases and
    reacquires the mutex outside the wrapper, so a critical section
    that blocks on a condition should take the raw ops around its wait
    loop — otherwise the hold histogram absorbs the blocked time and
    stops describing contention. *)

val declare : Metrics.t -> string -> unit
(** Pre-register the four series for lock name [name] so scrapes see
    them at zero before the first acquisition. *)

val lock : t -> unit
val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** [lock]/[unlock] around [f], release guaranteed on exceptions. *)

(** {1 Series names} *)

val wait_metric : string
val hold_metric : string
val acquisitions_metric : string
val contended_metric : string
