(* Leveled, thread-safe structured JSONL logging with a bounded
   slow-request ring.  One logger = one sink (a line consumer, usually
   an append-only file); every event renders as a single-line JSON
   object, so the log is greppable and machine-parseable without a
   framing layer.  The server emits one canonical "wide event" per
   request through [event] — all the request's facts in one record —
   instead of scattering them over interleaved free-text lines. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | s ->
    Result.Error
      (Printf.sprintf "unknown log level %S (expected debug|info|warn|error)" s)

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type value = Bool of bool | Int of int | Float of float | Str of string

type entry = {
  e_ts : float;
  e_level : level;
  e_event : string;
  e_duration_ms : float;
  e_fields : (string * value) list;
}

type t = {
  lock : Mutex.t;
  enabled : bool;
  mutable min_level : level;
  sink : (string -> unit) option;
  mutable chan : out_channel option;  (* owned channel behind [sink] *)
  slow_threshold_ms : float;
  slow_ring : entry option array;
  mutable slow_next : int;
  mutable slow_stored : int;
  mutable emitted : int;
}

let create ?(level = Info) ?(slow_threshold_ms = 500.) ?(slow_capacity = 64)
    ?sink () =
  {
    lock = Mutex.create ();
    enabled = true;
    min_level = level;
    sink;
    chan = None;
    slow_threshold_ms;
    slow_ring = Array.make (max 1 slow_capacity) None;
    slow_next = 0;
    slow_stored = 0;
    emitted = 0;
  }

let noop () =
  let t = create ~slow_capacity:1 () in
  { t with enabled = false }

let open_file ?level ?slow_threshold_ms ?slow_capacity path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | exception Sys_error e -> Result.Error e
  | chan ->
    let sink line =
      output_string chan line;
      output_char chan '\n';
      flush chan
    in
    let t = create ?level ?slow_threshold_ms ?slow_capacity ~sink () in
    t.chan <- Some chan;
    Ok t

let close t =
  Mutex.lock t.lock;
  (match t.chan with
  | Some c ->
    t.chan <- None;
    (try close_out c with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock t.lock

let enabled t = t.enabled
let level t = t.min_level
let set_level t l = t.min_level <- l
let slow_threshold_ms t = t.slow_threshold_ms
let emitted t = t.emitted

let would_log t l = t.enabled && severity l >= severity t.min_level

(* --- JSON rendering --------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.6f" v)

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> add_float buf v
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'

let render_line ~ts ~level:l ~event:name ~duration_ms fields =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf {|{"ts":%.6f,"level":"%s","event":"|} ts
                           (level_to_string l));
  escape buf name;
  Buffer.add_char buf '"';
  (match duration_ms with
  | Some d ->
    Buffer.add_string buf {|,"duration_ms":|};
    add_float buf d
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf {|,"|};
      escape buf k;
      Buffer.add_string buf {|":|};
      add_value buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- Emission --------------------------------------------------------------- *)

let push_slow t entry =
  t.slow_ring.(t.slow_next) <- Some entry;
  t.slow_next <- (t.slow_next + 1) mod Array.length t.slow_ring;
  t.slow_stored <- min (t.slow_stored + 1) (Array.length t.slow_ring)

let event t ?duration_ms l name fields =
  if t.enabled then begin
    let slow =
      match duration_ms with
      | Some d -> d >= t.slow_threshold_ms
      | None -> false
    in
    let to_sink = t.sink <> None && severity l >= severity t.min_level in
    (* the slow ring captures independently of the severity filter —
       a slowlog that went quiet because the level was raised would
       defeat its purpose *)
    if slow || to_sink then begin
      let ts = Unix.gettimeofday () in
      let line =
        if to_sink then Some (render_line ~ts ~level:l ~event:name ~duration_ms fields)
        else None
      in
      Mutex.lock t.lock;
      if to_sink then t.emitted <- t.emitted + 1;
      if slow then
        push_slow t
          {
            e_ts = ts;
            e_level = l;
            e_event = name;
            e_duration_ms = Option.value duration_ms ~default:0.;
            e_fields = fields;
          };
      Mutex.unlock t.lock;
      match line, t.sink with
      | Some line, Some sink -> (try sink line with _ -> ())
      | _ -> ()
    end
  end

let debug t name fields = event t Debug name fields
let info t name fields = event t Info name fields
let warn t name fields = event t Warn name fields
let error t name fields = event t Error name fields

let slow_entries t =
  Mutex.lock t.lock;
  let cap = Array.length t.slow_ring in
  let start = (t.slow_next - t.slow_stored + cap) mod cap in
  let oldest_first =
    List.init t.slow_stored (fun i -> t.slow_ring.((start + i) mod cap))
    |> List.filter_map Fun.id
  in
  Mutex.unlock t.lock;
  List.rev oldest_first

(* --- Ambient wide-event context --------------------------------------------- *)

module Ctx = struct
  (* One slot per domain: requests are handled start-to-finish on a
     single worker domain, so DLS gives instrumented lower tiers
     (registry, handlers) a place to drop wide-event fields without
     threading a context through every signature. *)
  let slot_key : (string * value) list ref option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let active () = !(Domain.DLS.get slot_key) <> None

  (* overwrite in place so the collected list keeps first-put order —
     consumers render the fields as-is and a re-put key must not jump *)
  let store acc k v =
    if List.mem_assoc k !acc then
      acc := List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) !acc
    else acc := (k, v) :: !acc

  let put k v =
    match !(Domain.DLS.get slot_key) with
    | None -> ()
    | Some acc -> store acc k v

  let add k d =
    match !(Domain.DLS.get slot_key) with
    | None -> ()
    | Some acc ->
      let prev =
        match List.assoc_opt k !acc with
        | Some (Float f) -> f
        | Some (Int i) -> float_of_int i
        | _ -> 0.
      in
      store acc k (Float (prev +. d))

  let collect f =
    let slot = Domain.DLS.get slot_key in
    let saved = !slot in
    let acc = ref [] in
    slot := Some acc;
    match f () with
    | v ->
      slot := saved;
      (v, List.rev !acc)
    | exception e ->
      slot := saved;
      raise e
end
