(** Leveled, thread-safe structured logging: every event is one
    single-line JSON object ({e JSONL}), so the log is greppable and
    machine-parseable without a framing layer.

    The server uses this for {e wide events}: one canonical record per
    request carrying everything known about it — trace id, endpoint,
    status, admission wait, chase work, cache hits, GC deltas — instead
    of scattering the same facts over interleaved free-text lines.
    Lower tiers contribute fields to the current request's event
    through the ambient {!Ctx} without threading a context value
    through every signature.

    Independently of the severity filter, events that carry a
    [duration_ms] at or above the logger's slow threshold are captured
    in a bounded in-memory {e slow-request ring}, served live by
    [GET /v1/debug/slowlog]. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> (level, string) result
(** ["debug" | "info" | "warn" | "error"]; the [--log-level] flag. *)

(** Wide-event field values, rendered as the corresponding JSON type. *)
type value = Bool of bool | Int of int | Float of float | Str of string

type entry = {
  e_ts : float;                    (** unix seconds at emission *)
  e_level : level;
  e_event : string;
  e_duration_ms : float;
  e_fields : (string * value) list;
}
(** A slow-ring capture. *)

type t

val create :
  ?level:level ->
  ?slow_threshold_ms:float ->
  ?slow_capacity:int ->
  ?sink:(string -> unit) ->
  unit ->
  t
(** [level] (default [Info]) is the minimum severity forwarded to
    [sink]; [sink] receives one rendered line (no newline) per passing
    event and may be omitted — the logger then only feeds the slow
    ring, which keeps [/v1/debug/slowlog] alive without a log file.
    [slow_threshold_ms] (default [500.]) and [slow_capacity] (default
    [64]) configure the ring. *)

val noop : unit -> t
(** A disabled logger: every emission returns after one branch. *)

val open_file :
  ?level:level ->
  ?slow_threshold_ms:float ->
  ?slow_capacity:int ->
  string ->
  (t, string) result
(** A logger appending JSONL lines to [path] (created [0o644]), one
    [flush] per event so a crash loses at most the in-flight line.
    The error is the [Sys_error] message. *)

val close : t -> unit
(** Close the channel owned by {!open_file} loggers; no-op otherwise.
    Later emissions are silently dropped. *)

val enabled : t -> bool
val level : t -> level
val set_level : t -> level -> unit
val slow_threshold_ms : t -> float

val emitted : t -> int
(** Events forwarded to the sink since creation. *)

val would_log : t -> level -> bool
(** Whether an event at this severity would reach the sink — the guard
    for callers that want to skip field construction entirely. *)

val event : t -> ?duration_ms:float -> level -> string -> (string * value) list -> unit
(** [event t lvl name fields] renders
    [{"ts":…,"level":…,"event":name,"duration_ms":…,fields…}] and
    hands it to the sink if [lvl] passes the severity filter.  When
    [duration_ms] is at or above the slow threshold the event is
    {e also} captured in the slow ring — regardless of the filter, so
    raising the level cannot blind the slowlog. *)

val debug : t -> string -> (string * value) list -> unit
val info : t -> string -> (string * value) list -> unit
val warn : t -> string -> (string * value) list -> unit
val error : t -> string -> (string * value) list -> unit

val slow_entries : t -> entry list
(** The slow ring, most recent first. *)

(** Ambient per-domain field accumulation for the current wide event.

    {!Ctx.collect} opens a scope on the calling domain; any {!Ctx.put}
    executed beneath it — in the registry, a handler, anywhere on the
    same domain — lands in the collected field list.  Requests are
    handled start-to-finish on one worker domain, so the scope is
    naturally request-bounded.  Outside a scope, {!Ctx.put} is a
    no-op, which keeps instrumented library code callable from
    anywhere (tests, CLI) without setup. *)
module Ctx : sig
  val active : unit -> bool
  (** Whether a {!collect} scope is open on this domain. *)

  val put : string -> value -> unit
  (** Set a field on the current event; last write per key wins. *)

  val add : string -> float -> unit
  (** Accumulate onto a numeric field (starting from [0.]). *)

  val collect : (unit -> 'a) -> 'a * (string * value) list
  (** [collect f] runs [f] with a fresh field scope and returns its
      result with the fields recorded during the call, in first-put
      order.  Scopes nest: the inner scope shadows the outer for its
      duration.  Re-raises [f]'s exception after closing the scope. *)
end
