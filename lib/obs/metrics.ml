type kind = Counter | Gauge | Histogram

type cell =
  | Scalar of float ref
  | H of Hist.t

type family = {
  name : string;
  help : string;
  kind : kind;
  mutable series : ((string * string) list * cell) list;  (* insertion order *)
}

type t = {
  lock : Mutex.t;
  mutable families : family list;  (* insertion order *)
  enabled : bool;
}

let create () = { lock = Mutex.create (); families = []; enabled = true }
let noop () = { lock = Mutex.create (); families = []; enabled = false }
let enabled t = t.enabled

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let typ_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* find-or-create under the registry lock; the first recording of a
   name fixes help and kind *)
let cell t ~kind ~help name labels =
  let family =
    match List.find_opt (fun f -> f.name = name) t.families with
    | Some f -> f
    | None ->
      let f = { name; help; kind; series = [] } in
      t.families <- t.families @ [ f ];
      f
  in
  match List.assoc_opt labels family.series with
  | Some c -> c
  | None ->
    let c = match family.kind with Histogram -> H (Hist.create ()) | _ -> Scalar (ref 0.) in
    family.series <- family.series @ [ (labels, c) ];
    c

let add t ?(help = "") ?(labels = []) name v =
  if t.enabled then
    with_lock t (fun () ->
        match cell t ~kind:Counter ~help name labels with
        | Scalar r -> r := !r +. v
        | H _ -> ())

let incr t ?help ?labels name = add t ?help ?labels name 1.

let set t ?(help = "") ?(labels = []) name v =
  if t.enabled then
    with_lock t (fun () ->
        match cell t ~kind:Gauge ~help name labels with
        | Scalar r -> r := v
        | H _ -> ())

let observe t ?(help = "") ?(labels = []) name seconds =
  if t.enabled then
    with_lock t (fun () ->
        match cell t ~kind:Histogram ~help name labels with
        | H h -> Hist.observe h seconds
        | Scalar _ -> ())

let declare t ~kind ?(help = "") ?(labels = []) name =
  if t.enabled then
    with_lock t (fun () -> ignore (cell t ~kind ~help name labels))

let declare_counter t ?help ?labels name = declare t ~kind:Counter ?help ?labels name
let declare_gauge t ?help ?labels name = declare t ~kind:Gauge ?help ?labels name
let declare_histogram t ?help ?labels name = declare t ~kind:Histogram ?help ?labels name

let value t ?(labels = []) name =
  with_lock t (fun () ->
      match List.find_opt (fun f -> f.name = name) t.families with
      | None -> None
      | Some f -> (
        match List.assoc_opt labels f.series with
        | Some (Scalar r) -> Some !r
        | Some (H _) | None -> None))

let render_family buf (f : family) =
  Prom.header buf ~name:f.name ~help:f.help ~typ:(typ_string f.kind);
  List.iter
    (fun (labels, c) ->
      match c with
      | Scalar r -> Prom.sample buf ~name:f.name ~labels !r
      | H h ->
        List.iter
          (fun (le, cum) ->
            Prom.sample buf ~name:(f.name ^ "_bucket")
              ~labels:(labels @ [ ("le", Prom.number le) ])
              (float_of_int cum))
          (Hist.cumulative h);
        Prom.sample buf ~name:(f.name ^ "_bucket")
          ~labels:(labels @ [ ("le", "+Inf") ])
          (float_of_int (Hist.count h));
        Prom.sample buf ~name:(f.name ^ "_sum") ~labels (Hist.sum_ms h);
        Prom.sample buf ~name:(f.name ^ "_count") ~labels
          (float_of_int (Hist.count h)))
    f.series

let render buf t =
  if t.enabled then
    with_lock t (fun () -> List.iter (render_family buf) t.families)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  render buf t;
  Buffer.contents buf
