(** A thread-safe metrics registry: counters, gauges and latency
    histograms keyed by [(metric name, label set)], with Prometheus
    text exposition.  Recording sites name their metric inline (the
    first recording of a name fixes its help text and type), so
    instrumented code needs no registration ceremony; series appear in
    insertion order.

    A {!noop} registry drops every recording after one branch — the
    sink to pass on hot paths that must stay unmeasurably cheap when
    observability is off. *)

type t

val create : unit -> t

val noop : unit -> t
(** A disabled registry: every recording returns immediately, and
    exposition renders nothing. *)

val enabled : t -> bool

(** {1 Recording}

    [labels] defaults to the empty label set.  [help] is used on the
    first recording of the metric name and ignored afterwards. *)

val add : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** Add to a counter (creating it at [0.] first). *)

val incr : t -> ?help:string -> ?labels:(string * string) list -> string -> unit
(** [add t name 1.] *)

val set : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge. *)

val observe : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
(** Observe one latency, in {e seconds}, into a histogram ({!Hist}
    buckets; exposed as [_bucket]/[_sum]/[_count] in milliseconds). *)

val declare_counter : t -> ?help:string -> ?labels:(string * string) list -> string -> unit
(** Pre-register a counter at [0.] so the series is present in the
    exposition before the first event — mandatory series stay
    scrapeable from startup. *)

val declare_gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> unit
(** Pre-register a gauge at [0.]. *)

val declare_histogram : t -> ?help:string -> ?labels:(string * string) list -> string -> unit
(** Pre-register an empty histogram — its [_bucket]/[_sum]/[_count]
    series expose zeros until the first observation. *)

(** {1 Reading} *)

val value : t -> ?labels:(string * string) list -> string -> float option
(** The current value of a counter or gauge series, if recorded. *)

val to_prometheus : t -> string
(** The full registry in Prometheus text exposition format. *)

val render : Buffer.t -> t -> unit
(** {!to_prometheus} into an existing buffer. *)
