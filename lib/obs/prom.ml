let escape ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label = escape ~quote:true
let escape_help = escape ~quote:false

let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let header buf ~name ~help ~typ =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let sample buf ~name ?(labels = []) v =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label value);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (number v);
  Buffer.add_char buf '\n'
