(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] headers, label escaping, and sample lines.  Pure
    rendering — the data lives in {!Metrics} and the server's endpoint
    metrics; both render through these helpers so the escaping rules
    exist once. *)

val escape_label : string -> string
(** Escape a label {e value}: backslash, double quote and newline, per
    the exposition format. *)

val escape_help : string -> string
(** Escape a [# HELP] text: backslash and newline. *)

val number : float -> string
(** Render a sample value: integral floats without a decimal point,
    non-finite values as [+Inf]/[-Inf]/[NaN]. *)

val header : Buffer.t -> name:string -> help:string -> typ:string -> unit
(** Append the [# HELP]/[# TYPE] pair for a metric family. *)

val sample :
  Buffer.t -> name:string -> ?labels:(string * string) list -> float -> unit
(** Append one sample line, e.g.
    [ekg_requests_total{endpoint="GET /health"} 7]. *)
