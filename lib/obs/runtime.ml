(* The background runtime sampler: one domain waking every [period_s]
   to publish process-level gauges — GC heap and allocation rate from
   [Gc.quick_stat], plus whatever gauge sources upper tiers register
   (worker-pool utilization, snapshotter queue depth).  Sources are
   plain closures returning samples, so this module stays at the
   bottom of the dependency order while the server and store feed it. *)

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : float;
}

let samples_metric = "ekg_runtime_samples_total"

type t = {
  obs : Metrics.t;
  period_s : float;
  lock : Mutex.t;
  mutable sources : (string * (unit -> sample list)) list;  (* insertion order *)
  mutable stop_requested : bool;
  mutable worker : unit Domain.t option;
  mutable last_t : float;
  mutable last_alloc_words : float;
}

let create ?(period_s = 1.0) obs =
  {
    obs;
    period_s = Float.max 0.01 period_s;
    lock = Mutex.create ();
    sources = [];
    stop_requested = false;
    worker = None;
    last_t = 0.;
    last_alloc_words = 0.;
  }

let period_s t = t.period_s

let register t name f =
  Mutex.lock t.lock;
  t.sources <- (List.remove_assoc name t.sources) @ [ (name, f) ];
  Mutex.unlock t.lock

let gauge ?(labels = []) s_name s_help s_value =
  { s_name; s_help; s_labels = labels; s_value }

let gc_samples t ~now =
  let st = Gc.quick_stat () in
  (* words ever allocated: minor + major, minus the promoted words
     counted in both *)
  let alloc_words = st.minor_words +. st.major_words -. st.promoted_words in
  let rate =
    if t.last_t > 0. && now > t.last_t then
      Float.max 0. ((alloc_words -. t.last_alloc_words) /. (now -. t.last_t))
    else 0.
  in
  t.last_t <- now;
  t.last_alloc_words <- alloc_words;
  [
    gauge "ekg_runtime_gc_heap_words" "Major heap size in words."
      (float_of_int st.heap_words);
    gauge "ekg_runtime_gc_top_heap_words" "Largest major heap size reached, in words."
      (float_of_int st.top_heap_words);
    gauge "ekg_runtime_gc_minor_collections" "Minor collections since process start."
      (float_of_int st.minor_collections);
    gauge "ekg_runtime_gc_major_collections" "Major collection cycles since process start."
      (float_of_int st.major_collections);
    gauge "ekg_runtime_gc_compactions" "Heap compactions since process start."
      (float_of_int st.compactions);
    gauge "ekg_runtime_gc_promoted_words" "Words promoted from the minor heap since process start."
      st.promoted_words;
    gauge "ekg_runtime_alloc_rate_words_per_s"
      "Allocation rate between the last two sampler passes." rate;
  ]

let sample t =
  let now = Clock.now_s () in
  let gc = gc_samples t ~now in
  Mutex.lock t.lock;
  let sources = t.sources in
  Mutex.unlock t.lock;
  let extra =
    List.concat_map (fun (_, f) -> try f () with _ -> []) sources
  in
  let all = gc @ extra in
  List.iter
    (fun s -> Metrics.set t.obs ~help:s.s_help ~labels:s.s_labels s.s_name s.s_value)
    all;
  Metrics.incr t.obs ~help:"Runtime sampler passes." samples_metric;
  all

let loop t () =
  (* sleep in short slices so stop requests take effect promptly even
     with multi-second periods *)
  let slice = 0.05 in
  while not t.stop_requested do
    ignore (sample t);
    let slept = ref 0. in
    while (not t.stop_requested) && !slept < t.period_s do
      let d = Float.min slice (t.period_s -. !slept) in
      Unix.sleepf d;
      slept := !slept +. d
    done
  done

let start t =
  Mutex.lock t.lock;
  let spawn = t.worker = None in
  if spawn then t.stop_requested <- false;
  Mutex.unlock t.lock;
  if spawn then begin
    let d = Domain.spawn (loop t) in
    Mutex.lock t.lock;
    t.worker <- Some d;
    Mutex.unlock t.lock
  end

let running t = t.worker <> None

let stop t =
  t.stop_requested <- true;
  Mutex.lock t.lock;
  let w = t.worker in
  t.worker <- None;
  Mutex.unlock t.lock;
  match w with Some d -> Domain.join d | None -> ()
