(** The background runtime sampler: a single domain waking every
    [period_s] to publish process-level gauges into a {!Metrics.t} —
    GC heap size, allocation rate, collection counts from
    [Gc.quick_stat], plus whatever {e sources} upper tiers register
    (the server's worker-pool busy clocks, the snapshotter's queue
    depth).  Sources are plain closures returning samples, so this
    module stays at the bottom of the dependency order while any tier
    can feed it.

    The GC gauges ([ekg_runtime_gc_*], [ekg_runtime_alloc_rate_words_per_s])
    answer the scale-out questions the request-scoped series cannot:
    is the heap growing, is allocation pressure rising, are major
    collections becoming frequent — independent of any request being
    in flight. *)

type sample = {
  s_name : string;              (** metric name, e.g. ["ekg_runtime_gc_heap_words"] *)
  s_help : string;
  s_labels : (string * string) list;
  s_value : float;
}

type t

val create : ?period_s:float -> Metrics.t -> t
(** A sampler publishing into the given registry every [period_s]
    (default [1.]) once {!start}ed.  Creation does not spawn the
    domain, so tests (and the [/v1/debug/runtime] handler) can drive
    it synchronously with {!sample}. *)

val period_s : t -> float

val register : t -> string -> (unit -> sample list) -> unit
(** [register t name source] adds (or replaces, by [name]) a gauge
    source consulted on every pass.  A raising source contributes
    nothing for that pass; it is never dropped. *)

val sample : t -> sample list
(** One synchronous sampler pass: read the GC, consult every source,
    publish all gauges, and return them — the [/v1/debug/runtime]
    document renders this list directly. *)

val start : t -> unit
(** Spawn the background domain (idempotent). *)

val running : t -> bool

val stop : t -> unit
(** Stop and join the background domain (idempotent, prompt even for
    multi-second periods). *)

val samples_metric : string
(** ["ekg_runtime_samples_total"] — sampler passes completed. *)
