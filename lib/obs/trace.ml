type span = {
  name : string;
  mutable labels : (string * string) list;
  start_s : float;
  mutable dur_s : float;
  mutable children : span list;
}

type t = {
  lock : Lock.t;
  ring : span option array;
  mutable next : int;          (* next write slot *)
  mutable stored : int;
  seq : int Atomic.t;
  on_finish : (span -> unit) option;
}

let create ?(capacity = 128) ?on_finish ?lock_obs () =
  {
    lock = Lock.create ?obs:lock_obs "tracer";
    ring = Array.make (max 1 capacity) None;
    next = 0;
    stored = 0;
    seq = Atomic.make 0;
    on_finish;
  }

let set_lock_obs t obs = Lock.set_obs t.lock obs
let with_lock t f = Lock.with_lock t.lock f

let push_root t sp =
  with_lock t (fun () ->
      t.ring.(t.next) <- Some sp;
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.stored <- min (t.stored + 1) (Array.length t.ring))

let finish t ?parent sp =
  sp.dur_s <- Float.max 0. (Clock.now_s () -. sp.start_s);
  (match parent with
  | Some p -> with_lock t (fun () -> p.children <- sp :: p.children)
  | None -> push_root t sp);
  match t.on_finish with
  | Some g -> (try g sp with _ -> ())
  | None -> ()

let with_span t ?parent ?(labels = []) name f =
  let sp = { name; labels; start_s = Clock.now_s (); dur_s = -1.; children = [] } in
  match f sp with
  | v ->
    finish t ?parent sp;
    v
  | exception e ->
    finish t ?parent sp;
    raise e

let with_span_opt t ?parent ?labels name f =
  match t with
  | None -> f None
  | Some tracer -> with_span tracer ?parent ?labels name (fun sp -> f (Some sp))

let label sp k v = sp.labels <- (k, v) :: List.remove_assoc k sp.labels

let duration_ms sp = if sp.dur_s < 0. then 0. else sp.dur_s *. 1000.

let self_ms sp =
  let children = List.fold_left (fun acc c -> acc +. duration_ms c) 0. sp.children in
  Float.max 0. (duration_ms sp -. children)

let next_trace_id t =
  Printf.sprintf "t%d-%06x" (Atomic.fetch_and_add t.seq 1)
    (int_of_float (Float.rem (Clock.now_s () *. 1e6) 16777216.))

let oldest_first t =
  with_lock t (fun () ->
      let cap = Array.length t.ring in
      let start = (t.next - t.stored + cap) mod cap in
      List.init t.stored (fun i -> t.ring.((start + i) mod cap))
      |> List.filter_map Fun.id)

let recent t = List.rev (oldest_first t)

let flatten sp =
  let rec walk depth sp acc =
    (depth, sp) :: List.fold_right (walk (depth + 1)) (List.rev sp.children) acc
  in
  walk 0 sp []

(* --- JSONL ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json root =
  let buf = Buffer.create 256 in
  let rec emit ~root_start sp =
    Buffer.add_string buf (Printf.sprintf {|{"name":"%s"|} (json_escape sp.name));
    if sp == root then
      Buffer.add_string buf (Printf.sprintf {|,"start_unix_s":%.6f|} sp.start_s)
    else
      Buffer.add_string buf
        (Printf.sprintf {|,"offset_ms":%.3f|} ((sp.start_s -. root_start) *. 1000.));
    Buffer.add_string buf (Printf.sprintf {|,"duration_ms":%.3f|} (duration_ms sp));
    if sp.labels <> [] then begin
      Buffer.add_string buf {|,"labels":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v)))
        sp.labels;
      Buffer.add_char buf '}'
    end;
    (match List.rev sp.children with
    | [] -> ()
    | children ->
      Buffer.add_string buf {|,"children":[|};
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          emit ~root_start c)
        children;
      Buffer.add_char buf ']');
    Buffer.add_char buf '}'
  in
  emit ~root_start:root.start_s root;
  Buffer.contents buf

let jsonl t =
  oldest_first t
  |> List.map (fun sp -> span_to_json sp ^ "\n")
  |> String.concat ""
