(** Structured spans: named timers with parent/child nesting and
    string labels, collected per tracer into a bounded in-memory ring
    buffer of finished root spans (one root span = one trace).  The
    explanation server traces every explain request through these; the
    profiler and the bench harness read them back.

    Thread-safety: a tracer may be shared across domains (the ring
    buffer and child attachment are mutex-protected), but a single
    {e span} is expected to be produced by one thread — the normal
    shape, since {!with_span} scopes a span to a call. *)

type span = {
  name : string;
  mutable labels : (string * string) list;
  start_s : float;             (** {!Clock.now_s} at entry *)
  mutable dur_s : float;       (** seconds; [-1.] while the span is open *)
  mutable children : span list; (** finished children, most recent first *)
}

type t

val create :
  ?capacity:int -> ?on_finish:(span -> unit) -> ?lock_obs:Metrics.t -> unit -> t
(** A tracer keeping the last [capacity] (default [128]) finished root
    spans; older traces are evicted.  [on_finish] is called for
    {e every} finished span (children included) — the hook the server
    uses to feed per-stage counters.  [lock_obs] instruments the ring
    mutex with wait/hold histograms labeled [{lock="tracer"}] (see
    {!Lock}). *)

val set_lock_obs : t -> Metrics.t -> unit
(** Re-bind the ring-mutex instrumentation sink. *)

val with_span :
  t -> ?parent:span -> ?labels:(string * string) list -> string -> (span -> 'a) -> 'a
(** [with_span t name f] times [f]: the span is finished (duration
    set, attached to [parent] or pushed to the ring buffer when it is
    a root) when [f] returns {e or raises}. *)

val with_span_opt :
  t option ->
  ?parent:span ->
  ?labels:(string * string) list ->
  string ->
  (span option -> 'a) ->
  'a
(** Optional-tracer convenience for instrumented libraries: with
    [None] the function runs untimed and uninstrumented (zero
    allocation); with [Some t] it behaves as {!with_span}. *)

val label : span -> string -> string -> unit
(** Attach or replace a label on an open or finished span. *)

val duration_ms : span -> float
(** [0.] while open. *)

val self_ms : span -> float
(** Duration minus the summed durations of direct children — the time
    spent in the span itself, the quantity per-stage breakdowns
    attribute. *)

val next_trace_id : t -> string
(** A fresh process-unique trace id, e.g. ["t3-1a2b3c"]. *)

val recent : t -> span list
(** The buffered traces (finished root spans), most recent first. *)

val flatten : span -> (int * span) list
(** Depth-first walk of a trace, children in start order, paired with
    their nesting depth — the shape breakdown tables print. *)

(** {1 JSONL export} *)

val span_to_json : span -> string
(** One trace as a single-line JSON object:
    [{"name":…,"start_unix_s":…,"duration_ms":…,"labels":{…},"children":[…]}];
    children carry ["offset_ms"] relative to the trace root instead of
    the absolute timestamp. *)

val jsonl : t -> string
(** Every buffered trace, oldest first, one JSON document per line. *)
