open Ekg_engine

type code =
  | Moved_permanently
  | Parse_error
  | Invalid_atom
  | Invalid_request
  | Length_required
  | Payload_too_large
  | Headers_too_large
  | Not_found
  | Session_not_found
  | No_trace
  | No_explanation
  | Unknown_fact
  | Method_not_allowed
  | Invalid_program
  | Inconsistent_program
  | Divergent
  | Budget_exceeded
  | Deadline_exceeded
  | Cancelled
  | Overloaded
  | Internal_error

let all =
  [
    Moved_permanently;
    Parse_error;
    Invalid_atom;
    Invalid_request;
    Length_required;
    Payload_too_large;
    Headers_too_large;
    Not_found;
    Session_not_found;
    No_trace;
    No_explanation;
    Unknown_fact;
    Method_not_allowed;
    Invalid_program;
    Inconsistent_program;
    Divergent;
    Budget_exceeded;
    Deadline_exceeded;
    Cancelled;
    Overloaded;
    Internal_error;
  ]

let id = function
  | Moved_permanently -> "moved_permanently"
  | Parse_error -> "parse_error"
  | Invalid_atom -> "invalid_atom"
  | Invalid_request -> "invalid_request"
  | Length_required -> "length_required"
  | Payload_too_large -> "payload_too_large"
  | Headers_too_large -> "headers_too_large"
  | Not_found -> "not_found"
  | Session_not_found -> "session_not_found"
  | No_trace -> "no_trace"
  | No_explanation -> "no_explanation"
  | Unknown_fact -> "unknown_fact"
  | Method_not_allowed -> "method_not_allowed"
  | Invalid_program -> "invalid_program"
  | Inconsistent_program -> "inconsistent_program"
  | Divergent -> "divergent"
  | Budget_exceeded -> "budget_exceeded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Cancelled -> "cancelled"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

let status = function
  | Moved_permanently -> 301
  | Parse_error | Invalid_atom | Invalid_request | Invalid_program -> 400
  | Length_required -> 411
  | Payload_too_large -> 413
  | Headers_too_large -> 431
  | Not_found | Session_not_found | No_trace | No_explanation | Unknown_fact -> 404
  | Method_not_allowed -> 405
  | Inconsistent_program -> 409
  | Divergent | Budget_exceeded | Internal_error -> 500
  | Deadline_exceeded -> 504
  | Cancelled | Overloaded -> 503

(* Retryable means: the identical request may succeed later without the
   caller changing anything — transient load or a too-tight deadline.
   Client mistakes and genuine engine limits are not retryable. *)
let retryable = function
  | Overloaded | Deadline_exceeded | Cancelled -> true
  | Moved_permanently | Parse_error | Invalid_atom | Invalid_request
  | Length_required
  | Payload_too_large | Headers_too_large | Not_found | Session_not_found | No_trace
  | No_explanation | Unknown_fact | Method_not_allowed | Invalid_program
  | Inconsistent_program | Divergent | Budget_exceeded | Internal_error ->
    false

let envelope ?(detail = []) code message =
  let base =
    [
      "code", Json.str (id code);
      "message", Json.str message;
      "retryable", Json.bool (retryable code);
    ]
  in
  let fields =
    if detail = [] then base else base @ [ "detail", Json.Obj detail ]
  in
  Json.Obj [ "error", Json.Obj fields ]

let response ?detail ?(headers = []) code message =
  Http.response ~headers (status code) (Json.to_string (envelope ?detail code message))

let partial_detail (p : Chase.partial) =
  [
    "rounds", Json.int p.Chase.partial_rounds;
    "derived_facts", Json.int p.Chase.partial_derived;
    "elapsed_ms", Json.num (p.Chase.partial_wall_s *. 1000.);
    ( "rounds_per_stratum",
      Json.Arr (List.map Json.int p.Chase.partial_stratum_rounds) );
  ]

let of_chase (err : Chase.error) =
  let message = "reasoning: " ^ Chase.error_to_string err in
  match err with
  | Chase.Invalid_program _ | Chase.Unstratifiable _ | Chase.Invalid_edb _ ->
    Invalid_program, message, []
  | Chase.Unknown_fact _ -> Unknown_fact, message, []
  | Chase.Inconsistent _ -> Inconsistent_program, message, []
  | Chase.Divergent { stratum_rounds; _ } ->
    ( Divergent,
      message,
      [ "rounds_per_stratum", Json.Arr (List.map Json.int stratum_rounds) ] )
  | Chase.Budget_exceeded (`Deadline, p) ->
    Deadline_exceeded, message, partial_detail p
  | Chase.Budget_exceeded ((`Facts | `Rounds), p) ->
    Budget_exceeded, message, partial_detail p
  | Chase.Cancelled p -> Cancelled, message, partial_detail p

let chase_response err =
  let code, message, detail = of_chase err in
  response ~detail code message
