(** The structured error envelope of the /v1 API.

    Every non-2xx body the service produces is
    [{"error": {"code", "message", "retryable", "detail"?}}] with a
    stable machine-readable code, so clients program against codes
    instead of matching free-text messages.  The code set, its HTTP
    statuses and retryability are documented in README ("API errors")
    and DESIGN ("Failure semantics"); a new code is an API addition, a
    changed mapping is a breaking change. *)

open Ekg_engine

type code =
  | Moved_permanently    (** deprecated pre-/v1 path; [Location] names the new one — 301 *)
  | Parse_error          (** malformed HTTP framing or JSON — 400 *)
  | Invalid_atom         (** query/explain atom fails the wire grammar — 400 *)
  | Invalid_request      (** well-formed but unusable (bad spec/strategy/header) — 400 *)
  | Length_required      (** body-bearing method without [Content-Length] — 411 *)
  | Payload_too_large    (** 413 *)
  | Headers_too_large    (** 431 *)
  | Not_found            (** unknown route — 404 *)
  | Session_not_found    (** 404 *)
  | No_trace             (** session has no recorded trace yet — 404 *)
  | No_explanation       (** no derived fact matches the query — 404 *)
  | Unknown_fact         (** retraction names a fact absent from the EDB — 404 *)
  | Method_not_allowed   (** known path, wrong verb — 405 *)
  | Invalid_program      (** program/EDB rejected by the engine — 400 *)
  | Inconsistent_program (** a constraint φ → ⊥ fired — 409 *)
  | Divergent            (** the chase hit its round bound — 500 *)
  | Budget_exceeded      (** fact/round budget exhausted — 500 *)
  | Deadline_exceeded    (** per-request deadline exhausted — 504 *)
  | Cancelled            (** run cancelled (e.g. shutdown) — 503 *)
  | Overloaded           (** load shed at the admission queue — 503 *)
  | Internal_error       (** handler exception — 500 *)

val all : code list
(** Every code, for documentation and exhaustiveness tests. *)

val id : code -> string
(** The stable wire identifier, e.g. ["deadline_exceeded"]. *)

val status : code -> int
val retryable : code -> bool

val envelope : ?detail:(string * Json.t) list -> code -> string -> Json.t
(** The [{"error": …}] document. *)

val response :
  ?detail:(string * Json.t) list ->
  ?headers:(string * string) list ->
  code ->
  string ->
  Http.response
(** The full HTTP response: {!status}, JSON {!envelope} body. *)

val partial_detail : Chase.partial -> (string * Json.t) list
(** Partial chase progress as envelope detail fields
    ([rounds], [derived_facts], [elapsed_ms], [rounds_per_stratum]). *)

val of_chase : Chase.error -> code * string * (string * Json.t) list
(** Map a typed chase error to (code, message, detail). *)

val chase_response : Chase.error -> Http.response
(** {!of_chase} rendered as a response. *)
