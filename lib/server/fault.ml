type t =
  | Off
  | Delay of float
  | Refuse_accept
  | Slow_chase of float

let to_string = function
  | Off -> "off"
  | Delay s -> Printf.sprintf "delay:%g" (s *. 1000.)
  | Refuse_accept -> "refuse-accept"
  | Slow_chase s -> Printf.sprintf "slow-chase:%g" (s *. 1000.)

let parse spec =
  let spec = String.trim spec in
  let mode, arg =
    match String.index_opt spec ':' with
    | None -> spec, None
    | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let ms ~default =
    match arg with
    | None -> Ok default
    | Some a -> (
      match float_of_string_opt a with
      | Some v when v >= 0. -> Ok (v /. 1000.)
      | _ -> Error (Printf.sprintf "fault %s: bad duration %S (milliseconds)" mode a))
  in
  match mode with
  | "" | "off" | "none" -> Ok Off
  | "delay" -> Result.map (fun s -> Delay s) (ms ~default:0.2)
  | "refuse-accept" -> Ok Refuse_accept
  | "slow-chase" -> Result.map (fun s -> Slow_chase s) (ms ~default:1.)
  | _ ->
    Error
      (Printf.sprintf
         "unknown fault %S (off | delay[:ms] | refuse-accept | slow-chase[:ms])"
         spec)

let env_var = "EKG_FAULT"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok Off
  | Some spec -> parse spec
