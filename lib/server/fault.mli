(** Deterministic fault injection for the robustness layer, so the
    load-shedding and deadline paths can be exercised by tests and
    smoke scripts instead of waiting for production pathology.

    Selected by the [--fault] flag of [ekg-serve] or the [EKG_FAULT]
    environment variable; spec grammar:
    [off | delay[:ms] | refuse-accept | slow-chase[:ms]]. *)

type t =
  | Off
  | Delay of float
      (** seconds of sleep injected before handling each session
          request — simulates slow handlers so the admission queue
          fills deterministically *)
  | Refuse_accept
      (** the acceptor stops accepting; connections pile up in the
          listen backlog — simulates an acceptor stall *)
  | Slow_chase of float
      (** seconds injected into every chase materialization (sliced,
          budget-aware) — simulates expensive reasoning so deadlines
          trip deterministically *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse a fault spec; durations are milliseconds. *)

val env_var : string
(** ["EKG_FAULT"]. *)

val of_env : unit -> (t, string) result
(** The fault selected by the environment ([Ok Off] when unset). *)
