type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS | Other of string

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | HEAD -> "HEAD"
  | OPTIONS -> "OPTIONS"
  | Other m -> m

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | "HEAD" -> HEAD
  | "OPTIONS" -> OPTIONS
  | m -> Other m

type request = {
  meth : meth;
  target : string;
  path : string list;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type error =
  | Bad_request of string
  | Length_required
  | Payload_too_large of int
  | Headers_too_large of int
  | Closed

let error_status = function
  | Bad_request _ -> 400
  | Length_required -> 411
  | Payload_too_large _ -> 413
  | Headers_too_large _ -> 431
  | Closed -> 400

let error_message = function
  | Bad_request m -> m
  | Length_required -> "POST/PUT requests must carry a Content-Length header"
  | Payload_too_large limit -> Printf.sprintf "request body exceeds %d bytes" limit
  | Headers_too_large limit -> Printf.sprintf "request headers exceed %d bytes" limit
  | Closed -> "connection closed before a complete request"

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* --- target decoding ------------------------------------------------------- *)

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match hex s.[!i + 1], hex s.[!i + 2] with
      | Some h, Some l ->
        Buffer.add_char buf (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_target target =
  let path_part, query_part =
    match String.index_opt target '?' with
    | None -> target, ""
    | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )
  in
  let path =
    String.split_on_char '/' path_part
    |> List.filter (fun s -> s <> "")
    |> List.map percent_decode
  in
  let query =
    if query_part = "" then []
    else
      String.split_on_char '&' query_part
      |> List.filter (fun s -> s <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> percent_decode kv, ""
             | Some i ->
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))
  in
  path, query

(* --- request parsing ------------------------------------------------------- *)

let find_header_end buf =
  (* offset just past the first CRLFCRLF, if present *)
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec scan i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else scan (i + 1)
  in
  scan 0

let parse_header_block block =
  match String.split_on_char '\n' block with
  | [] -> Error (Bad_request "empty request")
  | request_line :: header_lines ->
    let strip s =
      let s = String.trim s in
      s
    in
    let request_line = strip request_line in
    (match String.split_on_char ' ' request_line with
    | [ meth; target; version ]
      when target <> "" && target.[0] = '/'
           && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
      let headers =
        List.filter_map
          (fun line ->
            let line = strip line in
            if line = "" then None
            else
              match String.index_opt line ':' with
              | None | Some 0 -> None
              | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    strip (String.sub line (i + 1) (String.length line - i - 1)) ))
          header_lines
      in
      let bad_header =
        List.exists
          (fun line ->
            let line = strip line in
            line <> "" && not (String.contains line ':'))
          header_lines
      in
      if bad_header then Error (Bad_request "malformed header line")
      else
        let path, query = split_target target in
        Ok
          {
            meth = meth_of_string meth;
            target;
            path;
            query;
            headers;
            body = "";
          }
    | _ -> Error (Bad_request ("malformed request line: " ^ request_line)))

let parse_request ?(max_header_bytes = 16 * 1024) ?(max_body_bytes = 4 * 1024 * 1024)
    ~read () =
  let chunk = Bytes.create 8192 in
  let buf = Buffer.create 1024 in
  let eof = ref false in
  let fill () =
    if not !eof then begin
      let n = read chunk 0 (Bytes.length chunk) in
      if n = 0 then eof := true else Buffer.add_subbytes buf chunk 0 n
    end
  in
  let rec read_headers () =
    match find_header_end buf with
    | Some off when off - 4 <= max_header_bytes -> Ok off
    | Some _ -> Error (Headers_too_large max_header_bytes)
    | None ->
      if Buffer.length buf > max_header_bytes then
        Error (Headers_too_large max_header_bytes)
      else if !eof then
        Error (if Buffer.length buf = 0 then Closed else Bad_request "truncated request")
      else begin
        fill ();
        read_headers ()
      end
  in
  match read_headers () with
  | Error e -> Error e
  | Ok body_off -> (
    let raw = Buffer.contents buf in
    let block = String.sub raw 0 (body_off - 4) in
    match parse_header_block block with
    | Error e -> Error e
    | Ok req -> (
      let content_length =
        match List.assoc_opt "content-length" req.headers with
        | None -> Ok None
        | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> Ok (Some n)
          | _ -> Error (Bad_request ("invalid Content-Length: " ^ v)))
      in
      match content_length with
      | Error e -> Error e
      | Ok None -> (
        match req.meth with
        | POST | PUT -> Error Length_required
        | _ -> Ok req)
      | Ok (Some len) ->
        if len > max_body_bytes then Error (Payload_too_large max_body_bytes)
        else begin
          let rec read_body () =
            if Buffer.length buf - body_off >= len then
              Ok (String.sub (Buffer.contents buf) body_off len)
            else if !eof then Error (Bad_request "truncated body")
            else begin
              fill ();
              read_body ()
            end
          in
          match read_body () with
          | Error e -> Error e
          | Ok body -> Ok { req with body }
        end))

let parse_request_string ?max_header_bytes ?max_body_bytes s =
  let pos = ref 0 in
  let read bytes off len =
    let available = String.length s - !pos in
    let n = min len available in
    Bytes.blit_string s !pos bytes off n;
    pos := !pos + n;
    n
  in
  parse_request ?max_header_bytes ?max_body_bytes ~read ()

(* --- responses ------------------------------------------------------------- *)

type response = {
  status : int;
  content_type : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let response ?(content_type = "application/json") ?(headers = []) status body =
  { status; content_type; resp_headers = headers; resp_body = body }

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 301 -> "Moved Permanently"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | s when s >= 200 && s < 300 -> "OK"
  | s when s >= 300 && s < 400 -> "Redirect"
  | s when s >= 400 && s < 500 -> "Client Error"
  | _ -> "Error"

let response_to_string r =
  let buf = Buffer.create (String.length r.resp_body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (status_text r.status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" r.content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length r.resp_body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.resp_headers;
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf
