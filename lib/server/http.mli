(** A deliberately small HTTP/1.1 implementation over the stdlib —
    enough protocol for the explanation service: request-line + header
    parsing with size limits, [Content-Length]-framed bodies, and
    response serialization.  One request per connection
    ([Connection: close]); no chunked encoding, no pipelining. *)

type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS | Other of string

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;               (** raw request target, e.g. ["/sessions/s1/explain?x=1"] *)
  path : string list;            (** decoded, non-empty segments: [["sessions"; "s1"; "explain"]] *)
  query : (string * string) list; (** decoded query parameters, in order *)
  headers : (string * string) list; (** names lowercased *)
  body : string;
}

type error =
  | Bad_request of string    (** malformed request line, header, or framing — 400 *)
  | Length_required          (** body-bearing method without [Content-Length] — 411 *)
  | Payload_too_large of int (** declared body beyond the limit — 413; carries the limit *)
  | Headers_too_large of int (** header block beyond the limit — 431; carries the limit *)
  | Closed                   (** peer closed before a full request arrived *)

val error_status : error -> int
val error_message : error -> string

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val parse_request :
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  read:(bytes -> int -> int -> int) ->
  unit ->
  (request, error) result
(** Pull one request from [read] (a [Unix.read]-shaped function; return
    [0] for end-of-stream).  Defaults: 16 KiB of headers, 4 MiB of
    body.  [GET]/[HEAD]/[DELETE]/[OPTIONS] may omit [Content-Length]
    (empty body); [POST]/[PUT] must declare one. *)

val parse_request_string :
  ?max_header_bytes:int -> ?max_body_bytes:int -> string -> (request, error) result
(** Parse from a complete in-memory request — the unit-test entry
    point. *)

type response = {
  status : int;
  content_type : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response :
  ?content_type:string -> ?headers:(string * string) list -> int -> string -> response

val status_text : int -> string

val response_to_string : response -> string
(** Serialize with [Content-Length] and [Connection: close]. *)
