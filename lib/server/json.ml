type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)
let num f = Num f
let str s = Str s
let bool b = Bool b

(* --- serialization --------------------------------------------------------- *)

let buffer_add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  buffer_add_escaped buf s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string j =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> buffer_add_escaped buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_add_escaped buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

exception Parse_error of int * string

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match input.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = input.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let cp = hex4 () in
           if cp >= 0xD800 && cp <= 0xDBFF then begin
             (* high surrogate: require the paired low surrogate *)
             if
               !pos + 2 <= n && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
               utf8_add buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
             end
             else fail "unpaired surrogate"
           end
           else if cp >= 0xDC00 && cp <= 0xDFFF then fail "unpaired surrogate"
           else utf8_add buf cp
         | _ -> fail "unknown escape");
        loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match input.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "json: %s at byte %d" msg at)

(* --- accessors ------------------------------------------------------------- *)

let member k = function
  | Obj fields -> (
    match List.assoc_opt k fields with
    | Some Null | None -> None
    | some -> some)
  | _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_num = function Num f -> Some f | _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_arr = function Arr xs -> Some xs | _ -> None
let mem_str k j = Option.bind (member k j) get_str
let mem_int k j = Option.bind (member k j) get_int
let mem_bool k j = Option.bind (member k j) get_bool
