(** Minimal JSON codec for the explanation service.

    The build environment carries no JSON library, and the service only
    needs plain RFC 8259 data interchange: this module provides a full
    value type, a serializer with correct string escaping, and a
    recursive-descent parser (including [\uXXXX] escapes with surrogate
    pairs).  Numbers are carried as [float]; integral values serialize
    without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Construction helpers} *)

val int : int -> t
val num : float -> t
val str : string -> t
val bool : bool -> t

(** {1 Serialization} *)

val to_string : t -> string
(** Compact, single-line rendering. *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string (exposed for the HTTP
    layer's error bodies). *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.
    Errors carry a byte offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects or absent fields.
    [Null] fields read as absent. *)

val get_str : t -> string option
val get_num : t -> float option
val get_int : t -> int option
val get_bool : t -> bool option
val get_arr : t -> t list option

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
(** [mem_str k j] = [Option.bind (member k j) get_str], etc. *)
