module Hist = Ekg_obs.Hist

type endpoint_stats = {
  mutable requests : int;
  mutable errors : int;
  hist : Hist.t;
}

type t = {
  lock : Mutex.t;
  endpoints : (string, endpoint_stats) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { lock = Mutex.create (); endpoints = Hashtbl.create 16; hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~endpoint ~status ~seconds =
  with_lock t (fun () ->
      let stats =
        match Hashtbl.find_opt t.endpoints endpoint with
        | Some s -> s
        | None ->
          let s = { requests = 0; errors = 0; hist = Hist.create () } in
          Hashtbl.add t.endpoints endpoint s;
          s
      in
      stats.requests <- stats.requests + 1;
      if status >= 400 then stats.errors <- stats.errors + 1;
      Hist.observe stats.hist seconds)

let cache_hit t = with_lock t (fun () -> t.hits <- t.hits + 1)
let cache_miss t = with_lock t (fun () -> t.misses <- t.misses + 1)
let cache_counts t = with_lock t (fun () -> (t.hits, t.misses))

let to_json t ~uptime_s =
  with_lock t (fun () ->
      let endpoints =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.endpoints []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, (s : endpoint_stats)) ->
               let h = s.hist in
               ( name,
                 Json.Obj
                   [
                     "requests", Json.int s.requests;
                     "errors", Json.int s.errors;
                     ( "latency_ms",
                       Json.Obj
                         [
                           "count", Json.int (Hist.count h);
                           "sum", Json.num (Hist.sum_ms h);
                           "max", Json.num (Hist.max_ms h);
                           "p50", Json.num (Hist.quantile h 0.50);
                           "p95", Json.num (Hist.quantile h 0.95);
                           "p99", Json.num (Hist.quantile h 0.99);
                         ] );
                   ] ))
      in
      let total_requests =
        Hashtbl.fold (fun _ s acc -> acc + s.requests) t.endpoints 0
      in
      let total_errors = Hashtbl.fold (fun _ s acc -> acc + s.errors) t.endpoints 0 in
      Json.Obj
        [
          "uptime_seconds", Json.num uptime_s;
          "requests_total", Json.int total_requests;
          "errors_total", Json.int total_errors;
          ( "session_cache",
            Json.Obj [ "hits", Json.int t.hits; "misses", Json.int t.misses ] );
          "endpoints", Json.Obj endpoints;
        ])

let to_prometheus t ~uptime_s =
  with_lock t (fun () ->
      let endpoints =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.endpoints []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let total_requests =
        List.fold_left (fun acc (_, s) -> acc + s.requests) 0 endpoints
      in
      let total_errors =
        List.fold_left (fun acc (_, s) -> acc + s.errors) 0 endpoints
      in
      let buf = Buffer.create 4096 in
      let open Ekg_obs in
      let counter ~name ~help v =
        Prom.header buf ~name ~help ~typ:"counter";
        Prom.sample buf ~name (float_of_int v)
      in
      Prom.header buf ~name:"ekg_uptime_seconds"
        ~help:"Seconds since the server started" ~typ:"gauge";
      Prom.sample buf ~name:"ekg_uptime_seconds" uptime_s;
      counter ~name:"ekg_requests_total"
        ~help:"Requests served, all endpoints" total_requests;
      counter ~name:"ekg_request_errors_total"
        ~help:"Responses with status >= 400, all endpoints" total_errors;
      counter ~name:"ekg_session_cache_hits_total"
        ~help:"Chase materializations served from the session cache" t.hits;
      counter ~name:"ekg_session_cache_misses_total"
        ~help:"Chase materializations computed on demand" t.misses;
      if endpoints <> [] then begin
        Prom.header buf ~name:"ekg_endpoint_requests_total"
          ~help:"Requests per route label" ~typ:"counter";
        List.iter
          (fun (name, (s : endpoint_stats)) ->
            Prom.sample buf ~name:"ekg_endpoint_requests_total"
              ~labels:[ "endpoint", name ]
              (float_of_int s.requests))
          endpoints;
        Prom.header buf ~name:"ekg_endpoint_errors_total"
          ~help:"Error responses per route label" ~typ:"counter";
        List.iter
          (fun (name, (s : endpoint_stats)) ->
            Prom.sample buf ~name:"ekg_endpoint_errors_total"
              ~labels:[ "endpoint", name ]
              (float_of_int s.errors))
          endpoints;
        Prom.header buf ~name:"ekg_request_duration_ms"
          ~help:"Request latency per route label, in milliseconds"
          ~typ:"histogram";
        List.iter
          (fun (name, (s : endpoint_stats)) ->
            let h = s.hist in
            List.iter
              (fun (le, cum) ->
                Prom.sample buf ~name:"ekg_request_duration_ms_bucket"
                  ~labels:[ "endpoint", name; "le", Prom.number le ]
                  (float_of_int cum))
              (Hist.cumulative h);
            Prom.sample buf ~name:"ekg_request_duration_ms_bucket"
              ~labels:[ "endpoint", name; "le", "+Inf" ]
              (float_of_int (Hist.count h));
            Prom.sample buf ~name:"ekg_request_duration_ms_sum"
              ~labels:[ "endpoint", name ]
              (Hist.sum_ms h);
            Prom.sample buf ~name:"ekg_request_duration_ms_count"
              ~labels:[ "endpoint", name ]
              (float_of_int (Hist.count h)))
          endpoints
      end;
      Buffer.contents buf)
