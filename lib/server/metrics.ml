module Hist = struct
  (* Upper bounds of the latency buckets, in milliseconds; the final
     implicit bucket is (last, +inf), reported via the observed max. *)
  let bounds =
    [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
       1000.; 2500.; 5000.; 10000. |]

  type t = {
    counts : int array;        (* one per bound, plus overflow at the end *)
    mutable n : int;
    mutable sum : float;       (* ms *)
    mutable max : float;       (* ms *)
  }

  let create () =
    { counts = Array.make (Array.length bounds + 1) 0; n = 0; sum = 0.; max = 0. }

  let bucket_of ms =
    let rec find i =
      if i >= Array.length bounds then Array.length bounds
      else if ms <= bounds.(i) then i
      else find (i + 1)
    in
    find 0

  let observe t seconds =
    let ms = seconds *. 1000. in
    t.counts.(bucket_of ms) <- t.counts.(bucket_of ms) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. ms;
    if ms > t.max then t.max <- ms

  let count t = t.n
  let sum_ms t = t.sum
  let max_ms t = t.max

  let quantile t q =
    if t.n = 0 then 0.
    else begin
      let rank = Float.max 1. (Float.round (q *. float_of_int t.n)) in
      let rec walk i acc =
        if i >= Array.length bounds then t.max
        else
          let acc = acc + t.counts.(i) in
          if float_of_int acc >= rank then bounds.(i) else walk (i + 1) acc
      in
      walk 0 0
    end
end

type endpoint_stats = {
  mutable requests : int;
  mutable errors : int;
  hist : Hist.t;
}

type t = {
  lock : Mutex.t;
  endpoints : (string, endpoint_stats) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { lock = Mutex.create (); endpoints = Hashtbl.create 16; hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~endpoint ~status ~seconds =
  with_lock t (fun () ->
      let stats =
        match Hashtbl.find_opt t.endpoints endpoint with
        | Some s -> s
        | None ->
          let s = { requests = 0; errors = 0; hist = Hist.create () } in
          Hashtbl.add t.endpoints endpoint s;
          s
      in
      stats.requests <- stats.requests + 1;
      if status >= 400 then stats.errors <- stats.errors + 1;
      Hist.observe stats.hist seconds)

let cache_hit t = with_lock t (fun () -> t.hits <- t.hits + 1)
let cache_miss t = with_lock t (fun () -> t.misses <- t.misses + 1)
let cache_counts t = with_lock t (fun () -> (t.hits, t.misses))

let to_json t ~uptime_s =
  with_lock t (fun () ->
      let endpoints =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.endpoints []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, (s : endpoint_stats)) ->
               let h = s.hist in
               ( name,
                 Json.Obj
                   [
                     "requests", Json.int s.requests;
                     "errors", Json.int s.errors;
                     ( "latency_ms",
                       Json.Obj
                         [
                           "count", Json.int (Hist.count h);
                           "sum", Json.num (Hist.sum_ms h);
                           "max", Json.num (Hist.max_ms h);
                           "p50", Json.num (Hist.quantile h 0.50);
                           "p95", Json.num (Hist.quantile h 0.95);
                           "p99", Json.num (Hist.quantile h 0.99);
                         ] );
                   ] ))
      in
      let total_requests =
        Hashtbl.fold (fun _ s acc -> acc + s.requests) t.endpoints 0
      in
      let total_errors = Hashtbl.fold (fun _ s acc -> acc + s.errors) t.endpoints 0 in
      Json.Obj
        [
          "uptime_seconds", Json.num uptime_s;
          "requests_total", Json.int total_requests;
          "errors_total", Json.int total_errors;
          ( "session_cache",
            Json.Obj [ "hits", Json.int t.hits; "misses", Json.int t.misses ] );
          "endpoints", Json.Obj endpoints;
        ])
