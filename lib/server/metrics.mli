(** Service metrics: per-endpoint request/error counters and latency
    histograms (log-spaced buckets, p50/p95/p99 estimates), plus the
    session-registry cache counters.  All operations are thread-safe;
    recording is O(number of buckets). *)

module Hist = Ekg_obs.Hist
(** The shared latency histogram ({!Ekg_obs.Hist}): the server used to
    carry its own copy; both now alias the one implementation so bucket
    layout and quantile semantics cannot drift. *)

type t

val create : unit -> t

val record : t -> endpoint:string -> status:int -> seconds:float -> unit
(** Count one request against its route label (e.g.
    ["POST /sessions/:id/explain"]); statuses >= 400 also increment the
    error counter. *)

val cache_hit : t -> unit
val cache_miss : t -> unit

val cache_counts : t -> int * int
(** [(hits, misses)]. *)

val to_json : t -> uptime_s:float -> Json.t
(** The [GET /metrics] JSON document. *)

val to_prometheus : t -> uptime_s:float -> string
(** The [GET /metrics] Prometheus text exposition: uptime gauge,
    aggregate [ekg_requests_total] / [ekg_request_errors_total] and
    session-cache counters, plus per-endpoint counters and
    [ekg_request_duration_ms] histograms ([_bucket]/[_sum]/[_count]). *)
