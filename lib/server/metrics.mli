(** Service metrics: per-endpoint request/error counters and latency
    histograms (log-spaced buckets, p50/p95/p99 estimates), plus the
    session-registry cache counters.  All operations are thread-safe;
    recording is O(number of buckets). *)

module Hist : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one latency, in seconds. *)

  val count : t -> int
  val sum_ms : t -> float
  val max_ms : t -> float

  val quantile : t -> float -> float
  (** [quantile h 0.95] estimates the q-quantile in milliseconds as the
      upper bound of the first bucket whose cumulative count reaches
      [q * count] (the histogram estimator Prometheus uses); the
      overflow bucket reports the maximum observed value.  [0.] when
      empty. *)
end

type t

val create : unit -> t

val record : t -> endpoint:string -> status:int -> seconds:float -> unit
(** Count one request against its route label (e.g.
    ["POST /sessions/:id/explain"]); statuses >= 400 also increment the
    error counter. *)

val cache_hit : t -> unit
val cache_miss : t -> unit

val cache_counts : t -> int * int
(** [(hits, misses)]. *)

val to_json : t -> uptime_s:float -> Json.t
(** The [GET /metrics] document. *)
