open Ekg_core
open Ekg_datalog
open Ekg_engine
open Ekg_apps

type cached_explanation = {
  explanations : Pipeline.explanation list;
  preds : string list;  (* predicates whose change invalidates the entry *)
}

(* one concrete query's cached result, generation-stamped: an entry
   whose [ca_gen] no longer matches the session's [update_gen] must
   never serve *)
type cached_answers = {
  ca_result : Pipeline.query_result;
  ca_gen : int;
  mutable ca_used : float;
}

(* one query {e shape} (predicate + bound/free mask): the magic-sets
   specialization — pure in the immutable program, so it survives fact
   updates — plus an LRU of recently answered concrete queries *)
type query_entry = {
  qe_pred : string;
  qe_spec : Pipeline.specialization;
  mutable qe_used : float;
  qe_answers : (string, cached_answers) Hashtbl.t;
}

type spec =
  | App of string
  | Files of { program : string; glossary : string option; facts_dir : string option }
  | Inline of { program : string; glossary : string option }

type session = {
  id : string;
  name : string;
  spec : spec;
  pipeline : Pipeline.t;
  program_hash : string;
  mutable edb : Atom.t list;
  created_at : float;
  lock : Mutex.t;
  mutable chase : Chase.result option;
  explain_cache : (string * string, cached_explanation) Hashtbl.t;
  query_cache : (string, query_entry) Hashtbl.t;  (* keyed pred ^ "/" ^ mask *)
  mutable update_gen : int;
  mutable explain_count : int;
  mutable query_count : int;
  mutable last_trace : Ekg_obs.Trace.span option;
  mutable last_used : float;
  mutable deleted : bool;
}

type persist = {
  store : Ekg_store.Store.t;
  snapshotter : Ekg_store.Snapshotter.t;
  max_hot : int;  (* 0 = unbounded *)
}

type t = {
  root : string;
  metrics : Metrics.t;
  obs : Ekg_obs.Metrics.t;
  chase_domains : int;
  fault : Fault.t;
  persist : persist option;
  lock : Ekg_obs.Lock.t;
      (* instrumented (wait/hold histograms, {lock="registry"}): the
         one process-wide mutex every request crosses, so its
         contention profile is the first thing to look at when
         latency climbs with concurrency *)
  mutable sessions : session list;  (* newest first *)
  mutable next_id : int;
}

let evictions_metric = "ekg_store_evictions_total"
let recovered_sessions_metric = "ekg_store_recovered_sessions_total"

(* the query lane's series, declared at startup by the router *)
let query_requests_metric = "ekg_query_requests_total"
let query_rewrite_hits_metric = "ekg_query_rewrite_cache_hits_total"
let query_rewrite_misses_metric = "ekg_query_rewrite_cache_misses_total"
let query_answer_hits_metric = "ekg_query_answer_cache_hits_total"
let query_answer_misses_metric = "ekg_query_answer_cache_misses_total"
let query_invalidations_metric = "ekg_query_cache_invalidations_total"
let query_seconds_metric = "ekg_query_seconds_total"

let create ?(root = ".") ?(obs = Ekg_obs.Metrics.noop ()) ?(chase_domains = 1)
    ?(fault = Fault.Off) ?store
    ?(snapshot_mode = Ekg_store.Snapshotter.Write_behind)
    ?(max_hot_sessions = 0) metrics =
  let persist =
    Option.map
      (fun store ->
        {
          store;
          snapshotter = Ekg_store.Snapshotter.create ~mode:snapshot_mode ~obs store;
          max_hot = max_hot_sessions;
        })
      store
  in
  {
    root;
    metrics;
    obs;
    chase_domains;
    fault;
    persist;
    lock = Ekg_obs.Lock.create ~obs "registry";
    sessions = [];
    next_id = 1;
  }

let store t = Option.map (fun p -> p.store) t.persist

let flush_snapshots t =
  Option.iter (fun p -> Ekg_store.Snapshotter.flush p.snapshotter) t.persist

let stop_persistence t =
  Option.iter (fun p -> Ekg_store.Snapshotter.stop p.snapshotter) t.persist

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* The registry-wide lock goes through the instrumented wrapper; the
   per-session mutexes stay plain — they are unbounded in number, and
   per-label histogram series must not be. *)
let with_reg_lock t f = Ekg_obs.Lock.with_lock t.lock f

(* --- persistence ------------------------------------------------------------

   The store sits below the server layer, so it mirrors [spec] rather
   than depending on it. *)

let codec_spec : spec -> Ekg_store.Codec.spec = function
  | App app -> Ekg_store.Codec.App app
  | Files { program; glossary; facts_dir } ->
    Ekg_store.Codec.Files { program; glossary; facts_dir }
  | Inline { program; glossary } -> Ekg_store.Codec.Inline { program; glossary }

let spec_of_codec : Ekg_store.Codec.spec -> spec = function
  | Ekg_store.Codec.App app -> App app
  | Ekg_store.Codec.Files { program; glossary; facts_dir } ->
    Files { program; glossary; facts_dir }
  | Ekg_store.Codec.Inline { program; glossary } ->
    Inline { program; glossary }

(* Build the snapshot value with [session.lock] held.  Cheap: the EDB
   mirror and a published chase result are both immutable under the
   copy-on-write update discipline, so this grabs pointers — the
   encode runs later, off the lock, wherever the caller (snapshotter
   domain, eviction) wants it. *)
let snapshot_of_locked (session : session) =
  {
    Ekg_store.Codec.id = session.id;
    name = session.name;
    spec = codec_spec session.spec;
    program_hash = session.program_hash;
    update_gen = session.update_gen;
    created_at = session.created_at;
    edb = session.edb;
    mat = session.chase;
  }

let capture (session : session) () =
  with_lock session.lock (fun () ->
      if session.deleted then None else Some (snapshot_of_locked session))

(* Must be called with no session lock held: in [Sync] mode the
   snapshotter runs the capture inline, and the session mutex is not
   reentrant. *)
let schedule_snapshot t (session : session) =
  match t.persist with
  | None -> ()
  | Some p ->
    Ekg_obs.Log.Ctx.put "snapshot_scheduled" (Ekg_obs.Log.Bool true);
    Ekg_store.Snapshotter.request p.snapshotter ~sid:session.id
      (capture session)

(* --- request decoding ------------------------------------------------------ *)

let spec_of_json body =
  let name = Json.mem_str "name" body in
  match
    ( Json.mem_str "app" body,
      Json.mem_str "program_path" body,
      Json.mem_str "program" body )
  with
  | Some app, None, None -> Ok (App app, name)
  | None, Some program, None ->
    Ok
      ( Files
          {
            program;
            glossary = Json.mem_str "glossary_path" body;
            facts_dir = Json.mem_str "facts_dir" body;
          },
        name )
  | None, None, Some program ->
    Ok (Inline { program; glossary = Json.mem_str "glossary" body }, name)
  | None, None, None ->
    Error "provide one of \"app\", \"program_path\" or inline \"program\""
  | _ -> Error "\"app\", \"program_path\" and \"program\" are mutually exclusive"

(* --- path containment ------------------------------------------------------ *)

let safe_resolve root path =
  if String.length path = 0 then Error "empty path"
  else if Filename.is_relative path = false then
    Error ("absolute paths are not served: " ^ path)
  else if
    List.exists
      (fun seg -> seg = Filename.parent_dir_name)
      (String.split_on_char '/' path)
  then Error ("paths may not escape the server root: " ^ path)
  else Ok (Filename.concat root path)

(* --- lifecycle ------------------------------------------------------------- *)

let load t = function
  | App app -> Bundled.load app
  | Inline { program; glossary } -> Apps_util.load_program_text ?glossary program
  | Files { program; glossary; facts_dir } -> (
    let ( let* ) = Result.bind in
    let* program_file = safe_resolve t.root program in
    let* glossary_file =
      match glossary with
      | None -> Ok None
      | Some g -> Result.map Option.some (safe_resolve t.root g)
    in
    let* loaded = Apps_util.load_program_files ~program_file ~glossary_file () in
    match facts_dir with
    | None -> Ok loaded
    | Some d ->
      let* dir = safe_resolve t.root d in
      Apps_util.with_facts_dir loaded dir)

let make_session ~id ~name ~spec ~pipeline ~edb ~created_at ~update_gen =
  {
    id;
    name;
    spec;
    pipeline;
    program_hash = Pipeline.identity pipeline;
    edb;
    created_at;
    lock = Mutex.create ();
    chase = None;
    explain_cache = Hashtbl.create 16;
    query_cache = Hashtbl.create 8;
    update_gen;
    explain_count = 0;
    query_count = 0;
    last_trace = None;
    last_used = Unix.gettimeofday ();
    deleted = false;
  }

let add t ?name spec =
  match load t spec with
  | Error e -> Error e
  | Ok { Apps_util.pipeline; edb } ->
    let session =
      with_reg_lock t (fun () ->
          let id = Printf.sprintf "s%d" t.next_id in
          t.next_id <- t.next_id + 1;
          let session =
            make_session ~id
              ~name:(Option.value name ~default:id)
              ~spec ~pipeline ~edb
              ~created_at:(Unix.gettimeofday ())
              ~update_gen:0
          in
          t.sessions <- session :: t.sessions;
          session)
    in
    (* persist the session's existence right away, so a crash before
       its first materialization still recovers it at restart *)
    schedule_snapshot t session;
    Ok session

let find t id =
  with_reg_lock t (fun () ->
      List.find_opt (fun s -> s.id = id) t.sessions)

let list t = with_reg_lock t (fun () -> List.rev t.sessions)
let count t = with_reg_lock t (fun () -> List.length t.sessions)

(* Slow-chase fault: burn the configured wall-clock before the real run,
   in short slices so the request budget still trips promptly. *)
let fault_slow_chase (budget : Chase.budget) seconds =
  let t0 = Ekg_obs.Clock.now_s () in
  let finish = t0 +. seconds in
  let tripped = ref None in
  let over () =
    let now = Ekg_obs.Clock.now_s () in
    (match budget.Chase.cancel with
    | Some f when f () -> tripped := Some `Cancel
    | _ -> ());
    (match budget.Chase.deadline_s with
    | Some d when now >= d && !tripped = None -> tripped := Some `Deadline
    | _ -> ());
    !tripped <> None || now >= finish
  in
  while not (over ()) do
    Unix.sleepf 0.005
  done;
  match !tripped with
  | None -> Ok ()
  | Some reason ->
    let partial =
      {
        Chase.partial_rounds = 0;
        partial_derived = 0;
        partial_wall_s = Ekg_obs.Clock.now_s () -. t0;
        partial_stratum_rounds = [];
      }
    in
    Error
      (match reason with
      | `Cancel -> Chase.Cancelled partial
      | `Deadline -> Chase.Budget_exceeded (`Deadline, partial))

(* Warm restore: a dormant session whose snapshot carries a
   materialization of exactly this program (identity hash) at exactly
   this update generation can skip the chase entirely.  Any failure —
   no file, torn file, version or fingerprint mismatch, stale
   generation — falls back to a cold chase. *)
let try_warm_restore t (session : session) =
  match t.persist with
  | None -> None
  | Some p -> (
    match Ekg_store.Store.load p.store session.id with
    | Error e ->
      Logs.debug (fun m -> m "ekg-store: no warm restore for %s: %s" session.id e);
      None
    | Ok snap ->
      if
        String.equal snap.Ekg_store.Codec.program_hash session.program_hash
        && snap.Ekg_store.Codec.update_gen = session.update_gen
      then snap.Ekg_store.Codec.mat
      else begin
        Logs.debug (fun m ->
            m "ekg-store: snapshot of %s is stale (program or generation); re-chasing"
              session.id);
        None
      end)

(* Demote the least-recently-used hot sessions until at most
   [max_hot] remain materialized.  A victim's materialization is
   synchronously persisted before its pointer is dropped, so the demotion
   is lossless; the pending write-behind entry is discarded first so a
   post-eviction capture cannot overwrite that snapshot with a
   meta-only one. *)
let evict t p (victim : session) =
  Ekg_store.Snapshotter.discard p.snapshotter ~sid:victim.id;
  with_lock victim.lock (fun () ->
      match victim.chase with
      | None -> ()
      | Some _ when victim.deleted -> victim.chase <- None
      | Some _ ->
        (match Ekg_store.Store.save p.store (snapshot_of_locked victim) with
        | Ok _ -> ()
        | Error e ->
          Logs.warn (fun m ->
              m
                "ekg-store: eviction snapshot of %s failed (%s); session will \
                 re-chase on next use"
                victim.id e));
        victim.chase <- None;
        Ekg_obs.Metrics.incr t.obs
          ~help:"Hot sessions demoted to disk by the --max-hot-sessions bound"
          evictions_metric)

let hot_count t =
  with_reg_lock t (fun () ->
      List.length
        (List.filter
           (fun s -> (not s.deleted) && Option.is_some s.chase)
           t.sessions))

let maybe_evict t ~keep =
  match t.persist with
  | None -> ()
  | Some p when p.max_hot <= 0 -> ()
  | Some p ->
    let rec go () =
      let hot =
        with_reg_lock t (fun () ->
            (* [chase]/[last_used] are read without the session lock: a
               stale read only mis-ranks a candidate, and [evict]
               re-checks under the victim's lock *)
            List.filter
              (fun s -> (not s.deleted) && Option.is_some s.chase)
              t.sessions)
      in
      if List.length hot > p.max_hot then
        match
          List.filter (fun (s : session) -> s.id <> keep) hot
          |> List.sort (fun a b -> Float.compare a.last_used b.last_used)
        with
        | [] -> ()
        | victim :: _ ->
          evict t p victim;
          go ()
    in
    go ()

let materialize ?(budget = Chase.unlimited) ?tracer ?parent t
    (session : session) =
  let outcome =
    with_lock session.lock (fun () ->
        session.last_used <- Unix.gettimeofday ();
        match session.chase with
        | Some result ->
          Metrics.cache_hit t.metrics;
          Ok (result, `Hot)
        | None -> (
          Metrics.cache_miss t.metrics;
          match try_warm_restore t session with
          | Some result ->
            session.chase <- Some result;
            Ok (result, `Restored)
          | None -> (
            let injected =
              match t.fault with
              | Fault.Slow_chase s -> fault_slow_chase budget s
              | _ -> Ok ()
            in
            match injected with
            | Error _ as e -> e
            | Ok () -> (
              match
                Chase.run_checked ~stats:t.obs ~domains:t.chase_domains ~budget
                  ?obs:tracer ?parent session.pipeline.Pipeline.program
                  session.edb
              with
              | Ok result ->
                session.chase <- Some result;
                Ok (result, `Chased)
              | Error _ as e -> e))))
  in
  match outcome with
  | Error _ as e -> e
  | Ok (result, how) ->
    (* wide-event contributions: where this request's materialization
       came from, and what the chase cost when it ran *)
    Ekg_obs.Log.Ctx.put "chase_source"
      (Ekg_obs.Log.Str
         (match how with
         | `Hot -> "hot"
         | `Restored -> "restored"
         | `Chased -> "chased"));
    if how = `Chased then begin
      Ekg_obs.Log.Ctx.put "chase_rounds" (Ekg_obs.Log.Int result.Chase.rounds);
      Ekg_obs.Log.Ctx.put "chase_facts"
        (Ekg_obs.Log.Int result.Chase.derived_count);
      match result.Chase.stats with
      | Some st ->
        Ekg_obs.Log.Ctx.put "plan_reorders"
          (Ekg_obs.Log.Int st.Chase.plan_reorders);
        Ekg_obs.Log.Ctx.put "join_strategy"
          (Ekg_obs.Log.Str st.Chase.join_strategy)
      | None -> ()
    end;
    (* a fresh chase is worth persisting; a warm restore already came
       from disk and a hot hit changed nothing *)
    if how = `Chased then schedule_snapshot t session;
    if how <> `Hot then maybe_evict t ~keep:session.id;
    Ok result

(* --- live fact updates ------------------------------------------------------ *)

let incremental_rounds_metric = "ekg_chase_incremental_rounds_total"
let retracted_facts_metric = "ekg_chase_retracted_facts_total"

(* drop cached explanations that an update to [changed] predicates could
   have altered; called with the session lock held *)
let invalidate_cache_locked (session : session) changed =
  let stale =
    Hashtbl.fold
      (fun key entry acc ->
        if List.exists (fun p -> List.mem p changed) entry.preds then key :: acc
        else acc)
      session.explain_cache []
  in
  List.iter (Hashtbl.remove session.explain_cache) stale

(* drop cached query answers whose predicate the update could have
   re-derived ([changed] is already the affected-predicate closure);
   the specializations themselves survive — they depend only on the
   immutable program.  Returns the number of answers dropped; called
   with the session lock held. *)
let invalidate_queries_locked (session : session) changed =
  let dropped = ref 0 in
  Hashtbl.iter
    (fun _ (entry : query_entry) ->
      if List.mem entry.qe_pred changed && Hashtbl.length entry.qe_answers > 0
      then begin
        dropped := !dropped + Hashtbl.length entry.qe_answers;
        Hashtbl.reset entry.qe_answers
      end)
    session.query_cache;
  !dropped

let cached_explanations (session : session) ~strategy ~query =
  with_lock session.lock (fun () ->
      Option.map
        (fun e -> e.explanations)
        (Hashtbl.find_opt session.explain_cache (strategy, query)))

let generation (session : session) =
  with_lock session.lock (fun () -> session.update_gen)

let cache_explanations (session : session) ~generation ~strategy ~query ~preds
    explanations =
  with_lock session.lock (fun () ->
      (* a fact update committed while this result was being computed:
         its invalidation already ran, so storing the pre-update result
         now would resurrect exactly what it evicted — drop it *)
      if session.update_gen = generation then
        Hashtbl.replace session.explain_cache (strategy, query)
          { explanations; preds })

let record_update t (upd : Chase.update) =
  Ekg_obs.Metrics.add t.obs
    ~help:"Chase rounds spent maintaining materializations incrementally"
    incremental_rounds_metric
    (float_of_int upd.Chase.upd_rounds);
  Ekg_obs.Metrics.add t.obs
    ~help:"Facts removed from materializations by retraction"
    retracted_facts_metric
    (float_of_int upd.Chase.upd_retracted)

(* update the dormant EDB mirror only — nothing is materialized yet, so
   there is nothing to maintain; the next materialization sees the new
   base.  Validation mirrors the engine's: ground additions, known
   extensional retractions. *)
let update_edb_only (session : session) op atoms =
  let program = session.pipeline.Pipeline.program in
  match
    List.find_opt (fun (a : Atom.t) -> not (Atom.is_ground a)) atoms
  with
  | Some a -> Error (Chase.Invalid_edb ("non-ground fact: " ^ Atom.to_string a))
  | None -> (
    let changed =
      Chase.affected_preds program
        (List.sort_uniq String.compare
           (List.map (fun (a : Atom.t) -> a.Atom.pred) atoms))
    in
    let upd ~added ~retracted =
      {
        Chase.upd_incremental = false;
        upd_rounds = 0;
        upd_added = added;
        upd_retracted = retracted;
        upd_rederived = 0;
        upd_changed_preds = changed;
      }
    in
    match op with
    | `Add ->
      (* dedupe against the mirror and within the request itself — a
         repeated atom must not enter the base twice *)
      let fresh =
        List.rev
          (List.fold_left
             (fun acc a ->
               if
                 List.exists (Atom.equal a) session.edb
                 || List.exists (Atom.equal a) acc
               then acc
               else a :: acc)
             [] atoms)
      in
      session.edb <- session.edb @ fresh;
      Ok (upd ~added:(List.length fresh) ~retracted:0)
    | `Retract -> (
      match
        List.find_opt
          (fun a -> not (List.exists (Atom.equal a) session.edb))
          atoms
      with
      | Some missing ->
        Error
          (Chase.Unknown_fact
             ("fact not in the extensional database: " ^ Atom.to_string missing))
      | None ->
        let before = List.length session.edb in
        session.edb <-
          List.filter
            (fun e -> not (List.exists (Atom.equal e) atoms))
            session.edb;
        Ok (upd ~added:0 ~retracted:(before - List.length session.edb))))

let update_facts ?(budget = Chase.unlimited) t (session : session) op atoms =
  let committed =
    with_lock session.lock (fun () ->
      session.last_used <- Unix.gettimeofday ();
      let outcome =
        match session.chase with
        | None -> update_edb_only session op atoms
        | Some res -> (
          let apply =
            match op with
            | `Add -> Pipeline.add_facts
            | `Retract -> Pipeline.retract_facts
          in
          (* Copy-on-write: explain handlers read the published result
             lock-free once [materialize] returns, and the incremental
             engine mutates in place — including on failures it only
             detects after mutating (Inconsistent, budget trips).  So
             the update runs against a private copy and is published by
             pointer swap on success; every error path discards the
             copy, leaving the served snapshot, the EDB mirror and the
             explanation cache exactly as they were.  The
             non-incrementable fallback re-chases without touching its
             input, so it needs no copy. *)
          let target =
            if Pipeline.incrementable session.pipeline then
              Chase.copy_result res
            else res
          in
          match
            apply ~domains:t.chase_domains ~budget session.pipeline target atoms
          with
          | Ok (res', upd) ->
            session.chase <- Some res';
            (* the engine's view of the base is now authoritative *)
            session.edb <- Chase.edb_atoms res';
            Ok upd
          | Error _ as e -> e)
      in
      match outcome with
      | Ok upd ->
        session.update_gen <- session.update_gen + 1;
        invalidate_cache_locked session upd.Chase.upd_changed_preds;
        let dropped =
          invalidate_queries_locked session upd.Chase.upd_changed_preds
        in
        if dropped > 0 then
          Ekg_obs.Metrics.add t.obs
            ~help:"Cached query answers dropped by fact updates"
            query_invalidations_metric (float_of_int dropped);
        record_update t upd;
        Ekg_obs.Log.Ctx.put "chase_rounds"
          (Ekg_obs.Log.Int upd.Chase.upd_rounds);
        Ekg_obs.Log.Ctx.put "facts_added" (Ekg_obs.Log.Int upd.Chase.upd_added);
        Ekg_obs.Log.Ctx.put "facts_retracted"
          (Ekg_obs.Log.Int upd.Chase.upd_retracted);
        Ekg_obs.Log.Ctx.put "incremental"
          (Ekg_obs.Log.Bool upd.Chase.upd_incremental);
        Ok upd
      | Error _ as e -> e)
  in
  (* persist committed updates after the commit, off the session lock;
     bursts coalesce in the snapshotter *)
  (match committed with Ok _ -> schedule_snapshot t session | Error _ -> ());
  committed

(* --- the goal-directed query lane --------------------------------------------

   Point queries never touch the served materialization: the program is
   magic-sets-specialized per query shape (cached in an LRU keyed
   predicate + mask), a private scoped chase runs over a snapshot of
   the EDB mirror, and concrete answers are cached generation-stamped.
   A dormant session stays dormant — in particular a query never
   triggers (or waits on) a cold full materialization. *)

let max_query_shapes = 64
let max_answers_per_shape = 8

type query_outcome = {
  qo_result : Pipeline.query_result;
  qo_rewrite_cached : bool;  (* the specialization was already cached *)
  qo_answer_cached : bool;   (* the concrete answer set was *)
}

(* called with the session lock held *)
let lru_trim tbl cap used =
  while Hashtbl.length tbl > cap do
    let victim =
      Hashtbl.fold
        (fun k v acc ->
          match acc with
          | Some (_, best) when used best <= used v -> acc
          | _ -> Some (k, v))
        tbl None
    in
    match victim with Some (k, _) -> Hashtbl.remove tbl k | None -> ()
  done

let mode_tag = function `Magic -> "magic" | `Full -> "full" | `Edb -> "edb"

let note_query_event (result : Pipeline.query_result) ~cache_hit =
  Ekg_obs.Log.Ctx.put "cache_hit" (Ekg_obs.Log.Bool cache_hit);
  Ekg_obs.Log.Ctx.put "chase_source"
    (Ekg_obs.Log.Str (mode_tag result.Pipeline.q_mode));
  Ekg_obs.Log.Ctx.put "chase_rounds"
    (Ekg_obs.Log.Int result.Pipeline.q_rounds);
  Ekg_obs.Log.Ctx.put "chase_facts"
    (Ekg_obs.Log.Int result.Pipeline.q_derived)

let query ?(budget = Chase.unlimited) ?tracer ?parent t (session : session)
    (atom : Atom.t) =
  let pred = atom.Atom.pred in
  let mask = Magic.adornment atom in
  let shape_key = pred ^ "/" ^ mask in
  let answer_key = Atom.to_string atom in
  let t0 = Ekg_obs.Clock.now_s () in
  let count name help = Ekg_obs.Metrics.incr t.obs ~help name in
  let finish () =
    Ekg_obs.Metrics.add t.obs ~help:"Seconds spent answering point queries"
      query_seconds_metric
      (Ekg_obs.Clock.now_s () -. t0)
  in
  count query_requests_metric "Point queries served by the goal-directed lane";
  let prelim =
    with_lock session.lock (fun () ->
        let now = Unix.gettimeofday () in
        session.last_used <- now;
        session.query_count <- session.query_count + 1;
        let gen = session.update_gen in
        let edb = session.edb in
        match Hashtbl.find_opt session.query_cache shape_key with
        | Some entry -> (
          entry.qe_used <- now;
          (* a stale-generation answer must never serve: drop on sight *)
          (match Hashtbl.find_opt entry.qe_answers answer_key with
          | Some c when c.ca_gen <> gen ->
            Hashtbl.remove entry.qe_answers answer_key
          | _ -> ());
          match Hashtbl.find_opt entry.qe_answers answer_key with
          | Some c ->
            c.ca_used <- now;
            `Hit c.ca_result
          | None -> `Run (entry.qe_spec, true, gen, edb))
        | None -> (
          match Pipeline.specialize session.pipeline ~pred ~mask with
          | Error e -> `Unknown e
          | Ok spec ->
            Hashtbl.replace session.query_cache shape_key
              {
                qe_pred = pred;
                qe_spec = spec;
                qe_used = now;
                qe_answers = Hashtbl.create 4;
              };
            lru_trim session.query_cache max_query_shapes (fun e -> e.qe_used);
            `Run (spec, false, gen, edb)))
  in
  match prelim with
  | `Unknown e -> Error (`Unknown_pred e)
  | `Hit result ->
    count query_rewrite_hits_metric
      "Query shapes answered from a cached specialization";
    count query_answer_hits_metric
      "Point queries answered from the per-session answer cache";
    note_query_event result ~cache_hit:true;
    finish ();
    Ok { qo_result = result; qo_rewrite_cached = true; qo_answer_cached = true }
  | `Run (spec, rewrite_cached, gen, edb) -> (
    count
      (if rewrite_cached then query_rewrite_hits_metric
       else query_rewrite_misses_metric)
      (if rewrite_cached then
         "Query shapes answered from a cached specialization"
       else "Query shapes that paid for the magic-sets rewrite");
    count query_answer_misses_metric
      "Point queries that ran a scoped chase (answer cache miss)";
    let injected =
      match t.fault with
      | Fault.Slow_chase s -> fault_slow_chase budget s
      | _ -> Ok ()
    in
    let outcome =
      match injected with
      | Error e -> Error e
      | Ok () ->
        Pipeline.query ~stats:t.obs ~domains:t.chase_domains ~budget ?obs:tracer
          ?parent session.pipeline spec edb atom
    in
    match outcome with
    | Error err ->
      finish ();
      Error (`Chase err)
    | Ok result ->
      with_lock session.lock (fun () ->
          (* a fact update committed while the chase ran: its
             invalidation already happened, so storing now would serve
             a stale generation — drop instead *)
          if session.update_gen = gen then
            match Hashtbl.find_opt session.query_cache shape_key with
            | Some entry ->
              Hashtbl.replace entry.qe_answers answer_key
                { ca_result = result; ca_gen = gen; ca_used = Unix.gettimeofday () };
              lru_trim entry.qe_answers max_answers_per_shape (fun c -> c.ca_used)
            | None -> ());
      note_query_event result ~cache_hit:false;
      finish ();
      Ok
        {
          qo_result = result;
          qo_rewrite_cached = rewrite_cached;
          qo_answer_cached = false;
        })

let note_explain (session : session) =
  with_lock session.lock (fun () ->
      session.explain_count <- session.explain_count + 1)

let set_trace (session : session) span =
  with_lock session.lock (fun () -> session.last_trace <- Some span)

let last_trace (session : session) =
  with_lock session.lock (fun () -> session.last_trace)

(* --- deletion and startup recovery ------------------------------------------ *)

let remove t id =
  let found =
    with_reg_lock t (fun () ->
        match List.find_opt (fun s -> s.id = id) t.sessions with
        | None -> None
        | Some s ->
          t.sessions <- List.filter (fun s' -> s'.id <> id) t.sessions;
          Some s)
  in
  match found with
  | None -> None
  | Some session ->
    (* flag first so an already-captured closure answers [None], then
       wait out any in-flight save before removing the file — the
       deletion must not race a concurrent re-write *)
    with_lock session.lock (fun () -> session.deleted <- true);
    (match t.persist with
    | None -> ()
    | Some p ->
      Ekg_store.Snapshotter.discard p.snapshotter ~sid:id;
      Ekg_store.Store.delete p.store id);
    Some session

(* registry ids are ["s<n>"]; recovery must keep allocating above them *)
let numeric_suffix id =
  if String.length id > 1 && id.[0] = 's' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let recover t =
  match t.persist with
  | None -> ([], [])
  | Some p ->
    let recovered, failed =
      List.fold_left
        (fun (ok, failed) id ->
          if
            with_reg_lock t (fun () ->
                List.exists (fun s -> s.id = id) t.sessions)
          then (ok, failed)
          else
            match Ekg_store.Store.load_meta p.store id with
            | Error e -> (ok, (id, e) :: failed)
            | Ok snap -> (
              let spec = spec_of_codec snap.Ekg_store.Codec.spec in
              match load t spec with
              | Error e -> (ok, (id, "program reload failed: " ^ e) :: failed)
              | Ok { Apps_util.pipeline; edb = _ } ->
                (* the snapshot's EDB mirror is authoritative — live
                   updates may have diverged from the spec's own facts *)
                let session =
                  make_session ~id ~name:snap.Ekg_store.Codec.name ~spec
                    ~pipeline ~edb:snap.Ekg_store.Codec.edb
                    ~created_at:snap.Ekg_store.Codec.created_at
                    ~update_gen:snap.Ekg_store.Codec.update_gen
                in
                if
                  not
                    (String.equal session.program_hash
                       snap.Ekg_store.Codec.program_hash)
                then
                  Logs.warn (fun m ->
                      m
                        "ekg-store: program of session %s changed since its \
                         snapshot; it will re-chase on first use"
                        id);
                with_reg_lock t (fun () ->
                    t.sessions <- session :: t.sessions;
                    match numeric_suffix id with
                    | Some n when n >= t.next_id -> t.next_id <- n + 1
                    | _ -> ());
                Ekg_obs.Metrics.incr t.obs
                  ~help:"Sessions re-registered from snapshots at startup"
                  recovered_sessions_metric;
                (session :: ok, failed)))
        ([], [])
        (Ekg_store.Store.scan p.store)
    in
    (List.rev recovered, List.rev failed)

let snapshotter t = Option.map (fun p -> p.snapshotter) t.persist

let session_json (session : session) =
  let ( cached,
        explained,
        traced,
        edb_facts,
        cached_explanations,
        update_gen,
        last_used,
        queried,
        cached_queries ) =
    with_lock session.lock (fun () ->
        ( Option.is_some session.chase,
          session.explain_count,
          Option.is_some session.last_trace,
          List.length session.edb,
          Hashtbl.length session.explain_cache,
          session.update_gen,
          session.last_used,
          session.query_count,
          Hashtbl.fold
            (fun _ (e : query_entry) n -> n + Hashtbl.length e.qe_answers)
            session.query_cache 0 ))
  in
  Json.Obj
    [
      "id", Json.str session.id;
      "name", Json.str session.name;
      "goal", Json.str session.pipeline.Pipeline.program.Program.goal;
      "rules", Json.int (List.length session.pipeline.Pipeline.program.Program.rules);
      "edb_facts", Json.int edb_facts;
      ( "templates",
        Json.Obj
          [
            "deterministic", Json.int (List.length session.pipeline.Pipeline.deterministic);
            "enhanced", Json.int (List.length session.pipeline.Pipeline.enhanced);
          ] );
      "chase_cached", Json.bool cached;
      "tier", Json.str (if cached then "hot" else "dormant");
      "update_gen", Json.int update_gen;
      "cached_explanations", Json.int cached_explanations;
      "explain_requests", Json.int explained;
      "cached_queries", Json.int cached_queries;
      "query_requests", Json.int queried;
      "traced", Json.bool traced;
      "created_at", Json.num session.created_at;
      "last_used_unix_s", Json.num last_used;
    ]
