(** The session registry — the piece that makes the daemon worth
    running.  A session pins a compiled [Pipeline.t] (structural
    analysis + both template families) together with its EDB; the
    chase materialization is computed on the first explanation request
    and cached, so every later request over the same knowledge graph
    skips program analysis {i and} reasoning entirely.  All entry
    points are safe to call from concurrent domains. *)

open Ekg_core
open Ekg_datalog
open Ekg_engine

type cached_explanation = {
  explanations : Pipeline.explanation list;
  preds : string list;
      (** predicates whose change invalidates the entry: the query's
          own predicate plus every predicate appearing in the cached
          proofs *)
}

type cached_answers = {
  ca_result : Pipeline.query_result;
  ca_gen : int;    (** update generation the result was computed under *)
  mutable ca_used : float;  (** answer-LRU clock *)
}
(** One concrete query's cached result.  Generation-stamped: an entry
    whose [ca_gen] no longer matches the session's [update_gen] must
    never serve, and is dropped eagerly by invalidation or lazily at
    lookup. *)

type query_entry = {
  qe_pred : string;  (** queried predicate — the invalidation key *)
  qe_spec : Pipeline.specialization;
  mutable qe_used : float;  (** shape-LRU clock *)
  qe_answers : (string, cached_answers) Hashtbl.t;
      (** concrete answers keyed by canonical atom text *)
}
(** One query {e shape} (predicate + bound/free mask): the magic-sets
    specialization — pure in the immutable program, so it survives
    fact updates — plus an LRU of recently answered concrete
    queries. *)

type spec =
  | App of string
      (** a bundled paper application, e.g. ["company-control"] *)
  | Files of { program : string; glossary : string option; facts_dir : string option }
      (** repo-relative paths under the server root, e.g.
          ["programs/company_control.vada"] *)
  | Inline of { program : string; glossary : string option }
      (** program (and optional glossary) texts shipped in the request *)

type session = {
  id : string;                 (** registry-assigned, ["s1"], ["s2"], … *)
  name : string;               (** caller-supplied display name *)
  spec : spec;                 (** how the session was created; snapshots
                                   record it so recovery can recompile *)
  pipeline : Pipeline.t;
  program_hash : string;
      (** {!Pipeline.identity} of [pipeline], computed once; snapshots
          are stamped with it and a warm restore refuses a snapshot of
          a different program *)
  mutable edb : Atom.t list;   (** current extensional base (live-updated) *)
  created_at : float;
  lock : Mutex.t;              (** guards every mutable field *)
  mutable chase : Chase.result option;
      (** cached materialization.  Published results are immutable:
          {!update_facts} mutates a private {!Chase.copy_result} copy
          and swaps this pointer on success, so readers that obtained
          the result via {!materialize} may keep using it without the
          session lock. *)
  explain_cache : (string * string, cached_explanation) Hashtbl.t;
      (** finished explanations keyed by (strategy, query text);
          entries survive fact updates that cannot affect them *)
  query_cache : (string, query_entry) Hashtbl.t;
      (** the query lane's per-session LRU, keyed [pred ^ "/" ^ mask];
          specializations survive fact updates, cached answers are
          invalidated predicate-selectively *)
  mutable update_gen : int;
      (** bumped by every committed fact update; {!cache_explanations}
          refuses to store a result computed under an older generation,
          so an update racing a long explanation cannot have its cache
          invalidation undone *)
  mutable explain_count : int;
  mutable query_count : int;
  mutable last_trace : Ekg_obs.Trace.span option;
      (** the finished root span of the session's most recent explain
          request — the [GET /sessions/:id/trace] document *)
  mutable last_used : float;
      (** touched by {!materialize} and {!update_facts}; the LRU clock
          that picks eviction victims *)
  mutable deleted : bool;
      (** set by {!remove}; a captured-but-unsaved snapshot of a
          deleted session is dropped instead of written *)
}

type t

val evictions_metric : string
(** ["ekg_store_evictions_total"] — hot sessions demoted to disk by
    the [--max-hot-sessions] bound. *)

val recovered_sessions_metric : string
(** ["ekg_store_recovered_sessions_total"] — sessions re-registered
    from snapshots at startup. *)

val query_requests_metric : string
(** ["ekg_query_requests_total"] — point queries served by the
    goal-directed lane. *)

val query_rewrite_hits_metric : string
val query_rewrite_misses_metric : string
(** ["ekg_query_rewrite_cache_{hits,misses}_total"] — whether a query's
    shape found its magic-sets specialization already cached. *)

val query_answer_hits_metric : string
val query_answer_misses_metric : string
(** ["ekg_query_answer_cache_{hits,misses}_total"] — whether the
    concrete query found a current-generation cached answer set. *)

val query_invalidations_metric : string
(** ["ekg_query_cache_invalidations_total"] — cached query answers
    dropped by fact updates. *)

val query_seconds_metric : string
(** ["ekg_query_seconds_total"] — seconds spent answering point
    queries. *)

val create :
  ?root:string ->
  ?obs:Ekg_obs.Metrics.t ->
  ?chase_domains:int ->
  ?fault:Fault.t ->
  ?store:Ekg_store.Store.t ->
  ?snapshot_mode:Ekg_store.Snapshotter.mode ->
  ?max_hot_sessions:int ->
  Metrics.t ->
  t
(** [root] (default ["."]) anchors [Files] paths; requests may not
    escape it.  [obs] (default a {!Ekg_obs.Metrics.noop} registry)
    receives the [ekg_chase_*] series of every materialization.
    [chase_domains] (default [1]) is handed to every chase run as its
    match-phase fan-out; results are identical for every value.
    [fault] (default {!Fault.Off}): {!Fault.Slow_chase} injects its
    configured wall-clock into every materialization — in short,
    budget-aware slices, so a request deadline still trips within a
    few milliseconds of the instant it expires.

    [store] turns persistence on: sessions are snapshotted after
    creation, committed fact updates and fresh materializations
    ([snapshot_mode], default {!Ekg_store.Snapshotter.Write_behind},
    decides where that work runs), dormant sessions warm-restore their
    materialization from disk, and {!recover} re-registers sessions at
    startup.  [max_hot_sessions] (default [0] = unbounded) bounds how
    many sessions may hold a materialization in memory; beyond it the
    least-recently-used ones are demoted to their snapshot. *)

val store : t -> Ekg_store.Store.t option
(** The persistence store, when one was configured. *)

val snapshotter : t -> Ekg_store.Snapshotter.t option
(** The write-behind snapshotter, when persistence is on — the router
    registers its queue-depth/stall gauges as a runtime-sampler
    source. *)

val flush_snapshots : t -> unit
(** Block until no snapshot request is pending or in flight. *)

val stop_persistence : t -> unit
(** Drain pending snapshots and join the write-behind domain (no-op
    without a store).  Call once at daemon shutdown. *)

val spec_of_json : Json.t -> (spec * string option, string) result
(** Decode a [POST /sessions] body; also returns the optional
    ["name"]. *)

val add : t -> ?name:string -> spec -> (session, string) result
(** Compile and register a session.  The error is a client error
    (unknown app, unreadable/escaping path, parse failure). *)

val find : t -> string -> session option
val list : t -> session list
(** In creation order. *)

val count : t -> int

val remove : t -> string -> session option
(** Unregister a session and delete its snapshot — the
    [DELETE /v1/sessions/:id] handler.  Waits out an in-flight
    write-behind save of the session first, so the file cannot
    reappear; [None] if the id is unknown.  Idempotent from the
    caller's perspective: a second call answers [None]. *)

val recover : t -> session list * (string * string) list
(** Scan the store directory and re-register every snapshotted session
    that is not already present, {e dormant} (no materialization is
    decoded; the first request warm-restores or re-chases).  Each
    session keeps its original id, name, EDB mirror and update
    generation; [next_id] is bumped past recovered ids.  Returns the
    recovered sessions and the per-file failures (unreadable, corrupt,
    or the recorded program no longer compiles) — failures never stop
    the scan.  Advances {!recovered_sessions_metric}. *)

val hot_count : t -> int
(** Sessions currently holding an in-memory materialization. *)

val materialize :
  ?budget:Chase.budget ->
  ?tracer:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  session ->
  (Chase.result, Chase.error) result
(** The cached chase result, computing it on first use.  Counts a
    cache hit or miss on the registry's metrics; a miss runs the chase
    with the registry's [obs] sink, so [result.stats] carries per-rule
    timings and the [ekg_chase_*] series advance.  [tracer]/[parent]
    thread the request trace into a cold chase, so its per-stratum
    spans — with the worker-count/busy/utilization labels — nest under
    the request's ["chase"] span.  [budget] (default
    {!Chase.unlimited}) bounds the run — a deadline or cancellation
    surfaces as [Error (Budget_exceeded _ | Cancelled _)] with partial
    progress.  Failed runs — budget trips included — are not cached,
    so a later request with a roomier deadline recomputes.

    With a store configured, a cache miss first attempts a {e warm
    restore}: if the session's snapshot holds a materialization of
    this exact program (by {!Pipeline.identity}) at this exact update
    generation, it is decoded and served — semantically lossless, no
    chase.  Any snapshot problem (missing, truncated, corrupt, version
    or fingerprint mismatch, stale generation) silently falls back to
    the cold chase.  A fresh materialization schedules a snapshot, and
    both outcomes then enforce the [max_hot_sessions] bound by
    demoting least-recently-used sessions (synchronously persisting
    each victim before dropping its materialization). *)

val incremental_rounds_metric : string
(** ["ekg_chase_incremental_rounds_total"] — chase rounds spent
    maintaining materializations in place. *)

val retracted_facts_metric : string
(** ["ekg_chase_retracted_facts_total"] — facts removed from
    materializations by retraction (over-deletions that were re-derived
    are not counted). *)

val update_facts :
  ?budget:Chase.budget ->
  t ->
  session ->
  [ `Add | `Retract ] ->
  Atom.t list ->
  (Chase.update, Chase.error) result
(** Mutate the session's fact base — the
    [POST|DELETE /v1/sessions/:id/facts] handler.  With a cached
    materialization the engine maintains a private
    {!Chase.copy_result} copy incrementally ({!Pipeline.add_facts} /
    {!Pipeline.retract_facts}) and publishes it by pointer swap, so
    concurrent explanation requests keep reading the previous,
    immutable snapshot throughout; without one only the dormant EDB
    mirror changes and the next materialization picks up the new base
    (added atoms are deduplicated against the mirror and within the
    request).  Cached explanations whose predicates intersect the
    update's [upd_changed_preds] are invalidated; the rest survive, as
    do the session's compiled templates.

    {e Every} error leaves the session exactly as it was — the served
    materialization, the EDB mirror and the explanation cache all
    predate the failed request.  That covers validation errors
    (non-ground addition, unknown or intensional retraction), budget
    trips mid-propagation, and {!Chase.Inconsistent} (409): the engine
    detects a constraint violation only after mutating, but it mutated
    the discarded private copy, never the published snapshot.
    Advances the {!incremental_rounds_metric} and
    {!retracted_facts_metric} series and the session's [update_gen] on
    success. *)

val cached_explanations :
  session -> strategy:string -> query:string -> Pipeline.explanation list option
(** The cached result of an identical earlier explanation request, if
    no intervening fact update could have changed it. *)

val generation : session -> int
(** The session's current update generation.  Capture it before
    computing an explanation and hand it to {!cache_explanations}:
    the store is then skipped if any fact update committed in
    between. *)

val cache_explanations :
  session ->
  generation:int ->
  strategy:string ->
  query:string ->
  preds:string list ->
  Pipeline.explanation list ->
  unit
(** Cache a finished (non-degraded) explanation result under
    (strategy, query); [preds] lists the predicates whose change must
    evict it.  A no-op when the session's update generation no longer
    equals [generation] — the result predates a committed fact update
    whose invalidation already ran, so caching it would serve stale
    explanations as [cached:true]. *)

type query_outcome = {
  qo_result : Pipeline.query_result;
  qo_rewrite_cached : bool;
      (** the shape's specialization was already cached *)
  qo_answer_cached : bool;
      (** the concrete answer set was served from cache *)
}

val query :
  ?budget:Chase.budget ->
  ?tracer:Ekg_obs.Trace.t ->
  ?parent:Ekg_obs.Trace.span ->
  t ->
  session ->
  Atom.t ->
  (query_outcome, [ `Unknown_pred of string | `Chase of Chase.error ]) result
(** Answer a point query through the goal-directed lane — the
    [GET|POST /v1/sessions/:id/query] handler.  The session's program
    is magic-sets-specialized for the query's bound/free shape
    ({!Pipeline.specialize}, cached in a per-session LRU), a private
    scoped chase runs over a snapshot of the EDB mirror, and the
    concrete answer set is cached stamped with the session's update
    generation.  The served materialization is never consulted and
    never created: a dormant session stays dormant, so a point query
    neither triggers nor waits on a cold full materialization.

    [budget] bounds the scoped chase exactly as in {!materialize}
    (deadline trips surface as [`Chase (Budget_exceeded _)] with
    partial progress); the {!Fault.Slow_chase} fault applies here too.
    [`Unknown_pred] means the predicate does not exist in the session's
    program — a client error.  Contributes [chase_source]
    (["magic"]/["full"]/["edb"]), [cache_hit], [chase_rounds] and
    [chase_facts] to the request's wide event and advances the
    [ekg_query_*] series. *)

val note_explain : session -> unit
(** Bump the session's explanation-request counter. *)

val set_trace : session -> Ekg_obs.Trace.span -> unit
(** Record the (finished) root span of the session's latest explain
    request. *)

val last_trace : session -> Ekg_obs.Trace.span option

val session_json : session -> Json.t
(** Summary document: id, name, goal, rule/fact counts, cache state,
    tier (hot/dormant), update generation, LRU clock — also the
    per-session record of [GET /v1/debug/sessions]. *)
